"""Tests for diurnal demand profiles."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traffic import (
    DemandBump,
    DiurnalProfile,
    WeeklyDemandModel,
    business_hours,
    flat,
    residential_weekday,
    residential_weekend,
)


class TestDemandBump:
    def test_peak_at_center(self):
        bump = DemandBump(center_hour=21.0, width_hours=2.0, height=0.5)
        hours = np.linspace(0, 24, 97)
        values = bump.evaluate(hours)
        assert values.max() == pytest.approx(0.5, rel=1e-3)
        assert hours[np.argmax(values)] == pytest.approx(21.0)

    def test_wraps_midnight(self):
        bump = DemandBump(center_hour=23.0, width_hours=2.0, height=1.0)
        # 1 AM is 2 hours from 23:00 through midnight, same as 21:00.
        v_0100 = bump.evaluate(np.array([1.0]))[0]
        v_2100 = bump.evaluate(np.array([21.0]))[0]
        assert v_0100 == pytest.approx(v_2100)

    @pytest.mark.parametrize(
        "kwargs",
        [dict(center_hour=24.0, width_hours=1, height=1),
         dict(center_hour=-1.0, width_hours=1, height=1),
         dict(center_hour=12.0, width_hours=0, height=1),
         dict(center_hour=12.0, width_hours=1, height=-0.1)],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DemandBump(**kwargs)


class TestDiurnalProfile:
    def test_output_clipped_to_unit_interval(self):
        profile = DiurnalProfile(
            base=0.9,
            bumps=(DemandBump(center_hour=21.0, width_hours=3.0, height=0.9),),
        )
        values = profile.evaluate(np.linspace(0, 24, 200))
        assert values.max() <= 1.0
        assert values.min() >= 0.0

    def test_flat_profile_constant(self):
        values = flat(0.4).evaluate(np.linspace(0, 24, 50))
        assert np.allclose(values, 0.4)

    def test_residential_weekday_peaks_in_evening(self):
        profile = residential_weekday()
        hours = np.linspace(0, 24, 24 * 12, endpoint=False)
        values = profile.evaluate(hours)
        peak_hour = hours[np.argmax(values)]
        assert 19.0 <= peak_hour <= 23.0
        # Night trough is well below the evening peak.
        night = profile.evaluate(np.array([4.0]))[0]
        assert values.max() > 2.0 * night

    def test_weekend_daytime_higher_than_weekday(self):
        afternoon = np.array([14.0])
        assert residential_weekend().evaluate(afternoon)[0] > (
            residential_weekday().evaluate(afternoon)[0]
        )

    def test_business_hours_peak_midday(self):
        hours = np.linspace(0, 24, 24 * 12, endpoint=False)
        values = business_hours().evaluate(hours)
        peak_hour = hours[np.argmax(values)]
        assert 9.0 <= peak_hour <= 18.0

    def test_scaled(self):
        profile = residential_weekday().scaled(0.5)
        original = residential_weekday()
        hours = np.linspace(0, 24, 50)
        assert np.all(profile.evaluate(hours) <= original.evaluate(hours))
        with pytest.raises(ValueError):
            residential_weekday().scaled(-1.0)

    def test_peak_demand_matches_grid_max(self):
        profile = residential_weekday()
        hours = np.linspace(0, 24, 24 * 60, endpoint=False)
        assert profile.peak_demand() == pytest.approx(
            profile.evaluate(hours).max()
        )

    def test_base_validated(self):
        with pytest.raises(ValueError):
            DiurnalProfile(base=1.5)

    @given(st.floats(min_value=0.0, max_value=23.999))
    def test_profile_always_in_unit_interval(self, hour):
        profile = residential_weekend()
        value = profile.evaluate(np.array([hour]))[0]
        assert 0.0 <= value <= 1.0


class TestWeeklyDemandModel:
    def test_weekend_days_use_weekend_profile(self):
        model = WeeklyDemandModel.residential()
        hour = np.array([14.0, 14.0])
        dow = np.array([2, 6])  # Wednesday, Sunday
        values = model.demand(hour, dow)
        assert values[1] > values[0]

    def test_uniform_model_ignores_weekday(self):
        model = WeeklyDemandModel.uniform(flat(0.3))
        hour = np.full(7, 12.0)
        dow = np.arange(7)
        assert np.allclose(model.demand(hour, dow), 0.3)

    def test_shape_mismatch_rejected(self):
        model = WeeklyDemandModel.residential()
        with pytest.raises(ValueError):
            model.demand(np.zeros(3), np.zeros(2, dtype=int))

    def test_bad_weekend_days_rejected(self):
        with pytest.raises(ValueError):
            WeeklyDemandModel(flat(), flat(), weekend_days=(7,))

    def test_peak_demand_covers_both_profiles(self):
        model = WeeklyDemandModel.residential()
        assert model.peak_demand() >= model.weekday.peak_demand()
        assert model.peak_demand() >= model.weekend.peak_demand()
