"""Tests for demand modifiers and demand series."""

import datetime as dt

import numpy as np
import pytest

from repro.timebase import MeasurementPeriod, TimeGrid
from repro.traffic import (
    DemandSeries,
    GrowthModifier,
    LockdownModifier,
    ModifierStack,
    TransientSpike,
    WeeklyDemandModel,
    WeeklyRecurringSpike,
    flat,
    hours,
    offered_load,
)


def make_grid(days=7, start=dt.datetime(2019, 9, 2)):
    return TimeGrid(MeasurementPeriod("t", start, days))


def flat_series(level=0.5):
    return DemandSeries(model=WeeklyDemandModel.uniform(flat(level)))


class TestGrowthModifier:
    def test_scales_uniformly(self):
        grid = make_grid(1)
        base = np.full(grid.num_bins, 0.4)
        out = GrowthModifier(1.5).apply(grid, base, 0.0)
        assert np.allclose(out, 0.6)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            GrowthModifier(-0.1)


class TestLockdownModifier:
    def test_boosts_daytime_not_night(self):
        grid = make_grid(1)
        base = np.full(grid.num_bins, 0.3)
        out = LockdownModifier(daytime_boost=0.5).apply(grid, base, 0.0)
        hour = grid.local_hour_of_day(0.0)
        noon = out[np.argmin(np.abs(hour - 13.0))]
        night = out[np.argmin(np.abs(hour - 4.0))]
        # Saturating boost: 0.3 + 0.5 * (1 - 0.3) = 0.65.
        assert noon == pytest.approx(0.65, abs=0.03)
        assert night == pytest.approx(0.3, abs=0.02)

    def test_saturating_never_exceeds_one(self):
        grid = make_grid(1)
        base = np.full(grid.num_bins, 0.95)
        out = LockdownModifier(
            daytime_boost=1.0, evening_boost=1.0
        ).apply(grid, base, 0.0)
        assert out.max() <= 1.0 + 1e-9

    def test_respects_utc_offset(self):
        grid = make_grid(1)
        base = np.zeros(grid.num_bins)
        out_utc = LockdownModifier().apply(grid, base, 0.0)
        out_jst = LockdownModifier().apply(grid, base, 9.0)
        # The boosted window shifts with the local-time offset.
        assert not np.allclose(out_utc, out_jst)


class TestTransientSpike:
    def test_only_affects_window(self):
        grid = make_grid(1)
        base = np.zeros(grid.num_bins)
        spike = TransientSpike(
            start_seconds=hours(6), duration_seconds=hours(1), magnitude=0.5
        )
        out = spike.apply(grid, base, 0.0)
        assert out[12] == 0.5 and out[13] == 0.5   # 06:00-07:00
        assert out[11] == 0.0 and out[14] == 0.0
        assert out.sum() == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TransientSpike(0, 0, 0.5)
        with pytest.raises(ValueError):
            TransientSpike(0, 10, -0.5)


class TestWeeklyRecurringSpike:
    def test_fires_only_on_chosen_day(self):
        grid = make_grid(7)  # starts Monday
        base = np.zeros(grid.num_bins)
        spike = WeeklyRecurringSpike(
            hour_of_day=2.0, duration_hours=1.0, magnitude=1.0,
            days_of_week=(2,),  # Wednesday
        )
        out = spike.apply(grid, base, 0.0)
        dow = grid.local_day_of_week(0.0)
        assert out[(dow == 2)].max() == 1.0
        assert out[(dow != 2)].max() == 0.0


class TestModifierStack:
    def test_applies_in_order_and_clips(self):
        grid = make_grid(1)
        stack = ModifierStack([GrowthModifier(3.0), GrowthModifier(2.0)])
        out = stack.apply(grid, np.full(grid.num_bins, 0.3))
        assert np.allclose(out, 1.0)  # 0.3*6 clipped

    def test_append(self):
        stack = ModifierStack()
        stack.append(GrowthModifier(2.0))
        grid = make_grid(1)
        out = stack.apply(grid, np.full(grid.num_bins, 0.2))
        assert np.allclose(out, 0.4)


class TestDemandSeries:
    def test_flat_series_constant(self):
        grid = make_grid(2)
        out = flat_series(0.5).evaluate(grid)
        assert out.shape == (grid.num_bins,)
        assert np.allclose(out, 0.5)

    def test_with_modifiers_copies(self):
        base = flat_series(0.2)
        grown = base.with_modifiers([GrowthModifier(2.0)])
        grid = make_grid(1)
        assert np.allclose(base.evaluate(grid), 0.2)
        assert np.allclose(grown.evaluate(grid), 0.4)

    def test_residential_series_has_daily_structure(self):
        grid = make_grid(7)
        series = DemandSeries(model=WeeklyDemandModel.residential())
        out = series.evaluate(grid)
        daily = out.reshape(7, grid.bins_per_day)
        # Every day shows a clear within-day swing.
        assert np.all(daily.max(axis=1) - daily.min(axis=1) > 0.3)


class TestOfferedLoad:
    def test_peak_anchoring(self):
        grid = make_grid(7)
        series = DemandSeries(model=WeeklyDemandModel.residential())
        rho = offered_load(series, grid, peak_utilization=0.95)
        assert rho.max() == pytest.approx(0.95, abs=0.02)
        assert rho.min() >= 0.0

    def test_flat_series_peak_equals_level(self):
        grid = make_grid(1)
        rho = offered_load(flat_series(0.5), grid, peak_utilization=0.8)
        assert np.allclose(rho, 0.8)

    def test_jitter_requires_rng(self):
        grid = make_grid(1)
        with pytest.raises(ValueError):
            offered_load(flat_series(), grid, 0.5, jitter_std=0.1)

    def test_jitter_reproducible(self):
        grid = make_grid(1)
        a = offered_load(flat_series(), grid, 0.5, jitter_std=0.1,
                         rng=np.random.default_rng(7))
        b = offered_load(flat_series(), grid, 0.5, jitter_std=0.1,
                         rng=np.random.default_rng(7))
        assert np.array_equal(a, b)
        assert a.std() > 0.0

    def test_clipped_below_one(self):
        grid = make_grid(1)
        rho = offered_load(flat_series(1.0), grid, 1.0, jitter_std=0.5,
                           rng=np.random.default_rng(0))
        assert rho.max() <= 0.999

    def test_bad_peak_rejected(self):
        grid = make_grid(1)
        with pytest.raises(ValueError):
            offered_load(flat_series(), grid, 1.5)
