"""Tests for ISPNetwork, World and path construction."""

import numpy as np
import pytest

from repro.netbase import (
    AccessTechnology,
    ASInfo,
    ASRole,
    is_public,
    is_rfc1918,
)
from repro.topology import (
    ISPNetwork,
    ProvisioningPolicy,
    World,
)


def eyeball_info(asn=64500, country="JP",
                 techs=(AccessTechnology.FTTH_PPPOE_LEGACY,)):
    return ASInfo(
        asn=asn, name=f"ISP{asn}", country=country, role=ASRole.EYEBALL,
        access_technologies=list(techs),
    )


def small_world(peak=0.95, seed=0, country="JP"):
    world = World(seed=seed)
    isp = world.add_isp(
        eyeball_info(country=country),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_PPPOE_LEGACY: peak}
        ),
    )
    targets = world.add_default_targets()
    return world, isp, targets


class TestISPNetwork:
    def test_attach_subscriber_defaults(self):
        _, isp, _ = small_world()
        sub = isp.attach_subscriber(city="Tokyo")
        assert sub.technology == AccessTechnology.FTTH_PPPOE_LEGACY
        assert sub.asn == isp.asn
        assert sub.city == "Tokyo"
        assert not sub.is_datacenter
        assert is_rfc1918(sub.lan.probe_address.value)
        assert is_public(sub.wan_address.value, 4)
        assert isp.customer_prefix_v4.contains(sub.wan_address)
        assert sub.ipv6_prefix is not None
        assert sub.ipv6_prefix.length == 56

    def test_device_filling(self):
        _, isp, _ = small_world()
        spec = isp.specs[AccessTechnology.FTTH_PPPOE_LEGACY]
        for _ in range(spec.subscribers_per_device + 1):
            isp.attach_subscriber()
        assert len(isp.devices) == 2

    def test_no_technology_configured(self):
        world = World(seed=1)
        info = ASInfo(64501, "X", "JP", ASRole.EYEBALL)
        isp = world.add_isp(info)
        with pytest.raises(ValueError):
            isp.attach_subscriber()

    def test_unknown_technology_rejected(self):
        _, isp, _ = small_world()
        isp.specs = {
            k: v for k, v in isp.specs.items()
            if k != AccessTechnology.LTE
        }
        with pytest.raises(KeyError):
            isp.attach_subscriber(AccessTechnology.LTE)

    def test_unique_wan_addresses(self):
        _, isp, _ = small_world()
        subs = [isp.attach_subscriber() for _ in range(100)]
        assert len({s.wan_address for s in subs}) == 100

    def test_datacenter_host(self):
        _, isp, _ = small_world()
        host = isp.attach_datacenter_host(city="Tokyo")
        assert host.is_datacenter
        assert host.lan is None
        assert host.device.device.peak_utilization == pytest.approx(0.30)
        assert host.device.announced

    def test_provisioning_spread(self):
        world = World(seed=5)
        isp = world.add_isp(
            eyeball_info(),
            provisioning=ProvisioningPolicy(
                peak_utilization={
                    AccessTechnology.FTTH_PPPOE_LEGACY: 0.9
                },
                device_spread=0.05,
            ),
        )
        # Force many devices by exceeding capacity repeatedly.
        spec = isp.specs[AccessTechnology.FTTH_PPPOE_LEGACY]
        for _ in range(spec.subscribers_per_device * 5):
            isp.attach_subscriber()
        peaks = [d.device.peak_utilization for d in isp.devices]
        assert len(peaks) == 5
        assert np.std(peaks) > 0.0
        assert all(0 < p < 1 for p in peaks)


class TestWorldRouting:
    def test_finalize_announces_customer_space(self):
        world, isp, _ = small_world()
        sub = isp.attach_subscriber()
        world.finalize()
        asn = world.table.resolve_asn(sub.wan_address.value, 4)
        assert asn == isp.asn

    def test_probe_address_lpm_is_the_paper_workaround(self):
        """Edge may be unannounced; the probe's public address always
        resolves — mirroring §2.1."""
        world = World(seed=2)
        isp = world.add_isp(
            eyeball_info(), edge_announced_probability=0.0
        )
        sub = isp.attach_subscriber()
        world.finalize()
        edge = sub.device.edge_address
        assert world.table.resolve_asn(edge.value, 4) is None
        assert world.table.resolve_asn(sub.wan_address.value, 4) == isp.asn

    def test_announced_edge_resolves(self):
        world = World(seed=3)
        isp = world.add_isp(
            eyeball_info(), edge_announced_probability=1.0
        )
        sub = isp.attach_subscriber()
        world.finalize()
        assert world.table.resolve_asn(
            sub.device.edge_address.value, 4
        ) == isp.asn

    def test_default_targets(self):
        world, _, targets = small_world()
        assert len(targets) == 22
        names = {t.name for t in targets}
        assert "A-root" in names and "ctrl-8" in names
        # All target addresses are distinct and announced.
        addresses = {t.address for t in targets}
        assert len(addresses) == 22
        for t in targets:
            assert world.table.resolve_asn(t.address.value, 4) == 64800

    def test_deterministic_worlds(self):
        w1, isp1, _ = small_world(seed=42)
        w2, isp2, _ = small_world(seed=42)
        s1 = isp1.attach_subscriber()
        s2 = isp2.attach_subscriber()
        assert s1.wan_address == s2.wan_address
        assert s1.access_rtt_ms == s2.access_rtt_ms


class TestPathConstruction:
    def test_path_structure(self):
        world, isp, targets = small_world()
        sub = isp.attach_subscriber()
        world.finalize()
        path = world.build_path(sub, targets[0])

        # Private hops first, then public.
        privates = [h for h in path.hops if h.private]
        assert len(privates) == sub.lan.private_hop_count
        assert all(is_rfc1918(h.address.value) for h in privates)
        first_public_index = len(privates)
        first_public = path.hops[first_public_index]
        assert first_public.address == sub.device.edge_address
        assert first_public.access_queue
        assert not privates[-1].access_queue

        # Cumulative base RTT strictly nondecreasing.
        rtts = [h.base_rtt_ms for h in path.hops]
        assert all(b >= a for a, b in zip(rtts, rtts[1:]))

        # Last hop is the target.
        assert path.hops[-1].address == targets[0].address

    def test_edge_rtt_decomposition(self):
        world, isp, targets = small_world()
        sub = isp.attach_subscriber()
        world.finalize()
        path = world.build_path(sub, targets[0])
        privates = [h for h in path.hops if h.private]
        edge = path.hops[len(privates)]
        # Edge base RTT = LAN RTT + access RTT, the quantity the
        # pipeline recovers by subtraction.
        assert edge.base_rtt_ms == pytest.approx(
            sub.lan.lan_rtt_ms + sub.access_rtt_ms
        )
        assert privates[-1].base_rtt_ms == pytest.approx(sub.lan.lan_rtt_ms)

    def test_datacenter_path_has_no_private_hops(self):
        world, isp, targets = small_world()
        host = isp.attach_datacenter_host()
        world.finalize()
        path = world.build_path(host, targets[0])
        assert not any(h.private for h in path.hops)
        assert path.hops[0].address == host.device.edge_address

    def test_transit_segment_cached_per_as(self):
        world, isp, targets = small_world()
        a = isp.attach_subscriber()
        b = isp.attach_subscriber()
        world.finalize()
        path_a = world.build_path(a, targets[0])
        path_b = world.build_path(b, targets[0])
        transit_a = [h.address for h in path_a.hops[-4:-1]]
        transit_b = [h.address for h in path_b.hops[-4:-1]]
        assert transit_a == transit_b

    def test_distance_scales_with_longitude_gap(self):
        world = World(seed=9)
        jp = world.add_isp(eyeball_info(asn=64501, country="JP"))
        sub = jp.attach_subscriber()
        near = world.add_target("near", utc_offset_hours=9.0)
        far = world.add_target("far", utc_offset_hours=-5.0)
        world.finalize()
        rtt_near = world.build_path(sub, near).hops[-1].base_rtt_ms
        rtt_far = world.build_path(sub, far).hops[-1].base_rtt_ms
        assert rtt_far > rtt_near + 50.0

    def test_some_transit_hops_do_not_respond(self):
        world, isp, targets = small_world()
        sub = isp.attach_subscriber()
        world.finalize()
        responds = [
            h.responds for t in targets
            for h in world.build_path(sub, t).hops
        ]
        assert not all(responds)
