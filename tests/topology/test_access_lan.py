"""Tests for access specs and home LAN construction."""

import numpy as np
import pytest

from repro.netbase import AccessTechnology, IPAddress, Prefix, is_rfc1918
from repro.topology import AccessTechSpec, build_home_lan, default_specs
from repro.topology.lan import HomeLAN
from repro.queueing import LinkModel


class TestDefaultSpecs:
    def test_covers_every_technology(self):
        specs = default_specs()
        assert set(specs) == set(AccessTechnology)

    def test_legacy_pppoe_is_marked_shared(self):
        specs = default_specs()
        assert specs[AccessTechnology.FTTH_PPPOE_LEGACY].legacy_shared
        assert specs[AccessTechnology.FTTH_IPOE_LEGACY].legacy_shared
        assert not specs[AccessTechnology.FTTH_OWN].legacy_shared

    def test_pppoe_slower_service_than_ipoe(self):
        """The ossified BRAS queues much harder than IPoE gateways."""
        specs = default_specs()
        pppoe = specs[AccessTechnology.FTTH_PPPOE_LEGACY].link
        ipoe = specs[AccessTechnology.FTTH_IPOE_LEGACY].link
        assert pppoe.service_time_ms > 3 * ipoe.service_time_ms

    def test_lte_has_higher_base_rtt_than_ftth(self):
        specs = default_specs()
        lte_low = specs[AccessTechnology.LTE].base_rtt_ms[0]
        ftth_high = specs[AccessTechnology.FTTH_OWN].base_rtt_ms[1]
        assert lte_low > ftth_high

    def test_spec_validation(self):
        with pytest.raises(ValueError):
            AccessTechSpec(
                technology=AccessTechnology.DSL,
                base_rtt_ms=(5.0, 2.0),  # inverted range
                reply_noise_ms=0.1,
                link=LinkModel(),
                subscribers_per_device=10,
            )
        with pytest.raises(ValueError):
            AccessTechSpec(
                technology=AccessTechnology.DSL,
                base_rtt_ms=(1.0, 2.0),
                reply_noise_ms=0.1,
                link=LinkModel(),
                subscribers_per_device=0,
            )


class TestHomeLAN:
    def test_validation_addresses_in_prefix(self):
        prefix = Prefix.parse("192.168.1.0/24")
        with pytest.raises(ValueError):
            HomeLAN(
                prefix=prefix,
                probe_address=IPAddress.parse("10.0.0.5"),
                gateway_chain=[IPAddress.parse("192.168.1.1")],
                lan_rtt_ms=0.5,
                reply_noise_ms=0.1,
            )

    def test_needs_gateway(self):
        prefix = Prefix.parse("192.168.1.0/24")
        with pytest.raises(ValueError):
            HomeLAN(
                prefix=prefix,
                probe_address=IPAddress.parse("192.168.1.10"),
                gateway_chain=[],
                lan_rtt_ms=0.5,
                reply_noise_ms=0.1,
            )

    def test_last_private_address(self):
        prefix = Prefix.parse("192.168.1.0/24")
        lan = HomeLAN(
            prefix=prefix,
            probe_address=IPAddress.parse("192.168.1.10"),
            gateway_chain=[
                IPAddress.parse("192.168.1.2"),
                IPAddress.parse("192.168.1.1"),
            ],
            lan_rtt_ms=0.5,
            reply_noise_ms=0.1,
        )
        assert str(lan.last_private_address) == "192.168.1.1"
        assert lan.private_hop_count == 2


class TestBuildHomeLAN:
    def test_all_addresses_are_rfc1918(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            lan = build_home_lan(rng)
            assert is_rfc1918(lan.probe_address.value)
            for gw in lan.gateway_chain:
                assert is_rfc1918(gw.value)

    def test_probe_distinct_from_gateways(self):
        rng = np.random.default_rng(1)
        for _ in range(50):
            lan = build_home_lan(rng)
            assert lan.probe_address not in lan.gateway_chain

    def test_double_nat_frequency(self):
        rng = np.random.default_rng(2)
        lans = [build_home_lan(rng, double_nat_probability=0.5)
                for _ in range(300)]
        double = sum(1 for lan in lans if lan.private_hop_count == 2)
        assert 100 < double < 200

    def test_no_double_nat_when_disabled(self):
        rng = np.random.default_rng(3)
        lans = [build_home_lan(rng, double_nat_probability=0.0)
                for _ in range(50)]
        assert all(lan.private_hop_count == 1 for lan in lans)

    def test_wifi_increases_latency_and_noise(self):
        rng = np.random.default_rng(4)
        wifi = [build_home_lan(rng, wifi_probability=1.0)
                for _ in range(100)]
        wired = [build_home_lan(rng, wifi_probability=0.0,
                                double_nat_probability=0.0)
                 for _ in range(100)]
        assert np.mean([l.lan_rtt_ms for l in wifi]) > (
            np.mean([l.lan_rtt_ms for l in wired])
        )
        assert np.mean([l.reply_noise_ms for l in wifi]) > (
            np.mean([l.reply_noise_ms for l in wired])
        )

    def test_deterministic_given_rng(self):
        a = build_home_lan(np.random.default_rng(7))
        b = build_home_lan(np.random.default_rng(7))
        assert a.probe_address == b.probe_address
        assert a.lan_rtt_ms == b.lan_rtt_ms
