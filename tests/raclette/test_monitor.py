"""Tests for the streaming last-mile monitor."""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import AtlasPlatform, Hop, ProbeVersion, Reply, TracerouteResult
from repro.core import aggregate_population
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.raclette import LastMileMonitor, ListSink, MonitorConfig
from repro.timebase import MeasurementPeriod
from repro.topology import ProvisioningPolicy, World

PERIOD = MeasurementPeriod("stream", dt.datetime(2019, 9, 2), 3)


def synthetic_result(prb_id, timestamp, lastmile_ms):
    """A minimal two-hop traceroute with a known last-mile RTT."""
    return TracerouteResult(
        prb_id=prb_id,
        msm_id=5001,
        timestamp=timestamp,
        src_address="192.168.1.10",
        from_address="20.0.0.5",
        dst_address="192.5.0.1",
        hops=(
            Hop(1, (Reply("192.168.1.1", 0.5),) * 3),
            Hop(2, (Reply("60.0.0.1", 0.5 + lastmile_ms),) * 3),
        ),
    )


def feed_constant_bins(monitor, prb_id, values_per_bin, per_bin=4):
    """Feed `per_bin` traceroutes per 30-min bin with given medians."""
    for bin_index, value in enumerate(values_per_bin):
        for k in range(per_bin):
            monitor.ingest(synthetic_result(
                prb_id, bin_index * 1800.0 + k * 300.0, value
            ))


class TestBinning:
    def test_sanity_check_drops_sparse_bins(self):
        sink = ListSink()
        monitor = LastMileMonitor(asn_of=lambda p: 1, sink=sink)
        # Only 2 traceroutes in the bin: below the threshold.
        monitor.ingest(synthetic_result(1, 0.0, 2.0))
        monitor.ingest(synthetic_result(1, 60.0, 2.0))
        monitor.flush()
        assert monitor.delay_series(1) == []

    def test_closed_bins_produce_series(self):
        monitor = LastMileMonitor(asn_of=lambda p: 1)
        feed_constant_bins(monitor, 1, [3.0, 3.0, 3.0])
        monitor.flush()
        series = monitor.delay_series(1)
        assert len(series) == 3
        # Constant medians -> zero queueing delay after baseline.
        assert all(delay == pytest.approx(0.0) for _b, delay in series)

    def test_unmapped_probe_ignored(self):
        monitor = LastMileMonitor(asn_of=lambda p: None)
        feed_constant_bins(monitor, 1, [3.0, 3.0])
        monitor.flush()
        assert monitor.monitored_asns() == []

    def test_stale_straggler_dropped(self):
        monitor = LastMileMonitor(asn_of=lambda p: 1)
        feed_constant_bins(monitor, 1, [3.0, 3.0])
        # A result from bin 0 after bin 1 started: ignored, no crash.
        monitor.ingest(synthetic_result(1, 10.0, 50.0))
        monitor.flush()
        series = monitor.delay_series(1)
        assert all(delay < 1.0 for _b, delay in series)

    def test_multiple_probes_aggregate_with_median(self):
        monitor = LastMileMonitor(asn_of=lambda p: 1)
        # Probe 1 and 2 quiet, probe 3 elevated in bin 1.
        for prb, values in ((1, [3.0, 3.0]), (2, [3.0, 3.0]),
                            (3, [3.0, 9.0])):
            feed_constant_bins(monitor, prb, values)
        monitor.flush()
        series = dict(monitor.delay_series(1))
        assert series[1] == pytest.approx(0.0)  # median of (0,0,6)


class TestAlerting:
    def config(self):
        return MonitorConfig(
            alert_threshold_ms=1.0, alert_min_bins=3,
            baseline_window_bins=100,
        )

    def test_sustained_congestion_alerts(self):
        sink = ListSink()
        monitor = LastMileMonitor(
            asn_of=lambda p: 7, config=self.config(), sink=sink
        )
        values = [3.0] * 4 + [6.0] * 5 + [3.0] * 3
        feed_constant_bins(monitor, 1, values)
        monitor.flush()
        starts = sink.starts()
        ends = sink.ends()
        assert len(starts) == 1
        assert starts[0].asn == 7
        assert starts[0].delay_ms > 1.0
        assert len(ends) == 1
        assert ends[0].start_bin > starts[0].start_bin

    def test_short_blip_does_not_alert(self):
        sink = ListSink()
        monitor = LastMileMonitor(
            asn_of=lambda p: 7, config=self.config(), sink=sink
        )
        values = [3.0] * 4 + [6.0] * 2 + [3.0] * 4  # only 2 elevated
        feed_constant_bins(monitor, 1, values)
        monitor.flush()
        assert sink.starts() == []

    def test_alert_string(self):
        sink = ListSink()
        monitor = LastMileMonitor(
            asn_of=lambda p: 7, config=self.config(), sink=sink
        )
        feed_constant_bins(monitor, 1, [3.0] * 3 + [8.0] * 4)
        monitor.flush()
        text = str(sink.starts()[0])
        assert "AS7" in text and "congestion-start" in text


class TestStreamingMatchesBatch:
    def test_against_batch_pipeline(self):
        """Streaming per-bin delays equal the batch pipeline's
        (same bins, same medians; baseline differs only in window)."""
        world = World(seed=55)
        isp = world.add_isp(
            ASInfo(
                64500, "S", "JP", ASRole.EYEBALL,
                access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
            ),
            provisioning=ProvisioningPolicy(
                peak_utilization={
                    AccessTechnology.FTTH_PPPOE_LEGACY: 0.95
                },
                device_spread=0.0,
                load_jitter_std=0.0,
            ),
        )
        world.add_default_targets()
        world.finalize()
        platform = AtlasPlatform(world)
        platform.config.outage_rate_per_day = 0.0
        # This test is about batch/streaming equivalence; session
        # churn (which shifts baselines differently under the two
        # baseline definitions) is exercised elsewhere.
        platform.config.reconnect_rate_per_day = 0.0
        probes = platform.deploy_probes_on_isp(
            isp, 3, version=ProbeVersion.V3
        )
        raw = platform.run_period(PERIOD, probes)

        # Batch side.
        from repro.core import estimate_dataset
        from repro.timebase import TimeGrid

        grid = TimeGrid(PERIOD)
        batch = aggregate_population(estimate_dataset(
            raw.results, grid, probe_meta=raw.probe_meta
        ))

        # Streaming side: feed in timestamp order.
        monitor = LastMileMonitor(
            asn_of=lambda p: 64500,
            config=MonitorConfig(baseline_window_bins=grid.num_bins),
        )
        all_results = sorted(
            (r for results in raw.results.values() for r in results),
            key=lambda r: r.timestamp,
        )
        monitor.ingest_many(all_results)
        monitor.flush()

        stream = dict(monitor.delay_series(64500))
        # The streaming baseline is causal (min-so-far), the batch one
        # is the whole-period minimum; once the stream has seen the
        # quiet hours both agree.
        late_bins = [b for b in stream if b >= grid.num_bins // 3]
        assert len(late_bins) > 30
        diffs = [
            abs(stream[b] - batch.delay_ms[b]) for b in late_bins
            if not np.isnan(batch.delay_ms[b])
        ]
        assert np.median(diffs) < 0.2
        assert np.mean(np.array(diffs) < 0.5) > 0.9


class TestStreamFaultTolerance:
    """The monitor survives what live streams do, and accounts for it."""

    def test_duplicates_dropped_and_counted(self):
        from repro.quality import DropReason

        monitor = LastMileMonitor(asn_of=lambda p: 1)
        result = synthetic_result(1, 100.0, 3.0)
        for _ in range(3):
            monitor.ingest(result)
        assert monitor.quality.dropped_count(
            DropReason.DUPLICATE_RECORD
        ) == 2
        # Only one result counted toward the bin.
        assert monitor._probes[1].count == 1

    def test_duplicate_suppression_bounded_to_open_bin(self):
        monitor = LastMileMonitor(asn_of=lambda p: 1)
        feed_constant_bins(monitor, 1, [3.0])
        # Bin 1 opens; bin 0's keys are forgotten.
        monitor.ingest(synthetic_result(1, 1800.0, 3.0))
        assert len(monitor._probes[1].seen) == 1

    def test_stale_straggler_counted(self):
        from repro.quality import DropReason

        monitor = LastMileMonitor(asn_of=lambda p: 1)
        feed_constant_bins(monitor, 1, [3.0, 3.0])
        monitor.ingest(synthetic_result(1, 10.0, 50.0))
        assert monitor.quality.dropped_count(
            DropReason.STALE_RECORD
        ) == 1

    def test_nonfinite_timestamp_dropped(self):
        from repro.quality import DropReason

        monitor = LastMileMonitor(asn_of=lambda p: 1)
        monitor.ingest(synthetic_result(1, float("nan"), 3.0))
        monitor.ingest(synthetic_result(1, float("inf"), 3.0))
        monitor.flush()
        assert monitor.quality.dropped_count(
            DropReason.MALFORMED_RECORD
        ) == 2
        assert monitor.delay_series(1) == []

    def test_gap_leaves_bins_unclosed_no_crash(self):
        monitor = LastMileMonitor(asn_of=lambda p: 1)
        feed_constant_bins(monitor, 1, [3.0, 3.0])
        # A long outage, then the probe returns 50 bins later.
        for k in range(4):
            monitor.ingest(synthetic_result(
                1, 52 * 1800.0 + k * 300.0, 3.0
            ))
        monitor.flush()
        series = dict(monitor.delay_series(1))
        assert 52 in series
        assert 10 not in series  # nothing invented for the gap

    def test_chaotic_stream_never_raises(self):
        """Duplicated, reordered, skewed and garbage-stamped input."""
        rng = np.random.default_rng(3)
        results = []
        for bin_index in range(6):
            for k in range(4):
                for prb in (1, 2):
                    results.append(synthetic_result(
                        prb, bin_index * 1800.0 + k * 300.0 + prb, 3.0
                    ))
        stream = list(results)
        stream += [results[i] for i in rng.integers(0, len(results), 10)]
        rng.shuffle(stream)
        stream.append(synthetic_result(1, float("nan"), 3.0))
        monitor = LastMileMonitor(asn_of=lambda p: 1)
        monitor.ingest_many(stream)
        monitor.flush()
        assert monitor.results_seen == len(stream)
        assert not monitor.quality.clean
        assert monitor.monitored_asns() == [1]
        summary = monitor.summary()
        assert "dropped" in summary


class TestReasonCodedSkips:
    def test_sparse_bin_recorded_with_reason(self):
        from repro.quality import DropReason

        monitor = LastMileMonitor(asn_of=lambda p: 1)
        monitor.ingest(synthetic_result(1, 0.0, 2.0))
        monitor.ingest(synthetic_result(1, 60.0, 2.0))
        monitor.flush()
        assert monitor.bins_skipped == {"sparse-bin": 1}
        assert monitor.quality.dropped_count(
            DropReason.SPARSE_BIN
        ) == 1

    def test_unresolved_asn_recorded_with_reason(self):
        from repro.quality import DropReason

        monitor = LastMileMonitor(asn_of=lambda p: None)
        feed_constant_bins(monitor, 1, [3.0, 3.0])
        monitor.flush()
        assert monitor.bins_skipped == {"unresolved-asn": 2}
        assert monitor.quality.dropped_count(
            DropReason.UNRESOLVED_ASN
        ) == 2

    def test_summary_breaks_drops_down_by_reason(self):
        monitor = LastMileMonitor(asn_of=lambda p: 1)
        feed_constant_bins(monitor, 1, [3.0, 3.0])
        monitor.ingest(synthetic_result(1, 10.0, 50.0))  # stale
        monitor.ingest(synthetic_result(1, float("nan"), 3.0))
        monitor.flush()
        summary = monitor.summary()
        assert "stale-record=1" in summary
        assert "malformed-record=1" in summary
        assert "dropped:" in summary

    def test_clean_stream_summary_has_no_drop_section(self):
        monitor = LastMileMonitor(asn_of=lambda p: 1)
        feed_constant_bins(monitor, 1, [3.0, 3.0])
        monitor.flush()
        assert "dropped" not in monitor.summary()


class TestMonitorMetrics:
    def test_metrics_recorded_under_live_observer(self):
        from repro.obs import observed

        with observed() as obs:
            monitor = LastMileMonitor(asn_of=lambda p: 1)
            feed_constant_bins(monitor, 1, [3.0, 3.0, 3.0])
            monitor.ingest(synthetic_result(1, 10.0, 50.0))  # stale
            monitor.flush()
        assert obs.metrics.get("raclette_results_total").value() == (
            monitor.results_seen
        )
        assert obs.metrics.get(
            "raclette_bins_closed_total"
        ).value() == monitor.bins_closed
        assert obs.metrics.get(
            "raclette_records_skipped_total"
        ).value(reason="stale-record") == 1
        assert obs.metrics.get("raclette_monitored_asns").value() == 1

    def test_monitor_works_without_observer(self):
        # Default NOOP observer: instruments absorb silently.
        monitor = LastMileMonitor(asn_of=lambda p: 1)
        feed_constant_bins(monitor, 1, [3.0])
        monitor.flush()
        assert monitor.bins_closed == 1
