"""Tests for the raclette CLI."""

import json

import pytest

from repro.atlas import Hop, Reply, TracerouteResult
from repro.raclette.__main__ import build_parser, make_asn_resolver, run


def result_line(prb_id, timestamp, lastmile_ms, from_address="20.0.0.5"):
    result = TracerouteResult(
        prb_id=prb_id,
        msm_id=5001,
        timestamp=timestamp,
        src_address="192.168.1.10",
        from_address=from_address,
        dst_address="192.5.0.1",
        hops=(
            Hop(1, (Reply("192.168.1.1", 0.5),) * 3),
            Hop(2, (Reply("60.0.0.1", 0.5 + lastmile_ms),) * 3),
        ),
    )
    return json.dumps(result.to_json())


def write_stream(path, values_per_bin, prb_id=1):
    lines = []
    for bin_index, value in enumerate(values_per_bin):
        for k in range(4):
            lines.append(result_line(
                prb_id, bin_index * 1800.0 + k * 300.0, value
            ))
    path.write_text("\n".join(lines) + "\n")


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["results.jsonl"])
        assert args.threshold_ms == 1.0
        assert args.min_bins == 4
        assert args.baseline_bins == 336


class TestResolver:
    def test_without_rib_groups_by_probe(self):
        _note, resolve = make_asn_resolver(None)
        assert resolve(42) == 42

    def test_with_rib(self, tmp_path):
        rib = tmp_path / "rib.txt"
        rib.write_text("20.0.0.0/16|64700 64500\n")
        note, resolve = make_asn_resolver(str(rib))
        note(1, "20.0.0.5")
        note(2, "99.0.0.5")     # unannounced
        note(3, "not-an-ip")
        assert resolve(1) == 64500
        assert resolve(2) is None
        assert resolve(3) is None
        # Cached on second call.
        assert resolve(1) == 64500


class TestRun:
    def test_quiet_stream_no_alerts(self, tmp_path, capsys):
        stream = tmp_path / "results.jsonl"
        write_stream(stream, [3.0] * 6)
        assert run([str(stream)]) == 0
        out = capsys.readouterr().out
        assert "congestion-start" not in out
        assert "raclette:" in out
        assert "AS1:" in out  # grouped by probe id without a RIB

    def test_congested_stream_alerts(self, tmp_path, capsys):
        stream = tmp_path / "results.jsonl"
        write_stream(stream, [3.0] * 4 + [7.0] * 6 + [3.0] * 4)
        assert run([str(stream), "--min-bins", "3"]) == 0
        out = capsys.readouterr().out
        assert "congestion-start" in out
        assert "congestion-end" in out

    def test_rib_mapping(self, tmp_path, capsys):
        rib = tmp_path / "rib.txt"
        rib.write_text("20.0.0.0/16|64500\n")
        stream = tmp_path / "results.jsonl"
        write_stream(stream, [3.0] * 6)
        assert run([str(stream), "--rib", str(rib)]) == 0
        out = capsys.readouterr().out
        assert "AS64500:" in out

    def test_blank_lines_skipped(self, tmp_path, capsys):
        stream = tmp_path / "results.jsonl"
        write_stream(stream, [3.0] * 6)
        stream.write_text(stream.read_text() + "\n\n")
        assert run([str(stream)]) == 0
