"""Tests for online statistics sketches."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.raclette import ExactMedian, P2Quantile, RollingMinimum


class TestExactMedian:
    def test_empty(self):
        assert ExactMedian().median() is None

    def test_odd_even(self):
        sketch = ExactMedian()
        sketch.extend([3.0, 1.0, 2.0])
        assert sketch.median() == 2.0
        sketch.add(10.0)
        assert sketch.median() == 2.5
        assert sketch.count == 4

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                    min_size=1, max_size=50))
    def test_matches_numpy(self, values):
        sketch = ExactMedian()
        sketch.extend(values)
        assert sketch.median() == pytest.approx(float(np.median(values)))


class TestP2Quantile:
    def test_validation(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_exact_below_five_samples(self):
        sketch = P2Quantile(0.5)
        assert sketch.value() is None
        sketch.extend([5.0, 1.0, 3.0])
        assert sketch.value() == 3.0

    @settings(deadline=None)
    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_median_accuracy_normal(self, seed):
        rng = np.random.default_rng(seed)
        data = rng.normal(10.0, 2.0, size=3000)
        sketch = P2Quantile(0.5)
        sketch.extend(data)
        assert sketch.value() == pytest.approx(
            float(np.median(data)), abs=0.3
        )

    def test_p90_accuracy_skewed(self):
        rng = np.random.default_rng(7)
        data = rng.exponential(5.0, size=5000)
        sketch = P2Quantile(0.9)
        sketch.extend(data)
        expected = float(np.percentile(data, 90))
        assert sketch.value() == pytest.approx(expected, rel=0.15)

    def test_count(self):
        sketch = P2Quantile()
        sketch.extend(range(10))
        assert sketch.count == 10

    def test_constant_stream(self):
        sketch = P2Quantile(0.5)
        sketch.extend([4.2] * 100)
        assert sketch.value() == pytest.approx(4.2)


class TestRollingMinimum:
    def test_validation(self):
        with pytest.raises(ValueError):
            RollingMinimum(0)

    def test_window_behaviour(self):
        rolling = RollingMinimum(3)
        assert rolling.minimum() is None
        assert rolling.push(5.0) == 5.0
        assert rolling.push(3.0) == 3.0
        assert rolling.push(4.0) == 3.0
        assert rolling.push(6.0) == 3.0   # window [3,4,6]
        assert rolling.push(7.0) == 4.0   # 3 expired
        assert rolling.push(2.0) == 2.0

    @given(st.lists(st.floats(min_value=-1e3, max_value=1e3),
                    min_size=1, max_size=200),
           st.integers(min_value=1, max_value=20))
    def test_matches_naive(self, values, window):
        rolling = RollingMinimum(window)
        for index, value in enumerate(values):
            result = rolling.push(value)
            naive = min(values[max(0, index - window + 1): index + 1])
            assert result == naive
