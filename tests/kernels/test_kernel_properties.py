"""Property-based equivalence of the vector kernels.

Where ``test_differential`` pins equality on curated datasets, these
properties let hypothesis hunt for inputs where the vectorized math
drifts from the reference loops: grouped medians vs per-group
``numpy.median`` (including NaN propagation), probe-order permutation
invariance, NaN-placement equivalence, additive-offset behaviour of
the queueing estimate, and batched vs per-signal Welch markers.
"""

import datetime as dt

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    LastMileDataset,
    ProbeBinSeries,
    aggregate_population,
    extract_markers,
)
from repro.core.kernels.reference import REFERENCE
from repro.core.kernels.vector import VECTOR, grouped_median
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("kprop", dt.datetime(2019, 9, 2), 5)
GRID = TimeGrid(PERIOD)
BINS = GRID.num_bins


@st.composite
def grouped_values(draw):
    """Random (group_ids, values) with NaNs and empty groups."""
    num_groups = draw(st.integers(min_value=1, max_value=12))
    count = draw(st.integers(min_value=0, max_value=80))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    nan_fraction = draw(st.floats(min_value=0.0, max_value=0.4))
    rng = np.random.default_rng(seed)
    group_ids = rng.integers(0, num_groups, size=count)
    values = rng.normal(5.0, 3.0, size=count)
    values[rng.random(count) < nan_fraction] = np.nan
    return group_ids.astype(np.int64), values, num_groups


@st.composite
def probe_series(draw, prb_id=0):
    base = draw(st.floats(min_value=0.5, max_value=20.0))
    amplitude = draw(st.floats(min_value=0.0, max_value=5.0))
    nan_seed = draw(st.integers(min_value=0, max_value=2**31))
    nan_fraction = draw(st.floats(min_value=0.0, max_value=0.9))
    rng = np.random.default_rng(nan_seed)
    t = np.arange(BINS) / GRID.bins_per_day
    medians = (
        base
        + amplitude * (1 + np.sin(2 * np.pi * t))
        + rng.normal(0, 0.05, BINS)
    )
    medians[rng.random(BINS) < nan_fraction] = np.nan
    counts = np.full(BINS, 24)
    counts[rng.random(BINS) < 0.1] = 0
    return ProbeBinSeries(
        prb_id=prb_id,
        median_rtt_ms=medians,
        traceroute_counts=counts,
    )


@st.composite
def datasets(draw, min_probes=2, max_probes=6):
    count = draw(
        st.integers(min_value=min_probes, max_value=max_probes)
    )
    dataset = LastMileDataset(grid=GRID)
    for prb_id in range(count):
        dataset.add(draw(probe_series(prb_id=prb_id)))
    return dataset


class TestGroupedMedian:
    @settings(deadline=None, max_examples=100)
    @given(grouped_values())
    def test_bitwise_equal_to_numpy_median(self, data):
        """Including NaN propagation: a group with any NaN member
        must yield NaN, exactly as numpy.median does."""
        group_ids, values, num_groups = data
        ours = grouped_median(group_ids, values, num_groups)
        for group in range(num_groups):
            members = values[group_ids == group]
            if len(members) == 0:
                assert np.isnan(ours[group])
            else:
                expected = np.median(members)
                assert np.array_equal(
                    ours[group], expected, equal_nan=True
                )

    @settings(deadline=None, max_examples=50)
    @given(grouped_values(), st.randoms(use_true_random=False))
    def test_permutation_invariant(self, data, rnd):
        group_ids, values, num_groups = data
        order = list(range(len(values)))
        rnd.shuffle(order)
        order = np.array(order, dtype=np.int64)
        a = grouped_median(group_ids, values, num_groups)
        b = (
            grouped_median(
                group_ids[order], values[order], num_groups
            )
            if len(order)
            else grouped_median(group_ids, values, num_groups)
        )
        assert np.array_equal(a, b, equal_nan=True)


class TestStackProbeDelays:
    @settings(deadline=None, max_examples=40)
    @given(datasets())
    def test_matches_reference_any_nan_placement(self, dataset):
        """The series strategy sprinkles NaN anywhere — both stacks
        must agree bit for bit."""
        ids = dataset.probe_ids()
        a = REFERENCE.stack_probe_delays(dataset, ids, 3)
        b = VECTOR.stack_probe_delays(dataset, ids, 3)
        assert np.array_equal(a, b, equal_nan=True)

    @settings(deadline=None, max_examples=30)
    @given(datasets(), st.randoms(use_true_random=False))
    def test_probe_order_permutation(self, dataset, rnd):
        """Reordering the probe population permutes rows but cannot
        change the aggregated median signal."""
        ids = dataset.probe_ids()
        shuffled = list(ids)
        rnd.shuffle(shuffled)
        a = aggregate_population(dataset, ids, kernels="vector")
        b = aggregate_population(dataset, shuffled, kernels="vector")
        c = aggregate_population(dataset, shuffled, kernels="reference")
        assert np.array_equal(a.delay_ms, b.delay_ms, equal_nan=True)
        assert np.array_equal(b.delay_ms, c.delay_ms, equal_nan=True)

    @settings(deadline=None, max_examples=30)
    @given(
        probe_series(),
        st.floats(min_value=-5.0, max_value=50.0),
    )
    def test_additive_offset_cancels(self, series, shift):
        """A constant propagation-delay offset on a probe's medians
        must cancel in the queueing estimate, identically on both
        backends."""
        dataset = LastMileDataset(grid=GRID)
        dataset.add(series)
        shifted = LastMileDataset(grid=GRID)
        shifted.add(ProbeBinSeries(
            prb_id=series.prb_id,
            median_rtt_ms=series.median_rtt_ms + shift,
            traceroute_counts=series.traceroute_counts,
        ))
        for kernel in (REFERENCE, VECTOR):
            base = kernel.stack_probe_delays(
                dataset, [series.prb_id], 3
            )
            moved = kernel.stack_probe_delays(
                shifted, [series.prb_id], 3
            )
            assert np.allclose(
                base, moved, equal_nan=True, atol=1e-9
            )


class TestMarkersBatch:
    @settings(deadline=None, max_examples=30)
    @given(st.lists(probe_series(), min_size=0, max_size=5))
    def test_matches_per_signal_extract_markers(self, series_list):
        signals = [s.median_rtt_ms for s in series_list]
        batched = VECTOR.markers_batch(signals, GRID.bin_seconds)
        reference = [
            extract_markers(v, GRID.bin_seconds) for v in signals
        ]
        assert len(batched) == len(reference)
        for ours, expected in zip(batched, reference):
            if expected is None:
                assert ours is None
            else:
                assert ours == expected

    def test_mixed_lengths_and_degenerates(self):
        """One batch holding every degenerate class plus two healthy
        signals of different lengths."""
        t = np.arange(BINS) / GRID.bins_per_day
        healthy = 1.0 + np.sin(2 * np.pi * t)
        short_t = np.arange(BINS // 2) / GRID.bins_per_day
        shorter = 2.0 + np.cos(2 * np.pi * short_t)
        gappy = healthy.copy()
        gappy[: int(0.8 * BINS)] = np.nan
        signals = [
            healthy,
            np.full(BINS, np.nan),       # all-NaN
            np.full(BINS, 7.5),          # constant
            np.array([1.0]),             # too short
            np.array([]),                # empty
            gappy,                       # over the gap threshold
            shorter,                     # different length bucket
        ]
        batched = VECTOR.markers_batch(signals, GRID.bin_seconds)
        reference = [
            extract_markers(v, GRID.bin_seconds) for v in signals
        ]
        assert batched == reference
        assert batched[0] is not None
        assert batched[6] is not None
        assert all(m is None for m in batched[1:6])
