"""Differential tests for the flat survey pass primitives.

``repro.core.kernels.flat`` re-derives every stage of the survey —
the traceroute scan, per-probe bin medians, queueing-delay rows, and
per-AS population medians — from flat arrays.  The backend contract
says each primitive is *bit-identical* to its reference twin; this
suite proves it at the primitive level (the end-to-end guarantee
lives in ``test_differential.py``), including the dirty inputs the
reference scan's quality accounting was written for.
"""

import datetime as dt

import numpy as np
import pytest

from repro.core.aggregate import probe_queuing_delay
from repro.core.kernels.flat import (
    _CUBE_MAX_ELEMENTS,
    delay_matrix,
    dataset_matrices,
    flat_bin_medians,
    population_median_pass,
    scan_lastmile_flat,
)
from repro.core.lastmile import (
    MIN_TRACEROUTES_PER_BIN,
    estimate_probe_series,
    lastmile_samples,
)
from repro.core.series import ProbeBinSeries
from repro.quality import DataQualityReport
from repro.timebase import MeasurementPeriod, TimeGrid

from tests.core.test_lastmile import hop, traceroute, typical_traceroute
from tests.kernels.test_differential import (
    degenerate_dataset,
    synthetic_dataset,
)

DAY = MeasurementPeriod("flat-day", dt.datetime(2019, 9, 2), 1)
GRID = TimeGrid(DAY)


def dirty_results():
    """Every scan edge in one result list, in a deliberate order so
    quality-ledger ordering is exercised too."""
    results = [
        typical_traceroute(timestamp=i * 137.0, public_rtt=2.0 + i % 5)
        for i in range(40)
    ]
    results.append(typical_traceroute(timestamp=float("nan")))
    results.append(typical_traceroute(timestamp=-1.0))
    results.append(
        typical_traceroute(timestamp=GRID.num_bins * GRID.bin_seconds + 5.0)
    )
    # Exactly at the period edge: bin index clamps to the last bin.
    results.append(
        typical_traceroute(
            timestamp=float(GRID.num_bins * GRID.bin_seconds)
        )
    )
    # All public replies timed out -> NO_BOUNDARY degrade.
    results.append(traceroute([
        hop(1, "192.168.1.1", [0.4] * 3),
        hop(2, "60.0.0.1", [None] * 3),
    ], timestamp=90.0))
    # Public replies NaN / negative -> filtered, NO_BOUNDARY.
    results.append(traceroute([
        hop(1, "192.168.1.1", [0.4] * 3),
        hop(2, "60.0.0.1", [float("nan"), None, float("inf")]),
    ], timestamp=150.0))
    # Anchor-style: no private hop, public replies are the samples.
    results.append(traceroute([
        hop(1, "60.0.0.2", [5.0, 6.0, 7.0]),
    ], timestamp=300.0))
    # Asymmetric reply counts: 2 public x 3 private pairs.
    results.append(traceroute([
        hop(1, "10.0.0.1", [0.2, 0.3, 0.4]),
        hop(2, "60.0.0.3", [3.0, None, 4.0]),
    ], timestamp=420.0))
    # Private hop only -> no boundary at all.
    results.append(traceroute([
        hop(1, "192.168.1.1", [0.5] * 3),
    ], timestamp=500.0))
    return results


class TestFlatScan:
    def test_samples_match_reference_per_traceroute(self):
        """The flat scan's (bin, value) samples equal the reference
        ``lastmile_samples`` output, traceroute by traceroute."""
        results = dirty_results()
        scan = scan_lastmile_flat(results, GRID)

        expected_bins, expected_values = [], []
        duration = GRID.num_bins * GRID.bin_seconds
        pair_chunks, anchor_chunks = [], []
        for r in results:
            ts = r.timestamp
            if not np.isfinite(ts) or ts < 0 or ts > duration:
                continue
            samples = lastmile_samples(r)
            if not samples:
                continue
            b = int(GRID.bin_index(ts))
            has_private = any(
                h.responding_address
                and h.responding_address.startswith(("192.168", "10."))
                for h in r.hops
            )
            (pair_chunks if has_private else anchor_chunks).append(
                (b, samples)
            )
        # Flat layout: all pairwise chunks first, anchors after.
        for b, samples in pair_chunks + anchor_chunks:
            expected_bins.extend([b] * len(samples))
            expected_values.extend(samples)

        assert scan.processed == len(results)
        np.testing.assert_array_equal(
            scan.sample_bins, np.asarray(expected_bins, dtype=np.int64)
        )
        np.testing.assert_array_equal(
            scan.sample_values, np.asarray(expected_values)
        )

    def test_quality_ledger_matches_reference_estimation(self):
        results = dirty_results()
        ref_quality = DataQualityReport()
        vec_quality = DataQualityReport()
        a = estimate_probe_series(
            results, GRID, kernels="reference", quality=ref_quality
        )
        b = estimate_probe_series(
            results, GRID, kernels="vector", quality=vec_quality
        )
        assert vec_quality.to_dict() == ref_quality.to_dict()
        np.testing.assert_array_equal(
            a.median_rtt_ms, b.median_rtt_ms
        )
        np.testing.assert_array_equal(
            a.traceroute_counts, b.traceroute_counts
        )

    def test_empty_results_with_prb_id(self):
        scan = scan_lastmile_flat([], GRID, prb_id=77)
        assert scan.prb_id == 77
        assert scan.processed == 0
        assert scan.sample_bins.size == 0
        assert scan.sample_values.size == 0

    def test_empty_results_without_prb_id_raises_upstream(self):
        with pytest.raises(ValueError):
            estimate_probe_series([], GRID, kernels="vector")

    def test_counts_accumulate_into_caller_array(self):
        counts = np.zeros(GRID.num_bins, dtype=np.int64)
        scan_lastmile_flat(
            [typical_traceroute(timestamp=10.0)] * 3, GRID,
            counts=counts,
        )
        assert counts[0] == 3
        assert counts.sum() == 3


class TestFlatBinMedians:
    def test_matches_numpy_median_per_bin(self):
        rng = np.random.default_rng(11)
        n = 500
        bins = rng.integers(0, GRID.num_bins, n).astype(np.int64)
        values = rng.normal(5.0, 2.0, n)
        counts = rng.integers(0, 6, GRID.num_bins).astype(np.int64)
        medians, estimated = flat_bin_medians(
            bins, values, counts, GRID.num_bins,
            MIN_TRACEROUTES_PER_BIN,
        )
        expected = np.full(GRID.num_bins, np.nan)
        n_est = 0
        for b in range(GRID.num_bins):
            members = values[bins == b]
            if len(members) and counts[b] >= MIN_TRACEROUTES_PER_BIN:
                expected[b] = np.median(members)
                n_est += 1
        np.testing.assert_array_equal(medians, expected)
        assert estimated == n_est

    def test_empty_samples(self):
        medians, estimated = flat_bin_medians(
            np.zeros(0, dtype=np.int64), np.zeros(0),
            np.zeros(GRID.num_bins, dtype=np.int64),
            GRID.num_bins, MIN_TRACEROUTES_PER_BIN,
        )
        assert np.isnan(medians).all()
        assert estimated == 0


class TestDelayMatrix:
    def test_rows_equal_probe_queuing_delay(self):
        for dataset in (synthetic_dataset(seed=2), degenerate_dataset()):
            index, medians, counts = dataset_matrices(dataset)
            delays, dead = delay_matrix(
                medians, counts, MIN_TRACEROUTES_PER_BIN
            )
            for prb_id, row in index.items():
                series = dataset.series[prb_id]
                expected = probe_queuing_delay(
                    series, MIN_TRACEROUTES_PER_BIN
                )
                np.testing.assert_array_equal(delays[row], expected)
                assert dead[row] == bool(np.isnan(expected).all())

    def test_dataset_matrices_row_order_is_sorted_ids(self):
        dataset = synthetic_dataset(num_ases=3, seed=9)
        index, medians, counts = dataset_matrices(dataset)
        ids = dataset.probe_ids()
        assert list(index) == ids
        assert [index[p] for p in ids] == list(range(len(ids)))
        np.testing.assert_array_equal(
            medians[index[ids[0]]],
            dataset.series[ids[0]].median_rtt_ms,
        )


class TestPopulationMedianPass:
    @staticmethod
    def reference_medians(delays, group_rows):
        """Per-AS nanmedian exactly as ``aggregate_population``."""
        num_bins = delays.shape[1]
        medians = np.empty((len(group_rows), num_bins))
        contributing = np.empty(
            (len(group_rows), num_bins), dtype=np.int64
        )
        for g, rows in enumerate(group_rows):
            stacked = delays[np.asarray(rows, dtype=np.int64)]
            with np.errstate(all="ignore"):
                import warnings

                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    medians[g] = np.nanmedian(stacked, axis=0)
            contributing[g] = np.sum(~np.isnan(stacked), axis=0)
        return medians, contributing

    def _random_case(self, seed, num_probes=40, num_bins=48):
        rng = np.random.default_rng(seed)
        delays = rng.normal(2.0, 1.0, (num_probes, num_bins))
        delays[rng.random((num_probes, num_bins)) < 0.3] = np.nan
        delays[0] = np.nan  # one fully-dead probe row
        groups = []
        start = 0
        while start < num_probes:
            size = int(rng.integers(1, 7))
            groups.append(
                np.arange(start, min(start + size, num_probes),
                          dtype=np.int64)
            )
            start += size
        return delays, groups

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_bit_identical_to_nanmedian(self, seed):
        delays, groups = self._random_case(seed)
        got_m, got_c = population_median_pass(delays, groups)
        exp_m, exp_c = self.reference_medians(delays, groups)
        np.testing.assert_array_equal(got_m, exp_m)
        np.testing.assert_array_equal(got_c, exp_c)

    def test_keyed_fallback_bit_identical(self, monkeypatch):
        """Above the cube cap the keyed grouped-median fallback must
        produce the same bits."""
        import repro.core.kernels.flat as flat_mod

        delays, groups = self._random_case(5)
        cube_m, cube_c = population_median_pass(delays, groups)
        monkeypatch.setattr(flat_mod, "_CUBE_MAX_ELEMENTS", 0)
        keyed_m, keyed_c = population_median_pass(delays, groups)
        np.testing.assert_array_equal(keyed_m, cube_m)
        np.testing.assert_array_equal(keyed_c, cube_c)
        exp_m, exp_c = self.reference_medians(delays, groups)
        np.testing.assert_array_equal(keyed_m, exp_m)
        np.testing.assert_array_equal(keyed_c, exp_c)

    def test_duplicate_rows_stack_twice(self):
        """``aggregate_population`` stacks a probe requested twice
        twice; the flat pass must too."""
        delays, _ = self._random_case(6, num_probes=4)
        rows = np.array([1, 1, 2], dtype=np.int64)
        got_m, got_c = population_median_pass(delays, [rows])
        exp_m, exp_c = self.reference_medians(delays, [rows])
        np.testing.assert_array_equal(got_m, exp_m)
        np.testing.assert_array_equal(got_c, exp_c)

    def test_no_groups(self):
        delays = np.zeros((3, 8))
        medians, contributing = population_median_pass(delays, [])
        assert medians.shape == (0, 8)
        assert contributing.shape == (0, 8)

    def test_all_nan_group_yields_nan(self):
        delays = np.full((2, 6), np.nan)
        medians, contributing = population_median_pass(
            delays, [np.array([0, 1], dtype=np.int64)]
        )
        assert np.isnan(medians).all()
        assert (contributing == 0).all()

    def test_cube_cap_is_sane(self):
        assert _CUBE_MAX_ELEMENTS >= 1_000_000
