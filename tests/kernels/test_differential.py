"""Differential equivalence of the reference and vector kernels.

The backend contract (``repro.core.kernels``): both backends produce
*numerically identical* survey output — bit-for-bit under
``survey_to_dict`` — on every input.  This harness proves it over
seeded worlds, fault-injected datasets, and degenerate inputs
(all-NaN bins, single-probe ASes, empty periods), on the serial path
and through the sharded executor.  This file also runs in the CI
chaos leg under ``-W error::RuntimeWarning``: the vector kernels must
stay warning-silent on degenerate data, like the reference loops.
"""

import datetime as dt
import json

import numpy as np
import pytest

from repro.atlas import ProbeMeta
from repro.core import (
    LastMileDataset,
    ProbeBinSeries,
    aggregate_population,
    classify_dataset,
    estimate_probe_series,
)
from repro.core.kernels import KERNELS_ENV
from repro.faults import BinLoss, FaultLog, NaNBursts, PoisonAS
from repro.io import survey_to_dict
from repro.parallel import WORKERS_ENV
from repro.quality import DataQualityReport
from repro.scenarios import generate_specs, run_survey_period
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("2019-09", dt.datetime(2019, 9, 2), 4)
GRID = TimeGrid(PERIOD)


def canonical_bytes(result):
    """The serialized survey as bytes — the equality the suite asserts."""
    return json.dumps(
        survey_to_dict(result), sort_keys=True
    ).encode("ascii")


@pytest.fixture(autouse=True)
def _pin_environment(monkeypatch):
    """Neutralize the CI matrix knobs: every run in this file selects
    its backend and execution mode explicitly."""
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.delenv(KERNELS_ENV, raising=False)


@pytest.fixture(scope="module")
def specs():
    return generate_specs(num_ases=10, num_countries=6, seed=5)


def synthetic_dataset(num_ases=8, probes_per_asn=4, seed=0):
    rng = np.random.default_rng(seed)
    dataset = LastMileDataset(grid=GRID)
    t = np.arange(GRID.num_bins) / GRID.bins_per_day
    prb_id = 1
    for asn in range(100, 100 + num_ases):
        amplitude = rng.uniform(0.0, 2.5)
        for _ in range(probes_per_asn):
            medians = (
                rng.uniform(1.0, 3.0)
                + rng.normal(0, 0.05, GRID.num_bins)
                + amplitude * (1 + np.sin(2 * np.pi * t))
            )
            dataset.add(
                ProbeBinSeries(
                    prb_id=prb_id,
                    median_rtt_ms=medians,
                    traceroute_counts=np.full(GRID.num_bins, 24),
                ),
                meta=ProbeMeta(
                    prb_id=prb_id, asn=asn, is_anchor=False,
                    public_address="20.0.0.1",
                ),
            )
            prb_id += 1
    return dataset


def degenerate_dataset():
    """Every degenerate corner in one dataset: an AS of all-NaN
    probes, a single-probe AS, a constant (flat) AS, an AS with one
    dead probe, and a probe whose counts never reach the sanity
    threshold."""
    dataset = LastMileDataset(grid=GRID)
    bins = GRID.num_bins
    t = np.arange(bins) / GRID.bins_per_day

    def add(prb_id, asn, medians, counts):
        dataset.add(
            ProbeBinSeries(
                prb_id=prb_id, median_rtt_ms=medians,
                traceroute_counts=counts,
            ),
            meta=ProbeMeta(
                prb_id=prb_id, asn=asn, is_anchor=False,
                public_address="20.0.0.1",
            ),
        )

    full = np.full(bins, 24)
    # AS 200: every probe all-NaN (dead population -> degenerate).
    for prb_id in (1, 2, 3):
        add(prb_id, 200, np.full(bins, np.nan), full)
    # AS 201: single probe with a clean daily signal.
    add(4, 201, 2.0 + 1.5 * (1 + np.sin(2 * np.pi * t)), full)
    # AS 202: perfectly constant signal (flat -> classified None).
    for prb_id in (5, 6, 7):
        add(prb_id, 202, np.full(bins, 3.25), full)
    # AS 203: one healthy probe, one all-NaN, one below the
    # traceroute sanity threshold everywhere.
    add(8, 203, 1.0 + np.sin(2 * np.pi * t), full)
    add(9, 203, np.full(bins, np.nan), full)
    add(10, 203, np.full(bins, 2.0), np.full(bins, 2))
    # AS 204: NaN mixed *within* bins-with-samples is impossible at
    # this layer, but half-NaN series exercise the nanmedian path.
    for prb_id in (11, 12, 13):
        medians = 2.0 + 0.5 * np.sin(2 * np.pi * t)
        medians[prb_id::3] = np.nan
        add(prb_id, 204, medians, full)
    return dataset


def classify_both(dataset, **kwargs):
    reference = classify_dataset(
        dataset, PERIOD, kernels="reference", **kwargs
    )
    vector = classify_dataset(
        dataset, PERIOD, kernels="vector", **kwargs
    )
    return reference, vector


class TestSeededWorldEquivalence:
    def test_serial_survey_identical(self, specs):
        reference, _ = run_survey_period(
            specs, PERIOD, seed=7, kernels="reference"
        )
        vector, _ = run_survey_period(
            specs, PERIOD, seed=7, kernels="vector"
        )
        assert canonical_bytes(vector) == canonical_bytes(reference)
        assert len(reference.reports) == 10

    def test_sharded_vector_matches_serial_reference(self, specs):
        reference, _ = run_survey_period(
            specs, PERIOD, seed=7, kernels="reference"
        )
        vector, _ = run_survey_period(
            specs, PERIOD, seed=7, workers=3, kernels="vector"
        )
        assert canonical_bytes(vector) == canonical_bytes(reference)

    def test_env_var_selects_vector(self, specs, monkeypatch):
        """REPRO_KERNELS=vector with no explicit argument must route
        through the vector backend and still match."""
        reference, _ = run_survey_period(
            specs, PERIOD, seed=7, kernels="reference"
        )
        monkeypatch.setenv(KERNELS_ENV, "vector")
        vector, _ = run_survey_period(specs, PERIOD, seed=7)
        assert canonical_bytes(vector) == canonical_bytes(reference)


class TestFaultedEquivalence:
    FAULTS = staticmethod(lambda: [
        BinLoss(rate=0.05),
        NaNBursts(probe_rate=0.3),
        PoisonAS(count=1),
    ])

    def test_faulted_survey_identical(self, specs):
        ref_log, vec_log = FaultLog(), FaultLog()
        reference, _ = run_survey_period(
            specs, PERIOD, seed=7, kernels="reference",
            dataset_faults=self.FAULTS(), fault_seed=3,
            fault_log=ref_log,
        )
        vector, _ = run_survey_period(
            specs, PERIOD, seed=7, kernels="vector",
            dataset_faults=self.FAULTS(), fault_seed=3,
            fault_log=vec_log,
        )
        assert canonical_bytes(vector) == canonical_bytes(reference)
        assert vec_log.counts == ref_log.counts
        assert reference.failures, "PoisonAS should fail one AS"
        assert set(vector.failures) == set(reference.failures)

    def test_faulted_sharded_vector_identical(self, specs):
        reference, _ = run_survey_period(
            specs, PERIOD, seed=7, kernels="reference",
            dataset_faults=self.FAULTS(), fault_seed=3,
        )
        vector, _ = run_survey_period(
            specs, PERIOD, seed=7, workers=4, kernels="vector",
            dataset_faults=self.FAULTS(), fault_seed=3,
        )
        assert canonical_bytes(vector) == canonical_bytes(reference)


class TestDegenerateEquivalence:
    def test_degenerate_dataset_identical(self):
        reference, vector = classify_both(degenerate_dataset())
        assert canonical_bytes(vector) == canonical_bytes(reference)
        # The flat and dead ASes really exercised the degenerate path.
        assert reference.reports[202].severity.value == "none"
        assert reference.reports[200].severity.value == "none"

    def test_single_probe_asn_identical(self):
        reference, vector = classify_both(
            degenerate_dataset(), min_probes=1
        )
        assert canonical_bytes(vector) == canonical_bytes(reference)
        assert 201 in reference.reports

    def test_empty_period_identical(self):
        """A dataset with no probes at all: both backends return an
        empty survey, not an error."""
        empty = LastMileDataset(grid=GRID)
        reference, vector = classify_both(empty)
        assert canonical_bytes(vector) == canonical_bytes(reference)
        assert reference.reports == {}
        assert reference.failures == {}

    def test_quality_ledgers_identical(self):
        ref_quality = DataQualityReport()
        vec_quality = DataQualityReport()
        classify_dataset(
            degenerate_dataset(), PERIOD, kernels="reference",
            quality=ref_quality,
        )
        classify_dataset(
            degenerate_dataset(), PERIOD, kernels="vector",
            quality=vec_quality,
        )
        assert vec_quality.to_dict() == ref_quality.to_dict()

    def test_kept_signals_identical(self):
        reference, vector = classify_both(
            synthetic_dataset(seed=4), keep_signals=True
        )
        assert set(vector.signals) == set(reference.signals)
        for asn, signal in reference.signals.items():
            assert np.array_equal(
                vector.signals[asn].delay_ms, signal.delay_ms,
                equal_nan=True,
            )
            assert np.array_equal(
                vector.signals[asn].contributing, signal.contributing
            )


class TestStageLevelEquivalence:
    def test_aggregate_identical_on_degenerates(self):
        dataset = degenerate_dataset()
        for probe_ids in ([1, 2, 3], [4], [8, 9, 10], [11, 12, 13]):
            a = aggregate_population(
                dataset, probe_ids, kernels="reference"
            )
            b = aggregate_population(
                dataset, probe_ids, kernels="vector"
            )
            assert np.array_equal(
                a.delay_ms, b.delay_ms, equal_nan=True
            )
            assert np.array_equal(a.contributing, b.contributing)

    def test_estimation_identical_on_dirty_traceroutes(self):
        from tests.core.test_lastmile import (
            hop,
            traceroute,
            typical_traceroute,
        )

        grid = TimeGrid(
            MeasurementPeriod("d", dt.datetime(2019, 9, 2), 1)
        )
        results = [
            typical_traceroute(
                timestamp=i * 200.0, public_rtt=3.0 + (i % 7)
            )
            for i in range(120)
        ]
        # NaN timestamp, out-of-period clock, all-NaN public hop.
        results.append(typical_traceroute(timestamp=float("nan")))
        results.append(typical_traceroute(timestamp=-50.0))
        results.append(traceroute([
            hop(1, "192.168.1.1", [0.5] * 3),
            hop(2, "60.0.0.1", [float("nan")] * 3),
        ], timestamp=400.0))

        ref_quality = DataQualityReport()
        vec_quality = DataQualityReport()
        a = estimate_probe_series(
            results, grid, kernels="reference", quality=ref_quality
        )
        b = estimate_probe_series(
            results, grid, kernels="vector", quality=vec_quality
        )
        assert np.array_equal(
            a.median_rtt_ms, b.median_rtt_ms, equal_nan=True
        )
        assert np.array_equal(
            a.traceroute_counts, b.traceroute_counts
        )
        assert vec_quality.to_dict() == ref_quality.to_dict()
