"""Backend selection: resolution order, registry, and observability."""

import datetime as dt

import numpy as np
import pytest

from repro.core.kernels import (
    DEFAULT_KERNELS,
    KERNELS_ENV,
    available_kernels,
    record_kernel_op,
    resolve_kernels,
)
from repro.core.kernels.reference import REFERENCE, ReferenceKernels
from repro.core.kernels.vector import VECTOR, VectorKernels
from repro.obs import observed
from repro.parallel.worker import DatasetShardTask, SurveyShardTask
from repro.scenarios import generate_specs
from repro.timebase import MeasurementPeriod


@pytest.fixture(autouse=True)
def _clean_env(monkeypatch):
    monkeypatch.delenv(KERNELS_ENV, raising=False)


class TestResolveKernels:
    def test_default_is_reference(self):
        kern = resolve_kernels()
        assert kern is REFERENCE
        assert kern.name == DEFAULT_KERNELS == "reference"

    def test_explicit_names(self):
        assert resolve_kernels("reference") is REFERENCE
        assert resolve_kernels("vector") is VECTOR

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "vector")
        assert resolve_kernels() is VECTOR
        monkeypatch.setenv(KERNELS_ENV, "  REFERENCE ")
        assert resolve_kernels() is REFERENCE
        monkeypatch.setenv(KERNELS_ENV, "")
        assert resolve_kernels() is REFERENCE

    def test_explicit_arg_beats_env(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "vector")
        assert resolve_kernels("reference") is REFERENCE

    def test_backend_object_passes_through(self, monkeypatch):
        monkeypatch.setenv(KERNELS_ENV, "reference")
        custom = VectorKernels()
        assert resolve_kernels(custom) is custom
        assert resolve_kernels(VECTOR) is VECTOR

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError) as err:
            resolve_kernels("turbo")
        message = str(err.value)
        assert "turbo" in message
        for name in available_kernels():
            assert name in message

    def test_available_kernels_all_resolve(self):
        assert available_kernels() == ("reference", "vector")
        for name in available_kernels():
            kern = resolve_kernels(name)
            assert kern.name == name


class TestBackendCapabilities:
    def test_reference_is_unbatched(self):
        assert ReferenceKernels.batched is False
        assert getattr(REFERENCE, "batched", False) is False

    def test_vector_is_batched(self):
        assert VectorKernels.batched is True
        assert getattr(VECTOR, "batched", False) is True


class TestShardTaskCarriesBackend:
    """Shard invariance: the parent resolves once and ships the name,
    so worker processes never consult their own environment."""

    def test_survey_task_field_default(self):
        specs = generate_specs(num_ases=2, num_countries=2, seed=1)
        period = MeasurementPeriod("t", dt.datetime(2019, 9, 2), 1)
        task = SurveyShardTask(
            index=0, specs=specs, period=period, lockdown=False,
            seed=1, groups={},
        )
        assert task.kernels == DEFAULT_KERNELS

    def test_survey_task_accepts_backend_name(self):
        specs = generate_specs(num_ases=2, num_countries=2, seed=1)
        period = MeasurementPeriod("t", dt.datetime(2019, 9, 2), 1)
        task = SurveyShardTask(
            index=0, specs=specs, period=period, lockdown=False,
            seed=1, groups={}, kernels="vector",
        )
        assert resolve_kernels(task.kernels) is VECTOR

    def test_dataset_task_field_default(self):
        assert (
            DatasetShardTask.__dataclass_fields__["kernels"].default
            == DEFAULT_KERNELS
        )


class TestKernelOpCounter:
    def test_counter_emitted_per_backend_and_op(self):
        with observed() as obs:
            record_kernel_op("vector", "bin-medians")
            record_kernel_op("vector", "bin-medians", 4)
            record_kernel_op("reference", "stack-delays")
        counter = obs.metrics.get("kernel_ops_total")
        assert counter.value(kernel="vector", op="bin-medians") == 5
        assert counter.value(kernel="reference", op="stack-delays") == 1

    def test_noop_without_observer(self):
        # Must be a silent no-op under the default NOOP observer.
        record_kernel_op("vector", "bin-medians")

    def test_pipeline_emits_kernel_ops(self):
        from repro.core import aggregate_population, LastMileDataset
        from repro.core.series import ProbeBinSeries
        from repro.timebase import TimeGrid

        period = MeasurementPeriod("t", dt.datetime(2019, 9, 2), 2)
        grid = TimeGrid(period)
        dataset = LastMileDataset(grid=grid)
        dataset.add(ProbeBinSeries(
            prb_id=1,
            median_rtt_ms=np.full(grid.num_bins, 2.0),
            traceroute_counts=np.full(grid.num_bins, 24),
        ))
        with observed() as obs:
            aggregate_population(dataset, [1], kernels="vector")
        counter = obs.metrics.get("kernel_ops_total")
        assert counter.value(kernel="vector", op="stack-delays") == 1
