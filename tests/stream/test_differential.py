"""Streaming-vs-batch differential harness — the equivalence tentpole.

The contract (``repro.stream.engine``): with exact medians, a
finalized streaming survey is **bit-identical** — under
``survey_to_dict`` — to the batch pipeline over the same data, for
any arrival order within a bin, any micro-batch split, on either
kernel backend.  This file proves it by replaying every seeded world
the kernel differential suite pins the backends on: the 10-AS survey
world, the synthetic sinusoid dataset, the degenerate corners, and
the fault-injected variants — in order, shuffled within bins,
micro-batched with mid-stream partial emits, and in approximate
mode where decomposed replays stay exact by construction.

Like ``tests/kernels/test_differential.py``, this file runs in the
CI chaos leg under ``-W error::RuntimeWarning``.
"""

import pytest

from repro.core import LastMileDataset
from repro.quality import DropReason
from tests.kernels.test_differential import (
    degenerate_dataset,
    synthetic_dataset,
)
from tests.stream.conftest import (
    GRID,
    batch_survey,
    canonical_bytes,
    faulted_dataset,
    quality_counts,
    seeded_dataset,
    stream_replay,
)


@pytest.fixture(scope="module")
def seeded(specs):
    return seeded_dataset(specs)


@pytest.fixture(scope="module")
def batch_reference(seeded):
    dataset, table = seeded
    return batch_survey(dataset, table=table, kernels="reference")


@pytest.fixture(scope="module")
def batch_vector(seeded):
    dataset, table = seeded
    return batch_survey(dataset, table=table, kernels="vector")


class TestSeededWorldReplay:
    def test_in_order_replay_bit_identical(self, seeded, batch_reference):
        dataset, table = seeded
        batch, _ = batch_reference
        engine, stream = stream_replay(dataset, table=table)
        assert canonical_bytes(stream) == canonical_bytes(batch)
        assert len(stream.reports) == 10
        assert quality_counts(stream.quality) == quality_counts(
            batch.quality
        )

    def test_shuffled_within_bin_invariant(self, seeded, batch_reference):
        """Arrival order inside a bin is measurement noise — the
        survey must not see it."""
        dataset, table = seeded
        batch, _ = batch_reference
        _, stream = stream_replay(dataset, table=table, shuffle_seed=11)
        assert canonical_bytes(stream) == canonical_bytes(batch)

    def test_micro_batched_with_partial_emits(
        self, seeded, batch_reference
    ):
        """Micro-batched ingest with periodic ``emit_partial`` calls
        (exercising the incremental cache mid-stream) must finalize
        to the same bytes as one uninterrupted batch run."""
        dataset, table = seeded
        batch, _ = batch_reference
        engine, stream = stream_replay(
            dataset, table=table, shuffle_seed=23,
            batch_size=509, emit_every=3,
        )
        assert canonical_bytes(stream) == canonical_bytes(batch)
        status = engine.status()
        assert status["finalized"]
        assert status["closed_through"] == GRID.num_bins - 1
        assert status["open_bins"] == 0

    def test_vector_backend_replay(
        self, seeded, batch_reference, batch_vector
    ):
        """The backend seam applies to streaming runs too: a vector
        replay matches the vector batch, which matches reference."""
        dataset, table = seeded
        reference, _ = batch_reference
        vector, _ = batch_vector
        _, stream = stream_replay(
            dataset, table=table, kernels="vector", shuffle_seed=11
        )
        assert canonical_bytes(stream) == canonical_bytes(vector)
        assert canonical_bytes(vector) == canonical_bytes(reference)


class TestFaultedWorldReplay:
    @pytest.fixture(scope="class")
    def faulted(self, specs):
        return faulted_dataset(specs)

    def test_faulted_replay_identical_both_backends(self, faulted):
        """Bin loss, NaN bursts and poisoned ASes: failure accounting
        and quality counts must survive the streaming route intact,
        on both backends."""
        dataset, table, _log = faulted
        batch_ref, _ = batch_survey(
            dataset, table=table, kernels="reference"
        )
        batch_vec, _ = batch_survey(
            dataset, table=table, kernels="vector"
        )
        _, stream_ref = stream_replay(
            dataset, table=table, kernels="reference",
            shuffle_seed=31, batch_size=997,
        )
        _, stream_vec = stream_replay(
            dataset, table=table, kernels="vector"
        )
        want = canonical_bytes(batch_ref)
        assert canonical_bytes(stream_ref) == want
        assert canonical_bytes(batch_vec) == want
        assert canonical_bytes(stream_vec) == want
        assert batch_ref.failures, "PoisonAS should fail ASes"
        assert set(stream_ref.failures) == set(batch_ref.failures)
        assert quality_counts(stream_ref.quality) == quality_counts(
            batch_ref.quality
        )


class TestCuratedDatasetReplay:
    def test_synthetic_dataset_replay(self):
        dataset = synthetic_dataset()
        batch, _ = batch_survey(dataset)
        _, stream = stream_replay(dataset, shuffle_seed=7)
        assert canonical_bytes(stream) == canonical_bytes(batch)

    def test_degenerate_dataset_replay_both_backends(self):
        """All-NaN populations, flat signals, dead probes, and a
        probe forever under the sanity threshold."""
        surveys = []
        for kernels in ("reference", "vector"):
            batch, _ = batch_survey(degenerate_dataset(), kernels=kernels)
            engine, stream = stream_replay(
                degenerate_dataset(), kernels=kernels, shuffle_seed=3
            )
            assert canonical_bytes(stream) == canonical_bytes(batch)
            # The under-threshold probe's bins closed sparse — booked
            # on the engine ledger, invisible to the survey ledger.
            assert engine.sparse_bins == GRID.num_bins
            assert engine.engine_quality.degraded_count(
                DropReason.SPARSE_BIN
            ) == engine.sparse_bins
            assert engine.stale_records == 0
            surveys.append(canonical_bytes(stream))
        assert surveys[0] == surveys[1]

    def test_single_probe_asn_replay(self):
        batch, _ = batch_survey(degenerate_dataset(), min_probes=1)
        _, stream = stream_replay(
            degenerate_dataset(), min_probes=1
        )
        assert canonical_bytes(stream) == canonical_bytes(batch)
        assert 201 in stream.reports

    def test_empty_period_replay(self):
        empty = LastMileDataset(grid=GRID)
        batch, _ = batch_survey(empty)
        engine, stream = stream_replay(empty)
        assert canonical_bytes(stream) == canonical_bytes(batch)
        assert stream.reports == {}
        assert engine.records_ingested == 0


class TestApproximateModeReplay:
    def test_p2_exact_on_decomposed_replays(self, seeded, batch_reference):
        """``dataset_to_records`` emits each bin as ``c`` copies of
        its median, and P² over identical samples collapses to that
        value — so approximate replays of *decomposed* datasets are
        still bit-identical.  (Genuine approximation error, on mixed
        samples within a bin, is pinned with its tolerance in
        ``test_engine.py`` / ``test_median_properties.py``.)"""
        dataset, table = seeded
        batch, _ = batch_reference
        engine, stream = stream_replay(
            dataset, table=table, approximate=True, shuffle_seed=5
        )
        assert engine.status()["mode"] == "p2"
        assert canonical_bytes(stream) == canonical_bytes(batch)
