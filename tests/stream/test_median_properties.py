"""Property-based guarantees of the online median estimators.

Three contracts back the streaming engine's equivalence claim:

* :class:`ExactMedian` equals ``numpy.median`` on **every prefix** of
  the stream, is invariant under within-bin permutation, and handles
  NaN exactly like the batch kernels (propagate, never skip);
* finalizing a bin through the engine's kernel call
  (``bin_medians`` over the buffered samples) equals the estimator's
  own value — the two routes to a closed bin's median agree;
* :class:`P2Median` is exact through its first five samples, always
  lies within the observed sample range, is permanently poisoned by
  NaN, and tracks the exact median within the documented tolerance
  (≤ 1 standard deviation on unimodal data — empirically ≲ 0.4 sd;
  see DESIGN.md §13) while holding five markers regardless of n.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels.reference import REFERENCE
from repro.stream import ExactMedian, P2Median

finite_samples = st.lists(
    st.floats(min_value=0.1, max_value=1e6, allow_nan=False,
              allow_infinity=False),
    min_size=1, max_size=60,
)


class TestExactMedian:
    @given(finite_samples)
    def test_matches_numpy_on_every_prefix(self, samples):
        estimator = ExactMedian()
        for i, sample in enumerate(samples, start=1):
            estimator.add(sample)
            assert estimator.n == i
            assert estimator.value() == float(np.median(samples[:i]))

    @given(finite_samples, st.integers(min_value=0, max_value=2**31))
    def test_permutation_invariant(self, samples, seed):
        rng = np.random.default_rng(seed)
        shuffled = [samples[i] for i in rng.permutation(len(samples))]
        a, b = ExactMedian(), ExactMedian()
        a.extend(samples)
        b.extend(shuffled)
        assert a.value() == b.value()

    @given(
        finite_samples,
        st.integers(min_value=0, max_value=59),
    )
    def test_nan_poisons_like_numpy(self, samples, position):
        """A NaN sample anywhere makes the median NaN — the kernels'
        behaviour (``numpy.median``, not ``nanmedian``)."""
        samples = list(samples)
        samples.insert(min(position, len(samples)), float("nan"))
        estimator = ExactMedian()
        estimator.extend(samples)
        assert np.isnan(estimator.value())
        assert np.isnan(np.median(samples))

    def test_empty_is_nan(self):
        assert np.isnan(ExactMedian().value())

    @given(finite_samples)
    def test_kernel_finalization_agrees(self, samples):
        """The engine's two routes to a closed bin — the estimator's
        value and ``bin_medians`` over its buffer — are one number."""
        estimator = ExactMedian()
        estimator.extend(samples)
        count = max(len(samples), 3)  # past the sanity threshold
        medians, _ = REFERENCE.bin_medians(
            [0], [estimator.samples()],
            np.array([count], dtype=np.int64), 1, 3,
        )
        assert float(medians[0]) == estimator.value()


class TestP2Median:
    @given(st.lists(
        st.floats(min_value=0.1, max_value=1e6, allow_nan=False,
                  allow_infinity=False),
        min_size=1, max_size=5,
    ))
    def test_exact_through_five_samples(self, samples):
        estimator = P2Median()
        estimator.extend(samples)
        assert estimator.value() == float(np.median(samples))

    @given(finite_samples)
    def test_estimate_within_sample_range(self, samples):
        estimator = P2Median()
        estimator.extend(samples)
        assert min(samples) <= estimator.value() <= max(samples)

    @given(finite_samples, finite_samples)
    def test_nan_poisons_permanently(self, before, after):
        estimator = P2Median()
        estimator.extend(before)
        estimator.add(float("nan"))
        estimator.extend(after)
        assert np.isnan(estimator.value())
        assert estimator.n == len(before) + len(after) + 1

    @settings(max_examples=200)
    @given(
        st.integers(min_value=20, max_value=400),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_tracks_median_within_one_sd_on_unimodal_data(
        self, n, seed
    ):
        """The documented P² tolerance: within one standard deviation
        of the exact median on unimodal data (observed worst case is
        ≈ 0.4 sd; the bound leaves 2× headroom against unlucky
        draws)."""
        sd = 2.0
        rng = np.random.default_rng(seed)
        data = rng.normal(10.0, sd, n)
        estimator = P2Median()
        estimator.extend(data)
        assert abs(estimator.value() - float(np.median(data))) <= sd

    def test_constant_memory_markers(self):
        """Past five samples the estimator holds exactly five markers
        — no buffer growth with n."""
        estimator = P2Median()
        rng = np.random.default_rng(0)
        estimator.extend(rng.normal(5.0, 1.0, 10_000))
        assert estimator.n == 10_000
        assert len(estimator._q) == 5
        assert len(estimator._initial) == 5
