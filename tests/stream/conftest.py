"""Shared fixtures for the streaming-engine differential harness.

The worlds replayed here are the *same* seeded worlds the kernel
differential suite (``tests/kernels``) pins the backends on: the
10-AS generated survey world, the synthetic sinusoid dataset, and
the degenerate-corner dataset — plus their fault-injected variants.
Every helper funnels through :func:`repro.stream.dataset_to_records`
so a batch dataset and its record-stream replay are comparable
byte-for-byte.
"""

import datetime as dt
import json

import numpy as np
import pytest

from repro.core import classify_dataset
from repro.core.kernels import KERNELS_ENV
from repro.faults import BinLoss, NaNBursts, PoisonAS, inject_dataset
from repro.io import survey_to_dict
from repro.parallel import WORKERS_ENV
from repro.quality import DataQualityReport
from repro.scenarios import build_survey_world, generate_specs
from repro.stream import StreamingSurvey, dataset_to_records, micro_batches
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("2019-09", dt.datetime(2019, 9, 2), 4)
GRID = TimeGrid(PERIOD)
WORLD_SEED = 5
SURVEY_SEED = 7
FAULT_SEED = 3


def canonical_bytes(result):
    """The serialized survey as bytes — the equality the suite asserts."""
    return json.dumps(
        survey_to_dict(result), sort_keys=True
    ).encode("ascii")


def quality_counts(report):
    """Counts-only view of a quality ledger (quarantine samples are
    capped and order-sensitive; counts are the exact contract)."""
    return {
        name: {
            "ingested": entry.ingested,
            "dropped": {
                reason.value: count
                for reason, count in entry.dropped.items() if count
            },
            "degraded": {
                reason.value: count
                for reason, count in entry.degraded.items() if count
            },
        }
        for name, entry in report.stages.items()
    }


def make_faults():
    """The fault cocktail the kernel suite uses, one extra poison."""
    return [
        BinLoss(rate=0.05),
        NaNBursts(probe_rate=0.2),
        PoisonAS(count=2),
    ]


def seeded_dataset(specs, period=PERIOD):
    """The 10-AS survey world of ``tests/kernels``, binned."""
    world, platform = build_survey_world(
        specs, lockdown=False, seed=SURVEY_SEED,
        period_name=period.name,
    )
    dataset = platform.run_period_binned(period)
    return dataset, world.table


def faulted_dataset(specs, period=PERIOD):
    """A fresh seeded dataset run through the fault injectors."""
    dataset, table = seeded_dataset(specs, period)
    dataset, log = inject_dataset(
        dataset, make_faults(), seed=FAULT_SEED
    )
    return dataset, table, log


def batch_survey(dataset, table=None, kernels="reference", **kwargs):
    """The batch pipeline's verdict plus its quality ledger."""
    quality = DataQualityReport()
    result = classify_dataset(
        dataset, PERIOD, table=table, kernels=kernels,
        quality=quality, **kwargs,
    )
    return result, quality


def stream_replay(
    dataset,
    table=None,
    kernels="reference",
    shuffle_seed=None,
    batch_size=None,
    emit_every=0,
    approximate=False,
    **kwargs,
):
    """Replay a batch dataset through the streaming engine.

    ``shuffle_seed`` permutes observations within each bin;
    ``batch_size`` feeds the stream in micro-batches; ``emit_every``
    snapshots a partial survey every N batches (exercising the
    incremental-reclassification cache mid-stream).  Returns
    ``(engine, finalized_result)``.
    """
    rng = (
        np.random.default_rng(shuffle_seed)
        if shuffle_seed is not None else None
    )
    records = dataset_to_records(dataset, rng=rng)
    engine = StreamingSurvey(
        PERIOD, table=table, kernels=kernels,
        approximate=approximate, **kwargs,
    )
    if batch_size is None:
        engine.ingest_many(records)
    else:
        for index, batch in enumerate(
            micro_batches(records, batch_size), start=1
        ):
            engine.ingest_many(batch)
            if emit_every and index % emit_every == 0:
                engine.emit_partial()
    return engine, engine.finalize()


@pytest.fixture(autouse=True)
def _pin_environment(monkeypatch):
    """Neutralize the CI matrix knobs: every run in this package
    selects its backend and execution mode explicitly."""
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.delenv(KERNELS_ENV, raising=False)


@pytest.fixture(scope="session")
def specs():
    return generate_specs(num_ases=10, num_countries=6, seed=WORLD_SEED)
