"""Live-ingest lifecycle: streamed surveys in the archive.

Covers the store tier's side of streaming: revisioned partial
commits through the commit journal, resuming a live period across
process restarts, serving the in-progress period through the
generation-watching cache, and the acceptance criterion — a
record-by-record streamed survey interrupted by a simulated crash
recovers to a consistent state and finishes to the *same bytes* as
the uninterrupted run.
"""

import datetime as dt

import pytest

from repro.faults import CrashingIO, CrashPlan, RecordingIO, SimulatedCrash
from repro.io import survey_to_dict
from repro.scenarios import generate_specs
from repro.serve import SurveyAPI
from repro.store import (
    EXIT_CLEAN,
    PeriodExistsError,
    SurveyArchive,
    payload_checksum,
    run_fsck,
)
from repro.stream import StreamingSurvey, dataset_to_records
from tests.store.conftest import make_ranking, make_survey
from tests.stream.conftest import PERIOD, seeded_dataset

LIVE = "2019-06"


def june(classes=None):
    from repro.core import Severity
    return make_survey(LIVE, dt.datetime(2019, 6, 1), classes or {
        100: Severity.SEVERE, 200: Severity.LOW,
    })


class TestLiveLifecycle:
    def test_commit_partial_revisions(self, tmp_path):
        archive = SurveyArchive(tmp_path / "arc")
        writer = archive.begin_live_period(LIVE)
        first = june()
        assert writer.commit_partial(first) == 1
        meta = archive.period_meta(LIVE)
        assert meta["repr"] == "live"
        assert meta["partial"] is True
        assert meta["revision"] == 1
        assert archive.get_period(LIVE) == survey_to_dict(first)
        # A second checkpoint is a *new revision*; the old one is
        # retired only after the manifest flip.
        second = june({100: __import__(
            "repro.core", fromlist=["Severity"]
        ).Severity.MILD})
        assert writer.commit_partial(second) == 2
        assert archive.get_period(LIVE) == survey_to_dict(second)
        assert archive.live_path(LIVE, 2).exists()
        assert not archive.live_path(LIVE, 1).exists()
        assert archive.stats.live_commits == 2
        assert run_fsck(archive.root, repair=False).exit_code == EXIT_CLEAN

    def test_begin_on_committed_period_rejected(self, tmp_path):
        archive = SurveyArchive(tmp_path / "arc")
        archive.ingest(june(), ranking=make_ranking())
        with pytest.raises(PeriodExistsError):
            archive.begin_live_period(LIVE)

    def test_reopen_resumes_revision_counter(self, tmp_path):
        root = tmp_path / "arc"
        writer = SurveyArchive(root).begin_live_period(LIVE)
        writer.append(7)
        writer.commit_partial(june())
        writer.commit_partial(june())

        reopened = SurveyArchive(root)
        assert reopened.last_recovery.outcome == "clean"
        resumed = reopened.begin_live_period(LIVE)
        assert resumed.revision == 2
        assert resumed.commit_partial(june()) == 3

    def test_finalize_flips_to_ordinary_period(self, tmp_path):
        archive = SurveyArchive(tmp_path / "arc")
        writer = archive.begin_live_period(LIVE)
        writer.commit_partial(june())
        final = june()
        assert writer.finalize(final, ranking=make_ranking()) == LIVE
        meta = archive.period_meta(LIVE)
        assert meta["repr"] == "json"
        assert "partial" not in meta and "revision" not in meta
        assert meta["checksum"] == payload_checksum(survey_to_dict(final))
        assert not list((archive.root / "live").glob("*"))
        assert archive.get_period(LIVE) == survey_to_dict(final)
        assert run_fsck(archive.root, repair=False).exit_code == EXIT_CLEAN
        with pytest.raises(ValueError, match="finalized"):
            writer.commit_partial(june())

    def test_abort_removes_live_period(self, tmp_path):
        archive = SurveyArchive(tmp_path / "arc")
        writer = archive.begin_live_period(LIVE)
        writer.commit_partial(june())
        writer.abort()
        assert LIVE not in archive
        assert run_fsck(archive.root, repair=False).exit_code == EXIT_CLEAN

    def test_mismatched_payload_period_rejected(self, tmp_path):
        writer = SurveyArchive(tmp_path / "arc").begin_live_period(LIVE)
        stray = make_survey("2019-09", dt.datetime(2019, 9, 1), {})
        with pytest.raises(ValueError, match="2019-09"):
            writer.commit_partial(stray)


class TestServeLivePeriod:
    def test_live_period_served_and_invalidated(self, tmp_path):
        """The in-progress period rides the existing cache: served
        like any period, dropped the moment a checkpoint commits."""
        from repro.core import Severity

        archive = SurveyArchive(tmp_path / "arc")
        writer = archive.begin_live_period(LIVE)
        writer.commit_partial(june())
        api = SurveyAPI(archive)

        listed = api.handle("/v1/periods")
        assert listed.status == 200
        assert LIVE.encode() in listed.body

        first = api.handle(f"/v1/period/{LIVE}")
        assert first.status == 200
        repeat = api.handle(f"/v1/period/{LIVE}")
        assert (repeat.body, repeat.etag) == (first.body, first.etag)

        # A new checkpoint bumps the generation: cached responses
        # must not survive it.
        writer.commit_partial(june({100: Severity.NONE}))
        fresh = api.handle(f"/v1/period/{LIVE}")
        assert fresh.status == 200
        assert fresh.etag != first.etag
        assert fresh.body != first.body


class TestCrashResumeAcceptance:
    """The ISSUE's acceptance run: stream a seeded survey into a live
    period record by record, kill the writer mid-checkpoint, recover,
    resume, and land on the uninterrupted run's exact bytes."""

    NAME = PERIOD.name

    @pytest.fixture(scope="class")
    def streamed(self):
        specs = generate_specs(num_ases=4, num_countries=4, seed=5)
        dataset, table = seeded_dataset(specs)
        records = dataset_to_records(dataset)
        engine = StreamingSurvey(PERIOD, table=table)
        half, three_q = len(records) // 2, (3 * len(records)) // 4
        engine.ingest_many(records[:half])
        p1 = engine.emit_partial()
        engine.ingest_many(records[half:three_q])
        p2 = engine.emit_partial()
        engine.ingest_many(records[three_q:])
        final = engine.finalize()
        return p1, p2, final

    def uninterrupted(self, root, streamed):
        p1, p2, final = streamed
        archive = SurveyArchive(root)
        writer = archive.begin_live_period(self.NAME)
        writer.commit_partial(p1)
        writer.commit_partial(p2)
        writer.finalize(final)
        return (root / "periods" / f"{self.NAME}.json").read_bytes()

    def second_commit_ops(self, root, streamed):
        """Measure the op window of the *second* checkpoint."""
        p1, p2, _ = streamed
        io = RecordingIO()
        archive = SurveyArchive(root, io=io)
        writer = archive.begin_live_period(self.NAME)
        writer.commit_partial(p1)
        start = len(io.ops)
        writer.commit_partial(p2)
        return start, len(io.ops)

    def test_crash_mid_checkpoint_recovers_and_finishes(
        self, tmp_path, streamed
    ):
        p1, p2, final = streamed
        want = self.uninterrupted(tmp_path / "clean", streamed)
        start, end = self.second_commit_ops(tmp_path / "probe", streamed)

        # Crash at the checkpoint's first write, mid-protocol, and at
        # its final journal acknowledgment.
        for op_index in (start, (start + end) // 2, end - 1):
            root = tmp_path / f"crash-{op_index}"
            io = CrashingIO(CrashPlan(op_index))
            archive = SurveyArchive(root, io=io)
            writer = archive.begin_live_period(self.NAME)
            writer.commit_partial(p1)
            with pytest.raises(SimulatedCrash):
                writer.commit_partial(p2)

            # Recovery-on-open lands on exactly the pre- or
            # post-checkpoint state, and fsck agrees it is clean.
            reopened = SurveyArchive(root)
            meta = reopened.period_meta(self.NAME)
            assert meta["repr"] == "live"
            assert meta["revision"] in (1, 2)
            expected = p1 if meta["revision"] == 1 else p2
            assert reopened.get_period(self.NAME) == survey_to_dict(
                expected
            )
            report = run_fsck(root, repair=False)
            assert report.exit_code == EXIT_CLEAN, [
                f.detail for f in report.findings
            ]

            # Resume the stream and finish: byte-identical archive.
            resumed = reopened.begin_live_period(self.NAME)
            assert resumed.revision == meta["revision"]
            resumed.finalize(final)
            got = (root / "periods" / f"{self.NAME}.json").read_bytes()
            assert got == want
            assert run_fsck(root, repair=False).exit_code == EXIT_CLEAN
