"""Unit behaviour of :class:`repro.stream.StreamingSurvey`.

The differential harness proves whole-survey equivalence; this file
pins the engine's own mechanics: the raw-traceroute ingest path
against :func:`repro.core.lastmile.estimate_probe_series`, watermark
and bin-close bookkeeping, stale/sparse accounting on the engine
ledger, incremental reclassification (only dirty ASes re-run), the
P² mode's tolerance on mixed bins, and the error paths.
"""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import ProbeMeta
from repro.core import estimate_probe_series
from repro.obs import observed
from repro.quality import DataQualityReport, DropReason
from repro.stream import (
    ProbeRecord,
    SampleRecord,
    StreamingSurvey,
    TraceRecord,
    micro_batches,
)
from repro.timebase import MeasurementPeriod, TimeGrid
from tests.core.test_lastmile import hop, traceroute, typical_traceroute
from tests.stream.conftest import PERIOD

DAY = MeasurementPeriod("d", dt.datetime(2019, 9, 2), 1)
DAY_GRID = TimeGrid(DAY)


def meta(prb_id, asn):
    return ProbeMeta(
        prb_id=prb_id, asn=asn, is_anchor=False,
        public_address="20.0.0.1",
    )


def dirty_results():
    """The kernel suite's dirty traceroute mix: clean signal plus a
    NaN timestamp, an out-of-period clock, and a boundary-less path."""
    results = [
        typical_traceroute(timestamp=i * 200.0, public_rtt=3.0 + (i % 7))
        for i in range(120)
    ]
    results.append(typical_traceroute(timestamp=float("nan")))
    results.append(typical_traceroute(timestamp=-50.0))
    results.append(traceroute([
        hop(1, "192.168.1.1", [0.5] * 3),
        hop(2, "60.0.0.1", [float("nan")] * 3),
    ], timestamp=400.0))
    return results


class TestTraceIngestPath:
    def test_matches_batch_estimator_on_dirty_traceroutes(self):
        """Record-at-a-time raw ingest lands on the same series *and*
        the same quality ledger as the batch estimation stage."""
        results = dirty_results()
        batch_quality = DataQualityReport()
        batch = estimate_probe_series(
            results, DAY_GRID, quality=batch_quality
        )

        engine = StreamingSurvey(DAY)
        for result in results:
            engine.ingest(TraceRecord(result))
        engine.close_through(DAY_GRID.num_bins - 1)
        series = engine.dataset().series[1]

        assert np.array_equal(
            series.median_rtt_ms, batch.median_rtt_ms, equal_nan=True
        )
        assert np.array_equal(
            series.traceroute_counts, batch.traceroute_counts
        )
        assert engine.scan_quality.to_dict() == batch_quality.to_dict()

    def test_boundary_less_not_degraded_when_stale(self):
        """A boundary-less traceroute against a *closed* bin is a
        stale drop, not a NO_BOUNDARY degrade — the batch ledger
        books the degrade only for counted records."""
        engine = StreamingSurvey(DAY)
        engine.advance_watermark(DAY_GRID.bin_seconds)  # close bin 0
        engine.ingest(TraceRecord(traceroute([
            hop(1, "192.168.1.1", [0.5] * 3),
            hop(2, "60.0.0.1", [float("nan")] * 3),
        ], timestamp=10.0)))
        assert engine.stale_records == 1
        assert engine.scan_quality.degraded_count(
            DropReason.NO_BOUNDARY
        ) == 0
        assert engine.engine_quality.dropped_count(
            DropReason.STALE_RECORD
        ) == 1


class TestBinLifecycle:
    def test_stale_sample_dropped_not_counted(self):
        engine = StreamingSurvey(DAY)
        engine.ingest(SampleRecord(1, 0, (2.0,)))
        engine.advance_watermark(DAY_GRID.bin_seconds)
        engine.ingest(SampleRecord(1, 0, (9.0,)))
        assert engine.stale_records == 1
        assert int(engine.dataset().series[1].traceroute_counts[0]) == 1

    def test_sparse_bin_stays_nan_and_is_booked(self):
        engine = StreamingSurvey(DAY)
        for _ in range(2):  # below MIN_TRACEROUTES_PER_BIN
            engine.ingest(SampleRecord(1, 0, (4.0,)))
        for _ in range(3):  # at the threshold
            engine.ingest(SampleRecord(1, 1, (6.0,)))
        engine.close_through(1)
        series = engine.dataset().series[1]
        assert np.isnan(series.median_rtt_ms[0])
        assert series.median_rtt_ms[1] == 6.0
        assert engine.sparse_bins == 1
        assert engine.engine_quality.degraded_count(
            DropReason.SPARSE_BIN
        ) == 1

    def test_watermark_closes_elapsed_bins_only(self):
        engine = StreamingSurvey(DAY)
        engine.ingest(SampleRecord(1, 0, (1.0, 2.0, 3.0)))
        engine.ingest(SampleRecord(1, 1, (1.0, 2.0, 3.0)))
        assert engine.advance_watermark(0) == 0
        assert engine.closed_through == -1
        assert engine.advance_watermark(DAY_GRID.bin_seconds) == 1
        assert engine.closed_through == 0
        assert engine.open_bins() == 1
        # A watermark far past the period clamps to the last bin.
        engine.advance_watermark(10 * 24 * 3600.0)
        assert engine.closed_through == DAY_GRID.num_bins - 1
        assert engine.open_bins() == 0
        # Re-closing is a no-op.
        assert engine.close_through(5) == 0

    def test_finalize_is_idempotent(self):
        engine = StreamingSurvey(DAY)
        engine.ingest(SampleRecord(1, 0, (1.0,)))
        assert engine.finalize() is engine.finalize()
        assert engine.status()["finalized"]


class TestIncrementalReclassification:
    def seed_two_ases(self, engine):
        for prb_id in (1, 2, 3):
            engine.ingest(ProbeRecord(prb_id, meta=meta(prb_id, 100)))
        for prb_id in (4, 5, 6):
            engine.ingest(ProbeRecord(prb_id, meta=meta(prb_id, 200)))
        for prb_id in range(1, 7):
            for bin_index in range(DAY_GRID.num_bins):
                engine.ingest(SampleRecord(
                    prb_id, bin_index, (2.0, 3.0, 4.0)
                ))

    def test_only_dirty_ases_rerun(self):
        with observed() as obs:
            engine = StreamingSurvey(DAY)
            self.seed_two_ases(engine)
            counter = obs.metrics.counter(
                "stream_reclassified_total", "", ()
            )
            engine.emit_partial()
            assert counter.value() == 2
            # Nothing changed: the cache answers, nothing re-runs.
            engine.emit_partial()
            assert counter.value() == 2
            # One new observation dirties exactly one AS.
            engine.ingest(SampleRecord(1, 0, (5.0,)))
            engine.emit_partial()
            assert counter.value() == 3

    def test_partial_then_final_surveys_are_consistent(self):
        engine = StreamingSurvey(DAY)
        self.seed_two_ases(engine)
        partial = engine.emit_partial()
        final = engine.finalize()
        assert set(partial.reports) | set(partial.failures) == {100, 200}
        assert set(final.reports) | set(final.failures) == {100, 200}


class TestApproximateTolerance:
    def test_p2_bin_median_within_one_sd_of_exact(self):
        """On mixed samples within a bin (the case decomposed replays
        never produce) the P² estimate stays within the documented
        one-standard-deviation tolerance of the exact median."""
        rng = np.random.default_rng(42)
        sd = 2.0
        exact = StreamingSurvey(DAY)
        approx = StreamingSurvey(DAY, approximate=True)
        for bin_index in range(4):
            samples = rng.normal(10.0, sd, 60)
            for value in samples:
                record = SampleRecord(1, bin_index, (float(value),))
                exact.ingest(record)
                approx.ingest(record)
        exact.close_through(3)
        approx.close_through(3)
        a = exact.dataset().series[1].median_rtt_ms[:4]
        b = approx.dataset().series[1].median_rtt_ms[:4]
        assert np.all(np.isfinite(a)) and np.all(np.isfinite(b))
        assert np.max(np.abs(a - b)) <= sd


class TestRecordsAndErrors:
    def test_untracked_probe_visible_to_filter_only(self):
        engine = StreamingSurvey(DAY)
        engine.ingest(ProbeRecord(9, meta=meta(9, 300), tracked=False))
        dataset = engine.dataset()
        assert 9 in dataset.probe_meta
        assert 9 not in dataset.series

    def test_ingest_after_finalize_rejected(self):
        engine = StreamingSurvey(DAY)
        engine.finalize()
        with pytest.raises(ValueError, match="finalized"):
            engine.ingest(SampleRecord(1, 0, (1.0,)))

    def test_unknown_record_type_rejected(self):
        with pytest.raises(TypeError, match="not a stream record"):
            StreamingSurvey(DAY).ingest({"prb_id": 1})

    def test_out_of_grid_bin_rejected(self):
        engine = StreamingSurvey(DAY)
        with pytest.raises(ValueError, match="outside grid"):
            engine.ingest(SampleRecord(1, DAY_GRID.num_bins, (1.0,)))

    def test_micro_batch_size_validated(self):
        with pytest.raises(ValueError, match="positive"):
            list(micro_batches([SampleRecord(1, 0)], 0))

    def test_status_snapshot(self):
        engine = StreamingSurvey(PERIOD, kernels="reference")
        engine.ingest(ProbeRecord(1, meta=meta(1, 100)))
        engine.ingest(SampleRecord(1, 0, (1.0,)))
        status = engine.status()
        assert status["period"] == PERIOD.name
        assert status["mode"] == "exact"
        assert status["kernel"] == "reference"
        assert status["records_ingested"] == 2
        assert status["probes"] == 1
        assert status["open_bins"] == 1
        assert not status["finalized"]
