"""Tests for the BGP substrate (routes + routing table)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bgp import Route, RoutingTable
from repro.netbase import Prefix, parse_ipv4, parse_ipv6


def table_with(*entries):
    table = RoutingTable()
    for text, origin in entries:
        table.announce_prefix(Prefix.parse(text), origin)
    return table


class TestRoute:
    def test_origin_from_path(self):
        route = Route(Prefix.parse("10.0.0.0/8"), as_path=(1, 2, 3))
        assert route.origin_asn == 3

    def test_origin_only(self):
        route = Route(Prefix.parse("10.0.0.0/8"), origin_asn=7)
        assert route.origin_asn == 7

    def test_conflicting_origin_rejected(self):
        with pytest.raises(ValueError):
            Route(Prefix.parse("10.0.0.0/8"), as_path=(1, 2), origin_asn=9)

    def test_needs_path_or_origin(self):
        with pytest.raises(ValueError):
            Route(Prefix.parse("10.0.0.0/8"))

    def test_path_length_collapses_prepending(self):
        route = Route(
            Prefix.parse("10.0.0.0/8"), as_path=(1, 1, 1, 2, 3, 3)
        )
        assert route.path_length == 3

    def test_str(self):
        route = Route(Prefix.parse("10.0.0.0/8"), as_path=(1, 2))
        assert str(route) == "10.0.0.0/8 [1 2]"


class TestRoutingTable:
    def test_resolve_longest_match(self):
        table = table_with(("10.0.0.0/8", 100), ("10.1.0.0/16", 200))
        assert table.resolve_asn(parse_ipv4("10.1.0.1"), 4) == 200
        assert table.resolve_asn(parse_ipv4("10.2.0.1"), 4) == 100

    def test_unannounced_space_resolves_to_none(self):
        """The paper: some ISP edge IPs are not announced on BGP."""
        table = table_with(("203.0.0.0/12", 100))
        assert table.resolve_asn(parse_ipv4("8.8.8.8"), 4) is None
        assert not table.is_announced(parse_ipv4("8.8.8.8"), 4)

    def test_dual_stack(self):
        table = RoutingTable()
        table.announce_prefix(Prefix.parse("2400:8900::/32"), 2497)
        table.announce_prefix(Prefix.parse("202.232.0.0/16"), 2497)
        assert table.resolve_asn(parse_ipv6("2400:8900::1"), 6) == 2497
        assert table.resolve_asn(parse_ipv4("202.232.0.1"), 4) == 2497
        assert table.resolve_asn(parse_ipv6("2400:8901::1"), 6) is None

    def test_withdraw(self):
        table = table_with(("10.0.0.0/8", 100))
        assert table.withdraw(Prefix.parse("10.0.0.0/8"))
        assert table.resolve_asn(parse_ipv4("10.0.0.1"), 4) is None
        assert not table.withdraw(Prefix.parse("10.0.0.0/8"))

    def test_replacement(self):
        table = table_with(("10.0.0.0/8", 100))
        table.announce_prefix(Prefix.parse("10.0.0.0/8"), 999)
        assert len(table) == 1
        assert table.resolve_asn(parse_ipv4("10.0.0.1"), 4) == 999

    def test_routes_by_origin(self):
        table = table_with(
            ("10.0.0.0/8", 100), ("11.0.0.0/8", 200), ("12.0.0.0/8", 100)
        )
        prefixes = [str(r.prefix) for r in table.routes_by_origin(100)]
        assert prefixes == ["10.0.0.0/8", "12.0.0.0/8"]


class TestSerialization:
    def test_roundtrip(self):
        table = RoutingTable()
        table.announce(Route(Prefix.parse("10.0.0.0/8"), as_path=(1, 2)))
        table.announce(Route(Prefix.parse("2400:8900::/32"), as_path=(3,)))
        text = table.to_text()
        restored = RoutingTable.from_text(text)
        assert restored.to_text() == text
        assert restored.resolve_asn(parse_ipv4("10.0.0.1"), 4) == 2

    def test_comments_and_blanks_ignored(self):
        table = RoutingTable.from_text(
            "# RIB dump\n\n10.0.0.0/8|1 2\n"
        )
        assert len(table) == 1

    def test_malformed_lines_rejected(self):
        with pytest.raises(ValueError, match="line 1"):
            RoutingTable.from_text("10.0.0.0/8")
        with pytest.raises(ValueError, match="empty AS path"):
            RoutingTable.from_text("10.0.0.0/8|")

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**32 - 1),
                st.integers(min_value=8, max_value=28),
                st.integers(min_value=1, max_value=65000),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_roundtrip_property(self, entries):
        from repro.netbase import IPAddress

        table = RoutingTable()
        for addr, length, asn in entries:
            prefix = Prefix.containing(IPAddress(4, addr), length)
            table.announce_prefix(prefix, asn)
        restored = RoutingTable.from_text(table.to_text())
        assert restored.to_text() == table.to_text()
