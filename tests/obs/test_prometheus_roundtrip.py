"""Exposition-format escaping: hostile label values must round-trip.

``to_prometheus`` → ``parse_prometheus`` is the contract behind the
``/v1/metrics`` scrape check: whatever bytes a label value holds —
backslashes, quotes, newlines, or adversarial mixes like a literal
``\\n`` two-character sequence — the parsed registry must carry the
value bit-exactly.
"""

import pytest

from repro.obs import MetricsRegistry, parse_prometheus
from repro.obs.metrics import _escape, _escape_help, _unescape_help

HOSTILE_VALUES = [
    'plain',
    'back\\slash',
    'quo"te',
    'new\nline',
    '\\',
    '"',
    '\n',
    '\\n',          # literal backslash then n — NOT a newline
    '\\"',          # literal backslash then quote
    'trailing\\',
    '\\\\n',        # escaped backslash then literal n after round trip
    'a,b=c}{d',     # label-syntax metacharacters inside the value
    'mixed\\"and\nall\\n',
]


class TestLabelEscaping:
    @pytest.mark.parametrize("value", HOSTILE_VALUES)
    def test_hostile_value_round_trips(self, value):
        registry = MetricsRegistry()
        registry.counter("hits_total", "hits", ("path",)).inc(
            3, path=value
        )
        parsed = parse_prometheus(registry.to_prometheus())
        assert parsed["hits_total"]["samples"] == [
            {"labels": {"path": value}, "value": 3.0}
        ]

    def test_every_hostile_value_in_one_series_set(self):
        """All values as sibling series — separators must not bleed."""
        registry = MetricsRegistry()
        counter = registry.counter("hits_total", "", ("path",))
        for i, value in enumerate(HOSTILE_VALUES):
            counter.inc(i + 1, path=value)
        parsed = parse_prometheus(registry.to_prometheus())
        got = {
            sample["labels"]["path"]: sample["value"]
            for sample in parsed["hits_total"]["samples"]
        }
        assert got == {
            value: float(i + 1)
            for i, value in enumerate(HOSTILE_VALUES)
        }

    def test_multi_label_ordering_survives(self):
        registry = MetricsRegistry()
        registry.counter("c", "", ("a", "b")).inc(1, a='x"y', b="z\n")
        parsed = parse_prometheus(registry.to_prometheus())
        assert parsed["c"]["samples"][0]["labels"] == {
            "a": 'x"y', "b": "z\n",
        }

    def test_escape_is_backslash_first(self):
        # Escaping the backslash after the others would double-escape.
        assert _escape('\\"') == '\\\\\\"'
        assert _escape("\n\\") == "\\n\\\\"


class TestHelpEscaping:
    @pytest.mark.parametrize(
        "help_text",
        ["plain", "multi\nline", "back\\slash", "\\n", "tail\\"],
    )
    def test_help_round_trips(self, help_text):
        registry = MetricsRegistry()
        registry.counter("c_total", help_text).inc()
        parsed = parse_prometheus(registry.to_prometheus())
        assert parsed["c_total"]["help"] == help_text

    def test_unescape_scans_left_to_right(self):
        # "\\\\n" is escaped-backslash + literal n, not "\\" + newline.
        assert _unescape_help(_escape_help("\\n")) == "\\n"
        assert _unescape_help("\\\\n") == "\\n"
        assert _unescape_help("\\n") == "\n"


class TestParsedShapes:
    def test_types_and_values_come_back(self):
        registry = MetricsRegistry()
        registry.counter("reqs_total", "requests").inc(5)
        registry.gauge("depth", "queue depth").set(2.5)
        parsed = parse_prometheus(registry.to_prometheus())
        assert parsed["reqs_total"]["type"] == "counter"
        assert parsed["reqs_total"]["samples"][0]["value"] == 5.0
        assert parsed["depth"]["type"] == "gauge"
        assert parsed["depth"]["samples"][0]["value"] == 2.5

    def test_histogram_explodes_to_scrape_series(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "lat", "latency", ("stage",), buckets=(0.1, 1.0)
        )
        histogram.observe(0.05, stage="load")
        histogram.observe(0.5, stage="load")
        parsed = parse_prometheus(registry.to_prometheus())
        buckets = {
            sample["labels"]["le"]: sample["value"]
            for sample in parsed["lat_bucket"]["samples"]
        }
        assert buckets == {"0.1": 1.0, "1": 2.0, "+Inf": 2.0}
        assert parsed["lat_count"]["samples"][0]["value"] == 2.0
        assert parsed["lat_sum"]["samples"][0]["value"] == pytest.approx(
            0.55
        )

    def test_unterminated_label_set_raises(self):
        with pytest.raises(ValueError, match="unterminated"):
            parse_prometheus('c{path="open 1')
