"""The pipeline actually reports through an installed observer."""

import datetime as dt

import numpy as np

from repro.atlas import ProbeMeta
from repro.core import LastMileDataset, ProbeBinSeries, classify_dataset
from repro.obs import DURATION, ITEMS_IN, ITEMS_OUT, observed
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("2019-09", dt.datetime(2019, 9, 1), 15)


def small_dataset(num_asns=5, probes_per_asn=4, seed=0):
    grid = TimeGrid(PERIOD)
    rng = np.random.default_rng(seed)
    dataset = LastMileDataset(grid=grid)
    t = np.arange(grid.num_bins) / grid.bins_per_day
    prb_id = 1
    for asn in range(100, 100 + num_asns):
        for _ in range(probes_per_asn):
            medians = (
                rng.uniform(1.0, 3.0)
                + rng.normal(0, 0.05, grid.num_bins)
                + 1.5 * (1 + np.sin(2 * np.pi * t))
            )
            dataset.add(
                ProbeBinSeries(
                    prb_id=prb_id,
                    median_rtt_ms=medians,
                    traceroute_counts=np.full(grid.num_bins, 24),
                ),
                meta=ProbeMeta(
                    prb_id=prb_id, asn=asn, is_anchor=False,
                    public_address="20.0.0.1",
                ),
            )
            prb_id += 1
    return dataset


class TestClassifyDatasetInstrumentation:
    def test_stage_counters_and_spans(self):
        # The per-AS nested span tree is the *reference* backend's
        # contract; the batched (vector) shape is asserted separately
        # below, so pin the backend rather than inherit $REPRO_KERNELS.
        dataset = small_dataset()
        with observed() as obs:
            result = classify_dataset(
                dataset, PERIOD, kernels="reference"
            )
        assert result.monitored_count == 5

        items_in = obs.metrics.get(ITEMS_IN)
        items_out = obs.metrics.get(ITEMS_OUT)
        # filter saw every probe, survey classified every AS group.
        assert items_in.value(stage="core-filtering") == 20
        assert items_in.value(stage="core-survey") == 5
        assert items_out.value(stage="core-survey") == 5
        assert items_in.value(stage="core-aggregate") == 20
        assert items_in.value(stage="core-spectral") == 5

        duration = obs.metrics.get(DURATION)
        for stage in (
            "classify-dataset", "filter", "aggregate", "spectral",
        ):
            assert duration.count(stage=stage) >= 1, stage

        # Span tree: classify-dataset -> filter + one classify per AS,
        # each with aggregate and spectral children.
        roots = obs.tracer.roots
        assert [r.name for r in roots] == ["classify-dataset"]
        child_names = [c.name for c in roots[0].children]
        assert child_names.count("classify") == 5
        assert "filter" in child_names
        classify_span = next(
            c for c in roots[0].children if c.name == "classify"
        )
        assert {c.name for c in classify_span.children} == {
            "aggregate", "spectral",
        }

    def test_batched_backend_span_shape(self):
        # The vector backend hoists marker extraction out of the
        # per-AS loop, so the spectral span is a single sibling of the
        # classify spans instead of a child of each — same stage
        # counters, different (documented) tree.
        dataset = small_dataset()
        with observed() as obs:
            result = classify_dataset(
                dataset, PERIOD, kernels="vector"
            )
        assert result.monitored_count == 5

        items_in = obs.metrics.get(ITEMS_IN)
        assert items_in.value(stage="core-spectral") == 5
        assert items_in.value(stage="core-aggregate") == 20

        roots = obs.tracer.roots
        assert [r.name for r in roots] == ["classify-dataset"]
        child_names = [c.name for c in roots[0].children]
        assert child_names.count("classify") == 5
        assert child_names.count("spectral") == 1
        for span in roots[0].children:
            if span.name == "classify":
                assert {c.name for c in span.children} == {"aggregate"}
        spectral_span = next(
            c for c in roots[0].children if c.name == "spectral"
        )
        assert spectral_span.attrs["signals"] == 5
        assert spectral_span.attrs["kernel"] == "vector"

    def test_quality_ledger_mirrored_as_gauges(self):
        dataset = small_dataset()
        with observed() as obs:
            classify_dataset(dataset, PERIOD)
        gauge = obs.metrics.get("quality_ingested_total")
        assert gauge is not None
        assert gauge.value(stage="core-filtering") == 20

    def test_severity_counter_recorded(self):
        dataset = small_dataset()
        with observed() as obs:
            result = classify_dataset(dataset, PERIOD)
        counter = obs.metrics.get("survey_as_classified_total")
        total = sum(value for _key, value in counter.samples())
        assert total == result.monitored_count

    def test_noop_observer_leaves_results_identical(self):
        dataset = small_dataset()
        baseline = classify_dataset(dataset, PERIOD)
        with observed():
            observed_result = classify_dataset(dataset, PERIOD)
        assert (
            {a: r.severity for a, r in baseline.reports.items()}
            == {a: r.severity
                for a, r in observed_result.reports.items()}
        )
