"""Registry merge, bucket-quantile estimation, and counter diffs —
the parent-side halves of cross-process telemetry and the ``repro obs
report`` additions."""

import pytest

from repro.obs import MetricsRegistry, estimate_quantile
from repro.obs.metrics import diff_counters


def _registry_with(counter=0, gauge=0.0, observations=()):
    registry = MetricsRegistry()
    if counter:
        registry.counter("items_total", "", ("stage",)).inc(
            counter, stage="load"
        )
    if gauge:
        registry.gauge("depth", "").set(gauge)
    if observations:
        histogram = registry.histogram(
            "lat", "", ("stage",), buckets=(0.1, 1.0)
        )
        for value in observations:
            histogram.observe(value, stage="load")
    return registry


class TestRegistryMerge:
    def test_counters_sum_per_series(self):
        parent = _registry_with(counter=3)
        parent.merge(_registry_with(counter=4))
        assert parent.counter(
            "items_total", "", ("stage",)
        ).value(stage="load") == 7

    def test_disjoint_series_and_instruments_are_created(self):
        parent = MetricsRegistry()
        incoming = MetricsRegistry()
        incoming.counter("new_total", "fresh", ("shard",)).inc(2, shard="1")
        parent.merge(incoming)
        assert parent.counter(
            "new_total", "", ("shard",)
        ).value(shard="1") == 2
        assert parent.get("new_total").help == "fresh"

    def test_gauges_add(self):
        # Shards each report their own share; the parent's view is the
        # sum (sources are disjoint by construction).
        parent = _registry_with(gauge=1.5)
        parent.merge(_registry_with(gauge=2.0))
        assert parent.gauge("depth", "").value() == 3.5

    def test_histograms_fold_buckets_sum_count_min_max(self):
        parent = _registry_with(observations=(0.05, 0.5))
        parent.merge(_registry_with(observations=(0.2, 5.0)))
        histogram = parent.histogram("lat", "", ("stage",),
                                     buckets=(0.1, 1.0))
        assert histogram.count(stage="load") == 4
        assert histogram.sum(stage="load") == pytest.approx(5.75)
        series = histogram._series[histogram._key({"stage": "load"})]
        assert series.bucket_counts == [1, 2, 1]
        assert series.minimum == 0.05
        assert series.maximum == 5.0

    def test_merge_accepts_to_dict_form(self):
        # The actual cross-process form: the worker ships dicts.
        parent = _registry_with(counter=1)
        parent.merge(_registry_with(counter=9).to_dict())
        assert parent.counter(
            "items_total", "", ("stage",)
        ).value(stage="load") == 10

    def test_kind_mismatch_raises(self):
        parent = MetricsRegistry()
        parent.counter("x", "")
        incoming = MetricsRegistry()
        incoming.gauge("x", "").set(1)
        with pytest.raises(ValueError, match="already registered"):
            parent.merge(incoming)

    def test_label_schema_mismatch_raises(self):
        parent = MetricsRegistry()
        parent.counter("x", "", ("a",))
        incoming = MetricsRegistry()
        incoming.counter("x", "", ("b",)).inc(b="1")
        with pytest.raises(ValueError, match="label schema"):
            parent.merge(incoming)

    def test_bucket_mismatch_raises(self):
        parent = MetricsRegistry()
        parent.histogram("lat", "", buckets=(0.1, 1.0))
        incoming = MetricsRegistry()
        incoming.histogram("lat", "", buckets=(0.5, 2.0)).observe(0.3)
        with pytest.raises(ValueError):
            parent.merge(incoming)

    def test_merge_then_export_round_trips(self):
        parent = _registry_with(counter=2, gauge=1.0,
                                observations=(0.05,))
        parent.merge(_registry_with(counter=5, observations=(0.5,)))
        rebuilt = MetricsRegistry.from_dict(parent.to_dict())
        assert rebuilt.to_dict() == parent.to_dict()


class TestEstimateQuantile:
    BOUNDS = (1.0, 2.0, 4.0)

    def test_empty_series_is_none(self):
        assert estimate_quantile(self.BOUNDS, [0, 0, 0, 0], 0.5) is None

    def test_interpolates_inside_bucket(self):
        # 10 observations all in (1, 2]: p50 sits mid-bucket.
        assert estimate_quantile(
            self.BOUNDS, [0, 10, 0, 0], 0.5
        ) == pytest.approx(1.5)

    def test_first_bucket_interpolates_from_zero(self):
        assert estimate_quantile(
            self.BOUNDS, [4, 0, 0, 0], 0.5
        ) == pytest.approx(0.5)

    def test_overflow_bucket_saturates_at_last_bound(self):
        assert estimate_quantile(self.BOUNDS, [0, 0, 0, 5], 0.99) == 4.0

    def test_extremes(self):
        counts = [2, 2, 2, 0]
        assert estimate_quantile(self.BOUNDS, counts, 1.0) == 4.0
        assert estimate_quantile(
            self.BOUNDS, counts, 0.0
        ) == pytest.approx(0.0)

    def test_rejects_out_of_range_q(self):
        with pytest.raises(ValueError):
            estimate_quantile(self.BOUNDS, [1, 0, 0, 0], 1.5)


class TestDiffCounters:
    def _snap(self, **series):
        registry = MetricsRegistry()
        counter = registry.counter("reqs_total", "", ("route",))
        for route, value in series.items():
            counter.inc(value, route=route)
        return registry.to_dict()

    def test_reports_per_series_deltas(self):
        lines = diff_counters(
            self._snap(as_route=3), self._snap(as_route=10)
        )
        assert lines == ['reqs_total{route="as_route"} +7 (now 10)']

    def test_unchanged_series_are_silent(self):
        assert diff_counters(self._snap(a=3), self._snap(a=3)) == []

    def test_new_series_counts_from_zero(self):
        lines = diff_counters(self._snap(a=1), self._snap(a=1, b=4))
        assert lines == ['reqs_total{route="b"} +4 (now 4)']

    def test_vanished_series_reported_gone(self):
        lines = diff_counters(self._snap(a=1, b=4), self._snap(a=1))
        assert lines == ['reqs_total{route="b"} (gone, was 4)']

    def test_gauges_and_histograms_are_skipped(self):
        before = MetricsRegistry()
        before.gauge("depth", "").set(1)
        before.histogram("lat", "", buckets=(1.0,)).observe(0.5)
        after = MetricsRegistry()
        after.gauge("depth", "").set(9)
        after.histogram("lat", "", buckets=(1.0,)).observe(0.7)
        assert diff_counters(before.to_dict(), after.to_dict()) == []
