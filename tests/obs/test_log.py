"""Tests for the structured JSONL logger."""

import io

import pytest

from repro.obs.log import StructuredLogger, read_jsonl


class TestStructuredLogger:
    def test_no_sink_is_silent_noop(self):
        logger = StructuredLogger()
        logger.info("event", value=1)  # must not raise

    def test_emits_one_json_line_per_event(self):
        sink = io.StringIO()
        logger = StructuredLogger(sink=sink, clock=lambda: 123.456)
        logger.info("period-start", ases=151)
        records = read_jsonl(sink)
        assert records == [{
            "ts": 123.456,
            "level": "info",
            "event": "period-start",
            "ases": 151,
        }]

    def test_bind_adds_context_without_mutating_parent(self):
        sink = io.StringIO()
        logger = StructuredLogger(sink=sink, clock=lambda: 0.0)
        child = logger.bind(stage="core-survey", period="2019-09")
        child.info("start")
        logger.info("bare")
        first, second = read_jsonl(sink)
        assert first["stage"] == "core-survey"
        assert first["period"] == "2019-09"
        assert "stage" not in second

    def test_call_fields_override_bound_context(self):
        sink = io.StringIO()
        logger = StructuredLogger(sink=sink, clock=lambda: 0.0)
        logger.bind(asn=1).info("x", asn=2)
        assert read_jsonl(sink)[0]["asn"] == 2

    def test_level_filtering(self):
        sink = io.StringIO()
        logger = StructuredLogger(
            sink=sink, level="warning", clock=lambda: 0.0
        )
        logger.debug("d")
        logger.info("i")
        logger.warning("w")
        logger.error("e")
        events = [r["event"] for r in read_jsonl(sink)]
        assert events == ["w", "e"]

    def test_rejects_unknown_level(self):
        with pytest.raises(ValueError):
            StructuredLogger(level="verbose")

    def test_non_json_values_fall_back_to_str(self):
        sink = io.StringIO()
        logger = StructuredLogger(sink=sink, clock=lambda: 0.0)
        logger.info("x", path=object())
        assert "object" in read_jsonl(sink)[0]["path"]
