"""Tests for the opt-in sampling profiler."""

import pytest

from repro.obs.profile import (
    PROFILE_ENV,
    ProfileCollector,
    SAMPLE_ENV,
    maybe_profiled,
    profiled,
    profiling_enabled,
)


class TestEnvGate:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        assert not profiling_enabled()

    @pytest.mark.parametrize("value", ["0", "false", "off", ""])
    def test_falsy_values_disable(self, monkeypatch, value):
        monkeypatch.setenv(PROFILE_ENV, value)
        assert not profiling_enabled()

    def test_truthy_value_enables(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        assert profiling_enabled()

    def test_maybe_profiled_returns_fn_unchanged_when_off(
        self, monkeypatch
    ):
        monkeypatch.delenv(PROFILE_ENV, raising=False)

        def fn():
            return 7

        assert maybe_profiled("x")(fn) is fn

    def test_maybe_profiled_wraps_when_on(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        monkeypatch.setenv(SAMPLE_ENV, "1")

        def fn():
            return 7

        wrapped = maybe_profiled("hot.fn")(fn)
        assert wrapped is not fn
        assert wrapped() == 7
        assert wrapped.__wrapped_profile_name__ == "hot.fn"


class TestProfiled:
    def test_counts_every_call_samples_every_nth(self):
        collector = ProfileCollector()
        fn = profiled(
            lambda: None, name="f", sample_every=4,
            collector=collector,
        )
        for _ in range(8):
            fn()
        entry = collector.functions["f"]
        assert entry.calls == 8
        assert entry.sampled == 2
        assert entry.sampled_seconds >= 0.0

    def test_estimated_total_scales_mean_to_all_calls(self):
        collector = ProfileCollector()
        entry = collector.profile("f")
        entry.calls = 100
        entry.sampled = 10
        entry.sampled_seconds = 0.5
        assert entry.mean_seconds == pytest.approx(0.05)
        assert entry.estimated_total_seconds == pytest.approx(5.0)

    def test_sampling_times_even_raising_calls(self):
        collector = ProfileCollector()

        def boom():
            raise RuntimeError("x")

        fn = profiled(
            boom, name="f", sample_every=1, collector=collector
        )
        with pytest.raises(RuntimeError):
            fn()
        entry = collector.functions["f"]
        assert entry.calls == 1
        assert entry.sampled == 1

    def test_preserves_arguments_and_return(self):
        collector = ProfileCollector()
        fn = profiled(
            lambda a, b=1: a + b, name="f", sample_every=1,
            collector=collector,
        )
        assert fn(2, b=3) == 5


class TestCollector:
    def test_empty_property(self):
        collector = ProfileCollector()
        assert collector.empty
        collector.profile("f")
        assert not collector.empty

    def test_to_dict_and_summary(self):
        collector = ProfileCollector()
        entry = collector.profile("hot.fn")
        entry.calls = 32
        entry.sampled = 2
        entry.sampled_seconds = 0.002
        entry.max_seconds = 0.0015
        data = collector.to_dict()
        assert data["hot.fn"]["calls"] == 32
        assert data["hot.fn"]["estimated_total_seconds"] == (
            pytest.approx(0.032)
        )
        lines = collector.summary_lines()
        assert any("hot.fn" in line for line in lines)
