"""Shared fixtures: never leak an observer into other test modules."""

import pytest

from repro.obs import NOOP, set_observer


@pytest.fixture(autouse=True)
def _reset_active_observer():
    yield
    set_observer(NOOP)
