"""Tests for the metrics registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestCounter:
    def test_starts_at_zero(self):
        counter = Counter("hits_total", "hits")
        assert counter.value() == 0

    def test_increments(self):
        counter = Counter("hits_total", "hits")
        counter.inc()
        counter.inc(4)
        assert counter.value() == 5

    def test_rejects_negative(self):
        counter = Counter("hits_total", "hits")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_label_sets_are_independent_series(self):
        counter = Counter("items_total", "items", ("stage",))
        counter.inc(3, stage="load")
        counter.inc(5, stage="filter")
        assert counter.value(stage="load") == 3
        assert counter.value(stage="filter") == 5

    def test_rejects_wrong_labels(self):
        counter = Counter("items_total", "items", ("stage",))
        with pytest.raises(ValueError):
            counter.inc(1)
        with pytest.raises(ValueError):
            counter.inc(1, stage="load", reason="extra")

    def test_bound_counter_shares_storage(self):
        counter = Counter("items_total", "items", ("stage",))
        bound = counter.labels(stage="load")
        bound.inc()
        bound.inc(2)
        assert counter.value(stage="load") == 3

    def test_bound_counter_materializes_zero_series(self):
        counter = Counter("items_total", "items", ("stage",))
        counter.labels(stage="load")
        assert list(counter.samples()) == [((("stage", "load"),), 0)]


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("depth", "queue depth")
        gauge.set(10)
        gauge.add(-3)
        assert gauge.value() == 7

    def test_set_is_idempotent(self):
        gauge = Gauge("dropped", "dropped", ("reason",))
        gauge.set(4, reason="stale-record")
        gauge.set(4, reason="stale-record")
        assert gauge.value(reason="stale-record") == 4


class TestHistogram:
    def test_observations_land_in_first_fitting_bucket(self):
        histogram = Histogram(
            "latency", "latency", buckets=(0.1, 1.0, 10.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(100.0)  # beyond last bound -> +Inf slot
        series = dict(histogram.samples())[()]
        assert series.bucket_counts == [1, 1, 0, 1]
        assert series.count == 3
        assert series.total == pytest.approx(100.55)
        assert series.minimum == pytest.approx(0.05)
        assert series.maximum == pytest.approx(100.0)

    def test_boundary_value_is_inclusive(self):
        histogram = Histogram("latency", "", buckets=(1.0, 2.0))
        histogram.observe(1.0)
        series = dict(histogram.samples())[()]
        assert series.bucket_counts == [1, 0, 0]

    def test_count_and_sum_of_missing_series(self):
        histogram = Histogram("latency", "", ("stage",))
        assert histogram.count(stage="load") == 0
        assert histogram.sum(stage="load") == 0.0

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError):
            Histogram("latency", "", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("hits_total", "hits", ("stage",))
        second = registry.counter("hits_total", "hits", ("stage",))
        assert first is second

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("hits_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("hits_total")

    def test_label_schema_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("hits_total", "", ("stage",))
        with pytest.raises(ValueError, match="label schema"):
            registry.counter("hits_total", "", ("stage", "reason"))

    def test_json_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("items_total", "items", ("stage",)).inc(
            7, stage="load"
        )
        registry.gauge("dropped", "drops", ("reason",)).set(
            3, reason="stale-record"
        )
        histogram = registry.histogram("latency", "lat", ("stage",))
        histogram.observe(0.002, stage="load")
        histogram.observe(2.5, stage="load")

        rebuilt = MetricsRegistry.from_dict(registry.to_dict())
        assert rebuilt.to_dict() == registry.to_dict()
        assert rebuilt.get("items_total").value(stage="load") == 7
        assert rebuilt.get("latency").count(stage="load") == 2
        assert rebuilt.get("latency").sum(stage="load") == (
            pytest.approx(2.502)
        )

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown instrument"):
            MetricsRegistry.from_dict(
                {"x": {"type": "summary", "samples": []}}
            )


class TestPrometheusExport:
    def test_counter_and_gauge_lines(self):
        registry = MetricsRegistry()
        registry.counter("items_total", "items", ("stage",)).inc(
            5, stage="load"
        )
        registry.gauge("depth", "queue depth").set(2.5)
        text = registry.to_prometheus()
        assert "# TYPE items_total counter" in text
        assert '# HELP items_total items' in text
        assert 'items_total{stage="load"} 5' in text
        assert "# TYPE depth gauge" in text
        assert "depth 2.5" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram(
            "latency", "", buckets=(0.1, 1.0)
        )
        histogram.observe(0.05)
        histogram.observe(0.05)
        histogram.observe(0.5)
        histogram.observe(5.0)
        text = registry.to_prometheus()
        assert 'latency_bucket{le="0.1"} 2' in text
        assert 'latency_bucket{le="1"} 3' in text
        assert 'latency_bucket{le="+Inf"} 4' in text
        assert "latency_count 4" in text

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("odd_total", "", ("reason",)).inc(
            1, reason='say "hi"\n'
        )
        text = registry.to_prometheus()
        assert r'reason="say \"hi\"\n"' in text

    def test_empty_registry_exports_empty_string(self):
        assert MetricsRegistry().to_prometheus() == ""

    def test_default_buckets_cover_survey_scale(self):
        assert DEFAULT_BUCKETS[0] <= 0.001
        assert DEFAULT_BUCKETS[-1] >= 300.0


class TestSummaryLines:
    def test_histogram_summary_shows_mean(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", "", ("stage",))
        histogram.observe(1.0, stage="load")
        histogram.observe(3.0, stage="load")
        lines = registry.summary_lines()
        assert any(
            "count=2" in line and "mean=2" in line for line in lines
        )
