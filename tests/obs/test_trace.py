"""Tests for span-based tracing."""

import pytest

from repro.obs.trace import (
    NullTracer,
    Span,
    Tracer,
    render_trace,
    render_trace_dict,
)


class TestTracer:
    def test_single_span_records_timing(self):
        tracer = Tracer()
        with tracer.span("load", path="x.jsonl") as span:
            pass
        assert tracer.roots == [span]
        assert span.name == "load"
        assert span.attrs == {"path": "x.jsonl"}
        assert span.wall_seconds >= 0.0
        assert span.error is None

    def test_spans_nest(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner-a"):
                pass
            with tracer.span("inner-b"):
                pass
        assert len(tracer.roots) == 1
        outer = tracer.roots[0]
        assert [c.name for c in outer.children] == [
            "inner-a", "inner-b",
        ]

    def test_current_tracks_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.current() is None
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
        assert tracer.current() is None

    def test_exception_marks_span_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        outer = tracer.roots[0]
        assert outer.error == "RuntimeError"
        assert outer.children[0].error == "RuntimeError"
        # The stack unwound cleanly: new spans become roots again.
        with tracer.span("after"):
            pass
        assert [r.name for r in tracer.roots] == ["outer", "after"]

    def test_set_attr_after_start(self):
        tracer = Tracer()
        with tracer.span("stage") as span:
            span.set_attr("items", 42)
        assert span.attrs["items"] == 42

    def test_find_walks_all_roots(self):
        tracer = Tracer()
        with tracer.span("a"):
            with tracer.span("x"):
                pass
        with tracer.span("x"):
            pass
        assert len(tracer.find("x")) == 2

    def test_dict_round_trip(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("outer", period="2019-09"):
                with tracer.span("inner"):
                    raise ValueError("x")
        rebuilt = Tracer.from_dict(tracer.to_dict())
        assert rebuilt.to_dict() == tracer.to_dict()
        assert rebuilt.roots[0].attrs == {"period": "2019-09"}
        assert rebuilt.roots[0].children[0].error == "ValueError"


class TestNullTracer:
    def test_span_is_shared_noop(self):
        tracer = NullTracer()
        first = tracer.span("a", asn=1)
        second = tracer.span("b")
        assert first is second
        with first as span:
            span.set_attr("ignored", 1)  # absorbed silently
        assert tracer.roots == []
        assert tracer.to_dict() == []
        assert not tracer.enabled

    def test_exceptions_still_propagate(self):
        tracer = NullTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("x"):
                raise RuntimeError("boom")


def _span(name, wall=0.0, children=(), **attrs):
    span = Span(name, attrs)
    span.wall_seconds = wall
    span.children = list(children)
    return span


class TestRenderTrace:
    def test_empty_tracer(self):
        assert render_trace(Tracer()) == "(no spans recorded)"

    def test_simple_tree_indents_children(self):
        tracer = Tracer()
        with tracer.span("survey-period"):
            with tracer.span("load"):
                pass
        text = render_trace(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("survey-period")
        assert lines[1].startswith("  load")

    def test_repeated_siblings_collapse(self):
        tracer = Tracer()
        with tracer.span("classify-dataset"):
            for asn in range(10):
                with tracer.span("classify", asn=asn):
                    pass
        text = render_trace(tracer, collapse_over=4)
        assert "classify ×10" in text
        assert text.count("classify") == 2  # parent + collapsed line

    def test_interleaved_siblings_collapse_by_name(self):
        # aggregate/spectral alternate under the per-AS fan-out; they
        # must still collapse even though no consecutive run forms.
        tracer = Tracer()
        with tracer.span("parent"):
            for _ in range(5):
                with tracer.span("aggregate"):
                    pass
                with tracer.span("spectral"):
                    pass
        text = render_trace(tracer, collapse_over=4)
        assert "aggregate ×5" in text
        assert "spectral ×5" in text

    def test_small_groups_render_individually(self):
        tracer = Tracer()
        with tracer.span("parent"):
            with tracer.span("a"):
                pass
            with tracer.span("a"):
                pass
        text = render_trace(tracer, collapse_over=4)
        assert "×" not in text

    def test_collapsed_line_reports_errors(self):
        tracer = Tracer()
        with tracer.span("parent"):
            for index in range(6):
                try:
                    with tracer.span("work", index=index):
                        if index == 3:
                            raise RuntimeError("x")
                except RuntimeError:
                    pass
        text = render_trace(tracer, collapse_over=4)
        assert "work ×6" in text
        assert "1 errored" in text

    def test_render_trace_dict_round_trip(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert render_trace_dict(tracer.to_dict()) == (
            render_trace(tracer)
        )
