"""Tests for the Observability facade, NOOP path and report."""

import io

import pytest

from repro.obs import (
    DURATION,
    ITEMS_IN,
    ITEMS_OUT,
    NOOP,
    Observability,
    ProfileCollector,
    QUALITY_DROPPED,
    QUALITY_INGESTED,
    StructuredLogger,
    build_report,
    get_observer,
    load_report,
    observed,
    render_report,
    set_observer,
    write_report,
)
from repro.quality import DataQualityReport, DropReason


class TestActiveObserver:
    def test_default_is_noop(self):
        assert get_observer() is NOOP
        assert not NOOP.enabled

    def test_observed_installs_and_restores(self):
        with observed() as obs:
            assert get_observer() is obs
            assert obs.enabled
        assert get_observer() is NOOP

    def test_observed_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with observed():
                raise RuntimeError("x")
        assert get_observer() is NOOP

    def test_set_observer_none_means_noop(self):
        set_observer(Observability())
        set_observer(None)
        assert get_observer() is NOOP


class TestObservability:
    def test_stage_span_feeds_duration_histogram(self):
        obs = Observability()
        with obs.stage_span("load", path="x") as span:
            span.set_attr("records", 3)
        histogram = obs.metrics.get(DURATION)
        assert histogram.count(stage="load") == 1
        assert obs.tracer.roots[0].attrs["records"] == 3

    def test_stage_span_records_duration_even_on_error(self):
        obs = Observability()
        with pytest.raises(RuntimeError):
            with obs.stage_span("load"):
                raise RuntimeError("x")
        assert obs.metrics.get(DURATION).count(stage="load") == 1
        assert obs.tracer.roots[0].error == "RuntimeError"

    def test_items_in_out(self):
        obs = Observability()
        obs.items_in("core-filtering", 250)
        obs.items_out("core-filtering", 240)
        assert obs.metrics.get(ITEMS_IN).value(
            stage="core-filtering"
        ) == 250
        assert obs.metrics.get(ITEMS_OUT).value(
            stage="core-filtering"
        ) == 240

    def test_record_quality_mirrors_ledger_idempotently(self):
        obs = Observability()
        quality = DataQualityReport()
        quality.ingest("io-load-traceroutes", 10)
        quality.drop(
            "io-load-traceroutes", DropReason.CORRUPT_LINE, n=2
        )
        obs.record_quality(quality)
        obs.record_quality(quality)  # gauges: no double counting
        assert obs.metrics.get(QUALITY_INGESTED).value(
            stage="io-load-traceroutes"
        ) == 10
        assert obs.metrics.get(QUALITY_DROPPED).value(
            stage="io-load-traceroutes", reason="corrupt-line"
        ) == 2

    def test_logger_default_is_silent(self):
        obs = Observability()
        obs.logger.info("event")  # no sink, no crash

    def test_custom_logger_receives_events(self):
        sink = io.StringIO()
        obs = Observability(
            logger=StructuredLogger(sink=sink, clock=lambda: 0.0)
        )
        obs.logger.bind(stage="s").info("go")
        assert '"event": "go"' in sink.getvalue()


class TestNoopObservability:
    def test_spans_are_noops_but_propagate(self):
        with NOOP.stage_span("load") as span:
            span.set_attr("ignored", 1)
        with pytest.raises(RuntimeError):
            with NOOP.span("x"):
                raise RuntimeError("boom")

    def test_instruments_absorb_everything(self):
        counter = NOOP.counter("x_total", "", ("stage",))
        counter.inc(5, stage="load")
        counter.labels(stage="load").inc()
        NOOP.gauge("g").set(1)
        NOOP.histogram("h").observe(0.5)
        NOOP.items_in("s", 10)
        NOOP.items_out("s", 10)
        NOOP.record_quality(DataQualityReport())


class TestReport:
    def _observer_with_data(self):
        obs = Observability()
        with obs.stage_span("load"):
            pass
        obs.items_in("io-load", 5)
        return obs

    def test_build_report_shape(self):
        profile = ProfileCollector()
        report = build_report(
            self._observer_with_data(), profile=profile
        )
        assert report["schema"] == 1
        assert ITEMS_IN in report["metrics"]
        assert report["trace"][0]["name"] == "load"
        assert report["profile"] == {}

    def test_write_and_load_round_trip(self, tmp_path):
        obs = self._observer_with_data()
        path = write_report(obs, tmp_path / "metrics.json")
        data = load_report(path)
        assert data == build_report(obs, profile=ProfileCollector())

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"schema": 99}')
        with pytest.raises(ValueError, match="schema"):
            load_report(path)

    def test_render_report_sections(self):
        profile = ProfileCollector()
        entry = profile.profile("hot.fn")
        entry.calls = 4
        entry.sampled = 1
        entry.sampled_seconds = 0.001
        report = build_report(
            self._observer_with_data(), profile=profile
        )
        text = render_report(report)
        assert "== trace ==" in text
        assert "== metrics ==" in text
        assert "== profile ==" in text
        assert "load" in text
        assert "hot.fn" in text

    def test_render_empty_report(self):
        text = render_report({"schema": 1})
        assert "(no spans recorded)" in text
        assert "(no metrics recorded)" in text
        assert "== profile ==" not in text
