"""TelemetrySnapshot: the worker-side freeze and parent-side graft."""

import pickle

from repro.obs import (
    NOOP,
    Observability,
    TelemetrySnapshot,
    TraceContext,
)


def _worker_observer(trace_id="feedbeef00000000"):
    """A capturing observer the way ``_shard_observer`` builds one."""
    observer = Observability()
    observer.tracer.trace_id = trace_id
    observer.items_in("load", 5)
    observer.items_out("load", 4)
    with observer.span("classify", asn=64500):
        with observer.span("spectral"):
            pass
    return observer


class TestCapture:
    def test_freezes_metrics_and_spans(self):
        context = TraceContext("feedbeef00000000", "aa" * 8)
        snapshot = TelemetrySnapshot.capture(
            _worker_observer(), shard=2, context=context
        )
        assert snapshot.shard == 2
        assert snapshot.trace_id == "feedbeef00000000"
        assert snapshot.parent_span_id == "aa" * 8
        samples = snapshot.metrics["pipeline_items_in_total"]["samples"]
        assert samples == [{"labels": {"stage": "load"}, "value": 5}]
        assert [root["name"] for root in snapshot.spans] == ["classify"]
        assert snapshot.spans[0]["children"][0]["name"] == "spectral"

    def test_without_context_keeps_worker_trace_id(self):
        snapshot = TelemetrySnapshot.capture(
            _worker_observer("aceace0000000000"), shard=0
        )
        assert snapshot.trace_id == "aceace0000000000"
        assert snapshot.parent_span_id is None

    def test_snapshot_is_picklable(self):
        # It rides inside ShardResult through the process pool.
        snapshot = TelemetrySnapshot.capture(_worker_observer(), shard=1)
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.metrics == snapshot.metrics
        assert clone.spans == snapshot.spans


class TestMergeInto:
    def test_metrics_sum_into_parent(self):
        parent = Observability()
        parent.items_in("load", 10)
        snapshot = TelemetrySnapshot.capture(_worker_observer(), shard=0)
        snapshot.merge_into(parent)
        assert parent.metrics.counter(
            "pipeline_items_in_total", "", ("stage",)
        ).value(stage="load") == 15

    def test_spans_graft_under_parent_span_with_shard_attr(self):
        parent = Observability()
        with parent.span("survey-shard") as marker:
            pass
        snapshot = TelemetrySnapshot.capture(_worker_observer(), shard=3)
        snapshot.merge_into(parent, parent_span=marker)
        assert [c.name for c in marker.children] == ["classify"]
        assert marker.children[0].attrs["shard"] == 3
        # Grafted, not re-rooted: the parent's root list is unchanged.
        assert parent.tracer.roots == [marker]

    def test_spans_become_roots_without_parent_span(self):
        parent = Observability()
        snapshot = TelemetrySnapshot.capture(_worker_observer(), shard=1)
        snapshot.merge_into(parent)
        assert [root.name for root in parent.tracer.roots] == ["classify"]

    def test_noop_parent_is_untouched(self):
        snapshot = TelemetrySnapshot.capture(_worker_observer(), shard=0)
        snapshot.merge_into(NOOP)  # must not raise, must not record
        assert NOOP.tracer.to_dict() == []

    def test_empty_snapshot_merges_cleanly(self):
        parent = Observability()
        TelemetrySnapshot().merge_into(parent)
        assert parent.tracer.roots == []


class TestTraceContext:
    def test_tracer_context_carries_current_span(self):
        observer = Observability()
        with observer.span("dispatch") as span:
            context = observer.tracer.context()
        assert context.trace_id == observer.tracer.trace_id
        assert context.parent_span_id == span.span_id

    def test_context_outside_any_span_has_no_parent(self):
        observer = Observability()
        context = observer.tracer.context()
        assert context.parent_span_id is None

    def test_null_tracer_yields_no_context(self):
        assert NOOP.tracer.context() is None
