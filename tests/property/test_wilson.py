"""Property-based tests for the Wilson rank-based confidence band."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.stats import wilson_rank_bounds, wilson_score_interval

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6,
    allow_nan=False, allow_infinity=False,
)


class TestRankBounds:
    @pytest.mark.parametrize("n", [-3, 0, 1])
    def test_tiny_n_is_nan(self, n):
        lo, hi = wilson_rank_bounds(n)
        assert np.isnan(lo) and np.isnan(hi)

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 1.5])
    def test_confidence_domain_enforced(self, bad):
        with pytest.raises(ValueError):
            wilson_rank_bounds(10, confidence=bad)

    @given(n=st.integers(min_value=2, max_value=10_000))
    def test_bounds_bracket_the_median_proportion(self, n):
        lo, hi = wilson_rank_bounds(n)
        assert 0.0 < lo < 0.5 < hi < 1.0

    @given(n=st.integers(min_value=2, max_value=5_000))
    def test_band_narrows_as_n_grows(self, n):
        lo_n, hi_n = wilson_rank_bounds(n)
        lo_2n, hi_2n = wilson_rank_bounds(2 * n)
        assert hi_2n - lo_2n < hi_n - lo_n

    @given(n=st.integers(min_value=2, max_value=5_000))
    def test_band_widens_with_confidence(self, n):
        lo_95, hi_95 = wilson_rank_bounds(n, 0.95)
        lo_99, hi_99 = wilson_rank_bounds(n, 0.99)
        assert lo_99 < lo_95 and hi_95 < hi_99


class TestScoreInterval:
    @given(samples=st.lists(finite_floats, max_size=1))
    def test_under_two_samples_is_nan(self, samples):
        lo, hi = wilson_score_interval(samples)
        assert np.isnan(lo) and np.isnan(hi)

    @given(samples=st.lists(finite_floats, min_size=2, max_size=200))
    def test_band_contains_sample_median(self, samples):
        lo, hi = wilson_score_interval(samples)
        median = float(np.median(samples))
        assert lo <= median + 1e-9
        assert median - 1e-9 <= hi

    @given(samples=st.lists(finite_floats, min_size=2, max_size=200))
    def test_band_endpoints_are_observed_values(self, samples):
        lo, hi = wilson_score_interval(samples)
        assert lo in samples
        assert hi in samples
        assert lo <= hi

    @given(
        samples=st.lists(finite_floats, min_size=2, max_size=200),
        shift=finite_floats,
    )
    def test_shift_equivariant(self, samples, shift):
        lo, hi = wilson_score_interval(samples)
        lo_s, hi_s = wilson_score_interval(
            [s + shift for s in samples]
        )
        assert lo_s == pytest.approx(lo + shift, abs=1e-6)
        assert hi_s == pytest.approx(hi + shift, abs=1e-6)

    @given(samples=st.lists(finite_floats, min_size=2, max_size=100))
    def test_order_invariant(self, samples):
        shuffled = list(reversed(samples))
        assert wilson_score_interval(samples) == \
            wilson_score_interval(shuffled)

    @settings(deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**32 - 1))
    def test_coverage_of_true_median(self, seed):
        """The 95% band covers the true median much more often than
        not.  One draw per seed; hypothesis aggregates the trials."""
        rng = np.random.default_rng(seed)
        samples = rng.normal(10.0, 2.0, size=101)
        lo, hi = wilson_score_interval(samples, 0.95)
        # Not a strict per-case guarantee, so assert the weak bound
        # that never fails in practice: the band sits inside a wide
        # envelope around the true median and is properly ordered.
        assert lo <= hi
        assert 10.0 - 2.0 <= lo <= 10.0 + 2.0 or lo <= 10.0 <= hi

    def test_coverage_rate_empirical(self):
        """Aggregate coverage: ~95% of bands contain the true median
        (binomially, 500 trials at p=.95 stay above .90 w.h.p.)."""
        rng = np.random.default_rng(1234)
        covered = 0
        trials = 500
        for _ in range(trials):
            samples = rng.normal(0.0, 1.0, size=75)
            lo, hi = wilson_score_interval(samples, 0.95)
            covered += lo <= 0.0 <= hi
        assert covered / trials >= 0.90
