"""Property-based tests on cross-module pipeline invariants."""

import datetime as dt

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DAILY_FREQUENCY_CPH,
    LastMileDataset,
    ProbeBinSeries,
    aggregate_population,
    classify_signal,
    fill_gaps,
    probe_queuing_delay,
    welch_periodogram,
)
from repro.core.classify import Severity
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("prop", dt.datetime(2019, 9, 2), 5)
GRID = TimeGrid(PERIOD)
BINS = GRID.num_bins


@st.composite
def probe_series(draw, prb_id=0):
    """A random-but-plausible per-probe median series."""
    base = draw(st.floats(min_value=0.5, max_value=20.0))
    amplitude = draw(st.floats(min_value=0.0, max_value=5.0))
    phase = draw(st.floats(min_value=0.0, max_value=1.0))
    noise_seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(noise_seed)
    t = np.arange(BINS) / GRID.bins_per_day
    medians = (
        base
        + amplitude * (1 + np.sin(2 * np.pi * (t + phase)))
        + rng.normal(0, 0.05, BINS)
    )
    counts = np.full(BINS, 24)
    # Random outage gaps.
    gaps = draw(st.integers(min_value=0, max_value=3))
    for _ in range(gaps):
        start = draw(st.integers(min_value=0, max_value=BINS - 5))
        counts[start:start + 4] = 0
    return ProbeBinSeries(
        prb_id=prb_id,
        median_rtt_ms=np.where(counts > 0, medians, np.nan),
        traceroute_counts=counts,
    )


@st.composite
def datasets(draw, min_probes=2, max_probes=6):
    count = draw(st.integers(min_value=min_probes, max_value=max_probes))
    dataset = LastMileDataset(grid=GRID)
    for prb_id in range(count):
        dataset.add(draw(probe_series(prb_id=prb_id)))
    return dataset


class TestQueuingDelayInvariants:
    @settings(deadline=None, max_examples=30)
    @given(probe_series())
    def test_nonnegative_with_zero_minimum(self, series):
        delay = probe_queuing_delay(series)
        valid = ~np.isnan(delay)
        if valid.any():
            assert np.nanmin(delay) == pytest.approx(0.0)
            assert np.all(delay[valid] >= 0.0)

    @settings(deadline=None, max_examples=30)
    @given(probe_series(), st.floats(min_value=-5.0, max_value=50.0))
    def test_invariant_under_baseline_shift(self, series, shift):
        """Adding a constant to all medians (a different propagation
        delay) must not change the queueing-delay series."""
        shifted = ProbeBinSeries(
            prb_id=series.prb_id,
            median_rtt_ms=series.median_rtt_ms + shift,
            traceroute_counts=series.traceroute_counts,
        )
        original = probe_queuing_delay(series)
        after = probe_queuing_delay(shifted)
        assert np.allclose(original, after, equal_nan=True)


class TestAggregationInvariants:
    @settings(deadline=None, max_examples=20)
    @given(datasets(), st.randoms(use_true_random=False))
    def test_permutation_invariance(self, dataset, rnd):
        ids = dataset.probe_ids()
        shuffled = list(ids)
        rnd.shuffle(shuffled)
        a = aggregate_population(dataset, ids)
        b = aggregate_population(dataset, shuffled)
        assert np.allclose(a.delay_ms, b.delay_ms, equal_nan=True)

    @settings(deadline=None, max_examples=20)
    @given(datasets(min_probes=3))
    def test_median_bounded_by_probe_extremes(self, dataset):
        signal = aggregate_population(dataset)
        import warnings

        stacked = np.vstack([
            probe_queuing_delay(s) for s in dataset.series.values()
        ])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            lower = np.nanmin(stacked, axis=0)
            upper = np.nanmax(stacked, axis=0)
        valid = ~np.isnan(signal.delay_ms)
        assert np.all(
            signal.delay_ms[valid] >= lower[valid] - 1e-9
        )
        assert np.all(
            signal.delay_ms[valid] <= upper[valid] + 1e-9
        )

    @settings(deadline=None, max_examples=20)
    @given(datasets())
    def test_duplicated_population_same_median(self, dataset):
        """Listing every probe twice must not change the median."""
        ids = dataset.probe_ids()
        a = aggregate_population(dataset, ids)
        b = aggregate_population(dataset, ids + ids)
        assert np.allclose(a.delay_ms, b.delay_ms, equal_nan=True)


class TestSpectralInvariants:
    @settings(deadline=None, max_examples=20)
    @given(probe_series())
    def test_amplitudes_nonnegative(self, series):
        delay = probe_queuing_delay(series)
        periodogram = welch_periodogram(delay, GRID.bin_seconds)
        assert np.all(periodogram.amplitude_ms >= 0.0)

    @settings(deadline=None, max_examples=20)
    @given(
        st.floats(min_value=0.05, max_value=3.0),
        st.floats(min_value=1.5, max_value=4.0),
    )
    def test_classification_monotone_in_scale(self, amplitude, factor):
        """Scaling a signal up never lowers its severity class."""
        t = np.arange(BINS) / GRID.bins_per_day
        signal = amplitude * (1 + np.sin(2 * np.pi * t))
        small = classify_signal(signal, GRID.bin_seconds).severity
        large = classify_signal(
            signal * factor, GRID.bin_seconds
        ).severity
        order = [Severity.NONE, Severity.LOW, Severity.MILD,
                 Severity.SEVERE]
        assert order.index(large) >= order.index(small)

    @settings(deadline=None, max_examples=30)
    @given(probe_series())
    def test_fill_gaps_idempotent(self, series):
        """One interpolation pass removes every gap, so a second pass
        must be the identity."""
        filled = fill_gaps(series.median_rtt_ms)
        assert not np.isnan(filled).any()
        assert np.array_equal(fill_gaps(filled), filled)

    @settings(deadline=None, max_examples=20)
    @given(
        st.floats(min_value=0.3, max_value=3.0),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=0, max_value=2**31),
    )
    def test_daily_bin_stable_under_whole_day_shift(
        self, amplitude, days, seed
    ):
        """Circularly rotating a daily-periodic signal by whole days
        realigns it with itself, so the periodogram must keep the
        daily bin as its prominent component with the same power."""
        rng = np.random.default_rng(seed)
        t = np.arange(BINS) / GRID.bins_per_day
        signal = (
            amplitude * (1 + np.sin(2 * np.pi * t))
            + rng.normal(0, 0.02 * amplitude, BINS)
        )
        rolled = np.roll(signal, days * GRID.bins_per_day)
        base = welch_periodogram(signal, GRID.bin_seconds)
        moved = welch_periodogram(rolled, GRID.bin_seconds)
        freq_a, _ = base.prominent()
        freq_b, _ = moved.prominent()
        assert freq_a == freq_b
        assert freq_a == pytest.approx(DAILY_FREQUENCY_CPH, rel=0.01)
        assert moved.amplitude_at(DAILY_FREQUENCY_CPH) == pytest.approx(
            base.amplitude_at(DAILY_FREQUENCY_CPH), rel=0.05
        )

    @settings(deadline=None, max_examples=30)
    @given(
        probe_series(),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_amplitude_scales_linearly(self, series, factor):
        """Welch amplitude is homogeneous: scaling the signal by c
        scales every spectral amplitude by c."""
        delay = fill_gaps(probe_queuing_delay(series))
        base = welch_periodogram(delay, GRID.bin_seconds)
        scaled = welch_periodogram(delay * factor, GRID.bin_seconds)
        assert np.array_equal(
            scaled.frequencies_cph, base.frequencies_cph
        )
        assert np.allclose(
            scaled.amplitude_ms, factor * base.amplitude_ms,
            rtol=1e-9, atol=1e-12,
        )


class TestEstimationInvariants:
    @settings(deadline=None, max_examples=10)
    @given(st.randoms(use_true_random=False))
    def test_traceroute_order_irrelevant(self, rnd):
        """§2.1 estimation is a pure function of the result *set*."""
        from repro.core import estimate_probe_series
        from tests.core.test_lastmile import typical_traceroute

        results = [
            typical_traceroute(
                timestamp=i * 400.0, public_rtt=3.0 + (i % 5)
            )
            for i in range(40)
        ]
        shuffled = list(results)
        rnd.shuffle(shuffled)
        grid = TimeGrid(
            MeasurementPeriod("o", dt.datetime(2019, 9, 2), 1)
        )
        a = estimate_probe_series(results, grid)
        b = estimate_probe_series(shuffled, grid)
        assert np.allclose(
            a.median_rtt_ms, b.median_rtt_ms, equal_nan=True
        )
        assert np.array_equal(a.traceroute_counts, b.traceroute_counts)
