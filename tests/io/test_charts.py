"""Tests for the SVG chart writer."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.io import ChartStyle, bar_chart_svg, line_chart_svg

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg_text):
    return ET.fromstring(svg_text)


class TestLineChart:
    def test_well_formed_with_series(self):
        svg = line_chart_svg(
            {
                "a": ([0, 1, 2, 3], [0.0, 1.0, 0.5, 2.0]),
                "b": ([0, 1, 2, 3], [2.0, 1.5, 1.0, 0.5]),
            },
            title="Demo", x_label="time", y_label="ms",
        )
        root = parse(svg)
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) >= 2
        texts = [t.text for t in root.iter(f"{SVG_NS}text")]
        assert "Demo" in texts
        assert "a" in texts and "b" in texts
        assert "time" in texts and "ms" in texts

    def test_nan_breaks_line(self):
        svg = line_chart_svg(
            {"gap": ([0, 1, 2, 3, 4],
                     [1.0, 1.2, np.nan, 1.1, 1.3])},
        )
        root = parse(svg)
        # Legend line + two segments.
        polylines = root.findall(f"{SVG_NS}polyline")
        assert len(polylines) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            line_chart_svg({})
        with pytest.raises(ValueError):
            line_chart_svg({"x": ([0, 1], [1.0])})

    def test_all_nan_renders_placeholder(self):
        svg = line_chart_svg(
            {"x": ([0.0, 1.0], [float("nan"), float("nan")])},
            title="Degraded", x_label="t", y_label="ms",
        )
        root = parse(svg)
        texts = [t.text for t in root.iter(f"{SVG_NS}text")]
        assert "no valid data" in texts
        assert "Degraded" in texts and "x" in texts
        assert not root.findall(f"{SVG_NS}polyline")

    def test_empty_arrays_render_placeholder(self):
        svg = line_chart_svg({"x": ([], [])})
        texts = [t.text for t in parse(svg).iter(f"{SVG_NS}text")]
        assert "no valid data" in texts

    def test_custom_style_dimensions(self):
        style = ChartStyle(width=320, height=200)
        svg = line_chart_svg(
            {"a": ([0, 1], [0.0, 1.0])}, style=style
        )
        root = parse(svg)
        assert root.get("width") == "320"
        assert root.get("height") == "200"


class TestBarChart:
    def test_bars_and_labels(self):
        svg = bar_chart_svg(
            ["none", "low", "mild"], [10, 3, 1],
            title="Classes", y_label="ASes",
        )
        root = parse(svg)
        # Background + 3 bar rects.
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) == 4
        texts = [t.text for t in root.iter(f"{SVG_NS}text")]
        assert "none" in texts and "10" in texts

    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart_svg(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            bar_chart_svg([], [])

    def test_nan_bar_skipped(self):
        svg = bar_chart_svg(["a", "b"], [1.0, float("nan")])
        root = parse(svg)
        rects = root.findall(f"{SVG_NS}rect")
        assert len(rects) == 2  # background + one bar


class TestSiteIntegration:
    def test_export_site_includes_svgs(self, tmp_path):
        from tests.io.test_surveys import make_result, make_ranking
        from repro.core import SurveySuite
        from repro.io import export_site

        suite = SurveySuite()
        suite.add(make_result())
        written = export_site(suite, tmp_path / "site", make_ranking())
        amp = tmp_path / "site" / "survey-2019-09-amplitudes.svg"
        classes = tmp_path / "site" / "survey-2019-09-classes.svg"
        assert amp.exists() and classes.exists()
        parse(amp.read_text())
        parse(classes.read_text())
        assert "svg-amplitudes-2019-09" in written
