"""Tests for dataset persistence."""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import AtlasPlatform, ProbeVersion
from repro.core import LastMileDataset, ProbeBinSeries
from repro.io import (
    load_lastmile,
    load_traceroutes,
    save_lastmile,
    save_traceroutes,
)
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.timebase import MeasurementPeriod, TimeGrid
from repro.topology import ProvisioningPolicy, World

PERIOD = MeasurementPeriod("io-test", dt.datetime(2019, 9, 2), 1)


@pytest.fixture(scope="module")
def platform_and_probes():
    world = World(seed=31)
    isp = world.add_isp(
        ASInfo(
            64500, "IO", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_OWN],
        ),
        provisioning=ProvisioningPolicy(),
    )
    world.add_default_targets()
    world.finalize()
    platform = AtlasPlatform(world)
    platform.config.outage_rate_per_day = 0.0
    probes = platform.deploy_probes_on_isp(
        isp, 2, version=ProbeVersion.V3
    )
    return platform, probes


class TestTraceroutePersistence:
    def test_roundtrip(self, platform_and_probes, tmp_path):
        platform, probes = platform_and_probes
        dataset = platform.run_period(PERIOD, probes)
        path = tmp_path / "results.jsonl"
        rows = save_traceroutes(dataset, path)
        assert rows == len(dataset)

        restored = load_traceroutes(path)
        assert len(restored) == len(dataset)
        assert restored.probe_ids() == dataset.probe_ids()
        prb = dataset.probe_ids()[0]
        assert restored.for_probe(prb)[0] == dataset.for_probe(prb)[0]
        # Metadata sidecar restored too.
        assert restored.probe_meta[prb] == dataset.probe_meta[prb]

    def test_load_without_sidecar(self, platform_and_probes, tmp_path):
        platform, probes = platform_and_probes
        dataset = platform.run_period(PERIOD, probes)
        path = tmp_path / "bare.jsonl"
        save_traceroutes(dataset, path)
        (tmp_path / "bare.jsonl.meta.json").unlink()
        restored = load_traceroutes(path)
        assert len(restored) == len(dataset)
        assert restored.probe_meta == {}


class TestLastMilePersistence:
    def test_roundtrip(self, platform_and_probes, tmp_path):
        platform, probes = platform_and_probes
        dataset = platform.run_period_binned(PERIOD, probes)
        base = tmp_path / "lastmile"
        save_lastmile(dataset, base)
        restored = load_lastmile(base)

        assert restored.probe_ids() == dataset.probe_ids()
        assert restored.grid.num_bins == dataset.grid.num_bins
        assert restored.grid.period.name == PERIOD.name
        for prb_id in dataset.probe_ids():
            original = dataset.series[prb_id]
            loaded = restored.series[prb_id]
            assert np.allclose(
                original.median_rtt_ms, loaded.median_rtt_ms,
                equal_nan=True,
            )
            assert np.array_equal(
                original.traceroute_counts, loaded.traceroute_counts
            )
            assert restored.probe_meta[prb_id] == (
                dataset.probe_meta[prb_id]
            )

    def test_empty_dataset(self, tmp_path):
        grid = TimeGrid(PERIOD)
        dataset = LastMileDataset(grid=grid)
        base = tmp_path / "empty"
        save_lastmile(dataset, base)
        restored = load_lastmile(base)
        assert len(restored) == 0
        assert restored.grid.num_bins == grid.num_bins

    def test_nan_preserved(self, tmp_path):
        grid = TimeGrid(PERIOD)
        medians = np.full(grid.num_bins, 5.0)
        medians[3] = np.nan
        dataset = LastMileDataset(grid=grid)
        dataset.add(ProbeBinSeries(
            prb_id=1, median_rtt_ms=medians,
            traceroute_counts=np.full(grid.num_bins, 24),
        ))
        base = tmp_path / "nan"
        save_lastmile(dataset, base)
        restored = load_lastmile(base)
        assert np.isnan(restored.series[1].median_rtt_ms[3])


class TestLenientLoading:
    """``strict=False``: corrupted corpora load with exact accounting."""

    def corrupted_file(self, platform_and_probes, tmp_path, seed=17):
        from repro.faults import (
            CorruptLines,
            DuplicateRecords,
            FaultLog,
            GarbageRTT,
            inject_lines,
            inject_records,
        )

        platform, probes = platform_and_probes
        dataset = platform.run_period(PERIOD, probes)
        path = tmp_path / "dirty.jsonl"
        save_traceroutes(dataset, path)
        records = [
            result.to_json()
            for prb_id in dataset.probe_ids()
            for result in dataset.for_probe(prb_id)
        ]
        log = FaultLog()
        out, _ = inject_records(
            records, [DuplicateRecords(0.05), GarbageRTT(0.01)],
            seed=seed, log=log,
        )
        import json as json_module

        lines, _ = inject_lines(
            [json_module.dumps(r) for r in out],
            [CorruptLines(0.03)], seed=seed + 1, log=log,
        )
        path.write_text("\n".join(lines) + "\n")
        return dataset, path, log

    def test_strict_load_raises_on_corruption(
        self, platform_and_probes, tmp_path
    ):
        _, path, _ = self.corrupted_file(platform_and_probes, tmp_path)
        with pytest.raises(Exception):
            load_traceroutes(path)  # strict is the default

    def test_lenient_roundtrip_accounts_exactly(
        self, platform_and_probes, tmp_path
    ):
        from repro.quality import DropReason

        clean, path, log = self.corrupted_file(
            platform_and_probes, tmp_path
        )
        restored = load_traceroutes(path, strict=False)
        quality = restored.quality
        assert quality is not None
        # Only lines the corruptor did not touch survive as records;
        # corrupt-lines may hit injected duplicates, so dropped
        # duplicates can undercount injected ones — never overcount.
        assert quality.dropped_count(DropReason.CORRUPT_LINE) == (
            log.count("corrupt-lines")
        )
        assert quality.dropped_count(DropReason.DUPLICATE_RECORD) <= (
            log.count("duplicates")
        )
        assert quality.degraded_count(DropReason.GARBAGE_RTT) <= (
            log.count("garbage-rtt")
        )
        # Conservation: every ingested line is kept or dropped.
        kept = sum(len(restored.for_probe(p))
                   for p in restored.probe_ids())
        assert quality.stage("io.load_traceroutes").ingested == (
            kept + quality.total_dropped
        )
        # Surviving records match the clean originals.
        for prb_id in restored.probe_ids():
            clean_by_key = {
                (r.msm_id, r.timestamp): r
                for r in clean.for_probe(prb_id)
            }
            for result in restored.for_probe(prb_id):
                original = clean_by_key[(result.msm_id, result.timestamp)]
                assert result.prb_id == original.prb_id
                assert len(result.hops) == len(original.hops)

    def test_lenient_on_clean_file_is_clean(
        self, platform_and_probes, tmp_path
    ):
        platform, probes = platform_and_probes
        dataset = platform.run_period(PERIOD, probes)
        path = tmp_path / "pristine.jsonl"
        save_traceroutes(dataset, path)
        restored = load_traceroutes(path, strict=False)
        # Nothing dropped; the only allowed repair is the stream-order
        # normalization (the simulator interleaves measurements, so a
        # probe's stored stream may be legitimately non-monotonic).
        from repro.quality import DropReason

        assert restored.quality.total_dropped == 0
        assert restored.quality.total_degraded == (
            restored.quality.degraded_count(DropReason.OUT_OF_ORDER)
        )
        assert len(restored) == len(dataset)
        prb = dataset.probe_ids()[0]
        restored_stamps = [
            r.timestamp for r in restored.for_probe(prb)
        ]
        assert restored_stamps == sorted(restored_stamps)
        assert sorted(
            r.timestamp for r in dataset.for_probe(prb)
        ) == restored_stamps
