"""Tests for survey export (the public-site artifacts)."""

import datetime as dt

import numpy as np
import pytest

from repro.apnic import EyeballRanking
from repro.core import (
    Classification,
    Severity,
    SurveyResult,
    SurveySuite,
)
from repro.core.spectral import SpectralMarkers
from repro.core.survey import ASReport
from repro.io import (
    export_site,
    load_suite,
    save_suite,
    survey_from_dict,
    survey_to_csv,
    survey_to_dict,
    survey_to_markdown,
)
from repro.netbase import ASInfo, ASRegistry, ASRole
from repro.timebase import MeasurementPeriod


def report(asn, severity, amplitude=0.0, probes=5):
    markers = None
    if severity is not Severity.NONE or amplitude:
        markers = SpectralMarkers(
            prominent_frequency_cph=1 / 24,
            prominent_amplitude_ms=amplitude,
            daily_amplitude_ms=amplitude,
        )
    return ASReport(
        asn=asn, probe_count=probes,
        classification=Classification(severity, markers),
    )


def make_result():
    result = SurveyResult(
        period=MeasurementPeriod("2019-09", dt.datetime(2019, 9, 1), 15)
    )
    result.reports[100] = report(100, Severity.SEVERE, 4.5)
    result.reports[200] = report(200, Severity.LOW, 0.7)
    result.reports[300] = report(300, Severity.NONE)
    return result


def make_ranking():
    registry = ASRegistry()
    registry.register(ASInfo(100, "Big", "JP", ASRole.EYEBALL,
                             subscribers=1_000_000))
    registry.register(ASInfo(200, "Mid", "US", ASRole.EYEBALL,
                             subscribers=50_000))
    registry.register(ASInfo(300, "Small", "DE", ASRole.EYEBALL,
                             subscribers=5_000))
    return EyeballRanking.from_registry(registry)


class TestJSONRoundtrip:
    def test_dict_roundtrip(self):
        original = make_result()
        restored = survey_from_dict(survey_to_dict(original))
        assert restored.period.name == "2019-09"
        assert restored.monitored_count == 3
        assert restored.reports[100].severity == Severity.SEVERE
        assert restored.reports[100].classification.markers.daily_amplitude_ms == 4.5
        assert restored.reports[300].classification.markers is None

    def test_suite_roundtrip(self, tmp_path):
        suite = SurveySuite()
        suite.add(make_result())
        path = tmp_path / "suite.json"
        save_suite(suite, path)
        restored = load_suite(path)
        assert restored.period_names() == ["2019-09"]
        assert restored.results["2019-09"].reported_asns() == [100, 200]


class TestCSV:
    def test_rows_and_ranking(self):
        text = survey_to_csv(make_result(), make_ranking())
        lines = text.strip().splitlines()
        assert len(lines) == 4  # header + 3 ASes
        assert lines[0].startswith("period,asn,country")
        severe_row = next(l for l in lines if ",severe," in l)
        assert severe_row.split(",")[2] == "JP"
        assert severe_row.split(",")[3] == "1"  # top global rank

    def test_without_ranking(self):
        text = survey_to_csv(make_result())
        assert ",severe," in text


class TestMarkdown:
    def test_summary_and_table(self):
        text = survey_to_markdown(make_result(), make_ranking())
        assert "2019-09" in text
        assert "**3**" in text            # monitored
        assert "**2**" in text            # reported
        assert "| AS100 " in text
        assert "| AS300 " not in text     # None class not listed
        # Sorted by amplitude: severe AS first.
        assert text.index("AS100") < text.index("AS200")

    def test_max_rows(self):
        text = survey_to_markdown(make_result(), max_rows=1)
        assert "AS100" in text and "AS200" not in text


class TestExportSite:
    def test_bundle(self, tmp_path):
        suite = SurveySuite()
        suite.add(make_result())
        written = export_site(suite, tmp_path / "site", make_ranking())
        assert (tmp_path / "site" / "surveys.json").exists()
        assert (tmp_path / "site" / "survey-2019-09.csv").exists()
        assert (tmp_path / "site" / "survey-2019-09.md").exists()
        index = (tmp_path / "site" / "index.md").read_text()
        assert "survey-2019-09.md" in index
        assert set(written) == {
            "suite", "csv-2019-09", "md-2019-09", "index",
            "svg-amplitudes-2019-09", "svg-classes-2019-09",
        }

    def test_roundtrip_through_site(self, tmp_path):
        suite = SurveySuite()
        suite.add(make_result())
        export_site(suite, tmp_path / "site")
        restored = load_suite(tmp_path / "site" / "surveys.json")
        assert restored.average_reported() == pytest.approx(2.0)
