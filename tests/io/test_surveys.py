"""Tests for survey export (the public-site artifacts)."""

import datetime as dt

import numpy as np
import pytest

from repro.apnic import EyeballRanking
from repro.core import (
    Classification,
    Severity,
    SurveyResult,
    SurveySuite,
)
from repro.core.spectral import SpectralMarkers
from repro.core.survey import ASReport
from repro.core.survey import ASFailure
from repro.io import (
    export_site,
    failures_from_csv,
    failures_to_csv,
    load_suite,
    quality_counts_from_csv,
    quality_counts_to_csv,
    save_suite,
    survey_from_csv,
    survey_from_dict,
    survey_to_csv,
    survey_to_dict,
    survey_to_markdown,
)
from repro.netbase import ASInfo, ASRegistry, ASRole
from repro.quality import DropReason
from repro.timebase import MeasurementPeriod


def report(asn, severity, amplitude=0.0, probes=5):
    markers = None
    if severity is not Severity.NONE or amplitude:
        markers = SpectralMarkers(
            prominent_frequency_cph=1 / 24,
            prominent_amplitude_ms=amplitude,
            daily_amplitude_ms=amplitude,
        )
    return ASReport(
        asn=asn, probe_count=probes,
        classification=Classification(severity, markers),
    )


def make_result():
    result = SurveyResult(
        period=MeasurementPeriod("2019-09", dt.datetime(2019, 9, 1), 15)
    )
    result.reports[100] = report(100, Severity.SEVERE, 4.5)
    result.reports[200] = report(200, Severity.LOW, 0.7)
    result.reports[300] = report(300, Severity.NONE)
    return result


def make_result_with_failures():
    """A survey with failures and a populated quality ledger."""
    result = make_result()
    result.failures[400] = ASFailure(
        asn=400, error="EmptyPopulationError",
        message="no probes to aggregate (requested 3)", attempts=2,
    )
    result.failures[500] = ASFailure(
        asn=500, error="SpectralDegenerateError",
        message="signal too short, for a \"spectral\" pass",
        attempts=1,
    )
    result.quality.ingest("core-aggregate", n=12)
    result.quality.drop(
        "core-aggregate", DropReason.NO_VALID_BINS, n=2,
        detail="2 probes have metadata but no series",
    )
    result.quality.degrade(
        "core-aggregate", DropReason.NO_VALID_BINS, n=1,
        detail="1 probe contributed no valid bin",
    )
    result.quality.ingest("survey", n=5)
    return result


def make_ranking():
    registry = ASRegistry()
    registry.register(ASInfo(100, "Big", "JP", ASRole.EYEBALL,
                             subscribers=1_000_000))
    registry.register(ASInfo(200, "Mid", "US", ASRole.EYEBALL,
                             subscribers=50_000))
    registry.register(ASInfo(300, "Small", "DE", ASRole.EYEBALL,
                             subscribers=5_000))
    return EyeballRanking.from_registry(registry)


class TestJSONRoundtrip:
    def test_dict_roundtrip(self):
        original = make_result()
        restored = survey_from_dict(survey_to_dict(original))
        assert restored.period.name == "2019-09"
        assert restored.monitored_count == 3
        assert restored.reports[100].severity == Severity.SEVERE
        assert restored.reports[100].classification.markers.daily_amplitude_ms == 4.5
        assert restored.reports[300].classification.markers is None

    def test_suite_roundtrip(self, tmp_path):
        suite = SurveySuite()
        suite.add(make_result())
        path = tmp_path / "suite.json"
        save_suite(suite, path)
        restored = load_suite(path)
        assert restored.period_names() == ["2019-09"]
        assert restored.results["2019-09"].reported_asns() == [100, 200]


class TestCSV:
    def test_rows_and_ranking(self):
        text = survey_to_csv(make_result(), make_ranking())
        lines = text.strip().splitlines()
        assert len(lines) == 4  # header + 3 ASes
        assert lines[0].startswith("period,asn,country")
        severe_row = next(l for l in lines if ",severe," in l)
        assert severe_row.split(",")[2] == "JP"
        assert severe_row.split(",")[3] == "1"  # top global rank

    def test_without_ranking(self):
        text = survey_to_csv(make_result())
        assert ",severe," in text


class TestCSVRoundtrip:
    """write → parse → compare against ``survey_to_dict``."""

    def test_reports_roundtrip(self):
        result = make_result()
        ranking = make_ranking()
        rows = survey_from_csv(survey_to_csv(result, ranking))
        reference = survey_to_dict(result)["reports"]
        assert set(rows) == {int(asn) for asn in reference}
        for asn, row in rows.items():
            entry = reference[str(asn)]
            assert row["period"] == result.period.name
            assert row["severity"] == entry["severity"]
            assert row["probe_count"] == entry["probe_count"]
            markers = entry["markers"]
            if markers is None:
                assert row["prominent_frequency_cph"] is None
            else:
                assert row["prominent_frequency_cph"] == pytest.approx(
                    markers["prominent_frequency_cph"], abs=1e-6
                )
                assert row["daily_amplitude_ms"] == pytest.approx(
                    markers["daily_amplitude_ms"], abs=1e-4
                )
            estimate = ranking.get(asn)
            assert row["country"] == estimate.country
            assert row["eyeball_rank"] == estimate.global_rank

    def test_reports_roundtrip_without_ranking(self):
        rows = survey_from_csv(survey_to_csv(make_result()))
        assert rows[100]["country"] is None
        assert rows[100]["eyeball_rank"] is None

    def test_failures_roundtrip(self):
        result = make_result_with_failures()
        restored = failures_from_csv(failures_to_csv(result))
        assert restored == survey_to_dict(result)["failures"]

    def test_failures_roundtrip_empty(self):
        result = make_result()
        assert failures_from_csv(failures_to_csv(result)) == {}

    def test_failure_messages_survive_quoting(self):
        # Commas, quotes and spaces in the failure message must not
        # corrupt neighbouring columns.
        result = make_result_with_failures()
        restored = failures_from_csv(failures_to_csv(result))
        assert restored["500"]["message"] == (
            "signal too short, for a \"spectral\" pass"
        )
        assert restored["500"]["attempts"] == 1

    def test_quality_counts_roundtrip(self):
        result = make_result_with_failures()
        restored = quality_counts_from_csv(
            quality_counts_to_csv(result)
        )
        assert restored == survey_to_dict(result)["quality"]

    def test_quality_counts_roundtrip_empty(self):
        result = make_result()
        restored = quality_counts_from_csv(
            quality_counts_to_csv(result)
        )
        assert restored == survey_to_dict(result)["quality"]


class TestMarkdown:
    def test_summary_and_table(self):
        text = survey_to_markdown(make_result(), make_ranking())
        assert "2019-09" in text
        assert "**3**" in text            # monitored
        assert "**2**" in text            # reported
        assert "| AS100 " in text
        assert "| AS300 " not in text     # None class not listed
        # Sorted by amplitude: severe AS first.
        assert text.index("AS100") < text.index("AS200")

    def test_max_rows(self):
        text = survey_to_markdown(make_result(), max_rows=1)
        assert "AS100" in text and "AS200" not in text


class TestExportSite:
    def test_bundle(self, tmp_path):
        suite = SurveySuite()
        suite.add(make_result())
        written = export_site(suite, tmp_path / "site", make_ranking())
        assert (tmp_path / "site" / "surveys.json").exists()
        assert (tmp_path / "site" / "survey-2019-09.csv").exists()
        assert (tmp_path / "site" / "survey-2019-09.md").exists()
        index = (tmp_path / "site" / "index.md").read_text()
        assert "survey-2019-09.md" in index
        assert set(written) == {
            "suite", "csv-2019-09", "csv-quality-2019-09",
            "md-2019-09", "index",
            "svg-amplitudes-2019-09", "svg-classes-2019-09",
        }

    def test_bundle_with_failures(self, tmp_path):
        suite = SurveySuite()
        suite.add(make_result_with_failures())
        written = export_site(suite, tmp_path / "site")
        failures_path = written["csv-failures-2019-09"]
        quality_path = written["csv-quality-2019-09"]
        result = suite.results["2019-09"]
        assert failures_from_csv(
            failures_path.read_text()
        ) == survey_to_dict(result)["failures"]
        assert quality_counts_from_csv(
            quality_path.read_text()
        ) == survey_to_dict(result)["quality"]

    def test_roundtrip_through_site(self, tmp_path):
        suite = SurveySuite()
        suite.add(make_result())
        export_site(suite, tmp_path / "site")
        restored = load_suite(tmp_path / "site" / "surveys.json")
        assert restored.average_reported() == pytest.approx(2.0)
