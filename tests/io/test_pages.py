"""Tests for per-AS drill-down pages."""

import datetime as dt
import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.apnic import EyeballRanking
from repro.core import classify_dataset
from repro.core.aggregate import AggregatedSignal
from repro.core.series import LastMileDataset, ProbeBinSeries
from repro.atlas import ProbeMeta
from repro.io import as_page_markdown, as_page_svg, export_as_pages
from repro.netbase import ASInfo, ASRegistry, ASRole
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("pages", dt.datetime(2019, 9, 2), 14)


@pytest.fixture(scope="module")
def survey_with_signals():
    grid = TimeGrid(PERIOD)
    rng = np.random.default_rng(12)
    t = np.arange(grid.num_bins) / grid.bins_per_day
    dataset = LastMileDataset(grid=grid)
    prb = 1
    for asn, amplitude in ((100, 2.0), (200, 0.0)):
        for _ in range(3):
            medians = (
                2.0 + amplitude * (1 + np.sin(2 * np.pi * t))
                + rng.normal(0, 0.05, grid.num_bins)
            )
            dataset.add(
                ProbeBinSeries(
                    prb_id=prb, median_rtt_ms=medians,
                    traceroute_counts=np.full(grid.num_bins, 24),
                ),
                meta=ProbeMeta(
                    prb_id=prb, asn=asn, is_anchor=False,
                    public_address="20.0.0.1",
                ),
            )
            prb += 1
    result = classify_dataset(dataset, PERIOD, keep_signals=True)
    registry = ASRegistry()
    registry.register(ASInfo(100, "Hot", "JP", ASRole.EYEBALL,
                             subscribers=1_000_000))
    registry.register(ASInfo(200, "Cool", "DE", ASRole.EYEBALL,
                             subscribers=500_000))
    ranking = EyeballRanking.from_registry(registry)
    return result, ranking


class TestSignalsRetention:
    def test_keep_signals_flag(self, survey_with_signals):
        result, _ranking = survey_with_signals
        assert set(result.signals) == {100, 200}
        assert isinstance(result.signals[100], AggregatedSignal)

    def test_default_discards_signals(self):
        grid = TimeGrid(PERIOD)
        dataset = LastMileDataset(grid=grid)
        result = classify_dataset(dataset, PERIOD)
        assert result.signals == {}


class TestPageRendering:
    def test_markdown_content(self, survey_with_signals):
        result, ranking = survey_with_signals
        text = as_page_markdown(
            100, result.reports[100], result.signals[100],
            ranking, utc_offset_hours=9.0,
        )
        assert text.startswith("# AS100")
        assert "Country: JP" in text
        assert "daily peak-to-peak amplitude" in text
        assert "day  1" in text          # sparkline panel
        assert "as100-delay.svg" in text

    def test_svg_parses(self, survey_with_signals):
        result, _ranking = survey_with_signals
        svg = as_page_svg(100, result.signals[100], 9.0)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")


class TestDegradedSignalRendering:
    """Empty/all-NaN aggregated signals must still render pages."""

    @pytest.fixture()
    def all_nan_signal(self):
        grid = TimeGrid(PERIOD)
        return AggregatedSignal(
            grid=grid,
            delay_ms=np.full(grid.num_bins, np.nan),
            probe_count=3,
            contributing=np.zeros(grid.num_bins, dtype=np.int64),
        )

    def test_max_delay_is_nan_without_warning(self, all_nan_signal):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert np.isnan(all_nan_signal.max_delay_ms)
            assert np.all(np.isnan(all_nan_signal.daily_max_ms()))

    def test_markdown_renders_na(
        self, survey_with_signals, all_nan_signal
    ):
        import warnings

        result, ranking = survey_with_signals
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            text = as_page_markdown(
                100, result.reports[100], all_nan_signal, ranking
            )
        assert "n/a (no valid bins)" in text
        assert text.startswith("# AS100")

    def test_svg_renders_placeholder(self, all_nan_signal):
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            svg = as_page_svg(100, all_nan_signal)
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_export_pages_with_all_nan_signal(
        self, survey_with_signals, all_nan_signal, tmp_path
    ):
        result, ranking = survey_with_signals
        written = export_as_pages(
            tmp_path / "degraded", result.reports,
            {100: all_nan_signal}, ranking,
        )
        assert set(written) == {100}
        page = (tmp_path / "degraded" / "as100.md").read_text()
        assert "n/a (no valid bins)" in page
        ET.fromstring(
            (tmp_path / "degraded" / "as100-delay.svg").read_text()
        )


class TestExport:
    def test_reported_only(self, survey_with_signals, tmp_path):
        result, ranking = survey_with_signals
        written = export_as_pages(
            tmp_path / "pages", result.reports, result.signals,
            ranking,
        )
        assert set(written) == {100}   # AS200 is None-class
        assert (tmp_path / "pages" / "as100.md").exists()
        assert (tmp_path / "pages" / "as100-delay.svg").exists()

    def test_include_all(self, survey_with_signals, tmp_path):
        result, ranking = survey_with_signals
        written = export_as_pages(
            tmp_path / "all", result.reports, result.signals,
            ranking, reported_only=False,
        )
        assert set(written) == {100, 200}

    def test_missing_signal_skipped(self, survey_with_signals, tmp_path):
        result, ranking = survey_with_signals
        written = export_as_pages(
            tmp_path / "partial", result.reports, {}, ranking,
        )
        assert written == {}
