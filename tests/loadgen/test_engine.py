"""The closed-loop engine: config validation, percentile math, report
distillation from a deterministic fake transport."""

import threading

import pytest

from repro.loadgen import (
    LoadConfig,
    Outcome,
    percentile,
    run_load,
)


class TestLoadConfig:
    def test_defaults_are_valid(self):
        config = LoadConfig()
        assert config.concurrency == 8
        assert config.mix == (("/v1/healthz", 1.0),)

    @pytest.mark.parametrize("kwargs", [
        {"concurrency": 0},
        {"duration_seconds": 0},
        {"duration_seconds": -1.0},
        {"warmup_seconds": -0.1},
        {"mix": ()},
        {"mix": (("/v1/healthz", 0.0),)},
        {"mix": (("/v1/healthz", -2.0),)},
    ])
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ValueError):
            LoadConfig(**kwargs)


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 0.5) == 0.0

    def test_single_value(self):
        assert percentile([7.0], 0.99) == 7.0

    def test_interpolates(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 0.0) == 10.0
        assert percentile(values, 1.0) == 40.0
        assert percentile(values, 0.5) == pytest.approx(25.0)

    def test_p99_of_uniform_grid(self):
        values = [float(i) for i in range(101)]  # 0..100
        assert percentile(values, 0.99) == pytest.approx(99.0)


class TestRunLoad:
    CONFIG = LoadConfig(
        concurrency=4, duration_seconds=0.3, warmup_seconds=0.0,
    )

    def test_distills_statuses_errors_and_shed(self):
        outcomes = [
            Outcome(200),
            Outcome(503, retry_after="1"),
            Outcome(503),                 # missing Retry-After
            Outcome(404),
            Outcome(0, error="boom"),
        ]
        cursor = [0]
        lock = threading.Lock()

        def transport(_target):
            with lock:
                outcome = outcomes[cursor[0] % len(outcomes)]
                cursor[0] += 1
            return outcome

        report = run_load(transport, self.CONFIG)
        assert report.requests > len(outcomes)
        assert report.status_counts["200"] > 0
        assert report.status_counts["error"] > 0
        cycles = report.status_counts["200"]
        # Outcomes cycle, so every category scales together (each
        # thread walks the shared cursor).
        assert report.shed == pytest.approx(2 * cycles, abs=2 * 5)
        assert report.errors == report.status_counts["error"] \
            + report.status_counts["404"]
        assert 0 < report.error_rate < 1
        assert 0 < report.shed_rate < 1
        assert report.missing_retry_after >= 1
        assert report.rps == pytest.approx(
            report.requests / report.duration_seconds
        )
        assert report.p50_ms <= report.p95_ms <= report.p99_ms \
            <= report.max_ms

    def test_transport_exception_becomes_error_outcome(self):
        def transport(_target):
            raise RuntimeError("wire fell out")

        report = run_load(transport, self.CONFIG)
        assert report.requests > 0
        assert report.errors == report.requests
        assert report.error_rate == 1.0
        assert set(report.status_counts) == {"error"}

    def test_mix_weights_steer_target_choice(self):
        counts = {"a": 0, "b": 0}
        lock = threading.Lock()

        def transport(target):
            with lock:
                counts[target.strip("/")] += 1
            return Outcome(200)

        config = LoadConfig(
            concurrency=2, duration_seconds=0.3, warmup_seconds=0.0,
            mix=(("/a", 9.0), ("/b", 1.0)), seed=42,
        )
        run_load(transport, config)
        assert counts["a"] > counts["b"] * 3

    def test_warmup_samples_are_excluded(self):
        seen = [0]
        lock = threading.Lock()

        def transport(_target):
            with lock:
                seen[0] += 1
            return Outcome(200)

        config = LoadConfig(
            concurrency=2, duration_seconds=0.2, warmup_seconds=0.2,
        )
        report = run_load(transport, config)
        assert 0 < report.requests < seen[0]
        assert report.warmup_seconds == 0.2

    def test_to_dict_and_summary_are_complete(self):
        report = run_load(lambda _t: Outcome(200), self.CONFIG)
        payload = report.to_dict()
        for field in (
            "requests", "duration_seconds", "rps", "p50_ms", "p95_ms",
            "p99_ms", "mean_ms", "max_ms", "errors", "shed",
            "error_rate", "shed_rate", "missing_retry_after",
            "concurrency", "warmup_seconds", "status_counts",
        ):
            assert field in payload
        assert payload["concurrency"] == 4
        lines = report.summary_lines()
        assert any("req/s" in line for line in lines)
        assert any("p99" in line for line in lines)
