"""Mix specs: CLI parsing and expansion against an archive."""

import pytest

from repro.loadgen import DEFAULT_MIX_SPEC, build_mix, parse_mix_spec
from repro.loadgen.mix import MAX_MIX_LINKS, ROUTE_CLASSES


class FakeArchive:
    """Just the lookup surface ``build_mix`` consults."""

    def __init__(self, periods=("2019-03", "2019-06"),
                 asns=(64500, 64501, 64502)):
        self._periods = list(periods)
        self._asns = list(asns)

    def periods(self):
        return list(self._periods)

    def latest(self):
        return self._periods[-1]

    def asns_with_severity(self, _period, severity):
        # Spread the ASes over severities; union must recover all.
        order = ("none", "low", "mild", "severe")
        return [
            asn for i, asn in enumerate(self._asns)
            if order[i % len(order)] == severity
        ]


class TestParseMixSpec:
    def test_parses_entries(self):
        assert parse_mix_spec(["as=4", "healthz=0.5"]) == {
            "as": 4.0, "healthz": 0.5,
        }

    @pytest.mark.parametrize("entry", [
        "as", "bogus=1", "as=zero", "as=0", "as=-1", "=2",
    ])
    def test_rejects_bad_entries(self, entry):
        with pytest.raises(ValueError):
            parse_mix_spec([entry])

    def test_default_spec_only_uses_known_classes(self):
        assert set(DEFAULT_MIX_SPEC) <= set(ROUTE_CLASSES)


class TestBuildMix:
    def test_expands_classes_to_concrete_targets(self):
        mix = dict(build_mix(FakeArchive(), {"period": 2.0, "as": 3.0}))
        assert mix["/v1/period/2019-03"] == pytest.approx(1.0)
        assert mix["/v1/period/2019-06"] == pytest.approx(1.0)
        # 3.0 split across the three monitored ASes.
        assert mix["/v1/as/64500"] == pytest.approx(1.0)
        assert mix["/v1/as/64502"] == pytest.approx(1.0)

    def test_class_weight_is_preserved_in_aggregate(self):
        mix = build_mix(FakeArchive(), DEFAULT_MIX_SPEC)
        by_class = {}
        for target, weight in mix:
            key = target.split("/")[2]
            if target.endswith("/history"):
                key = "history"
            elif target.endswith("/severe"):
                key = "severe"
            by_class[key] = by_class.get(key, 0.0) + weight
        assert by_class["as"] == pytest.approx(DEFAULT_MIX_SPEC["as"])
        assert by_class["period"] == pytest.approx(
            DEFAULT_MIX_SPEC["period"]
        )
        assert by_class["healthz"] == pytest.approx(0.5)

    def test_static_routes_survive_any_archive(self):
        mix = dict(build_mix(FakeArchive(), {"healthz": 1.0,
                                             "metrics": 0.5}))
        assert mix == {"/v1/healthz": 1.0, "/v1/metrics": 0.5}

    def test_empty_archive_drops_data_classes(self):
        mix = dict(build_mix(
            FakeArchive(periods=(), asns=()),
            {"as": 4.0, "healthz": 1.0},
        ))
        assert mix == {"/v1/healthz": 1.0}

    def test_nothing_answerable_raises(self):
        with pytest.raises(ValueError, match="expanded to nothing"):
            build_mix(FakeArchive(periods=(), asns=()), {"as": 4.0})


class FakeAnomalyArchive(FakeArchive):
    """FakeArchive plus the anomaly lookup surface."""

    def __init__(self, links=30, **kwargs):
        super().__init__(**kwargs)
        self._links = [f"10.0.0.{i}--10.0.1.{i}" for i in range(links)]

    def anomaly_periods(self):
        return [self._periods[0]]

    def get_anomalies(self, period):
        assert period == self._periods[0]
        return {
            "period": period,
            "links": {
                # Later links carry more samples, so the busiest
                # (highest-index) ones must win the cap.
                link: {"samples": i} for i, link in
                enumerate(self._links)
            },
        }


class TestAnomalyClasses:
    def test_new_classes_are_known(self):
        assert "anomalies" in ROUTE_CLASSES
        assert "link-history" in ROUTE_CLASSES
        assert parse_mix_spec(["anomalies=1", "link-history=2"]) == {
            "anomalies": 1.0, "link-history": 2.0,
        }

    def test_anomalies_expand_to_reported_periods(self):
        mix = dict(build_mix(FakeAnomalyArchive(), {"anomalies": 2.0}))
        assert mix == {"/v1/period/2019-03/anomalies": 2.0}

    def test_link_history_capped_at_busiest_links(self):
        mix = dict(build_mix(
            FakeAnomalyArchive(links=30), {"link-history": 3.0}
        ))
        assert len(mix) == MAX_MIX_LINKS
        # Busiest link (most samples) is in; the sparsest is not.
        assert "/v1/link/10.0.0.29--10.0.1.29/history" in mix
        assert "/v1/link/10.0.0.0--10.0.1.0/history" not in mix
        assert sum(mix.values()) == pytest.approx(3.0)

    def test_report_less_archive_skips_anomaly_classes(self):
        mix = dict(build_mix(
            FakeArchive(),
            {"healthz": 1.0, "anomalies": 2.0, "link-history": 2.0},
        ))
        assert mix == {"/v1/healthz": 1.0}

    def test_default_spec_includes_anomaly_classes(self):
        assert DEFAULT_MIX_SPEC["anomalies"] > 0
        assert DEFAULT_MIX_SPEC["link-history"] > 0
