"""Loadgen against the real API surface (socket-free transport)."""

import datetime as dt

import pytest

from repro.core import Severity
from repro.loadgen import LoadConfig, api_transport, build_mix, run_load
from repro.obs import observed
from repro.serve import ResilienceConfig, SurveyAPI
from repro.store import SurveyArchive
from tests.store.conftest import make_ranking, make_survey


@pytest.fixture()
def archive(tmp_path):
    archive = SurveyArchive(tmp_path / "arc")
    archive.ingest(
        make_survey("2019-06", dt.datetime(2019, 6, 1), {
            100: Severity.SEVERE, 200: Severity.LOW,
            300: Severity.NONE,
        }),
        ranking=make_ranking(),
    )
    return archive


def test_loadtest_drives_api_and_scrapes_metrics(archive):
    with observed() as obs:
        api = SurveyAPI(archive)
        config = LoadConfig(
            concurrency=4, duration_seconds=0.4, warmup_seconds=0.1,
            mix=build_mix(archive, {
                "as": 2.0, "period": 1.0, "healthz": 0.5,
                "metrics": 0.25,
            }),
        )
        report = run_load(api_transport(api), config)
    assert report.requests > 0
    assert report.errors == 0
    assert report.error_rate == 0.0
    assert report.p99_ms >= report.p50_ms > 0
    # The engine's view and the server's RED counters agree on scale:
    # warmup requests hit the server but not the report.
    total = sum(dict(obs.metrics.counter(
        "http_requests_total", "", ("route", "status")
    ).samples()).values())
    assert total >= report.requests


def test_shed_outcomes_carry_retry_after(archive):
    api = SurveyAPI(
        archive,
        resilience=ResilienceConfig(
            max_concurrency=1, retry_after_seconds=0.5,
        ),
    )
    config = LoadConfig(
        concurrency=8, duration_seconds=0.4, warmup_seconds=0.0,
        mix=(("/v1/period/2019-06", 1.0),),
    )
    report = run_load(api_transport(api), config)
    assert set(report.status_counts) <= {"200", "503"}
    if report.shed:
        assert report.missing_retry_after == 0
