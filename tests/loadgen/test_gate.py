"""The serving-regression gate: tolerance checks and baseline upkeep."""

import json

import pytest

from repro.loadgen import (
    BASELINE_SECTION,
    check_regression,
    upsert_bench_section,
)

BASELINE = {"p99_ms": 10.0, "rps": 1000.0, "error_rate": 0.0}


def _current(**overrides):
    report = {"p99_ms": 12.0, "rps": 900.0, "error_rate": 0.0}
    report.update(overrides)
    return report


class TestCheckRegression:
    def test_within_tolerance_passes(self):
        assert check_regression(_current(), BASELINE) == []

    def test_p99_blowup_fails(self):
        problems = check_regression(_current(p99_ms=41.0), BASELINE)
        assert len(problems) == 1
        assert "p99 regressed" in problems[0]

    def test_p99_at_exact_tolerance_passes(self):
        assert check_regression(_current(p99_ms=40.0), BASELINE) == []

    def test_throughput_collapse_fails(self):
        problems = check_regression(_current(rps=249.0), BASELINE)
        assert len(problems) == 1
        assert "throughput regressed" in problems[0]

    def test_error_rate_is_absolute(self):
        problems = check_regression(_current(error_rate=0.02), BASELINE)
        assert len(problems) == 1
        assert "error rate" in problems[0]

    def test_custom_tolerances(self):
        assert check_regression(
            _current(p99_ms=15.0), BASELINE, max_p99_ratio=1.2
        ) != []
        assert check_regression(
            _current(rps=900.0), BASELINE, min_rps_ratio=0.95
        ) != []
        assert check_regression(
            _current(rps=960.0), BASELINE, min_rps_ratio=0.95
        ) == []

    def test_empty_baseline_only_checks_error_rate(self):
        assert check_regression(_current(), {}) == []
        assert check_regression(_current(error_rate=0.5), {}) != []

    def test_multiple_regressions_all_reported(self):
        problems = check_regression(
            _current(p99_ms=100.0, rps=10.0, error_rate=0.5), BASELINE
        )
        assert len(problems) == 3


class TestUpsertBenchSection:
    def test_creates_file_with_section(self, tmp_path):
        path = tmp_path / "BENCH.json"
        upsert_bench_section(path, BASELINE_SECTION, {"rps": 1.0})
        assert json.loads(path.read_text()) == {
            BASELINE_SECTION: {"rps": 1.0}
        }

    def test_replaces_section_keeping_others(self, tmp_path):
        path = tmp_path / "BENCH.json"
        path.write_text(json.dumps({
            "overload": {"shed": 5},
            BASELINE_SECTION: {"rps": 1.0},
        }))
        written = upsert_bench_section(
            path, BASELINE_SECTION, {"rps": 2.0}
        )
        on_disk = json.loads(path.read_text())
        assert on_disk == written
        assert on_disk["overload"] == {"shed": 5}
        assert on_disk[BASELINE_SECTION] == {"rps": 2.0}

    def test_output_is_stable_and_newline_terminated(self, tmp_path):
        path = tmp_path / "BENCH.json"
        upsert_bench_section(path, "b", {"x": 1})
        upsert_bench_section(path, "a", {"y": 2})
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"b"')


class TestRepoBaseline:
    def test_committed_baseline_has_gate_fields(self):
        # The CI gate reads these from the committed file; a rename
        # there must show up here, not as a silently-passing gate.
        from pathlib import Path

        bench = Path(__file__).resolve().parents[2] / \
            "BENCH_serving.json"
        section = json.loads(bench.read_text())[BASELINE_SECTION]
        for field in ("p99_ms", "rps", "error_rate", "concurrency"):
            assert field in section
