"""Tests for special-purpose address classification."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netbase import (
    is_cgn,
    is_private,
    is_public,
    is_rfc1918,
    parse_ipv4,
    parse_ipv6,
)


def v4(text):
    return parse_ipv4(text)


class TestRFC1918:
    @pytest.mark.parametrize(
        "text", ["10.0.0.0", "10.255.255.255", "172.16.0.1",
                 "172.31.255.255", "192.168.0.1", "192.168.255.255"],
    )
    def test_private_addresses(self, text):
        assert is_rfc1918(v4(text))

    @pytest.mark.parametrize(
        "text", ["9.255.255.255", "11.0.0.0", "172.15.255.255",
                 "172.32.0.0", "192.167.255.255", "192.169.0.0",
                 "8.8.8.8", "100.64.0.1"],
    )
    def test_public_addresses(self, text):
        assert not is_rfc1918(v4(text))

    def test_ipv6_never_rfc1918(self):
        assert not is_rfc1918(parse_ipv6("fc00::1"), version=6)


class TestCGN:
    def test_boundaries(self):
        assert is_cgn(v4("100.64.0.0"))
        assert is_cgn(v4("100.127.255.255"))
        assert not is_cgn(v4("100.63.255.255"))
        assert not is_cgn(v4("100.128.0.0"))


class TestIsPrivate:
    def test_rfc1918_and_cgn_are_private(self):
        assert is_private(v4("192.168.1.1"), 4)
        assert is_private(v4("100.64.0.1"), 4)

    def test_ula_is_private(self):
        assert is_private(parse_ipv6("fd00::1"), 6)
        assert not is_private(parse_ipv6("2001:db8::1"), 6)

    def test_global_is_not_private(self):
        assert not is_private(v4("203.0.113.1"), 4)

    def test_unknown_version_false(self):
        assert not is_private(1, 5)


class TestIsPublic:
    @pytest.mark.parametrize(
        "text", ["8.8.8.8", "1.1.1.1", "198.41.0.4", "100.128.0.1"],
    )
    def test_global_unicast(self, text):
        assert is_public(v4(text), 4)

    @pytest.mark.parametrize(
        "text", ["127.0.0.1", "169.254.1.1", "0.1.2.3", "224.0.0.1",
                 "240.0.0.1", "192.0.2.1", "198.51.100.1", "203.0.113.9",
                 "10.0.0.1", "100.64.0.1"],
    )
    def test_nonpublic_v4(self, text):
        assert not is_public(v4(text), 4)

    @pytest.mark.parametrize(
        "text", ["::1", "::", "fe80::1", "fc00::1", "ff02::1",
                 "2001:db8::1"],
    )
    def test_nonpublic_v6(self, text):
        assert not is_public(parse_ipv6(text), 6)

    def test_global_v6(self):
        assert is_public(parse_ipv6("2400:8900::1"), 6)

    def test_unknown_version_false(self):
        assert not is_public(1, 5)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_private_and_public_disjoint_v4(self, value):
        assert not (is_private(value, 4) and is_public(value, 4))

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_private_and_public_disjoint_v6(self, value):
        assert not (is_private(value, 6) and is_public(value, 6))
