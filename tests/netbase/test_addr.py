"""Unit and property tests for repro.netbase.addr."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netbase import (
    AddressParseError,
    IPAddress,
    VersionMismatchError,
    format_ipv4,
    format_ipv6,
    parse_address,
    parse_ipv4,
    parse_ipv6,
)


class TestParseIPv4:
    def test_basic(self):
        assert parse_ipv4("0.0.0.0") == 0
        assert parse_ipv4("255.255.255.255") == 2**32 - 1
        assert parse_ipv4("192.0.2.1") == (192 << 24) | (2 << 8) | 1

    def test_leading_zeros_accepted(self):
        assert parse_ipv4("010.001.000.001") == parse_ipv4("10.1.0.1")

    @pytest.mark.parametrize(
        "bad",
        ["", "1.2.3", "1.2.3.4.5", "1.2.3.256", "1.2.3.-4", "a.b.c.d",
         "1.2.3.", "1..2.3", " 1.2.3.4", "1.2.3.4 ", "1.2.3.+4"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressParseError):
            parse_ipv4(bad)

    def test_error_carries_text(self):
        with pytest.raises(AddressParseError) as excinfo:
            parse_ipv4("300.1.1.1")
        assert excinfo.value.text == "300.1.1.1"


class TestFormatIPv4:
    def test_basic(self):
        assert format_ipv4(0) == "0.0.0.0"
        assert format_ipv4(2**32 - 1) == "255.255.255.255"

    def test_out_of_range(self):
        with pytest.raises(AddressParseError):
            format_ipv4(2**32)
        with pytest.raises(AddressParseError):
            format_ipv4(-1)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, value):
        assert parse_ipv4(format_ipv4(value)) == value


class TestParseIPv6:
    def test_basic(self):
        assert parse_ipv6("::") == 0
        assert parse_ipv6("::1") == 1
        assert parse_ipv6("2001:db8::1") == (0x20010DB8 << 96) | 1

    def test_full_form(self):
        assert parse_ipv6("0:0:0:0:0:0:0:1") == 1

    def test_embedded_ipv4(self):
        assert parse_ipv6("::ffff:192.0.2.1") == (
            (0xFFFF << 32) | parse_ipv4("192.0.2.1")
        )

    def test_case_insensitive(self):
        assert parse_ipv6("2001:DB8::A") == parse_ipv6("2001:db8::a")

    @pytest.mark.parametrize(
        "bad",
        ["", ":::", "1::2::3", "12345::", "1:2:3:4:5:6:7", "g::1",
         "1:2:3:4:5:6:7:8:9", "fe80::1%eth0", "::1.2.3.4.5",
         "1.2.3.4::1"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(AddressParseError):
            parse_ipv6(bad)

    def test_double_colon_must_compress_something(self):
        with pytest.raises(AddressParseError):
            parse_ipv6("1:2:3:4::5:6:7:8")


class TestFormatIPv6:
    def test_canonical_compression(self):
        assert format_ipv6(1) == "::1"
        assert format_ipv6(0) == "::"
        assert format_ipv6(parse_ipv6("2001:db8:0:0:1:0:0:1")) == (
            "2001:db8::1:0:0:1"
        )

    def test_single_zero_group_not_compressed(self):
        value = parse_ipv6("2001:db8:0:1:1:1:1:1")
        assert format_ipv6(value) == "2001:db8:0:1:1:1:1:1"

    def test_lowercase(self):
        assert format_ipv6(parse_ipv6("2001:DB8::ABCD")) == "2001:db8::abcd"

    @given(st.integers(min_value=0, max_value=2**128 - 1))
    def test_roundtrip(self, value):
        assert parse_ipv6(format_ipv6(value)) == value


class TestParseAddress:
    def test_dispatch(self):
        assert parse_address("10.0.0.1") == (parse_ipv4("10.0.0.1"), 4)
        assert parse_address("::1") == (1, 6)


class TestIPAddress:
    def test_parse_and_str(self):
        addr = IPAddress.parse("192.0.2.1")
        assert addr.version == 4
        assert str(addr) == "192.0.2.1"
        assert repr(addr) == "IPAddress('192.0.2.1')"

    def test_ordering_v4_before_v6(self):
        v4 = IPAddress.parse("255.255.255.255")
        v6 = IPAddress.parse("::1")
        assert v4 < v6

    def test_ordering_numeric_within_family(self):
        assert IPAddress.parse("10.0.0.1") < IPAddress.parse("10.0.0.2")

    def test_bad_version_rejected(self):
        with pytest.raises(VersionMismatchError):
            IPAddress(5, 1)

    def test_out_of_range_value_rejected(self):
        with pytest.raises(AddressParseError):
            IPAddress(4, 2**32)

    def test_successor(self):
        addr = IPAddress.parse("10.0.0.1")
        assert str(addr.successor()) == "10.0.0.2"
        assert str(addr.successor(-1)) == "10.0.0.0"

    def test_bits(self):
        assert IPAddress.parse("10.0.0.1").bits == 32
        assert IPAddress.parse("::1").bits == 128

    def test_hashable(self):
        a = IPAddress.parse("10.0.0.1")
        b = IPAddress.parse("10.0.0.1")
        assert {a} == {b}
