"""Tests for the AS registry and address pools."""

import pytest

from repro.netbase import (
    AccessTechnology,
    AddressPool,
    ASInfo,
    ASRegistry,
    ASRole,
    PoolExhaustedError,
    Prefix,
    SubnetPool,
)


def eyeball(asn, name="ISP", country="JP", techs=(), subs=0, tags=()):
    return ASInfo(
        asn=asn, name=name, country=country, role=ASRole.EYEBALL,
        access_technologies=list(techs), subscribers=subs, tags=list(tags),
    )


class TestASRegistry:
    def test_register_and_get(self):
        reg = ASRegistry()
        info = reg.register(eyeball(64500))
        assert reg.get(64500) is info
        assert 64500 in reg
        assert len(reg) == 1

    def test_duplicate_rejected(self):
        reg = ASRegistry()
        reg.register(eyeball(64500))
        with pytest.raises(ValueError):
            reg.register(eyeball(64500))

    def test_bad_asn_rejected(self):
        reg = ASRegistry()
        with pytest.raises(ValueError):
            reg.register(eyeball(0))
        with pytest.raises(ValueError):
            reg.register(eyeball(2**32))

    def test_get_missing_raises_keyerror(self):
        with pytest.raises(KeyError, match="AS64500"):
            ASRegistry().get(64500)

    def test_find_missing_returns_none(self):
        assert ASRegistry().find(64500) is None

    def test_filters(self):
        reg = ASRegistry()
        reg.register(eyeball(64500, name="A", country="JP"))
        reg.register(eyeball(64501, name="B", country="US"))
        reg.register(ASInfo(64502, "T", "US", ASRole.TRANSIT))
        reg.register(ASInfo(64503, "M", "JP", ASRole.MOBILE))

        assert [a.asn for a in reg.by_country("JP")] == [64500, 64503]
        assert [a.asn for a in reg.by_role(ASRole.TRANSIT)] == [64502]
        assert [a.asn for a in reg.eyeballs()] == [64500, 64501, 64503]
        assert reg.countries() == ["JP", "US"]
        assert reg.by_name("B").asn == 64501
        assert reg.by_name("missing") is None

    def test_iteration_sorted_by_asn(self):
        reg = ASRegistry()
        reg.register(eyeball(64510))
        reg.register(eyeball(64501))
        assert [a.asn for a in reg] == [64501, 64510]


class TestASInfo:
    def test_legacy_pppoe_flag(self):
        legacy = eyeball(1, techs=[AccessTechnology.FTTH_PPPOE_LEGACY])
        own = eyeball(2, techs=[AccessTechnology.FTTH_OWN])
        assert legacy.uses_legacy_pppoe
        assert not own.uses_legacy_pppoe

    def test_tags(self):
        info = eyeball(1, tags=["legacy-network"])
        assert info.has_tag("legacy-network")
        assert not info.has_tag("other")

    def test_is_eyeball(self):
        assert eyeball(1).is_eyeball
        assert ASInfo(2, "M", "JP", ASRole.MOBILE).is_eyeball
        assert not ASInfo(3, "T", "JP", ASRole.TRANSIT).is_eyeball


class TestAddressPool:
    def test_sequential_allocation_skips_network(self):
        pool = AddressPool(Prefix.parse("10.0.0.0/29"))
        first = pool.allocate()
        assert str(first) == "10.0.0.1"  # .0 skipped
        assert pool.allocated == 1

    def test_exhaustion(self):
        # /30 with network+broadcast skipped leaves .1 and .2 usable.
        pool = AddressPool(Prefix.parse("10.0.0.0/30"))
        addrs = pool.allocate_many(2)
        assert [str(a) for a in addrs] == ["10.0.0.1", "10.0.0.2"]
        with pytest.raises(PoolExhaustedError):
            pool.allocate()

    def test_no_skip_mode(self):
        pool = AddressPool(
            Prefix.parse("10.0.0.0/30"), skip_network_broadcast=False
        )
        addrs = pool.allocate_many(4)
        assert [str(a) for a in addrs] == [
            "10.0.0.0", "10.0.0.1", "10.0.0.2", "10.0.0.3",
        ]

    def test_v6_defaults_to_no_skip(self):
        pool = AddressPool(Prefix.parse("2001:db8::/126"))
        assert str(pool.allocate()) == "2001:db8::"

    def test_allocate_many_checks_remaining(self):
        pool = AddressPool(Prefix.parse("10.0.0.0/30"))
        with pytest.raises(PoolExhaustedError):
            pool.allocate_many(10)
        with pytest.raises(ValueError):
            pool.allocate_many(-1)

    def test_no_duplicates(self):
        pool = AddressPool(Prefix.parse("10.0.0.0/24"))
        addrs = pool.allocate_many(100)
        assert len(set(addrs)) == 100


class TestSubnetPool:
    def test_sequential_subnets(self):
        pool = SubnetPool(Prefix.parse("10.0.0.0/22"), 24)
        nets = pool.allocate_many(4)
        assert [str(n) for n in nets] == [
            "10.0.0.0/24", "10.0.1.0/24", "10.0.2.0/24", "10.0.3.0/24",
        ]
        with pytest.raises(PoolExhaustedError):
            pool.allocate()

    def test_rejects_shorter_subnet(self):
        with pytest.raises(ValueError):
            SubnetPool(Prefix.parse("10.0.0.0/24"), 16)

    def test_iterator_drains(self):
        pool = SubnetPool(Prefix.parse("10.0.0.0/23"), 24)
        assert len(list(pool)) == 2
        assert pool.remaining == 0

    def test_remaining_accounting(self):
        pool = SubnetPool(Prefix.parse("2001:db8::/32"), 48)
        assert pool.remaining == 2**16
        pool.allocate()
        assert pool.allocated == 1
        assert pool.remaining == 2**16 - 1
