"""Tests for the radix trie (longest-prefix match)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netbase import (
    DualStackTrie,
    IPAddress,
    Prefix,
    RadixTrie,
    VersionMismatchError,
    parse_ipv4,
)


def build(entries):
    trie = RadixTrie(4)
    for text, value in entries:
        trie.insert(Prefix.parse(text), value)
    return trie


class TestLookup:
    def test_longest_match_wins(self):
        trie = build([("10.0.0.0/8", "short"), ("10.1.0.0/16", "long")])
        assert trie.lookup_value(parse_ipv4("10.1.2.3")) == "long"
        assert trie.lookup_value(parse_ipv4("10.2.0.1")) == "short"

    def test_miss_returns_none(self):
        trie = build([("10.0.0.0/8", 1)])
        assert trie.lookup(parse_ipv4("11.0.0.1")) is None
        assert trie.lookup_value(parse_ipv4("11.0.0.1"), default="x") == "x"

    def test_default_route(self):
        trie = build([("0.0.0.0/0", "default"), ("10.0.0.0/8", "ten")])
        assert trie.lookup_value(parse_ipv4("8.8.8.8")) == "default"
        assert trie.lookup_value(parse_ipv4("10.0.0.1")) == "ten"

    def test_lookup_returns_matching_prefix(self):
        trie = build([("10.1.0.0/16", "a")])
        prefix, value = trie.lookup(parse_ipv4("10.1.2.3"))
        assert str(prefix) == "10.1.0.0/16"
        assert value == "a"

    def test_host_route(self):
        trie = build([("10.0.0.0/8", "net"), ("10.0.0.1/32", "host")])
        assert trie.lookup_value(parse_ipv4("10.0.0.1")) == "host"
        assert trie.lookup_value(parse_ipv4("10.0.0.2")) == "net"

    def test_exact_boundary_addresses(self):
        trie = build([("10.0.0.0/8", 1)])
        assert trie.covers(parse_ipv4("10.0.0.0"))
        assert trie.covers(parse_ipv4("10.255.255.255"))
        assert not trie.covers(parse_ipv4("9.255.255.255"))
        assert not trie.covers(parse_ipv4("11.0.0.0"))


class TestMutation:
    def test_insert_replaces(self):
        trie = build([("10.0.0.0/8", "old")])
        trie.insert(Prefix.parse("10.0.0.0/8"), "new")
        assert len(trie) == 1
        assert trie.lookup_value(parse_ipv4("10.0.0.1")) == "new"

    def test_remove(self):
        trie = build([("10.0.0.0/8", 1), ("10.1.0.0/16", 2)])
        assert trie.remove(Prefix.parse("10.1.0.0/16"))
        assert len(trie) == 1
        assert trie.lookup_value(parse_ipv4("10.1.0.1")) == 1

    def test_remove_absent(self):
        trie = build([("10.0.0.0/8", 1)])
        assert not trie.remove(Prefix.parse("11.0.0.0/8"))
        assert not trie.remove(Prefix.parse("10.1.0.0/16"))
        assert len(trie) == 1

    def test_version_mismatch(self):
        trie = RadixTrie(4)
        with pytest.raises(VersionMismatchError):
            trie.insert(Prefix.parse("2001:db8::/32"), 1)

    def test_items_in_address_order(self):
        trie = build([
            ("192.168.0.0/16", 3), ("10.0.0.0/8", 1), ("10.1.0.0/16", 2),
        ])
        assert [str(p) for p, _ in trie.items()] == [
            "10.0.0.0/8", "10.1.0.0/16", "192.168.0.0/16",
        ]


class TestDualStack:
    def test_families_are_independent(self):
        trie = DualStackTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "v4")
        trie.insert(Prefix.parse("2400:8900::/32"), "v6")
        assert len(trie) == 2
        assert trie.lookup_value(parse_ipv4("10.0.0.1"), 4) == "v4"
        addr6 = IPAddress.parse("2400:8900::1")
        assert trie.lookup_value(addr6.value, 6) == "v6"
        assert not trie.covers(parse_ipv4("10.0.0.1"), 6)

    def test_remove(self):
        trie = DualStackTrie()
        trie.insert(Prefix.parse("10.0.0.0/8"), "v4")
        assert trie.remove(Prefix.parse("10.0.0.0/8"))
        assert len(trie) == 0

    def test_bad_version(self):
        with pytest.raises(VersionMismatchError):
            DualStackTrie().lookup(1, 5)

    def test_items_v4_first(self):
        trie = DualStackTrie()
        trie.insert(Prefix.parse("2400:8900::/32"), "v6")
        trie.insert(Prefix.parse("10.0.0.0/8"), "v4")
        versions = [p.version for p, _ in trie.items()]
        assert versions == [4, 6]


@st.composite
def prefix_sets(draw):
    """Random small sets of IPv4 prefixes with values."""
    n = draw(st.integers(min_value=1, max_value=12))
    entries = []
    for i in range(n):
        addr = draw(st.integers(min_value=0, max_value=2**32 - 1))
        length = draw(st.integers(min_value=1, max_value=32))
        entries.append((Prefix.containing(IPAddress(4, addr), length), i))
    return entries


class TestPropertyLPM:
    @given(prefix_sets(), st.integers(min_value=0, max_value=2**32 - 1))
    def test_matches_linear_scan(self, entries, query):
        """Trie LPM must agree with a brute-force linear scan."""
        trie = RadixTrie(4)
        table = {}
        for prefix, value in entries:
            trie.insert(prefix, value)
            table[prefix] = value  # replace semantics, like the trie

        best = None
        for prefix, value in table.items():
            if prefix.contains_value(query, 4):
                if best is None or prefix.length > best[0].length:
                    best = (prefix, value)

        hit = trie.lookup(query)
        if best is None:
            assert hit is None
        else:
            assert hit is not None
            assert hit[1] == best[1]
            assert hit[0].length == best[0].length

    @given(prefix_sets())
    def test_len_matches_distinct_prefixes(self, entries):
        trie = RadixTrie(4)
        for prefix, value in entries:
            trie.insert(prefix, value)
        assert len(trie) == len({p for p, _ in entries})

    @given(prefix_sets())
    def test_items_roundtrip(self, entries):
        trie = RadixTrie(4)
        expected = {}
        for prefix, value in entries:
            trie.insert(prefix, value)
            expected[prefix] = value
        assert dict(trie.items()) == expected
