"""Unit and property tests for repro.netbase.prefix."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netbase import (
    IPAddress,
    Prefix,
    PrefixParseError,
    VersionMismatchError,
    common_supernet,
)


def ipv4_prefixes(max_length=32):
    """Hypothesis strategy producing valid IPv4 prefixes."""
    return st.builds(
        lambda addr, length: Prefix.containing(IPAddress(4, addr), length),
        st.integers(min_value=0, max_value=2**32 - 1),
        st.integers(min_value=0, max_value=max_length),
    )


class TestParse:
    def test_v4(self):
        p = Prefix.parse("10.0.0.0/8")
        assert (p.version, p.length) == (4, 8)
        assert str(p) == "10.0.0.0/8"

    def test_v6(self):
        p = Prefix.parse("2001:db8::/32")
        assert (p.version, p.length) == (6, 32)
        assert str(p) == "2001:db8::/32"

    @pytest.mark.parametrize(
        "bad", ["10.0.0.0", "10.0.0.0/33", "10.0.0.0/-1", "10.0.0.0/x",
                "2001:db8::/129", "not-an-ip/8", "10.0.0.1/8"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(PrefixParseError):
            Prefix.parse(bad)

    def test_host_bits_must_be_zero(self):
        with pytest.raises(PrefixParseError):
            Prefix(4, 1, 24)


class TestContaining:
    def test_masks_host_bits(self):
        addr = IPAddress.parse("10.1.2.3")
        assert str(Prefix.containing(addr, 8)) == "10.0.0.0/8"
        assert str(Prefix.containing(addr, 32)) == "10.1.2.3/32"
        assert str(Prefix.containing(addr, 0)) == "0.0.0.0/0"

    @given(ipv4_prefixes())
    def test_contains_own_network(self, prefix):
        assert prefix.contains(prefix.first)
        assert prefix.contains(prefix.last)
        assert prefix.contains(prefix)


class TestContainment:
    def test_nested(self):
        outer = Prefix.parse("10.0.0.0/8")
        inner = Prefix.parse("10.1.0.0/16")
        assert outer.contains(inner)
        assert not inner.contains(outer)

    def test_cross_version_is_false_not_error(self):
        v4 = Prefix.parse("10.0.0.0/8")
        v6 = Prefix.parse("2001:db8::/32")
        assert not v4.contains(v6)
        assert not v4.contains(IPAddress.parse("::1"))

    def test_contains_rejects_other_types(self):
        with pytest.raises(TypeError):
            Prefix.parse("10.0.0.0/8").contains("10.0.0.1")

    def test_overlaps(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("10.1.0.0/16")
        c = Prefix.parse("11.0.0.0/8")
        assert a.overlaps(b) and b.overlaps(a)
        assert not a.overlaps(c)

    @given(ipv4_prefixes(max_length=24), st.integers(0, 255))
    def test_contains_value_consistent_with_range(self, prefix, offset):
        value = prefix.network + (offset % prefix.num_addresses)
        assert prefix.contains_value(value, 4)


class TestSubnets:
    def test_enumeration(self):
        subs = list(Prefix.parse("10.0.0.0/30").subnets(31))
        assert [str(s) for s in subs] == ["10.0.0.0/31", "10.0.0.2/31"]

    def test_same_length_yields_self(self):
        p = Prefix.parse("10.0.0.0/24")
        assert list(p.subnets(24)) == [p]

    def test_rejects_shorter(self):
        with pytest.raises(PrefixParseError):
            list(Prefix.parse("10.0.0.0/24").subnets(23))

    def test_nth_subnet_matches_enumeration(self):
        p = Prefix.parse("192.168.0.0/16")
        subs = list(p.subnets(20))
        for i, sub in enumerate(subs):
            assert p.nth_subnet(20, i) == sub

    def test_nth_subnet_bounds(self):
        p = Prefix.parse("10.0.0.0/24")
        with pytest.raises(IndexError):
            p.nth_subnet(26, 4)

    def test_address_at(self):
        p = Prefix.parse("10.0.0.0/30")
        assert str(p.address_at(3)) == "10.0.0.3"
        with pytest.raises(IndexError):
            p.address_at(4)


class TestSupernet:
    def test_basic(self):
        p = Prefix.parse("10.1.0.0/16")
        assert str(p.supernet(8)) == "10.0.0.0/8"

    def test_rejects_longer(self):
        with pytest.raises(PrefixParseError):
            Prefix.parse("10.0.0.0/8").supernet(16)

    @given(ipv4_prefixes(max_length=30))
    def test_supernet_contains_prefix(self, prefix):
        if prefix.length >= 1:
            assert prefix.supernet(prefix.length - 1).contains(prefix)


class TestCommonSupernet:
    def test_adjacent(self):
        a = Prefix.parse("10.0.0.0/24")
        b = Prefix.parse("10.0.1.0/24")
        assert str(common_supernet(a, b)) == "10.0.0.0/23"

    def test_disjoint(self):
        a = Prefix.parse("10.0.0.0/8")
        b = Prefix.parse("192.168.0.0/16")
        merged = common_supernet(a, b)
        assert merged.contains(a) and merged.contains(b)

    def test_version_mismatch(self):
        with pytest.raises(VersionMismatchError):
            common_supernet(
                Prefix.parse("10.0.0.0/8"), Prefix.parse("2001:db8::/32")
            )

    @given(ipv4_prefixes(), ipv4_prefixes())
    def test_covers_both(self, a, b):
        merged = common_supernet(a, b)
        assert merged.contains(a) and merged.contains(b)


class TestMisc:
    def test_num_addresses(self):
        assert Prefix.parse("10.0.0.0/24").num_addresses == 256
        assert Prefix.parse("2001:db8::/64").num_addresses == 2**64

    def test_ordering(self):
        ordered = sorted([
            Prefix.parse("2001:db8::/32"),
            Prefix.parse("10.0.0.0/16"),
            Prefix.parse("10.0.0.0/8"),
        ])
        assert [str(p) for p in ordered] == [
            "10.0.0.0/8", "10.0.0.0/16", "2001:db8::/32",
        ]

    def test_key_is_hashable_triple(self):
        p = Prefix.parse("10.0.0.0/8")
        assert p.key() == (4, p.network, 8)
