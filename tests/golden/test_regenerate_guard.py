"""The regeneration dirty-tree guard.

``python -m tests.golden.regenerate`` must refuse to freeze fixtures
while the pipeline sources carry uncommitted changes — a golden
regenerated from a dirty tree silently blesses unreviewed output —
unless ``--force`` says that is exactly what the operator wants.
The guard is exercised against a throwaway git repository so these
tests never depend on (or disturb) the state of the real checkout.
"""

import subprocess

import pytest

from .regenerate import GUARDED, main, uncommitted_changes


def git(repo, *args):
    subprocess.run(
        ["git", "-c", "user.email=t@example.invalid",
         "-c", "user.name=t", *args],
        cwd=repo, check=True, capture_output=True,
    )


@pytest.fixture()
def repo(tmp_path):
    """A committed checkout with one file per guarded tree."""
    root = tmp_path / "repo"
    for guarded in GUARDED:
        (root / guarded).mkdir(parents=True)
        (root / guarded / "mod.py").write_text("VALUE = 1\n")
    git(root, "init", "-q")
    git(root, "add", ".")
    git(root, "commit", "-q", "-m", "seed")
    return root


class TestUncommittedChanges:
    def test_clean_tree_reports_nothing(self, repo):
        assert uncommitted_changes(repo) == []

    def test_dirty_core_reported(self, repo):
        target = repo / GUARDED[0] / "mod.py"
        target.write_text("VALUE = 2\n")
        dirty = uncommitted_changes(repo)
        assert dirty == [f"{GUARDED[0]}/mod.py"]

    def test_untracked_stream_file_reported(self, repo):
        (repo / GUARDED[1] / "new.py").write_text("x = 1\n")
        assert uncommitted_changes(repo) == [f"{GUARDED[1]}/new.py"]

    def test_changes_outside_guarded_trees_ignored(self, repo):
        (repo / "README.md").write_text("unrelated\n")
        assert uncommitted_changes(repo) == []

    def test_non_git_directory_is_unguarded(self, tmp_path):
        assert uncommitted_changes(tmp_path / "plain") == []


class TestMainGuard:
    def test_refuses_on_dirty_tree(self, repo, tmp_path, capsys):
        (repo / GUARDED[0] / "mod.py").write_text("VALUE = 3\n")
        out_dir = tmp_path / "out"
        out_dir.mkdir()
        code = main([], repo_root=repo, out_dir=out_dir)
        assert code == 1
        err = capsys.readouterr().err
        assert err.startswith("error: refusing to regenerate")
        assert "--force" in err
        assert f"{GUARDED[0]}/mod.py" in err
        assert list(out_dir.glob("*.json")) == []

    def test_force_overrides_dirty_tree(self, repo, tmp_path):
        (repo / GUARDED[0] / "mod.py").write_text("VALUE = 3\n")
        out_dir = tmp_path / "out"
        out_dir.mkdir()
        assert main(
            ["--force"], repo_root=repo, out_dir=out_dir
        ) == 0
        written = {p.name for p in out_dir.glob("*.json")}
        assert written == {
            "survey_golden.json", "survey_streamed_golden.json",
            "anomaly_golden.json",
        }

    def test_clean_tree_regenerates(self, repo, tmp_path):
        out_dir = tmp_path / "out"
        out_dir.mkdir()
        assert main([], repo_root=repo, out_dir=out_dir) == 0
        assert (out_dir / "survey_streamed_golden.json").exists()
