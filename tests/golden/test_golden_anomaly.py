"""Golden regression: the frozen campaign's anomaly report.

``anomaly_golden.json`` pins the full report payload of the
hand-built traceroute campaign in :mod:`tests.golden.regenerate` — a
day-2 delay surge, a day-3 next-hop flip, and a periodically silent
hop so link spanning is part of the frozen output.  Both kernel
backends and a sharded run are checked byte-for-byte (the payload is
already JSON-safe, so canonical bytes are the equality that the
serving layer's ETags rest on).  If a change is intentional,
regenerate with::

    PYTHONPATH=src:. python -m tests.golden.regenerate
"""

import json

import pytest

from repro.core.kernels import KERNELS_ENV, available_kernels
from repro.parallel.cache import canonical_json

from .regenerate import ANOMALY_FIXTURE, build_anomaly_report


@pytest.fixture(autouse=True)
def _pin_environment(monkeypatch):
    monkeypatch.delenv(KERNELS_ENV, raising=False)


@pytest.fixture(scope="module")
def golden_bytes():
    return canonical_json(json.loads(ANOMALY_FIXTURE.read_text()))


def test_reference_matches_golden(golden_bytes):
    assert canonical_json(build_anomaly_report()) == golden_bytes


@pytest.mark.skipif(
    "vector" not in available_kernels(),
    reason="vector backend unavailable",
)
def test_vector_matches_golden(golden_bytes):
    assert canonical_json(
        build_anomaly_report(kernels="vector")
    ) == golden_bytes


def test_sharded_matches_golden(golden_bytes):
    assert canonical_json(
        build_anomaly_report(shards=2)
    ) == golden_bytes


def test_golden_carries_both_event_kinds():
    """The fixture must stay a *non-trivial* regression anchor: one
    surged link, one flipped route, nothing else."""
    payload = json.loads(ANOMALY_FIXTURE.read_text())
    delay = [e for e in payload["events"] if e["kind"] == "delay"]
    forwarding = [
        e for e in payload["events"] if e["kind"] == "forwarding"
    ]
    assert {e["link"] for e in delay} == {"20.0.0.2--20.0.0.3"}
    assert {
        (e["near"], e["expected"], e["observed"]) for e in forwarding
    } == {("20.0.0.3", "20.0.0.4", "20.0.0.7")}
    assert payload["links_total"] == 5  # 3 path links + span + flip
