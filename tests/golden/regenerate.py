"""Regenerate the golden survey fixtures (batch and streamed).

One command, from the repo root:

    PYTHONPATH=src:. python -m tests.golden.regenerate

It refuses to run while the working tree has uncommitted changes
under the pipeline sources (``src/repro/core``, ``src/repro/stream``,
``src/repro/anomaly``) — a golden frozen from unreviewed code
silently blesses whatever the dirty tree computes.  Pass ``--force``
to override, e.g. while iterating on an intentional methodology
change.

Rerun it only when the pipeline's *intended* output changes (a
methodology fix, new thresholds) and commit the refreshed JSON with a
line in the commit message explaining why the numbers moved.  The
fixtures are always regenerated with the reference backend; the
golden tests then check both backends against them.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

FIXTURE = Path(__file__).with_name("survey_golden.json")
STREAMED_FIXTURE = Path(__file__).with_name(
    "survey_streamed_golden.json"
)
ANOMALY_FIXTURE = Path(__file__).with_name("anomaly_golden.json")

#: Source trees whose uncommitted changes block regeneration.
GUARDED = ("src/repro/core", "src/repro/stream", "src/repro/anomaly")

# Frozen world parameters.  Changing any of these is a fixture break:
# regenerate and explain.
NUM_ASES = 12
NUM_COUNTRIES = 6
WORLD_SEED = 5
SURVEY_SEED = 7
PERIOD_NAME = "golden"
PERIOD_START = "2019-09-02"
PERIOD_DAYS = 4


def _period():
    import datetime as dt

    from repro.timebase import MeasurementPeriod

    return MeasurementPeriod(
        PERIOD_NAME,
        dt.datetime.fromisoformat(PERIOD_START),
        PERIOD_DAYS,
    )


def _specs():
    from repro.scenarios import generate_specs

    return generate_specs(
        num_ases=NUM_ASES, num_countries=NUM_COUNTRIES, seed=WORLD_SEED
    )


def build_survey(kernels="reference"):
    """The frozen world's survey result (reference backend unless a
    backend is passed, as the golden test does for both)."""
    from repro.scenarios import run_survey_period

    result, _ = run_survey_period(
        _specs(), _period(), seed=SURVEY_SEED, kernels=kernels
    )
    return result


def build_streamed_survey(kernels="reference"):
    """The same frozen world replayed through the streaming engine:
    the world's binned dataset decomposed into a record stream and
    fed to :class:`repro.stream.StreamingSurvey`."""
    from repro.scenarios import build_survey_world
    from repro.stream import StreamingSurvey, dataset_to_records

    period = _period()
    world, platform = build_survey_world(
        _specs(), lockdown=False, seed=SURVEY_SEED,
        period_name=period.name,
    )
    dataset = platform.run_period_binned(period)
    engine = StreamingSurvey(
        period, table=world.table, kernels=kernels
    )
    engine.ingest_many(dataset_to_records(dataset))
    return engine.finalize()


# Frozen anomaly world: a hand-built traceroute campaign (no
# simulator, milliseconds to rebuild) with a day-2 delay surge and a
# day-3 next-hop flip, plus a periodically silent hop so link
# spanning is part of the frozen output.
ANOMALY_SEED = 9
ANOMALY_PROBES = 2
ANOMALY_DAYS = 3
ANOMALY_BIN_SECONDS = 1800
# Public addresses: private nears are excluded from forwarding
# tracking, and the flip must be part of the frozen output.
ANOMALY_PATH = ("20.0.0.1", "20.0.0.2", "20.0.0.3", "20.0.0.4")
ANOMALY_SURGE_BINS = range(58, 64)    # day-2 bins, +25 ms past hop 2
ANOMALY_FLIP_BINS = range(126, 132)   # day-3 bins, hop 4 readdressed


def build_anomaly_dataset():
    import numpy as np

    from repro.atlas.traceroute import (
        Hop,
        MeasurementDataset,
        Reply,
        TracerouteResult,
    )

    rng = np.random.default_rng(ANOMALY_SEED)
    day_bins = 86400 // ANOMALY_BIN_SECONDS
    base = (2.0, 5.0, 9.0, 14.0)
    dataset = MeasurementDataset()
    sequence = 0
    for prb_id in (1, 2):
        for bin_index in range(ANOMALY_DAYS * day_bins):
            surged = bin_index in ANOMALY_SURGE_BINS
            flipped = bin_index in ANOMALY_FLIP_BINS
            for k in range(3):
                timestamp = (
                    bin_index * ANOMALY_BIN_SECONDS + k * 600.0 + 1.0
                )
                sequence += 1
                hops = []
                for i, address in enumerate(ANOMALY_PATH):
                    if i == 1 and sequence % 37 == 0:
                        hops.append(Hop(
                            hop=i + 1,
                            replies=(Reply.timeout(),) * 3,
                        ))
                        continue
                    if i == 3 and flipped:
                        address = "20.0.0.7"
                    rtt = base[i] + (25.0 if surged and i >= 2 else 0.0)
                    hops.append(Hop(hop=i + 1, replies=tuple(
                        Reply(address, round(
                            rtt + rng.uniform(0.0, 0.4), 3
                        ))
                        for _ in range(3)
                    )))
                dataset.extend([TracerouteResult(
                    prb_id=prb_id, msm_id=1, timestamp=timestamp,
                    src_address="192.168.1.2",
                    from_address="60.0.0.9",
                    dst_address="9.9.9.9", hops=tuple(hops),
                )])
    return dataset


def build_anomaly_report(kernels="reference", shards=1):
    """The frozen campaign's anomaly-report payload."""
    import datetime as dt

    from repro.anomaly import detect_anomalies
    from repro.timebase import MeasurementPeriod, TimeGrid

    period = MeasurementPeriod(
        "golden-anomaly",
        dt.datetime.fromisoformat(PERIOD_START),
        ANOMALY_DAYS,
    )
    dataset = build_anomaly_dataset()
    report = detect_anomalies(
        dataset.results,
        TimeGrid(period, ANOMALY_BIN_SECONDS),
        period_name=period.name, kernels=kernels, shards=shards,
    )
    return report.payload


def uncommitted_changes(repo_root=None):
    """Guarded-tree paths with uncommitted changes (empty when the
    tree is clean or this is not a git checkout)."""
    root = (
        Path(repo_root) if repo_root is not None
        else Path(__file__).resolve().parents[2]
    )
    try:
        status = subprocess.run(
            ["git", "status", "--porcelain", "--", *GUARDED],
            cwd=root, capture_output=True, text=True,
            timeout=30, check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return []
    return [line[3:] for line in status.splitlines() if line.strip()]


def _write(path: Path, result) -> dict:
    from repro.io import survey_to_dict

    payload = survey_to_dict(result)
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    return payload


def main(argv=None, repo_root=None, out_dir=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tests.golden.regenerate",
        description="Regenerate the golden survey fixtures.",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="regenerate even with uncommitted pipeline changes",
    )
    args = parser.parse_args(argv)

    dirty = uncommitted_changes(repo_root)
    if dirty and not args.force:
        print(
            "error: refusing to regenerate golden fixtures with "
            "uncommitted changes under "
            + " / ".join(GUARDED)
            + " (use --force to override): "
            + ", ".join(dirty),
            file=sys.stderr,
        )
        return 1

    out = Path(out_dir) if out_dir is not None else FIXTURE.parent
    batch = _write(out / FIXTURE.name, build_survey())
    print(f"wrote {out / FIXTURE.name} "
          f"({len(batch['reports'])} reports)")
    streamed = _write(
        out / STREAMED_FIXTURE.name, build_streamed_survey()
    )
    print(f"wrote {out / STREAMED_FIXTURE.name} "
          f"({len(streamed['reports'])} reports)")
    anomaly = build_anomaly_report()
    (out / ANOMALY_FIXTURE.name).write_text(
        json.dumps(anomaly, indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {out / ANOMALY_FIXTURE.name} "
          f"({anomaly['links_total']} links, "
          f"{len(anomaly['events'])} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
