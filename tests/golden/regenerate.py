"""Regenerate the golden survey fixture.

One command, from the repo root:

    PYTHONPATH=src:. python -m tests.golden.regenerate

Rerun it only when the pipeline's *intended* output changes (a
methodology fix, new thresholds) and commit the refreshed JSON with a
line in the commit message explaining why the numbers moved.  The
fixture is always regenerated with the reference backend; the golden
test then checks both backends against it.
"""

import json
from pathlib import Path

FIXTURE = Path(__file__).with_name("survey_golden.json")

# Frozen world parameters.  Changing any of these is a fixture break:
# regenerate and explain.
NUM_ASES = 12
NUM_COUNTRIES = 6
WORLD_SEED = 5
SURVEY_SEED = 7
PERIOD_NAME = "golden"
PERIOD_START = "2019-09-02"
PERIOD_DAYS = 4


def build_survey(kernels="reference"):
    """The frozen world's survey result (reference backend unless a
    backend is passed, as the golden test does for both)."""
    import datetime as dt

    from repro.scenarios import generate_specs, run_survey_period
    from repro.timebase import MeasurementPeriod

    specs = generate_specs(
        num_ases=NUM_ASES, num_countries=NUM_COUNTRIES, seed=WORLD_SEED
    )
    period = MeasurementPeriod(
        PERIOD_NAME,
        dt.datetime.fromisoformat(PERIOD_START),
        PERIOD_DAYS,
    )
    result, _ = run_survey_period(
        specs, period, seed=SURVEY_SEED, kernels=kernels
    )
    return result


def main() -> int:
    from repro.io import survey_to_dict

    payload = survey_to_dict(build_survey())
    FIXTURE.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    print(f"wrote {FIXTURE} ({len(payload['reports'])} reports)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
