"""Regenerate the golden survey fixtures (batch and streamed).

One command, from the repo root:

    PYTHONPATH=src:. python -m tests.golden.regenerate

It refuses to run while the working tree has uncommitted changes
under the pipeline sources (``src/repro/core``, ``src/repro/stream``)
— a golden frozen from unreviewed code silently blesses whatever the
dirty tree computes.  Pass ``--force`` to override, e.g. while
iterating on an intentional methodology change.

Rerun it only when the pipeline's *intended* output changes (a
methodology fix, new thresholds) and commit the refreshed JSON with a
line in the commit message explaining why the numbers moved.  The
fixtures are always regenerated with the reference backend; the
golden tests then check both backends against them.
"""

import argparse
import json
import subprocess
import sys
from pathlib import Path

FIXTURE = Path(__file__).with_name("survey_golden.json")
STREAMED_FIXTURE = Path(__file__).with_name(
    "survey_streamed_golden.json"
)

#: Source trees whose uncommitted changes block regeneration.
GUARDED = ("src/repro/core", "src/repro/stream")

# Frozen world parameters.  Changing any of these is a fixture break:
# regenerate and explain.
NUM_ASES = 12
NUM_COUNTRIES = 6
WORLD_SEED = 5
SURVEY_SEED = 7
PERIOD_NAME = "golden"
PERIOD_START = "2019-09-02"
PERIOD_DAYS = 4


def _period():
    import datetime as dt

    from repro.timebase import MeasurementPeriod

    return MeasurementPeriod(
        PERIOD_NAME,
        dt.datetime.fromisoformat(PERIOD_START),
        PERIOD_DAYS,
    )


def _specs():
    from repro.scenarios import generate_specs

    return generate_specs(
        num_ases=NUM_ASES, num_countries=NUM_COUNTRIES, seed=WORLD_SEED
    )


def build_survey(kernels="reference"):
    """The frozen world's survey result (reference backend unless a
    backend is passed, as the golden test does for both)."""
    from repro.scenarios import run_survey_period

    result, _ = run_survey_period(
        _specs(), _period(), seed=SURVEY_SEED, kernels=kernels
    )
    return result


def build_streamed_survey(kernels="reference"):
    """The same frozen world replayed through the streaming engine:
    the world's binned dataset decomposed into a record stream and
    fed to :class:`repro.stream.StreamingSurvey`."""
    from repro.scenarios import build_survey_world
    from repro.stream import StreamingSurvey, dataset_to_records

    period = _period()
    world, platform = build_survey_world(
        _specs(), lockdown=False, seed=SURVEY_SEED,
        period_name=period.name,
    )
    dataset = platform.run_period_binned(period)
    engine = StreamingSurvey(
        period, table=world.table, kernels=kernels
    )
    engine.ingest_many(dataset_to_records(dataset))
    return engine.finalize()


def uncommitted_changes(repo_root=None):
    """Guarded-tree paths with uncommitted changes (empty when the
    tree is clean or this is not a git checkout)."""
    root = (
        Path(repo_root) if repo_root is not None
        else Path(__file__).resolve().parents[2]
    )
    try:
        status = subprocess.run(
            ["git", "status", "--porcelain", "--", *GUARDED],
            cwd=root, capture_output=True, text=True,
            timeout=30, check=True,
        ).stdout
    except (OSError, subprocess.SubprocessError):
        return []
    return [line[3:] for line in status.splitlines() if line.strip()]


def _write(path: Path, result) -> dict:
    from repro.io import survey_to_dict

    payload = survey_to_dict(result)
    path.write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n"
    )
    return payload


def main(argv=None, repo_root=None, out_dir=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tests.golden.regenerate",
        description="Regenerate the golden survey fixtures.",
    )
    parser.add_argument(
        "--force", action="store_true",
        help="regenerate even with uncommitted pipeline changes",
    )
    args = parser.parse_args(argv)

    dirty = uncommitted_changes(repo_root)
    if dirty and not args.force:
        print(
            "error: refusing to regenerate golden fixtures with "
            "uncommitted changes under "
            + " / ".join(GUARDED)
            + " (use --force to override): "
            + ", ".join(dirty),
            file=sys.stderr,
        )
        return 1

    out = Path(out_dir) if out_dir is not None else FIXTURE.parent
    batch = _write(out / FIXTURE.name, build_survey())
    print(f"wrote {out / FIXTURE.name} "
          f"({len(batch['reports'])} reports)")
    streamed = _write(
        out / STREAMED_FIXTURE.name, build_streamed_survey()
    )
    print(f"wrote {out / STREAMED_FIXTURE.name} "
          f"({len(streamed['reports'])} reports)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
