"""Golden regression: a frozen world's survey must never drift.

``survey_golden.json`` pins the full ``survey_to_dict`` output of the
world defined in :mod:`tests.golden.regenerate`.  Both kernel
backends are checked against it with a field-by-field diff, so a
failure names the exact AS and field that moved instead of dumping
two JSON blobs.  If the change is intentional, regenerate with::

    PYTHONPATH=src:. python -m tests.golden.regenerate
"""

import json
import math

import pytest

from repro.core.kernels import KERNELS_ENV
from repro.io import survey_to_dict
from repro.parallel import WORKERS_ENV

from .regenerate import (
    FIXTURE,
    PERIOD_DAYS,
    STREAMED_FIXTURE,
    build_streamed_survey,
    build_survey,
)


@pytest.fixture(autouse=True)
def _pin_environment(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.delenv(KERNELS_ENV, raising=False)


@pytest.fixture(scope="module")
def golden():
    return json.loads(FIXTURE.read_text())


def diff_fields(expected, actual, path=""):
    """Flat list of 'path: expected != actual' strings.

    Exact equality for ints/strings/structure; floats compare with
    ``math.isclose(rel_tol=1e-9)`` so the fixture survives
    library-version noise in the last bits while still catching any
    real numeric drift.
    """
    problems = []
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            where = f"{path}.{key}" if path else str(key)
            if key not in expected:
                problems.append(f"{where}: unexpected {actual[key]!r}")
            elif key not in actual:
                problems.append(f"{where}: missing "
                                f"(expected {expected[key]!r})")
            else:
                problems += diff_fields(
                    expected[key], actual[key], where
                )
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            problems.append(
                f"{path}: length {len(actual)} != {len(expected)}"
            )
        else:
            for i, (e, a) in enumerate(zip(expected, actual)):
                problems += diff_fields(e, a, f"{path}[{i}]")
    elif (
        isinstance(expected, float)
        and isinstance(actual, float)
        and not isinstance(expected, bool)
    ):
        if not (
            math.isclose(expected, actual, rel_tol=1e-9)
            or (math.isnan(expected) and math.isnan(actual))
        ):
            problems.append(f"{path}: {actual!r} != {expected!r}")
    elif type(expected) is not type(actual) or expected != actual:
        problems.append(f"{path}: {actual!r} != {expected!r}")
    return problems


class TestDiffFields:
    def test_reports_differences_by_path(self):
        expected = {"a": {"b": 1.0, "c": "x"}, "d": [1, 2]}
        actual = {"a": {"b": 1.5, "c": "x"}, "d": [1, 3], "e": 0}
        problems = diff_fields(expected, actual)
        assert any(p.startswith("a.b:") for p in problems)
        assert any(p.startswith("d[1]:") for p in problems)
        assert any("unexpected" in p for p in problems)

    def test_tolerates_last_bit_float_noise(self):
        assert diff_fields({"x": 0.1}, {"x": 0.1 + 1e-17}) == []


@pytest.mark.parametrize("backend", ["reference", "vector"])
def test_survey_matches_golden_fixture(golden, backend):
    recomputed = survey_to_dict(build_survey(kernels=backend))
    problems = diff_fields(golden, recomputed)
    assert not problems, (
        f"[{backend}] survey drifted from tests/golden/"
        "survey_golden.json:\n  " + "\n  ".join(problems)
        + "\nIf intentional: PYTHONPATH=src:. "
        "python -m tests.golden.regenerate"
    )


@pytest.mark.parametrize("backend", ["reference", "vector"])
def test_streamed_survey_matches_golden_fixture(backend):
    """The frozen world replayed through the streaming engine must
    reproduce its own committed fixture on both backends."""
    streamed_golden = json.loads(STREAMED_FIXTURE.read_text())
    recomputed = survey_to_dict(build_streamed_survey(kernels=backend))
    problems = diff_fields(streamed_golden, recomputed)
    assert not problems, (
        f"[{backend}] streamed survey drifted from tests/golden/"
        "survey_streamed_golden.json:\n  " + "\n  ".join(problems)
        + "\nIf intentional: PYTHONPATH=src:. "
        "python -m tests.golden.regenerate"
    )


def test_streamed_golden_equals_batch_golden(golden):
    """The frozen proof of the equivalence contract: the committed
    streamed fixture is *identical* to the committed batch fixture."""
    assert json.loads(STREAMED_FIXTURE.read_text()) == golden


def test_fixture_is_self_consistent(golden):
    """Sanity on the committed JSON itself, independent of the
    pipeline: every report has the serialized shape the site exporter
    and the archive expect."""
    assert golden["period"]["days"] == PERIOD_DAYS
    assert golden["reports"], "fixture must hold at least one report"
    for asn, report in golden["reports"].items():
        assert int(asn) > 0
        assert report["severity"] in ("none", "low", "mild", "severe")
        assert report["probe_count"] >= 1
        markers = report["markers"]
        if markers is not None:
            assert set(markers) == {
                "prominent_frequency_cph",
                "prominent_amplitude_ms",
                "daily_amplitude_ms",
            }
