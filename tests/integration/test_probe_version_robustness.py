"""The paper's §2 robustness claim about v1/v2 probes.

"Although past research has shown that v1 and v2 probes can be less
reliable, in our experiments we observe only slight differences in our
aggregated results when using these probes."

We classify the same AS population twice — once with a realistic
v1/v2/v3 mix, once with v3-only probes — and verify the aggregated
outcomes (severity class, daily amplitude) differ only slightly.
"""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import AtlasPlatform, DeploymentConfig, ProbeVersion
from repro.core import aggregate_population, classify_signal
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.timebase import MeasurementPeriod
from repro.topology import ProvisioningPolicy, World

PERIOD = MeasurementPeriod("vmix", dt.datetime(2019, 9, 2), 15)


def classify_with_versions(peak, mixed, seed=44, probes=12):
    world = World(seed=seed)
    isp = world.add_isp(
        ASInfo(
            64500, "V", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_PPPOE_LEGACY: peak},
            device_spread=0.005,
            load_jitter_std=0.005,
        ),
    )
    isp.ensure_devices(AccessTechnology.FTTH_PPPOE_LEGACY, 3)
    world.add_default_targets()
    world.finalize()
    platform = AtlasPlatform(world)
    platform.config.outage_rate_per_day = 0.0
    if mixed:
        platform.config = DeploymentConfig()
        platform.config.outage_rate_per_day = 0.0
        deployed = platform.deploy_probes_on_isp(isp, probes)
    else:
        deployed = platform.deploy_probes_on_isp(
            isp, probes, version=ProbeVersion.V3
        )
    dataset = platform.run_period_binned(PERIOD, deployed)
    signal = aggregate_population(dataset)
    return classify_signal(signal.delay_ms, dataset.grid.bin_seconds)


class TestVersionRobustness:
    @pytest.mark.parametrize("peak", [0.5, 0.90, 0.96])
    def test_same_class_with_and_without_v1v2(self, peak):
        mixed = classify_with_versions(peak, mixed=True)
        v3_only = classify_with_versions(peak, mixed=False)
        assert mixed.severity == v3_only.severity

    def test_amplitude_only_slightly_different(self):
        mixed = classify_with_versions(0.95, mixed=True)
        v3_only = classify_with_versions(0.95, mixed=False)
        assert mixed.daily_amplitude_ms == pytest.approx(
            v3_only.daily_amplitude_ms, rel=0.35
        )

    def test_mix_contains_v1_v2(self):
        """The mixed deployment actually exercises old probes."""
        world = World(seed=44)
        isp = world.add_isp(ASInfo(
            64500, "V", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ))
        world.add_default_targets()
        world.finalize()
        platform = AtlasPlatform(world)
        deployed = platform.deploy_probes_on_isp(isp, 40)
        versions = {p.version for p in deployed}
        assert ProbeVersion.V1 in versions or ProbeVersion.V2 in versions
