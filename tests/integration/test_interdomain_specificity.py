"""Specificity of the last-mile methodology vs inter-domain congestion.

The paper positions itself against Dhamdhere et al.'s *inter-domain*
congestion work: both phenomena show clear daily patterns, but they
live on different segments.  The hop-subtraction methodology must not
attribute a congested transit/peering link to the last mile — while a
naive end-to-end delay analysis would.
"""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import AtlasPlatform, ProbeVersion
from repro.core import (
    aggregate_population,
    classify_signal,
    estimate_dataset,
)
from repro.core.lastmile import e2e_samples, lastmile_samples
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.queueing import LinkModel, SharedDevice
from repro.timebase import MeasurementPeriod, TimeGrid
from repro.traffic import DemandSeries, WeeklyDemandModel
from repro.topology import ProvisioningPolicy, World

PERIOD = MeasurementPeriod("interdomain", dt.datetime(2019, 9, 2), 4)


@pytest.fixture(scope="module")
def congested_transit_world():
    """Clean last mile, badly congested upstream peering link."""
    world = World(seed=88)
    isp = world.add_isp(
        ASInfo(
            64501, "CleanAccess", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_OWN],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_OWN: 0.45},
            load_jitter_std=0.0,
        ),
    )
    world.add_default_targets()
    world.finalize()

    peering = SharedDevice(
        name="congested-peering",
        link=LinkModel(service_time_ms=0.5, max_delay_ms=60.0),
        demand=DemandSeries(
            model=WeeklyDemandModel.residential(),
            utc_offset_hours=9.0,
        ),
        peak_utilization=0.97,
        jitter_std=0.0,
    )
    world.add_interdomain_congestion(64501, peering)

    platform = AtlasPlatform(world)
    platform.config.outage_rate_per_day = 0.0
    probes = platform.deploy_probes_on_isp(
        isp, 4, version=ProbeVersion.V3
    )
    raw = platform.run_period(PERIOD, probes)
    return world, raw


class TestInterdomainSpecificity:
    def grid(self):
        return TimeGrid(PERIOD)

    def test_e2e_delay_shows_interdomain_congestion(
        self, congested_transit_world
    ):
        _world, raw = congested_transit_world
        e2e = estimate_dataset(
            raw.results, self.grid(), probe_meta=raw.probe_meta,
            sample_fn=e2e_samples,
        )
        signal = aggregate_population(e2e)
        result = classify_signal(signal.delay_ms, 1800)
        # Naive end-to-end analysis flags the AS hard.
        assert signal.max_delay_ms > 3.0
        assert result.severity.is_reported

    def test_lastmile_pipeline_stays_clean(
        self, congested_transit_world
    ):
        """The hop subtraction removes the transit queue entirely."""
        _world, raw = congested_transit_world
        lastmile = estimate_dataset(
            raw.results, self.grid(), probe_meta=raw.probe_meta,
            sample_fn=lastmile_samples,
        )
        signal = aggregate_population(lastmile)
        result = classify_signal(signal.delay_ms, 1800)
        assert not result.severity.is_reported
        assert signal.max_delay_ms < 0.8

    def test_amplitude_separation(self, congested_transit_world):
        """Orders of magnitude between e2e and last-mile amplitudes."""
        _world, raw = congested_transit_world
        grid = self.grid()
        e2e = aggregate_population(estimate_dataset(
            raw.results, grid, sample_fn=e2e_samples
        ))
        lastmile = aggregate_population(estimate_dataset(
            raw.results, grid, sample_fn=lastmile_samples
        ))
        assert e2e.max_delay_ms > 10 * lastmile.max_delay_ms

    def test_target_scoped_congestion(self):
        """Congestion toward one target leaves other paths clean."""
        world = World(seed=89)
        isp = world.add_isp(
            ASInfo(
                64501, "X", "JP", ASRole.EYEBALL,
                access_technologies=[AccessTechnology.FTTH_OWN],
            ),
            provisioning=ProvisioningPolicy(load_jitter_std=0.0),
        )
        targets = world.add_default_targets()
        world.finalize()
        device = SharedDevice(
            name="one-peering",
            link=LinkModel(service_time_ms=0.5),
            demand=DemandSeries(model=WeeklyDemandModel.residential()),
            peak_utilization=0.97,
        )
        world.add_interdomain_congestion(
            64501, device, target_name=targets[0].name
        )
        subscriber = isp.attach_subscriber()
        hot_path = world.build_path(subscriber, targets[0])
        cold_path = world.build_path(subscriber, targets[1])
        assert hot_path.interdomain_device is device
        assert cold_path.interdomain_device is None
        assert any(h.interdomain_queue for h in hot_path.hops)
        assert not any(h.interdomain_queue for h in cold_path.hops)

    def test_unknown_asn_rejected(self):
        world = World(seed=90)
        device = SharedDevice(
            name="x", link=LinkModel(),
            demand=DemandSeries(model=WeeklyDemandModel.residential()),
            peak_utilization=0.9,
        )
        with pytest.raises(KeyError):
            world.add_interdomain_congestion(99999, device)
