"""End-to-end integration: full-fidelity traceroutes through the
complete paper methodology, including BGP probe resolution and the
Greater-Tokyo geographic filter.
"""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import AtlasPlatform, ProbeVersion
from repro.core import (
    Severity,
    aggregate_population,
    classify_signal,
    estimate_dataset,
    probes_in_asn,
    probes_in_greater_tokyo,
    resolve_probe_asn,
)
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.timebase import MeasurementPeriod, TimeGrid
from repro.topology import ProvisioningPolicy, World

PERIOD = MeasurementPeriod("e2e", dt.datetime(2019, 9, 2), 4)


@pytest.fixture(scope="module")
def pipeline_world():
    """Two ISPs (one congested, one clean), probes in mixed cities,
    plus an anchor; full-fidelity run through the batch pipeline."""
    world = World(seed=66)
    hot = world.add_isp(
        ASInfo(
            64501, "HotNet", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_PPPOE_LEGACY: 0.96},
            device_spread=0.005,
            load_jitter_std=0.005,
        ),
        edge_announced_probability=0.0,   # edge space stays dark
    )
    cool = world.add_isp(
        ASInfo(
            64502, "CoolNet", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_OWN],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_OWN: 0.5},
        ),
    )
    world.add_default_targets()
    world.finalize()

    platform = AtlasPlatform(world)
    platform.config.outage_rate_per_day = 0.0
    probes = []
    for city in ("Tokyo", "Tokyo", "Yokohama", "Osaka"):
        probes.append(platform.deploy_probe(
            hot.attach_subscriber(city=city),
            version=ProbeVersion.V3, city=city,
        ))
    for city in ("Tokyo", "Chiba", "Osaka", "Saitama"):
        probes.append(platform.deploy_probe(
            cool.attach_subscriber(city=city),
            version=ProbeVersion.V3, city=city,
        ))
    anchor = platform.deploy_anchor(hot, city="Tokyo")

    raw = platform.run_period(PERIOD, probes + [anchor])
    grid = TimeGrid(PERIOD)
    dataset = estimate_dataset(
        raw.results, grid, probe_meta=raw.probe_meta
    )
    return world, platform, dataset, raw


class TestResolution:
    def test_probe_addresses_resolve_via_lpm(self, pipeline_world):
        world, _platform, dataset, _raw = pipeline_world
        for meta in dataset.probe_meta.values():
            asn = resolve_probe_asn(meta, world.table)
            assert asn == meta.asn

    def test_unannounced_edge_does_not_break_attribution(
        self, pipeline_world
    ):
        """HotNet's edge block is unannounced (the paper's reason to
        LPM the probe's public address, not the first-hop address)."""
        world, _platform, dataset, raw = pipeline_world
        hot_probes = probes_in_asn(
            dataset.probe_meta, 64501, table=world.table
        )
        assert len(hot_probes) == 4
        # First public hop of a HotNet traceroute is NOT in the RIB.
        result = raw.for_probe(hot_probes[0])[0]
        from repro.core.lastmile import find_boundary
        from repro.netbase import parse_address

        boundary = find_boundary(result)
        value, version = parse_address(
            boundary.first_public.responding_address
        )
        assert world.table.resolve_asn(value, version) is None


class TestSelectionFilters:
    def test_anchor_excluded(self, pipeline_world):
        world, _platform, dataset, _raw = pipeline_world
        ids = probes_in_asn(dataset.probe_meta, 64501, table=world.table)
        anchors = [
            prb for prb, meta in dataset.probe_meta.items()
            if meta.is_anchor
        ]
        assert anchors
        assert not set(anchors) & set(ids)

    def test_greater_tokyo_filter(self, pipeline_world):
        _world, _platform, dataset, _raw = pipeline_world
        tokyo = probes_in_greater_tokyo(dataset.probe_meta)
        cities = {
            dataset.probe_meta[prb].city for prb in tokyo
        }
        assert cities <= {"Tokyo", "Yokohama", "Chiba", "Saitama"}
        assert "Osaka" not in cities
        assert len(tokyo) == 6  # 3 hot + 3 cool in Greater Tokyo


class TestClassificationOutcome:
    def test_hot_reported_cool_not(self, pipeline_world):
        world, _platform, dataset, _raw = pipeline_world
        for asn, expected_reported in ((64501, True), (64502, False)):
            ids = probes_in_asn(
                dataset.probe_meta, asn, table=world.table
            )
            signal = aggregate_population(dataset, ids)
            result = classify_signal(
                signal.delay_ms, dataset.grid.bin_seconds
            )
            assert result.severity.is_reported == expected_reported

    def test_anchor_series_flat(self, pipeline_world):
        _world, _platform, dataset, _raw = pipeline_world
        from repro.core import probe_queuing_delay

        anchor_id = next(
            prb for prb, meta in dataset.probe_meta.items()
            if meta.is_anchor
        )
        delay = probe_queuing_delay(dataset.series[anchor_id])
        assert np.nanmax(delay) < 1.0


class TestSanityChecks:
    def test_every_probe_has_full_bins(self, pipeline_world):
        _world, _platform, dataset, _raw = pipeline_world
        for prb_id, series in dataset.series.items():
            assert series.valid_mask().mean() > 0.95

    def test_traceroute_counts_match_schedule(self, pipeline_world):
        _world, _platform, dataset, _raw = pipeline_world
        for series in dataset.series.values():
            assert np.median(series.traceroute_counts) == 24
