"""Tests for the data-quality ledger."""

import pytest

from repro.netbase import (
    CorruptLineError,
    EmptyPopulationError,
    GarbageRTTError,
    MalformedRecordError,
    MeasurementDataError,
    TransientFaultError,
)
from repro.quality import DataQualityReport, DropReason


class TestDataQualityReport:
    def test_clean_by_default(self):
        quality = DataQualityReport()
        assert quality.clean
        assert quality.total_ingested == 0
        assert "clean" not in str(quality)  # summary still renders
        assert quality.summary_lines()

    def test_ingest_drop_degrade_counts(self):
        quality = DataQualityReport()
        quality.ingest("load", n=10)
        quality.drop("load", DropReason.CORRUPT_LINE, n=2)
        quality.drop("load", DropReason.DUPLICATE_RECORD)
        quality.degrade("load", DropReason.GARBAGE_RTT, n=3)
        assert not quality.clean
        assert quality.total_ingested == 10
        assert quality.total_dropped == 3
        assert quality.total_degraded == 3
        assert quality.dropped_count(DropReason.CORRUPT_LINE) == 2
        assert quality.dropped_count(stage="load") == 3
        assert quality.degraded_count(DropReason.GARBAGE_RTT) == 3
        assert quality.dropped_count(DropReason.GARBAGE_RTT) == 0

    def test_quarantine_detail_capped(self):
        quality = DataQualityReport()
        for index in range(100):
            quality.drop(
                "s", DropReason.MALFORMED_RECORD, detail=f"rec {index}"
            )
        stage = quality.stage("s")
        assert quality.dropped_count(DropReason.MALFORMED_RECORD) == 100
        assert len(stage.quarantine) == stage.MAX_QUARANTINE

    def test_merge_accumulates(self):
        a = DataQualityReport()
        a.ingest("load", n=5)
        a.drop("load", DropReason.CORRUPT_LINE)
        b = DataQualityReport()
        b.ingest("load", n=3)
        b.drop("survey", DropReason.AS_FAILURE)
        a.merge(b)
        assert a.stage("load").ingested == 8
        assert a.total_dropped == 2
        assert a.dropped_count(stage="survey") == 1

    def test_rows_and_to_dict(self):
        quality = DataQualityReport()
        quality.ingest("load", n=4)
        quality.drop("load", DropReason.CORRUPT_LINE, n=2)
        quality.degrade("load", DropReason.OUT_OF_ORDER)
        rows = list(quality.rows())
        assert ("load", "dropped", "corrupt-line", 2) in rows
        assert ("load", "degraded", "out-of-order", 1) in rows
        data = quality.to_dict()
        assert data["load"]["ingested"] == 4
        assert data["load"]["dropped"]["corrupt-line"] == 2


class TestErrorTaxonomy:
    def test_reason_codes_attached(self):
        assert CorruptLineError("x").reason == DropReason.CORRUPT_LINE
        assert GarbageRTTError("x").reason == DropReason.GARBAGE_RTT
        assert MalformedRecordError("x").reason == (
            DropReason.MALFORMED_RECORD
        )
        error = MalformedRecordError("x", reason=DropReason.OUT_OF_ORDER)
        assert error.reason == DropReason.OUT_OF_ORDER

    def test_message_carries_reason_and_detail(self):
        error = GarbageRTTError("hop 3 rtt -5")
        assert str(error) == "garbage-rtt: hop 3 rtt -5"
        assert error.detail == "hop 3 rtt -5"

    def test_hierarchy(self):
        assert issubclass(CorruptLineError, MeasurementDataError)
        assert issubclass(TransientFaultError, MeasurementDataError)
        # Back-compat: empty populations used to raise ValueError.
        assert issubclass(EmptyPopulationError, ValueError)
        with pytest.raises(ValueError):
            raise EmptyPopulationError("no probes")


class TestStageNameNormalization:
    def test_normalize_stage_canonical_forms(self):
        from repro.quality import normalize_stage

        assert normalize_stage("io.load_traceroutes") == (
            "io-load-traceroutes"
        )
        assert normalize_stage("Core_Survey") == "core-survey"
        assert normalize_stage(" raclette-monitor ") == (
            "raclette-monitor"
        )
        assert normalize_stage("core-filtering") == "core-filtering"

    def test_legacy_dotted_and_kebab_share_one_entry(self):
        quality = DataQualityReport()
        quality.ingest("io.load_traceroutes", n=3)
        quality.ingest("io-load-traceroutes", n=2)
        assert list(quality.stages) == ["io-load-traceroutes"]
        assert quality.stage("io.load_traceroutes").ingested == 5

    def test_count_filters_accept_any_spelling(self):
        quality = DataQualityReport()
        quality.drop(
            "core-filtering", DropReason.CORRUPT_LINE, n=2
        )
        assert quality.dropped_count(stage="core.filtering") == 2
        assert quality.dropped_count(stage="core_filtering") == 2
