"""Tests for IPv6 measurement paths (the paper's deferred future work)."""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import AtlasPlatform, ProbeVersion
from repro.core import (
    aggregate_population,
    estimate_dataset,
    probe_queuing_delay,
)
from repro.netbase import AccessTechnology, ASInfo, ASRole, is_private, parse_address
from repro.timebase import MeasurementPeriod, TimeGrid
from repro.topology import ProvisioningPolicy, World

PERIOD = MeasurementPeriod("v6", dt.datetime(2019, 9, 2), 2)


@pytest.fixture(scope="module")
def legacy_world():
    """Legacy ISP: congested PPPoE for v4, roomy IPoE for v6."""
    world = World(seed=101)
    isp = world.add_isp(
        ASInfo(
            64501, "Legacy", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={
                AccessTechnology.FTTH_PPPOE_LEGACY: 0.96,
                AccessTechnology.FTTH_IPOE_LEGACY: 0.55,
            },
            device_spread=0.005,
            load_jitter_std=0.005,
        ),
        ipv6_technology=AccessTechnology.FTTH_IPOE_LEGACY,
    )
    world.add_default_targets()
    world.finalize()
    platform = AtlasPlatform(world)
    platform.config.outage_rate_per_day = 0.0
    probes = platform.deploy_probes_on_isp(
        isp, 4, version=ProbeVersion.V3
    )
    return world, isp, platform, probes


class TestPathConstruction:
    def test_v6_path_structure(self, legacy_world):
        world, isp, _platform, probes = legacy_world
        subscriber = probes[0].subscriber
        target = world.targets[0]
        path = world.build_path(subscriber, target, af=6)

        assert path.af == 6
        # One private (ULA) hop, then the IPoE gateway's v6 address.
        privates = [h for h in path.hops if h.private]
        assert len(privates) == 1
        value, version = (privates[0].address.value,
                          privates[0].address.version)
        assert version == 6 and is_private(value, 6)
        edge = path.hops[1]
        assert edge.address == subscriber.device_v6.edge_address_v6
        assert edge.address.version == 6
        assert path.access_device is subscriber.device_v6
        # v6 rides IPoE, not the PPPoE BRAS.
        assert subscriber.device_v6 is not subscriber.device
        assert (subscriber.device_v6.technology
                == AccessTechnology.FTTH_IPOE_LEGACY)
        # Destination is the target's v6 face.
        assert path.hops[-1].address == target.address_v6

    def test_v4_path_unchanged(self, legacy_world):
        world, _isp, _platform, probes = legacy_world
        path = world.build_path(
            probes[0].subscriber, world.targets[0], af=4
        )
        assert path.af == 4
        assert path.access_device is probes[0].subscriber.device

    def test_bad_af_rejected(self, legacy_world):
        world, _isp, _platform, probes = legacy_world
        with pytest.raises(ValueError):
            world.build_path(
                probes[0].subscriber, world.targets[0], af=5
            )

    def test_v6less_subscriber_rejected(self):
        world = World(seed=102)
        isp = world.add_isp(
            ASInfo(
                64501, "NoV6", "JP", ASRole.EYEBALL,
                access_technologies=[AccessTechnology.FTTH_OWN],
            ),
            with_ipv6=False,
        )
        world.add_default_targets()
        world.finalize()
        subscriber = isp.attach_subscriber()
        with pytest.raises(ValueError):
            world.build_path(subscriber, world.targets[0], af=6)


class TestV6Measurements:
    def test_full_fidelity_v6_results(self, legacy_world):
        _world, _isp, platform, probes = legacy_world
        dataset = platform.run_period(PERIOD, probes[:1], af=6)
        results = dataset.for_probe(probes[0].probe_id)
        assert results
        first = results[0]
        assert first.af == 6
        assert ":" in first.dst_address
        assert first.msm_id >= 6001  # offset series
        # Boundary detection works on the v6 hops.
        from repro.core.lastmile import find_boundary

        boundary = find_boundary(first)
        assert boundary is not None
        assert boundary.last_private is not None

    def test_v6_delay_flat_while_v4_congested(self, legacy_world):
        """The future-work experiment in miniature: same probes, same
        period — PPPoE (v4) shows the evening queue, IPoE (v6) none."""
        _world, _isp, platform, probes = legacy_world
        v4 = platform.run_period_binned(PERIOD, probes, af=4)
        v6 = platform.run_period_binned(PERIOD, probes, af=6)
        signal_v4 = aggregate_population(v4)
        signal_v6 = aggregate_population(v6)
        assert signal_v4.max_delay_ms > 1.5
        assert signal_v6.max_delay_ms < 0.5

    def test_v4_only_probes_skipped_in_v6_run(self):
        world = World(seed=103)
        isp = world.add_isp(
            ASInfo(
                64501, "NoV6", "JP", ASRole.EYEBALL,
                access_technologies=[AccessTechnology.FTTH_OWN],
            ),
            with_ipv6=False,
        )
        world.add_default_targets()
        world.finalize()
        platform = AtlasPlatform(world)
        probes = platform.deploy_probes_on_isp(isp, 2)
        dataset = platform.run_period_binned(PERIOD, probes, af=6)
        assert len(dataset) == 0

    def test_full_vs_binned_v6_consistent(self, legacy_world):
        _world, _isp, platform, probes = legacy_world
        raw = platform.run_period(PERIOD, probes[:2], af=6)
        grid = TimeGrid(PERIOD)
        full = estimate_dataset(raw.results, grid)
        binned = platform.run_period_binned(PERIOD, probes[:2], af=6)
        for prb in full.probe_ids():
            qd_full = probe_queuing_delay(full.series[prb])
            qd_binned = probe_queuing_delay(binned.series[prb])
            # Both flat (IPoE): agree in absolute terms (independent
            # noise draws leave ~0.3 ms median-sampling error each).
            assert np.nanmax(np.abs(qd_full - qd_binned)) < 0.9
            assert np.nanmedian(np.abs(qd_full - qd_binned)) < 0.3
