"""Tests for the traceroute engine and platform orchestration."""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import AtlasPlatform, ProbeVersion
from repro.atlas.probe import Interval
from repro.netbase import AccessTechnology, ASInfo, ASRole, is_rfc1918, parse_address
from repro.timebase import MeasurementPeriod, TimeGrid
from repro.topology import ProvisioningPolicy, World

SHORT_PERIOD = MeasurementPeriod("short", dt.datetime(2019, 9, 2), 1)


def build_platform(peak=0.95, seed=0, country="JP"):
    world = World(seed=seed)
    isp = world.add_isp(
        ASInfo(
            64500, "ISP", country, ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_PPPOE_LEGACY: peak}
        ),
    )
    world.add_default_targets()
    world.finalize()
    platform = AtlasPlatform(world)
    return world, isp, platform


class TestFullFidelity:
    def test_dataset_shape(self):
        _, isp, platform = build_platform()
        probes = platform.deploy_probes_on_isp(
            isp, 2, version=ProbeVersion.V3
        )
        # Suppress outages for a deterministic count.
        platform.config.outage_rate_per_day = 0.0
        dataset = platform.run_period(SHORT_PERIOD, probes)
        # 48 bins/day x 24 traceroutes x 2 probes.
        assert len(dataset) == 48 * 24 * 2
        assert dataset.probe_ids() == [p.probe_id for p in probes]

    def test_traceroute_structure(self):
        _, isp, platform = build_platform()
        probes = platform.deploy_probes_on_isp(
            isp, 1, version=ProbeVersion.V3
        )
        dataset = platform.run_period(SHORT_PERIOD, probes)
        result = dataset.for_probe(probes[0].probe_id)[0]
        sub = probes[0].subscriber

        # First hop(s) private, then the device edge address.
        first = result.hops[0]
        assert is_rfc1918(parse_address(first.responding_address)[0])
        addresses = [h.responding_address for h in result.hops]
        assert str(sub.device.edge_address) in addresses
        assert result.from_address == str(sub.wan_address)
        assert result.dst_address == result.hops[-1].responding_address

    def test_rtts_grow_along_path(self):
        _, isp, platform = build_platform(peak=0.4)
        probes = platform.deploy_probes_on_isp(
            isp, 1, version=ProbeVersion.V3
        )
        dataset = platform.run_period(SHORT_PERIOD, probes)
        result = dataset.for_probe(probes[0].probe_id)[0]
        first_rtts = result.hops[0].rtts
        last_rtts = result.hops[-1].rtts
        assert np.median(last_rtts) > np.median(first_rtts)

    def test_offline_probe_produces_nothing(self):
        _, isp, platform = build_platform()
        probes = platform.deploy_probes_on_isp(
            isp, 1, version=ProbeVersion.V3
        )
        dataset = platform.run_period(SHORT_PERIOD, probes)
        probe = probes[0]
        # Manually force a full-period outage and re-run.
        probe.outages = [Interval(0.0, SHORT_PERIOD.duration_seconds)]
        from repro.atlas.engine import TracerouteEngine

        engine = TracerouteEngine(
            platform.world, TimeGrid(SHORT_PERIOD)
        )
        target = platform.world.targets[0]
        assert engine.measure(probe, target, 100.0, 5001) is None
        assert len(dataset) > 0  # original run unaffected

    def test_nonresponding_transit_hops_time_out(self):
        _, isp, platform = build_platform()
        probes = platform.deploy_probes_on_isp(
            isp, 1, version=ProbeVersion.V3
        )
        dataset = platform.run_period(SHORT_PERIOD, probes)
        results = dataset.for_probe(probes[0].probe_id)
        star_hops = [
            h for r in results for h in r.hops
            if h.responding_address is None
        ]
        assert star_hops  # the rate-limited transit hop never answers


class TestBinnedFidelity:
    def test_series_shape_and_counts(self):
        _, isp, platform = build_platform()
        platform.config.outage_rate_per_day = 0.0
        probes = platform.deploy_probes_on_isp(
            isp, 3, version=ProbeVersion.V3
        )
        dataset = platform.run_period_binned(SHORT_PERIOD, probes)
        assert len(dataset) == 3
        for prb_id in dataset.probe_ids():
            series = dataset.series[prb_id]
            assert series.num_bins == 48
            assert np.all(series.traceroute_counts == 24)
            assert not np.any(np.isnan(series.median_rtt_ms))

    def test_congested_probe_shows_diurnal_medians(self):
        _, isp, platform = build_platform(peak=0.97)
        platform.config.outage_rate_per_day = 0.0
        probes = platform.deploy_probes_on_isp(
            isp, 1, version=ProbeVersion.V3
        )
        period = MeasurementPeriod("week", dt.datetime(2019, 9, 2), 7)
        dataset = platform.run_period_binned(period, probes)
        series = dataset.series[probes[0].probe_id]
        daily = series.median_rtt_ms.reshape(7, 48)
        swing = daily.max(axis=1) - daily.min(axis=1)
        assert np.all(swing > 1.0)

    def test_outage_bins_flagged(self):
        _, isp, platform = build_platform()
        platform.config.outage_rate_per_day = 3.0  # force outages
        probes = platform.deploy_probes_on_isp(
            isp, 5, version=ProbeVersion.V3
        )
        dataset = platform.run_period_binned(SHORT_PERIOD, probes)
        total_low = sum(
            int((dataset.series[p].traceroute_counts < 3).sum())
            for p in dataset.probe_ids()
        )
        assert total_low > 0

    def test_anchor_series_has_no_lan_baseline(self):
        _, isp, platform = build_platform()
        platform.config.outage_rate_per_day = 0.0
        anchor = platform.deploy_anchor(isp)
        dataset = platform.run_period_binned(SHORT_PERIOD, [anchor])
        series = dataset.series[anchor.probe_id]
        # Anchor medians ~ its (tiny) access RTT; well under 1 ms.
        assert np.nanmedian(series.median_rtt_ms) < 1.0

    def test_probe_meta_populated(self):
        _, isp, platform = build_platform()
        probes = platform.deploy_probes_on_isp(isp, 1, city="Tokyo")
        dataset = platform.run_period_binned(SHORT_PERIOD, probes)
        meta = dataset.probe_meta[probes[0].probe_id]
        assert meta.asn == 64500
        assert meta.city == "Tokyo"
        assert not meta.is_anchor


class TestDeployment:
    def test_probe_ids_sequential(self):
        _, isp, platform = build_platform()
        probes = platform.deploy_probes_on_isp(isp, 3)
        ids = [p.probe_id for p in probes]
        assert ids == [10000, 10001, 10002]

    def test_version_mix(self):
        _, isp, platform = build_platform()
        probes = platform.deploy_probes_on_isp(isp, 300)
        versions = [p.version for p in probes]
        assert versions.count(ProbeVersion.V3) > versions.count(
            ProbeVersion.V1
        )
        assert ProbeVersion.V1 in versions

    def test_probes_in_asn(self):
        world, isp, platform = build_platform()
        other = world.add_isp(
            ASInfo(
                64501, "Other", "JP", ASRole.EYEBALL,
                access_technologies=[AccessTechnology.FTTH_OWN],
            )
        )
        platform.deploy_probes_on_isp(isp, 2)
        platform.deploy_probes_on_isp(other, 3)
        assert len(platform.probes_in_asn(64500)) == 2
        assert len(platform.probes_in_asn(64501)) == 3

    def test_preparation_deterministic(self):
        _, isp, platform = build_platform()
        probe = platform.deploy_probes_on_isp(isp, 1)[0]
        platform._prepare_probe(probe, SHORT_PERIOD)
        outages_a = list(probe.outages)
        platform._prepare_probe(probe, SHORT_PERIOD)
        assert probe.outages == outages_a
