"""Tests for the traceroute data model and Atlas JSON round-trip."""

import pytest

from repro.atlas import Hop, MeasurementDataset, Reply, TracerouteResult


def make_result(prb_id=1, timestamp=0.0, hops=None):
    if hops is None:
        hops = (
            Hop(1, (Reply("192.168.1.1", 0.5),
                    Reply("192.168.1.1", 0.6),
                    Reply.timeout())),
            Hop(2, (Reply("60.0.0.1", 3.2),
                    Reply("60.0.0.1", 3.4),
                    Reply("60.0.0.1", 3.1))),
        )
    return TracerouteResult(
        prb_id=prb_id,
        msm_id=5001,
        timestamp=timestamp,
        src_address="192.168.1.10",
        from_address="20.0.0.5",
        dst_address="192.5.0.1",
        hops=hops,
    )


class TestReply:
    def test_timeout(self):
        reply = Reply.timeout()
        assert reply.timed_out
        assert reply.rtt_ms is None

    def test_partial_reply_rejected(self):
        with pytest.raises(ValueError):
            Reply("10.0.0.1", None)
        with pytest.raises(ValueError):
            Reply(None, 1.0)

    def test_negative_rtt_rejected(self):
        with pytest.raises(ValueError):
            Reply("10.0.0.1", -1.0)


class TestHop:
    def test_responding_address_skips_timeouts(self):
        hop = Hop(1, (Reply.timeout(), Reply("10.0.0.1", 1.0)))
        assert hop.responding_address == "10.0.0.1"

    def test_all_timeouts(self):
        hop = Hop(1, (Reply.timeout(),) * 3)
        assert hop.responding_address is None
        assert hop.rtts == []

    def test_rtts_excludes_timeouts(self):
        hop = Hop(1, (Reply("x", 1.0), Reply.timeout(), Reply("x", 2.0)))
        assert hop.rtts == [1.0, 2.0]

    def test_validation(self):
        with pytest.raises(ValueError):
            Hop(0, ())
        with pytest.raises(ValueError):
            Hop(1, (Reply.timeout(),) * 4)


class TestTracerouteResult:
    def test_hops_must_be_ordered(self):
        hops = (
            Hop(2, (Reply("a", 1.0),)),
            Hop(1, (Reply("b", 2.0),)),
        )
        with pytest.raises(ValueError):
            make_result(hops=hops)

    def test_json_roundtrip(self):
        result = make_result()
        data = result.to_json()
        assert data["type"] == "traceroute"
        assert data["prb_id"] == 1
        assert data["result"][0]["result"][2] == {"x": "*"}
        restored = TracerouteResult.from_json(data)
        assert restored == result

    def test_from_json_handles_missing_rtt(self):
        data = make_result().to_json()
        # Atlas sometimes emits entries with 'from' but no 'rtt'
        # (e.g. "late" packets); these must become timeouts.
        data["result"][0]["result"][0] = {"from": "192.168.1.1"}
        restored = TracerouteResult.from_json(data)
        assert restored.hops[0].replies[0].timed_out


class TestMeasurementDataset:
    def test_add_and_query(self):
        dataset = MeasurementDataset()
        dataset.add(make_result(prb_id=2, timestamp=10.0))
        dataset.add(make_result(prb_id=1, timestamp=0.0))
        dataset.add(make_result(prb_id=2, timestamp=20.0))
        assert len(dataset) == 3
        assert dataset.probe_ids() == [1, 2]
        assert [r.timestamp for r in dataset.for_probe(2)] == [10.0, 20.0]
        assert dataset.for_probe(99) == []

    def test_extend(self):
        dataset = MeasurementDataset()
        dataset.extend(make_result(prb_id=i) for i in range(5))
        assert len(dataset) == 5
