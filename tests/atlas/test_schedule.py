"""Tests for the built-in measurement schedule."""

import pytest

from repro.atlas import BuiltinSchedule, TRACEROUTES_PER_BIN
from repro.atlas.measurements import FIFTEEN_MIN, THIRTY_MIN, BuiltinMeasurement
from repro.topology import World


def make_schedule():
    world = World(seed=0)
    targets = world.add_default_targets()
    return BuiltinSchedule(targets), targets


class TestBuiltinSchedule:
    def test_paper_arithmetic_24_per_bin(self):
        """§2.1: every 30 minutes we obtain 24 traceroutes."""
        schedule, _ = make_schedule()
        assert schedule.traceroutes_per_bin == 24
        assert schedule.traceroutes_per_bin == TRACEROUTES_PER_BIN

    def test_twenty_two_measurements(self):
        schedule, _ = make_schedule()
        assert len(schedule.measurements) == 22
        thirty = [m for m in schedule.measurements
                  if m.interval_seconds == THIRTY_MIN]
        fifteen = [m for m in schedule.measurements
                   if m.interval_seconds == FIFTEEN_MIN]
        assert len(thirty) == 20
        assert len(fifteen) == 2

    def test_events_per_bin_count(self):
        schedule, _ = make_schedule()
        events = list(schedule.events_for_bin(10001, 0.0))
        assert len(events) == 24
        events = list(schedule.events_for_bin(10001, 1800.0 * 7))
        assert len(events) == 24

    def test_events_inside_bin(self):
        schedule, _ = make_schedule()
        start = 3600.0
        for t, _measurement in schedule.events_for_bin(10001, start):
            assert start <= t < start + 1800.0

    def test_phase_stable_per_probe_and_msm(self):
        schedule, _ = make_schedule()
        a = schedule.phase_offset(10001, 5001)
        b = schedule.phase_offset(10001, 5001)
        assert a == b
        assert 0 <= a < THIRTY_MIN

    def test_phases_spread_across_probes(self):
        schedule, _ = make_schedule()
        offsets = {schedule.phase_offset(prb, 5001)
                   for prb in range(10000, 10100)}
        assert len(offsets) > 50

    def test_fifteen_minute_measurement_fires_twice(self):
        schedule, _ = make_schedule()
        fifteen_ids = {m.msm_id for m in schedule.measurements
                       if m.interval_seconds == FIFTEEN_MIN}
        events = list(schedule.events_for_bin(10001, 0.0))
        counts = {}
        for _t, measurement in events:
            counts[measurement.msm_id] = counts.get(
                measurement.msm_id, 0
            ) + 1
        for msm_id, count in counts.items():
            assert count == (2 if msm_id in fifteen_ids else 1)

    def test_needs_three_targets(self):
        world = World(seed=1)
        targets = [world.add_target("a", 0.0), world.add_target("b", 1.0)]
        with pytest.raises(ValueError):
            BuiltinSchedule(targets)

    def test_unknown_msm_id(self):
        schedule, _ = make_schedule()
        with pytest.raises(KeyError):
            schedule.phase_offset(10001, 9999)

    def test_bad_interval_rejected(self):
        world = World(seed=2)
        target = world.add_target("x", 0.0)
        with pytest.raises(ValueError):
            BuiltinMeasurement(msm_id=1, target=target, interval_seconds=60)
