"""Tests for probe models, outages and interference."""

import numpy as np
import pytest

from repro.atlas import (
    Interval,
    Probe,
    ProbeVersion,
    sample_interference,
    sample_outages,
)
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.topology import ProvisioningPolicy, World


def make_isp(seed=0):
    world = World(seed=seed)
    isp = world.add_isp(
        ASInfo(
            64500, "ISP", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(),
    )
    return world, isp


class TestInterval:
    def test_contains_half_open(self):
        interval = Interval(10.0, 20.0)
        assert interval.contains(10.0)
        assert interval.contains(19.99)
        assert not interval.contains(20.0)
        assert not interval.contains(9.99)

    def test_duration(self):
        assert Interval(5.0, 8.0).duration == 3.0

    def test_rejects_reversed(self):
        with pytest.raises(ValueError):
            Interval(10.0, 5.0)


class TestProbeVersion:
    def test_noise_multipliers_ordered(self):
        assert ProbeVersion.V1.noise_multiplier > (
            ProbeVersion.V2.noise_multiplier
        ) > ProbeVersion.V3.noise_multiplier

    def test_v1_interferes_most(self):
        assert ProbeVersion.V1.interference_rate_per_day > (
            ProbeVersion.V3.interference_rate_per_day
        )
        assert ProbeVersion.ANCHOR.interference_rate_per_day == 0.0


class TestProbe:
    def test_home_probe(self):
        _, isp = make_isp()
        probe = Probe(
            probe_id=1, subscriber=isp.attach_subscriber(),
            version=ProbeVersion.V3,
        )
        assert not probe.is_anchor
        assert probe.asn == 64500

    def test_anchor_requires_datacenter(self):
        _, isp = make_isp()
        with pytest.raises(ValueError):
            Probe(
                probe_id=1, subscriber=isp.attach_subscriber(),
                version=ProbeVersion.ANCHOR,
            )
        anchor = Probe(
            probe_id=2, subscriber=isp.attach_datacenter_host(),
            version=ProbeVersion.ANCHOR,
        )
        assert anchor.is_anchor

    def test_connected_at_respects_outages(self):
        _, isp = make_isp()
        probe = Probe(
            probe_id=1, subscriber=isp.attach_subscriber(),
            version=ProbeVersion.V3,
            outages=[Interval(100.0, 200.0)],
        )
        assert probe.connected_at(50.0)
        assert not probe.connected_at(150.0)
        assert probe.connected_at(200.0)

    def test_interference_sums_overlapping_episodes(self):
        _, isp = make_isp()
        probe = Probe(
            probe_id=1, subscriber=isp.attach_subscriber(),
            version=ProbeVersion.V1,
            interference=[
                (Interval(0.0, 100.0), 10.0),
                (Interval(50.0, 150.0), 5.0),
            ],
        )
        assert probe.interference_at(75.0) == 15.0
        assert probe.interference_at(125.0) == 5.0
        assert probe.interference_at(200.0) == 0.0

    def test_negative_probe_id_rejected(self):
        _, isp = make_isp()
        with pytest.raises(ValueError):
            Probe(
                probe_id=-1, subscriber=isp.attach_subscriber(),
                version=ProbeVersion.V3,
            )


class TestSampling:
    def test_outages_within_period(self):
        rng = np.random.default_rng(0)
        duration = 15 * 86400.0
        outages = sample_outages(rng, duration, outage_rate_per_day=2.0)
        assert outages
        for outage in outages:
            assert 0.0 <= outage.start <= duration
            assert outage.end <= duration
        starts = [o.start for o in outages]
        assert starts == sorted(starts)

    def test_low_rate_often_yields_no_outage(self):
        rng = np.random.default_rng(1)
        empty = sum(
            1 for _ in range(100)
            if not sample_outages(rng, 86400.0, outage_rate_per_day=0.05)
        )
        assert empty > 80

    def test_interference_rate_depends_on_version(self):
        duration = 15 * 86400.0
        v1 = [
            len(sample_interference(
                np.random.default_rng(i), duration, ProbeVersion.V1
            ))
            for i in range(50)
        ]
        v3 = [
            len(sample_interference(
                np.random.default_rng(i + 1000), duration, ProbeVersion.V3
            ))
            for i in range(50)
        ]
        assert np.mean(v1) > 3 * np.mean(v3)

    def test_anchor_never_interferes(self):
        episodes = sample_interference(
            np.random.default_rng(0), 15 * 86400.0, ProbeVersion.ANCHOR
        )
        assert episodes == []
