"""Tests for PPPoE reconnect churn and pipeline robustness to it."""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import AtlasPlatform, Probe, ProbeVersion, sample_reconnects
from repro.core import (
    aggregate_population,
    classify_signal,
    estimate_dataset,
    probe_queuing_delay,
)
from repro.core.lastmile import find_boundary
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.timebase import MeasurementPeriod, TimeGrid
from repro.topology import ProvisioningPolicy, World

PERIOD = MeasurementPeriod("reconnect", dt.datetime(2019, 9, 2), 3)


def build_platform(peak=0.5, reconnect_rate=1.0, seed=7):
    world = World(seed=seed)
    isp = world.add_isp(
        ASInfo(
            64500, "R", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_PPPOE_LEGACY: peak},
            device_spread=0.005,
            load_jitter_std=0.005,
        ),
    )
    world.add_default_targets()
    world.finalize()
    platform = AtlasPlatform(world)
    platform.config.outage_rate_per_day = 0.0
    platform.config.reconnect_rate_per_day = reconnect_rate
    probes = platform.deploy_probes_on_isp(
        isp, 3, version=ProbeVersion.V3
    )
    return world, platform, probes


class TestSessionModel:
    def test_session_at_progression(self, tmp_path):
        world, platform, probes = build_platform()
        probe = probes[0]
        probe.reconnects = [(100.0, 0.5), (200.0, -0.3)]
        assert probe.session_at(50.0) == (0, 0.0)
        assert probe.session_at(150.0) == (1, 0.5)
        assert probe.session_at(250.0) == (2, -0.3)

    def test_sampling_sorted_and_bounded(self):
        rng = np.random.default_rng(0)
        events = sample_reconnects(rng, 10 * 86400.0, rate_per_day=2.0)
        times = [t for t, _d in events]
        assert times == sorted(times)
        assert all(0 <= t <= 10 * 86400.0 for t in times)
        deltas = [d for _t, d in events]
        assert max(abs(d) for d in deltas) < 2.0

    def test_anchors_never_reconnect(self):
        world, platform, _probes = build_platform()
        isp = next(iter(world.isps.values()))
        anchor = platform.deploy_anchor(isp)
        platform._prepare_probe(anchor, PERIOD)
        assert anchor.reconnects == []


class TestEngineEffects:
    def test_edge_address_changes_across_sessions(self):
        world, platform, probes = build_platform()
        probe = probes[0]
        # Force one mid-period reconnect.
        half = PERIOD.duration_seconds / 2
        probe.reconnects = [(half, 0.4)]
        from repro.atlas.engine import TracerouteEngine

        engine = TracerouteEngine(world, TimeGrid(PERIOD))
        target = world.targets[0]
        before = engine.measure(probe, target, half - 3600, 5001)
        after = engine.measure(probe, target, half + 3600, 5001)
        addr_before = find_boundary(before).first_public.responding_address
        addr_after = find_boundary(after).first_public.responding_address
        assert addr_before != addr_after
        # Both aliases belong to the same device's alias set.
        aliases = {
            str(a) for a in probe.subscriber.device.edge_aliases
        }
        assert {addr_before, addr_after} <= aliases

    def test_rebase_shifts_lastmile_rtt(self):
        world, platform, probes = build_platform(peak=0.3)
        probe = probes[0]
        half = PERIOD.duration_seconds / 2
        probe.reconnects = [(half, 1.5)]  # big shift for visibility
        raw = platform.run_period(PERIOD, [probe])
        # _prepare_probe regenerated reconnects; reapply and rerun the
        # estimation around the forced split instead.
        probe.reconnects = [(half, 1.5)]
        from repro.atlas.engine import TracerouteEngine

        engine = TracerouteEngine(world, TimeGrid(PERIOD))
        target = world.targets[0]
        from repro.core.lastmile import lastmile_samples

        before = np.median(lastmile_samples(
            engine.measure(probe, target, half - 7200, 5001)
        ))
        after = np.median(lastmile_samples(
            engine.measure(probe, target, half + 7200, 5001)
        ))
        assert after - before == pytest.approx(1.5, abs=0.5)


class TestPipelineRobustness:
    def test_classification_unaffected_by_reconnect_churn(self):
        """Reconnect rebases (~0.3 ms) must not create false
        positives on a quiet AS nor mask congestion on a hot one."""
        for peak, expect_reported in ((0.5, False), (0.96, True)):
            _world, platform, probes = build_platform(
                peak=peak, reconnect_rate=2.0, seed=11
            )
            dataset = platform.run_period_binned(PERIOD, probes)
            signal = aggregate_population(dataset)
            result = classify_signal(signal.delay_ms, 1800)
            assert result.severity.is_reported == expect_reported

    def test_full_fidelity_boundary_detection_survives_churn(self):
        _world, platform, probes = build_platform(
            peak=0.5, reconnect_rate=3.0, seed=13
        )
        raw = platform.run_period(PERIOD, probes[:1])
        grid = TimeGrid(PERIOD)
        dataset = estimate_dataset(raw.results, grid)
        series = dataset.series[probes[0].probe_id]
        # Every bin still gets an estimate despite address churn.
        assert series.valid_mask().mean() > 0.95
        delay = probe_queuing_delay(series)
        assert np.nanmax(delay) < 2.0
