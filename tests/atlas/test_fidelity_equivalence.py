"""Full vs binned fidelity equivalence (DESIGN.md §5).

The binned fast path must be statistically indistinguishable from
running full traceroute generation followed by the §2.1 estimation
pipeline.  We compare the two modes' per-probe queueing-delay series
on a small world: same bins valid, and peak-hour delays within tight
relative tolerance.
"""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import AtlasPlatform, ProbeVersion
from repro.core import estimate_dataset, probe_queuing_delay
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.timebase import MeasurementPeriod, TimeGrid
from repro.topology import ProvisioningPolicy, World

PERIOD = MeasurementPeriod("equiv", dt.datetime(2019, 9, 2), 3)


@pytest.fixture(scope="module")
def both_modes():
    world = World(seed=77)
    isp = world.add_isp(
        ASInfo(
            64500, "ISP", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_PPPOE_LEGACY: 0.96},
            device_spread=0.0,
            load_jitter_std=0.0,
        ),
    )
    world.add_default_targets()
    world.finalize()
    platform = AtlasPlatform(world)
    platform.config.outage_rate_per_day = 0.0
    probes = platform.deploy_probes_on_isp(
        isp, 4, version=ProbeVersion.V3
    )

    full_raw = platform.run_period(PERIOD, probes)
    grid = TimeGrid(PERIOD)
    full = estimate_dataset(
        full_raw.results, grid, probe_meta=full_raw.probe_meta
    )
    binned = platform.run_period_binned(PERIOD, probes)
    return full, binned, probes


class TestFidelityEquivalence:
    def test_same_probes_and_bins(self, both_modes):
        full, binned, _probes = both_modes
        assert full.probe_ids() == binned.probe_ids()
        for prb_id in full.probe_ids():
            assert (
                full.series[prb_id].num_bins
                == binned.series[prb_id].num_bins
            )

    def test_counts_agree(self, both_modes):
        full, binned, _probes = both_modes
        for prb_id in full.probe_ids():
            assert np.array_equal(
                full.series[prb_id].traceroute_counts,
                binned.series[prb_id].traceroute_counts,
            )

    def test_queueing_delay_series_agree(self, both_modes):
        """Same diurnal structure and magnitudes, up to median-sampling
        noise (the 216-sample bin median at rho≈0.96 has ~0.4 ms
        standard error, and the two modes draw independently)."""
        full, binned, _probes = both_modes
        correlations = []
        peak_ratios = []
        for prb_id in full.probe_ids():
            qd_full = probe_queuing_delay(full.series[prb_id])
            qd_binned = probe_queuing_delay(binned.series[prb_id])
            assert not np.any(np.isnan(qd_full))
            assert not np.any(np.isnan(qd_binned))
            corr = np.corrcoef(qd_full, qd_binned)[0, 1]
            assert corr > 0.7
            correlations.append(corr)
            peak_ratios.append(np.max(qd_full) / np.max(qd_binned))
            # Quiet bins agree in absolute terms.
            quiet = (qd_full < 0.5) & (qd_binned < 0.5)
            assert quiet.sum() > 10
            assert np.max(
                np.abs(qd_full[quiet] - qd_binned[quiet])
            ) < 0.6
        # Across the probe set the agreement is tight.
        assert np.mean(correlations) > 0.85
        assert np.mean(peak_ratios) == pytest.approx(1.0, abs=0.25)

    def test_baseline_medians_agree(self, both_modes):
        """The raw median level (base RTT) matches between modes."""
        full, binned, _probes = both_modes
        for prb_id in full.probe_ids():
            base_full = np.nanmin(full.series[prb_id].median_rtt_ms)
            base_binned = np.nanmin(binned.series[prb_id].median_rtt_ms)
            assert base_full == pytest.approx(base_binned, abs=0.25)


@pytest.fixture(scope="module")
def outage_heavy_modes():
    """Same comparison under heavy probe churn (~1.5 outages/day).

    Bins go missing and counts thin out, and both fidelity modes must
    degrade the same way instead of diverging or crashing.  Session
    reconnects stay off here, as in TestStreamingMatchesBatch: they
    shift baselines differently under the two baseline definitions and
    are exercised elsewhere.
    """
    world = World(seed=78)
    isp = world.add_isp(
        ASInfo(
            64500, "Churny", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_PPPOE_LEGACY: 0.96},
            device_spread=0.0,
            load_jitter_std=0.0,
        ),
    )
    world.add_default_targets()
    world.finalize()
    platform = AtlasPlatform(world)
    platform.config.outage_rate_per_day = 1.5
    platform.config.reconnect_rate_per_day = 0.0
    probes = platform.deploy_probes_on_isp(
        isp, 4, version=ProbeVersion.V3
    )

    full_raw = platform.run_period(PERIOD, probes)
    grid = TimeGrid(PERIOD)
    full = estimate_dataset(
        full_raw.results, grid, probe_meta=full_raw.probe_meta
    )
    binned = platform.run_period_binned(PERIOD, probes)
    return full, binned


class TestOutageHeavyEquivalence:
    def test_churn_actually_bites(self, outage_heavy_modes):
        full, _binned = outage_heavy_modes
        gaps = sum(
            int(np.isnan(full.series[p].median_rtt_ms).sum())
            for p in full.probe_ids()
        )
        assert gaps > 0

    def test_same_bins_invalid(self, outage_heavy_modes):
        """Outages erase (nearly) the same bins in both fidelity modes.

        Exact equality is impossible at outage *boundaries*: full mode
        drops the discrete traceroutes scheduled inside the window,
        while binned mode rounds the analytic bin/outage overlap — so
        a bin partially covered by an outage edge may count a few
        traceroutes differently.  Interior bins must match exactly.
        """
        full, binned = outage_heavy_modes
        assert full.probe_ids() == binned.probe_ids()
        for prb_id in full.probe_ids():
            counts_full = full.series[prb_id].traceroute_counts
            counts_binned = binned.series[prb_id].traceroute_counts
            mismatch = counts_full != counts_binned
            # Disagreement is rare (boundary bins only) ...
            assert mismatch.mean() <= 0.05
            # ... and every such bin shows outage impact in at least
            # one mode (a partially-erased bin, not a clean one).
            clean = np.max(counts_binned)
            assert np.all(
                np.minimum(counts_full, counts_binned)[mismatch] < clean
            )
            nan_full = np.isnan(full.series[prb_id].median_rtt_ms)
            nan_binned = np.isnan(binned.series[prb_id].median_rtt_ms)
            assert (nan_full != nan_binned).mean() <= 0.05
            # Interior outage bins agree exactly.
            agree = ~mismatch
            assert np.array_equal(
                nan_full[agree], nan_binned[agree]
            )

    def test_surviving_bins_still_agree(self, outage_heavy_modes):
        full, binned = outage_heavy_modes
        from repro.core import probe_queuing_delay

        correlations = []
        for prb_id in full.probe_ids():
            qd_full = probe_queuing_delay(full.series[prb_id])
            qd_binned = probe_queuing_delay(binned.series[prb_id])
            both = ~np.isnan(qd_full) & ~np.isnan(qd_binned)
            if both.sum() < 48:
                continue
            correlations.append(
                np.corrcoef(qd_full[both], qd_binned[both])[0, 1]
            )
        assert correlations
        assert np.mean(correlations) > 0.7

    def test_aggregation_and_classification_survive(
        self, outage_heavy_modes
    ):
        from repro.core import aggregate_population, classify_signal

        full, binned = outage_heavy_modes
        for dataset in (full, binned):
            signal = aggregate_population(dataset)
            classification = classify_signal(
                signal.delay_ms, dataset.grid.bin_seconds
            )
            assert classification.severity.is_reported
