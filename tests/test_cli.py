"""Tests for the top-level CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_survey_defaults(self):
        args = build_parser().parse_args(["survey"])
        assert args.ases == 150
        assert not args.covid

    def test_simulate_args(self):
        args = build_parser().parse_args(
            ["simulate", "out.jsonl", "--probes", "2"]
        )
        assert args.out == "out.jsonl"
        assert args.probes == 2


class TestInfo:
    def test_prints_version(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "repro" in out
        assert "IMC 2020" in out


class TestSimulateAndClassify:
    def test_simulate_writes_jsonl_and_rib(self, tmp_path, capsys):
        out = tmp_path / "campaign.jsonl"
        rib = tmp_path / "rib.txt"
        code = main([
            "simulate", str(out),
            "--probes", "2", "--days", "1",
            "--rib-out", str(rib),
        ])
        assert code == 0
        assert out.exists()
        assert rib.exists()
        assert "wrote" in capsys.readouterr().out
        # JSONL rows parse back as Atlas results.
        import json

        from repro.atlas import TracerouteResult

        first = out.read_text().splitlines()[0]
        result = TracerouteResult.from_json(json.loads(first))
        assert result.hops

    def test_classify_roundtrip(self, tmp_path, capsys):
        """simulate -> binned dataset -> classify via the CLI."""
        import datetime as dt

        from repro.atlas import AtlasPlatform, ProbeVersion
        from repro.io import save_lastmile
        from repro.netbase import AccessTechnology, ASInfo, ASRole
        from repro.timebase import MeasurementPeriod
        from repro.topology import ProvisioningPolicy, World

        world = World(seed=9)
        isp = world.add_isp(
            ASInfo(
                64500, "X", "JP", ASRole.EYEBALL,
                access_technologies=[
                    AccessTechnology.FTTH_PPPOE_LEGACY
                ],
            ),
            provisioning=ProvisioningPolicy(
                peak_utilization={
                    AccessTechnology.FTTH_PPPOE_LEGACY: 0.96
                },
                device_spread=0.005,
                load_jitter_std=0.005,
            ),
        )
        world.add_default_targets()
        world.finalize()
        platform = AtlasPlatform(world)
        probes = platform.deploy_probes_on_isp(
            isp, 4, version=ProbeVersion.V3
        )
        # Two weeks: Welch segment averaging needs several days for
        # the daily fundamental to dominate its harmonics.
        period = MeasurementPeriod(
            "cli-test", dt.datetime(2019, 9, 2), 14
        )
        dataset = platform.run_period_binned(period, probes)
        base = tmp_path / "lastmile"
        save_lastmile(dataset, base)

        assert main(["classify", str(base)]) == 0
        out = capsys.readouterr().out
        assert "AS64500" in out
        assert any(
            word in out for word in ("LOW", "MILD", "SEVERE")
        )

    def test_classify_empty_dataset(self, tmp_path, capsys):
        import datetime as dt

        from repro.core import LastMileDataset
        from repro.io import save_lastmile
        from repro.timebase import MeasurementPeriod, TimeGrid

        grid = TimeGrid(
            MeasurementPeriod("empty", dt.datetime(2019, 9, 2), 1)
        )
        base = tmp_path / "empty"
        save_lastmile(LastMileDataset(grid=grid), base)
        assert main(["classify", str(base)]) == 1


class TestSurveyCommand:
    def test_small_survey_exports_site(self, tmp_path, capsys):
        out = tmp_path / "site"
        code = main([
            "survey", "--ases", "20", "--countries", "5",
            "--periods", "1", "--out", str(out),
        ])
        assert code == 0
        assert (out / "surveys.json").exists()
        assert (out / "index.md").exists()
        assert "exported" in capsys.readouterr().out


class TestKernelsFlag:
    def test_parser_accepts_backend_names(self):
        for command in ("survey", "classify"):
            base = [command] if command == "survey" else [command, "x"]
            args = build_parser().parse_args(base)
            assert args.kernels is None
            args = build_parser().parse_args(
                base + ["--kernels", "vector"]
            )
            assert args.kernels == "vector"

    def test_parser_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["survey", "--kernels", "turbo"])

    def test_survey_backends_export_identical_sites(self, tmp_path,
                                                    capsys):
        sites = {}
        for backend in ("reference", "vector"):
            out = tmp_path / backend
            code = main([
                "survey", "--ases", "10", "--countries", "3",
                "--periods", "1", "--out", str(out),
                "--kernels", backend,
            ])
            assert code == 0
            sites[backend] = (out / "surveys.json").read_bytes()
        capsys.readouterr()
        assert sites["vector"] == sites["reference"]


class TestTokyoCommand:
    def test_prints_digests(self, capsys):
        code = main(["tokyo", "--client-scale", "0.1"])
        assert code == 0
        out = capsys.readouterr().out
        assert "ISP_A" in out and "Spearman" in out


class TestObsFlags:
    def test_obs_flags_parse(self):
        args = build_parser().parse_args([
            "survey", "--trace", "--metrics-out", "m.json",
            "--log-jsonl", "events.jsonl",
        ])
        assert args.trace
        assert args.metrics_out == "m.json"
        assert args.log_jsonl == "events.jsonl"

    def test_obs_report_defaults(self):
        args = build_parser().parse_args(["obs", "report"])
        assert args.path == "metrics.json"
        assert not args.prometheus

    def test_survey_with_metrics_out(self, tmp_path, capsys, monkeypatch):
        # The full worker-level span tree (lastmile/aggregate/spectral)
        # is a serial-path contract: sharded workers run silenced and
        # the parent re-emits shard-level spans instead.  Pin serial so
        # the CI REPRO_WORKERS matrix leg exercises the same assertions.
        monkeypatch.delenv("REPRO_WORKERS", raising=False)
        report_path = tmp_path / "metrics.json"
        code = main([
            "survey", "--ases", "12", "--countries", "4",
            "--periods", "1", "--out", str(tmp_path / "site"),
            "--trace", "--metrics-out", str(report_path),
            "--log-jsonl", str(tmp_path / "events.jsonl"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "survey-period" in out  # the printed trace tree

        import json

        report = json.loads(report_path.read_text())
        metrics = report["metrics"]
        for name in (
            "pipeline_items_in_total",
            "pipeline_items_out_total",
            "pipeline_duration_seconds",
            "quality_ingested_total",
        ):
            assert name in metrics, name
        stages = {
            sample["labels"]["stage"]
            for sample in metrics["pipeline_duration_seconds"]["samples"]
        }
        assert {
            "survey-period", "load", "lastmile", "classify-dataset",
            "filter", "aggregate", "spectral",
        } <= stages
        # Structured events landed in the JSONL sink.
        events = [
            json.loads(line) for line in
            (tmp_path / "events.jsonl").read_text().splitlines()
        ]
        assert any(e["event"] == "classify-done" for e in events)

        # The saved report renders back through `repro obs report`.
        assert main(["obs", "report", str(report_path)]) == 0
        rendered = capsys.readouterr().out
        assert "== trace ==" in rendered
        assert "== metrics ==" in rendered
        assert main([
            "obs", "report", str(report_path), "--prometheus",
        ]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE pipeline_items_in_total counter" in prom

    def test_obs_report_missing_file(self, tmp_path, capsys):
        code = main(["obs", "report", str(tmp_path / "nope.json")])
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1  # exactly one line
        assert "error:" in err
        assert "no observability report" in err

    def test_obs_report_unreadable_file(self, tmp_path, capsys):
        bad = tmp_path / "garbage.json"
        bad.write_text("{not json")
        code = main(["obs", "report", str(bad)])
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("error: cannot read")


class TestQualityErrorPaths:
    def test_quality_missing_path(self, tmp_path, capsys):
        code = main(["quality", str(tmp_path / "nope.jsonl")])
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("error: cannot read")

    def test_quality_unreadable_path(self, tmp_path, capsys):
        # A directory is unreadable as a traceroute campaign.
        code = main(["quality", str(tmp_path)])
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith("error: cannot read")


class TestObsDiff:
    def _write_report(self, path, value):
        from repro.obs import Observability
        from repro.obs.report import write_report

        obs = Observability()
        obs.counter("reqs_total", "", ("route",)).inc(value, route="as")
        write_report(obs, path)

    def test_diff_prints_counter_deltas(self, tmp_path, capsys):
        before, after = tmp_path / "a.json", tmp_path / "b.json"
        self._write_report(before, 3)
        self._write_report(after, 10)
        code = main([
            "obs", "report", "--diff", str(before), str(after),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert 'reqs_total{route="as"} +7 (now 10)' in out

    def test_diff_with_no_changes(self, tmp_path, capsys):
        before = tmp_path / "a.json"
        self._write_report(before, 3)
        code = main([
            "obs", "report", "--diff", str(before), str(before),
        ])
        assert code == 0
        assert "(no counter changes)" in capsys.readouterr().out

    def test_diff_unreadable_side_errors(self, tmp_path, capsys):
        before = tmp_path / "a.json"
        self._write_report(before, 1)
        code = main([
            "obs", "report", "--diff", str(before),
            str(tmp_path / "missing.json"),
        ])
        assert code == 1
        assert "error: cannot read" in capsys.readouterr().err

    def test_diff_garbage_json_errors(self, tmp_path, capsys):
        before, after = tmp_path / "a.json", tmp_path / "b.json"
        self._write_report(before, 1)
        after.write_text("{not json")
        code = main([
            "obs", "report", "--diff", str(before), str(after),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith(f"error: cannot read {after}")

    def test_diff_non_object_report_errors(self, tmp_path, capsys):
        """Valid JSON that is not a report object must be a one-line
        error, not an AttributeError traceback."""
        before, after = tmp_path / "a.json", tmp_path / "b.json"
        self._write_report(before, 1)
        after.write_text("[1, 2, 3]\n")
        code = main([
            "obs", "report", "--diff", str(before), str(after),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith(f"error: cannot read {after}")
        assert "JSON object" in err

    def test_diff_non_object_metrics_section_errors(
        self, tmp_path, capsys
    ):
        import json

        before, after = tmp_path / "a.json", tmp_path / "b.json"
        self._write_report(before, 1)
        after.write_text(json.dumps(
            {"schema": 1, "metrics": ["oops"]}
        ))
        code = main([
            "obs", "report", "--diff", str(before), str(after),
        ])
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert err.startswith(f"error: cannot read {after}")
        assert "metrics section" in err


class TestLoadtestCommand:
    @pytest.fixture()
    def archive_dir(self, tmp_path):
        import datetime as dt

        from repro.core import Severity
        from repro.store import SurveyArchive
        from tests.store.conftest import make_ranking, make_survey

        archive = SurveyArchive(tmp_path / "arc")
        archive.ingest(
            make_survey("2019-06", dt.datetime(2019, 6, 1), {
                100: Severity.SEVERE, 200: Severity.LOW,
            }),
            ranking=make_ranking(),
        )
        return str(tmp_path / "arc")

    def test_in_process_run_writes_report(self, tmp_path, archive_dir,
                                          capsys):
        import json

        report_path = tmp_path / "report.json"
        code = main([
            "loadtest", archive_dir, "--in-process",
            "--concurrency", "2", "--duration", "0.3",
            "--warmup", "0", "--report", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "req/s" in out
        assert "p99" in out
        payload = json.loads(report_path.read_text())
        assert payload["requests"] > 0
        assert payload["error_rate"] == 0.0
        assert payload["p99_ms"] > 0
        assert payload["concurrency"] == 2

    def test_update_bench_upserts_loadtest_section(
        self, tmp_path, archive_dir, capsys
    ):
        import json

        bench = tmp_path / "BENCH.json"
        bench.write_text(json.dumps({"overload": {"shed": 1}}))
        code = main([
            "loadtest", archive_dir, "--in-process",
            "--concurrency", "2", "--duration", "0.2", "--warmup", "0",
            "--mix", "as=4", "--mix", "healthz=1",
            "--update-bench", str(bench),
        ])
        assert code == 0
        capsys.readouterr()
        data = json.loads(bench.read_text())
        assert data["overload"] == {"shed": 1}
        assert data["loadtest"]["requests"] > 0

    def test_requires_archive_or_url(self, capsys):
        assert main(["loadtest"]) == 2
        assert "archive directory or --url" in capsys.readouterr().err

    def test_no_mmap_flag_disables_segment_mapping(
        self, archive_dir, capsys, monkeypatch
    ):
        from repro.store import STORE_MMAP_ENV, store_mmap_enabled

        monkeypatch.delenv(STORE_MMAP_ENV, raising=False)
        code = main([
            "loadtest", archive_dir, "--in-process", "--no-mmap",
            "--concurrency", "2", "--duration", "0.2", "--warmup", "0",
        ])
        assert code == 0
        capsys.readouterr()
        assert not store_mmap_enabled()

    def test_rejects_bad_mix_entry(self, archive_dir, capsys):
        code = main([
            "loadtest", archive_dir, "--mix", "bogus=1",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_empty_archive_errors(self, tmp_path, capsys):
        from repro.store import SurveyArchive

        SurveyArchive(tmp_path / "empty")
        code = main(["loadtest", str(tmp_path / "empty")])
        assert code == 1
        assert "no committed periods" in capsys.readouterr().err
