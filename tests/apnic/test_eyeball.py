"""Tests for the APNIC-style eyeball ranking substrate."""

import numpy as np
import pytest

from repro.apnic import (
    EyeballRanking,
    RANK_BUCKETS,
    bucket_for_rank,
    zipf_user_counts,
)
from repro.netbase import ASInfo, ASRegistry, ASRole


def registry_with_subscribers(counts):
    registry = ASRegistry()
    for index, users in enumerate(counts):
        registry.register(ASInfo(
            asn=64500 + index, name=f"ISP{index}",
            country="JP" if index % 2 == 0 else "US",
            role=ASRole.EYEBALL, subscribers=users,
        ))
    return registry


class TestBuckets:
    def test_boundaries(self):
        assert bucket_for_rank(1) == "1 to 10"
        assert bucket_for_rank(10) == "1 to 10"
        assert bucket_for_rank(11) == "11 to 100"
        assert bucket_for_rank(100) == "11 to 100"
        assert bucket_for_rank(101) == "101 to 1k"
        assert bucket_for_rank(1000) == "101 to 1k"
        assert bucket_for_rank(1001) == "1k to 10k"
        assert bucket_for_rank(10_000) == "1k to 10k"
        assert bucket_for_rank(10_001) == "more than 10k"

    def test_rank_zero_rejected(self):
        with pytest.raises(ValueError):
            bucket_for_rank(0)

    def test_buckets_cover_figure_4(self):
        labels = [label for label, _ in RANK_BUCKETS]
        assert labels == [
            "1 to 10", "11 to 100", "101 to 1k", "1k to 10k",
            "more than 10k",
        ]


class TestEyeballRanking:
    def test_ranks_by_users(self):
        registry = registry_with_subscribers([100, 10_000, 1_000])
        ranking = EyeballRanking.from_registry(registry)
        assert ranking.rank_of(64501) == 1   # 10k users
        assert ranking.rank_of(64502) == 2
        assert ranking.rank_of(64500) == 3

    def test_country_ranks(self):
        registry = registry_with_subscribers([100, 10_000, 1_000, 500])
        ranking = EyeballRanking.from_registry(registry)
        # JP ASes: 64500 (100), 64502 (1000) -> 64502 is JP #1.
        assert ranking.get(64502).country_rank == 1
        assert ranking.get(64500).country_rank == 2

    def test_unranked_as(self):
        ranking = EyeballRanking.from_registry(registry_with_subscribers([10]))
        assert ranking.get(99999) is None
        assert ranking.rank_of(99999) is None
        assert ranking.bucket_of(99999) is None

    def test_zero_subscriber_as_excluded(self):
        registry = registry_with_subscribers([0, 100])
        ranking = EyeballRanking.from_registry(registry)
        assert 64500 not in ranking
        assert 64501 in ranking

    def test_rank_offset(self):
        registry = registry_with_subscribers([100, 200])
        ranking = EyeballRanking.from_registry(registry, rank_offset=50)
        assert ranking.rank_of(64501) == 51
        assert ranking.bucket_of(64501) == "11 to 100"

    def test_estimation_noise_reproducible(self):
        registry = registry_with_subscribers([100, 200, 300])
        a = EyeballRanking.from_registry(
            registry, rng=np.random.default_rng(1)
        )
        b = EyeballRanking.from_registry(
            registry, rng=np.random.default_rng(1)
        )
        assert all(
            a.get(asn).users == b.get(asn).users
            for asn in (64500, 64501, 64502)
        )

    def test_top(self):
        registry = registry_with_subscribers([100, 10_000, 1_000, 5_000])
        ranking = EyeballRanking.from_registry(registry)
        top2 = ranking.top(2)
        assert [e.asn for e in top2] == [64501, 64503]
        top_jp = ranking.top(1, country="JP")
        assert top_jp[0].asn == 64502


class TestZipf:
    def test_skewed_distribution(self):
        users = zipf_user_counts(100, np.random.default_rng(0))
        assert len(users) == 100
        assert max(users) > 100 * min(users)
        assert min(users) >= 2_000

    def test_needs_positive_count(self):
        with pytest.raises(ValueError):
            zipf_user_counts(0, np.random.default_rng(0))
