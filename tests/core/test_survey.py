"""Tests for survey orchestration (§3)."""

import datetime as dt

import numpy as np
import pytest

from repro.apnic import EyeballRanking
from repro.atlas import ProbeMeta
from repro.core import (
    LastMileDataset,
    ProbeBinSeries,
    Severity,
    SurveySuite,
    breakdown_by_rank,
    breakdown_percentages,
    classify_dataset,
    geographic_distribution,
)
from repro.netbase import ASInfo, ASRegistry, ASRole
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("2019-09", dt.datetime(2019, 9, 1), 15)


def synthetic_dataset(congested_asns, quiet_asns, probes_per_asn=4,
                      amplitude=1.5, seed=0):
    """Dataset where given ASes have clean daily congestion."""
    grid = TimeGrid(PERIOD)
    rng = np.random.default_rng(seed)
    dataset = LastMileDataset(grid=grid)
    t = np.arange(grid.num_bins) / grid.bins_per_day
    prb_id = 1
    for asn_list, congested in ((congested_asns, True), (quiet_asns, False)):
        for asn in asn_list:
            for _ in range(probes_per_asn):
                base = rng.uniform(1.0, 3.0)
                medians = base + rng.normal(0, 0.05, grid.num_bins)
                if congested:
                    medians = medians + amplitude * (
                        1 + np.sin(2 * np.pi * t)
                    )
                dataset.add(
                    ProbeBinSeries(
                        prb_id=prb_id,
                        median_rtt_ms=medians,
                        traceroute_counts=np.full(grid.num_bins, 24),
                    ),
                    meta=ProbeMeta(
                        prb_id=prb_id, asn=asn, is_anchor=False,
                        public_address="20.0.0.1",
                    ),
                )
                prb_id += 1
    return dataset


class TestClassifyDataset:
    def test_detects_congested_asns(self):
        dataset = synthetic_dataset([100, 200], [300, 400, 500])
        result = classify_dataset(dataset, PERIOD)
        assert result.monitored_count == 5
        assert result.reported_asns() == [100, 200]
        assert result.none_fraction() == pytest.approx(0.6)

    def test_min_probes_enforced(self):
        dataset = synthetic_dataset([100], [], probes_per_asn=2)
        result = classify_dataset(dataset, PERIOD, min_probes=3)
        assert result.monitored_count == 0

    def test_severity_scales_with_amplitude(self):
        # amplitude A -> sine peak-to-peak 2A
        mild = classify_dataset(
            synthetic_dataset([1], [], amplitude=0.8), PERIOD
        )
        severe = classify_dataset(
            synthetic_dataset([1], [], amplitude=2.5), PERIOD
        )
        assert mild.reports[1].severity == Severity.MILD
        assert severe.reports[1].severity == Severity.SEVERE

    def test_severity_counts_and_lists(self):
        dataset = synthetic_dataset([100], [300])
        result = classify_dataset(dataset, PERIOD)
        counts = result.severity_counts()
        assert counts[Severity.NONE] == 1
        assert sum(counts.values()) == 2
        assert result.asns_with_severity(Severity.NONE) == [300]

    def test_markers_exposed(self):
        dataset = synthetic_dataset([100], [])
        result = classify_dataset(dataset, PERIOD)
        freqs = result.prominent_frequencies()
        amps = result.daily_amplitudes()
        assert freqs.shape == (1,)
        assert freqs[0] == pytest.approx(1 / 24, rel=0.01)
        assert amps[0] > 1.0


class TestSurveySuite:
    def build_suite(self):
        suite = SurveySuite()
        suite.add(classify_dataset(
            synthetic_dataset([100, 200], [300], seed=1), PERIOD
        ))
        second = MeasurementPeriod("2020-04", dt.datetime(2020, 4, 1), 15)
        suite.add(classify_dataset(
            synthetic_dataset([100, 200, 400], [300], seed=2), second
        ))
        return suite

    def test_average_reported(self):
        suite = self.build_suite()
        assert suite.average_reported() == pytest.approx(2.5)

    def test_recurrent_asns(self):
        suite = self.build_suite()
        assert suite.recurrent_asns(min_fraction=1.0) == [100, 200]
        assert suite.recurrent_asns(min_fraction=0.5) == [100, 200, 400]

    def test_reported_increase(self):
        suite = self.build_suite()
        before, after, increase = suite.reported_increase(
            "2019-09", "2020-04"
        )
        assert (before, after) == (2, 3)
        assert increase == pytest.approx(0.5)

    def test_empty_suite(self):
        suite = SurveySuite()
        assert np.isnan(suite.average_reported())
        assert suite.recurrent_asns() == []

    def test_empty_suite_churn_defined(self):
        """Churn over periods the suite never saw is NaN, not a raise."""
        suite = SurveySuite()
        assert np.isnan(suite.churn_between("2019-09", "2020-04"))
        assert np.isnan(suite.mean_consecutive_similarity())

    def test_single_period_suite_degrades_gracefully(self):
        suite = SurveySuite()
        suite.add(classify_dataset(
            synthetic_dataset([100, 200], [300], seed=1), PERIOD
        ))
        assert np.isnan(suite.churn_between("2019-09", "2020-04"))
        assert np.isnan(suite.mean_consecutive_similarity())
        assert suite.recurrent_asns(min_fraction=1.0) == [100, 200]
        assert suite.average_reported() == pytest.approx(2.0)

    def test_churn_missing_period_is_nan(self):
        """One known and one unknown period name: still NaN."""
        suite = self.build_suite()
        assert np.isnan(suite.churn_between("2019-09", "2021-01"))
        assert np.isnan(suite.churn_between("2021-01", "2020-04"))

    def test_churn_between_known_periods(self):
        suite = self.build_suite()
        # {100, 200} vs {100, 200, 400}: Jaccard 2/3.
        assert suite.churn_between("2019-09", "2020-04") == (
            pytest.approx(2 / 3)
        )
        assert suite.mean_consecutive_similarity() == (
            pytest.approx(2 / 3)
        )


class TestBreakdowns:
    def ranking(self):
        registry = ASRegistry()
        # Top-ranked AS 100 (big), mid AS 300, small AS 200.
        registry.register(ASInfo(100, "Big", "JP", ASRole.EYEBALL,
                                 subscribers=10_000_000))
        registry.register(ASInfo(300, "Mid", "US", ASRole.EYEBALL,
                                 subscribers=100_000))
        registry.register(ASInfo(200, "Small", "JP", ASRole.EYEBALL,
                                 subscribers=5_000))
        return EyeballRanking.from_registry(registry)

    def test_breakdown_by_rank(self):
        dataset = synthetic_dataset([100], [200, 300])
        result = classify_dataset(dataset, PERIOD)
        breakdown = breakdown_by_rank(result, self.ranking())
        bucket = breakdown["1 to 10"]
        assert sum(bucket.values()) == 3  # all 3 in top-10 of tiny world
        reported = sum(
            count for severity, count in bucket.items()
            if severity.is_reported
        )
        assert reported == 1

    def test_percentages_sum_to_100(self):
        dataset = synthetic_dataset([100], [200, 300])
        result = classify_dataset(dataset, PERIOD)
        pct = breakdown_percentages(
            breakdown_by_rank(result, self.ranking())
        )
        total = sum(v for bucket in pct.values() for v in bucket.values())
        assert total == pytest.approx(100.0)

    def test_percentages_empty(self):
        pct = breakdown_percentages(
            {label: {s: 0 for s in Severity}
             for label, _r in [("1 to 10", None)]}
        )
        assert pct["1 to 10"][Severity.NONE] == 0.0

    def test_geographic_distribution(self):
        dataset = synthetic_dataset([100, 200], [300])
        result = classify_dataset(dataset, PERIOD)
        geo = geographic_distribution([result], self.ranking())
        assert geo == {"JP": 2}

    def test_geographic_by_severity(self):
        dataset = synthetic_dataset([100], [300], amplitude=2.5)
        result = classify_dataset(dataset, PERIOD)
        geo = geographic_distribution(
            [result], self.ranking(), severity=Severity.SEVERE
        )
        assert geo == {"JP": 1}


class TestFailureIsolation:
    def poisoned_dataset(self):
        """AS 200's probes: metadata present, series stripped."""
        dataset = synthetic_dataset([100], [200, 300])
        for prb_id, meta in dataset.probe_meta.items():
            if meta.asn == 200:
                dataset.series.pop(prb_id, None)
        return dataset

    def test_poisoned_as_isolated(self):
        result = classify_dataset(self.poisoned_dataset(), PERIOD)
        assert result.failed_asns() == [200]
        assert sorted(result.reports) == [100, 300]
        assert result.reported_asns() == [100]
        failure = result.failures[200]
        assert failure.error == "EmptyPopulationError"
        assert failure.attempts == 1
        assert "AS200" in str(failure)

    def test_failure_counted_on_ledger(self):
        from repro.quality import DropReason

        result = classify_dataset(self.poisoned_dataset(), PERIOD)
        assert result.quality.dropped_count(
            DropReason.AS_FAILURE
        ) == 1

    def test_transient_fault_retried(self, monkeypatch):
        from repro.core import survey as survey_module
        from repro.netbase import TransientFaultError

        real = survey_module.aggregate_population
        calls = {"n": 0}

        def flaky(dataset, probe_ids, **kwargs):
            calls["n"] += 1
            if calls["n"] == 1:
                raise TransientFaultError("simulated blip")
            return real(dataset, probe_ids, **kwargs)

        monkeypatch.setattr(
            survey_module, "aggregate_population", flaky
        )
        dataset = synthetic_dataset([100], [])
        result = classify_dataset(dataset, PERIOD, max_attempts=2)
        assert calls["n"] == 2
        assert not result.failures
        assert result.reported_asns() == [100]

    def test_transient_fault_exhausts_retries(self, monkeypatch):
        from repro.core import survey as survey_module
        from repro.netbase import TransientFaultError

        def always_flaky(dataset, probe_ids, **kwargs):
            raise TransientFaultError("persistent blip")

        monkeypatch.setattr(
            survey_module, "aggregate_population", always_flaky
        )
        dataset = synthetic_dataset([100], [])
        result = classify_dataset(dataset, PERIOD, max_attempts=3)
        assert result.failed_asns() == [100]
        assert result.failures[100].attempts == 3

    def test_degenerate_signal_noted_not_failed(self):
        """All-NaN series: markers None, classified None, not a failure."""
        from repro.quality import DropReason

        dataset = synthetic_dataset([], [300])
        for series in dataset.series.values():
            series.median_rtt_ms[:] = np.nan
        result = classify_dataset(dataset, PERIOD)
        assert not result.failures
        assert result.reports[300].severity == Severity.NONE
        assert result.quality.degraded_count(
            DropReason.DEGENERATE_SIGNAL
        ) == 1
