"""Tests for last-mile RTT estimation (§2.1)."""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import Hop, Reply, TracerouteResult
from repro.core import (
    classify_hop_address,
    estimate_probe_series,
    find_boundary,
    lastmile_samples,
)
from repro.timebase import MeasurementPeriod, TimeGrid


def hop(number, address, rtts):
    replies = tuple(
        Reply(address, r) if r is not None else Reply.timeout()
        for r in rtts
    )
    return Hop(number, replies)


def traceroute(hops, timestamp=0.0, prb_id=1):
    return TracerouteResult(
        prb_id=prb_id,
        msm_id=5001,
        timestamp=timestamp,
        src_address="192.168.1.10",
        from_address="20.0.0.5",
        dst_address="192.5.0.1",
        hops=tuple(hops),
    )


def typical_traceroute(timestamp=0.0, private_rtt=0.5, public_rtt=3.5):
    return traceroute(
        [
            hop(1, "192.168.1.1", [private_rtt] * 3),
            hop(2, "60.0.0.1", [public_rtt] * 3),
            hop(3, "80.0.0.1", [10.0] * 3),
        ],
        timestamp=timestamp,
    )


class TestClassifyHopAddress:
    def test_private(self):
        assert classify_hop_address("192.168.1.1") == "private"
        assert classify_hop_address("10.5.5.5") == "private"
        assert classify_hop_address("100.64.0.9") == "private"

    def test_public(self):
        assert classify_hop_address("8.8.8.8") == "public"
        assert classify_hop_address("2400:8900::1") == "public"

    def test_other(self):
        assert classify_hop_address("127.0.0.1") == "other"
        assert classify_hop_address("224.0.0.5") == "other"
        assert classify_hop_address("garbage") == "other"


class TestFindBoundary:
    def test_typical(self):
        boundary = find_boundary(typical_traceroute())
        assert boundary.last_private.responding_address == "192.168.1.1"
        assert boundary.first_public.responding_address == "60.0.0.1"

    def test_two_private_hops_takes_last(self):
        result = traceroute([
            hop(1, "192.168.0.2", [0.3] * 3),
            hop(2, "192.168.1.1", [0.6] * 3),
            hop(3, "60.0.0.1", [4.0] * 3),
        ])
        boundary = find_boundary(result)
        assert boundary.last_private.responding_address == "192.168.1.1"

    def test_no_private_hops_anchor_case(self):
        result = traceroute([
            hop(1, "60.0.0.1", [0.4] * 3),
            hop(2, "80.0.0.1", [2.0] * 3),
        ])
        boundary = find_boundary(result)
        assert boundary.last_private is None
        assert boundary.first_public.responding_address == "60.0.0.1"

    def test_all_timeouts_returns_none(self):
        result = traceroute([
            hop(1, None, [None] * 3),
            hop(2, None, [None] * 3),
        ])
        assert find_boundary(result) is None

    def test_skips_timed_out_hops(self):
        result = traceroute([
            hop(1, "192.168.1.1", [0.5] * 3),
            hop(2, None, [None] * 3),          # silent hop
            hop(3, "60.0.0.1", [4.0] * 3),
        ])
        boundary = find_boundary(result)
        assert boundary.first_public.responding_address == "60.0.0.1"

    def test_loopback_hop_not_treated_as_public(self):
        result = traceroute([
            hop(1, "192.168.1.1", [0.5] * 3),
            hop(2, "127.0.0.1", [0.1] * 3),    # broken middlebox
            hop(3, "60.0.0.1", [4.0] * 3),
        ])
        boundary = find_boundary(result)
        assert boundary.first_public.responding_address == "60.0.0.1"


class TestLastmileSamples:
    def test_nine_pairwise_differences(self):
        result = traceroute([
            hop(1, "192.168.1.1", [1.0, 2.0, 3.0]),
            hop(2, "60.0.0.1", [10.0, 11.0, 12.0]),
        ])
        samples = lastmile_samples(result)
        assert len(samples) == 9
        assert sorted(samples) == sorted(
            pub - priv
            for pub in [10.0, 11.0, 12.0]
            for priv in [1.0, 2.0, 3.0]
        )

    def test_timeouts_reduce_sample_count(self):
        result = traceroute([
            hop(1, "192.168.1.1", [1.0, None, 3.0]),
            hop(2, "60.0.0.1", [10.0, 11.0, None]),
        ])
        assert len(lastmile_samples(result)) == 4  # 2 x 2

    def test_anchor_uses_public_rtts_directly(self):
        result = traceroute([
            hop(1, "60.0.0.1", [0.4, 0.5, 0.6]),
        ])
        assert lastmile_samples(result) == [0.4, 0.5, 0.6]

    def test_broken_traceroute_yields_nothing(self):
        result = traceroute([hop(1, None, [None] * 3)])
        assert lastmile_samples(result) == []

    def test_negative_differences_kept(self):
        """Noise can make a diff negative; medians handle it (§2.1)."""
        result = traceroute([
            hop(1, "192.168.1.1", [5.0] * 3),
            hop(2, "60.0.0.1", [4.0] * 3),
        ])
        assert all(s == -1.0 for s in lastmile_samples(result))


class TestEstimateProbeSeries:
    def grid(self, days=1):
        return TimeGrid(
            MeasurementPeriod("t", dt.datetime(2019, 9, 2), days)
        )

    def test_binning_and_median(self):
        grid = self.grid()
        results = [
            typical_traceroute(timestamp=i * 60.0, public_rtt=3.0 + i)
            for i in range(5)
        ]  # all within bin 0
        series = estimate_probe_series(results, grid)
        assert series.traceroute_counts[0] == 5
        # diffs are 2.5, 3.5, 4.5, 5.5, 6.5 -> median 4.5
        assert series.median_rtt_ms[0] == pytest.approx(4.5)
        assert np.isnan(series.median_rtt_ms[1])

    def test_sanity_check_drops_sparse_bins(self):
        """§2: bins with < 3 traceroutes are discarded."""
        grid = self.grid()
        results = [
            typical_traceroute(timestamp=0.0),
            typical_traceroute(timestamp=60.0),
        ]
        series = estimate_probe_series(results, grid)
        assert series.traceroute_counts[0] == 2
        assert np.isnan(series.median_rtt_ms[0])

    def test_min_traceroutes_parameter(self):
        grid = self.grid()
        results = [typical_traceroute(timestamp=0.0)]
        series = estimate_probe_series(results, grid, min_traceroutes=1)
        assert not np.isnan(series.median_rtt_ms[0])

    def test_empty_input_requires_prb_id(self):
        grid = self.grid()
        with pytest.raises(ValueError):
            estimate_probe_series([], grid)
        series = estimate_probe_series([], grid, prb_id=7)
        assert series.prb_id == 7
        assert np.all(np.isnan(series.median_rtt_ms))

    def test_median_robust_to_interference_outlier(self):
        """One wild traceroute cannot move the bin median much."""
        grid = self.grid()
        results = [
            typical_traceroute(timestamp=i * 60.0) for i in range(23)
        ]
        results.append(
            typical_traceroute(timestamp=23 * 60.0, public_rtt=500.0)
        )
        series = estimate_probe_series(results, grid)
        assert series.median_rtt_ms[0] == pytest.approx(3.0, abs=0.01)


class TestInsaneReplyHandling:
    """Edge contract of lastmile_samples on corrupt RTT replies: the
    per-reply sanity filter drops non-finite and negative values, and
    an all-insane boundary hop yields *no* samples (see the
    lastmile_samples docstring)."""

    def test_nan_replies_filtered_from_pairwise_product(self):
        result = traceroute([
            hop(1, "192.168.1.1", [1.0, float("nan"), 3.0]),
            hop(2, "60.0.0.1", [10.0, float("inf"), 12.0]),
        ])
        samples = lastmile_samples(result)
        assert len(samples) == 4  # 2 sane public x 2 sane private
        assert all(np.isfinite(s) for s in samples)

    def test_all_nan_public_hop_yields_nothing(self):
        result = traceroute([
            hop(1, "192.168.1.1", [0.5] * 3),
            hop(2, "60.0.0.1", [float("nan")] * 3),
        ])
        assert lastmile_samples(result) == []

    def test_all_nan_private_hop_yields_nothing(self):
        result = traceroute([
            hop(1, "192.168.1.1", [float("nan")] * 3),
            hop(2, "60.0.0.1", [3.5] * 3),
        ])
        assert lastmile_samples(result) == []

    def test_all_nan_anchor_hop_yields_nothing(self):
        result = traceroute([
            hop(1, "60.0.0.1", [float("nan")] * 3),
        ])
        assert lastmile_samples(result) == []

    def test_insane_boundary_counts_toward_bin_but_degrades(self):
        """A traceroute whose boundary replies are all insane still
        proves the probe was measuring (bin sanity) but contributes
        no samples and lands in the quality ledger as NO_BOUNDARY."""
        from repro.core.lastmile import STAGE
        from repro.quality import DataQualityReport, DropReason

        grid = TimeGrid(
            MeasurementPeriod("t", dt.datetime(2019, 9, 2), 1)
        )
        results = [
            typical_traceroute(timestamp=0.0),
            typical_traceroute(timestamp=60.0),
            traceroute([
                hop(1, "192.168.1.1", [0.5] * 3),
                hop(2, "60.0.0.1", [float("nan")] * 3),
            ], timestamp=120.0),
        ]
        quality = DataQualityReport()
        series = estimate_probe_series(results, grid, quality=quality)
        assert series.traceroute_counts[0] == 3
        # Bin sanity reached via the insane traceroute; the median
        # uses only the two clean ones.
        assert series.median_rtt_ms[0] == pytest.approx(3.0)
        assert quality.degraded_count(DropReason.NO_BOUNDARY) == 1
        assert quality.to_dict()[STAGE]["ingested"] == 3


class TestNaNTimestampHandling:
    """Edge contract of estimate_probe_series on unbinnable clocks: a
    non-finite timestamp is dropped as MALFORMED_RECORD *before* bin
    counting, unlike an out-of-period timestamp (OUT_OF_PERIOD) or an
    insane boundary (counted, then degraded)."""

    def test_nan_timestamp_dropped_before_bin_counting(self):
        from repro.quality import DataQualityReport, DropReason

        grid = TimeGrid(
            MeasurementPeriod("t", dt.datetime(2019, 9, 2), 1)
        )
        results = [
            typical_traceroute(timestamp=0.0),
            typical_traceroute(timestamp=60.0),
            typical_traceroute(timestamp=float("nan")),
            typical_traceroute(timestamp=float("inf")),
        ]
        quality = DataQualityReport()
        series = estimate_probe_series(results, grid, quality=quality)
        # The malformed records must not push bin 0 over the
        # min_traceroutes=3 sanity threshold.
        assert series.traceroute_counts[0] == 2
        assert np.isnan(series.median_rtt_ms[0])
        assert (
            quality.dropped_count(DropReason.MALFORMED_RECORD) == 2
        )

    def test_out_of_period_timestamp_distinct_reason(self):
        from repro.quality import DataQualityReport, DropReason

        grid = TimeGrid(
            MeasurementPeriod("t", dt.datetime(2019, 9, 2), 1)
        )
        quality = DataQualityReport()
        series = estimate_probe_series(
            [typical_traceroute(timestamp=-50.0),
             typical_traceroute(timestamp=10 * 86400.0)],
            grid, quality=quality,
        )
        assert int(series.traceroute_counts.sum()) == 0
        assert quality.dropped_count(DropReason.OUT_OF_PERIOD) == 2
        assert quality.dropped_count(DropReason.MALFORMED_RECORD) == 0

    def test_nan_timestamp_still_infers_prb_id(self):
        """Even a malformed record identifies the probe: an input of
        only malformed records returns an all-NaN series rather than
        raising for a missing prb_id."""
        grid = TimeGrid(
            MeasurementPeriod("t", dt.datetime(2019, 9, 2), 1)
        )
        series = estimate_probe_series(
            [typical_traceroute(timestamp=float("nan"))], grid
        )
        assert series.prb_id == 1
        assert np.all(np.isnan(series.median_rtt_ms))
