"""Tests for last-mile RTT estimation (§2.1)."""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import Hop, Reply, TracerouteResult
from repro.core import (
    classify_hop_address,
    estimate_probe_series,
    find_boundary,
    lastmile_samples,
)
from repro.timebase import MeasurementPeriod, TimeGrid


def hop(number, address, rtts):
    replies = tuple(
        Reply(address, r) if r is not None else Reply.timeout()
        for r in rtts
    )
    return Hop(number, replies)


def traceroute(hops, timestamp=0.0, prb_id=1):
    return TracerouteResult(
        prb_id=prb_id,
        msm_id=5001,
        timestamp=timestamp,
        src_address="192.168.1.10",
        from_address="20.0.0.5",
        dst_address="192.5.0.1",
        hops=tuple(hops),
    )


def typical_traceroute(timestamp=0.0, private_rtt=0.5, public_rtt=3.5):
    return traceroute(
        [
            hop(1, "192.168.1.1", [private_rtt] * 3),
            hop(2, "60.0.0.1", [public_rtt] * 3),
            hop(3, "80.0.0.1", [10.0] * 3),
        ],
        timestamp=timestamp,
    )


class TestClassifyHopAddress:
    def test_private(self):
        assert classify_hop_address("192.168.1.1") == "private"
        assert classify_hop_address("10.5.5.5") == "private"
        assert classify_hop_address("100.64.0.9") == "private"

    def test_public(self):
        assert classify_hop_address("8.8.8.8") == "public"
        assert classify_hop_address("2400:8900::1") == "public"

    def test_other(self):
        assert classify_hop_address("127.0.0.1") == "other"
        assert classify_hop_address("224.0.0.5") == "other"
        assert classify_hop_address("garbage") == "other"


class TestFindBoundary:
    def test_typical(self):
        boundary = find_boundary(typical_traceroute())
        assert boundary.last_private.responding_address == "192.168.1.1"
        assert boundary.first_public.responding_address == "60.0.0.1"

    def test_two_private_hops_takes_last(self):
        result = traceroute([
            hop(1, "192.168.0.2", [0.3] * 3),
            hop(2, "192.168.1.1", [0.6] * 3),
            hop(3, "60.0.0.1", [4.0] * 3),
        ])
        boundary = find_boundary(result)
        assert boundary.last_private.responding_address == "192.168.1.1"

    def test_no_private_hops_anchor_case(self):
        result = traceroute([
            hop(1, "60.0.0.1", [0.4] * 3),
            hop(2, "80.0.0.1", [2.0] * 3),
        ])
        boundary = find_boundary(result)
        assert boundary.last_private is None
        assert boundary.first_public.responding_address == "60.0.0.1"

    def test_all_timeouts_returns_none(self):
        result = traceroute([
            hop(1, None, [None] * 3),
            hop(2, None, [None] * 3),
        ])
        assert find_boundary(result) is None

    def test_skips_timed_out_hops(self):
        result = traceroute([
            hop(1, "192.168.1.1", [0.5] * 3),
            hop(2, None, [None] * 3),          # silent hop
            hop(3, "60.0.0.1", [4.0] * 3),
        ])
        boundary = find_boundary(result)
        assert boundary.first_public.responding_address == "60.0.0.1"

    def test_loopback_hop_not_treated_as_public(self):
        result = traceroute([
            hop(1, "192.168.1.1", [0.5] * 3),
            hop(2, "127.0.0.1", [0.1] * 3),    # broken middlebox
            hop(3, "60.0.0.1", [4.0] * 3),
        ])
        boundary = find_boundary(result)
        assert boundary.first_public.responding_address == "60.0.0.1"


class TestLastmileSamples:
    def test_nine_pairwise_differences(self):
        result = traceroute([
            hop(1, "192.168.1.1", [1.0, 2.0, 3.0]),
            hop(2, "60.0.0.1", [10.0, 11.0, 12.0]),
        ])
        samples = lastmile_samples(result)
        assert len(samples) == 9
        assert sorted(samples) == sorted(
            pub - priv
            for pub in [10.0, 11.0, 12.0]
            for priv in [1.0, 2.0, 3.0]
        )

    def test_timeouts_reduce_sample_count(self):
        result = traceroute([
            hop(1, "192.168.1.1", [1.0, None, 3.0]),
            hop(2, "60.0.0.1", [10.0, 11.0, None]),
        ])
        assert len(lastmile_samples(result)) == 4  # 2 x 2

    def test_anchor_uses_public_rtts_directly(self):
        result = traceroute([
            hop(1, "60.0.0.1", [0.4, 0.5, 0.6]),
        ])
        assert lastmile_samples(result) == [0.4, 0.5, 0.6]

    def test_broken_traceroute_yields_nothing(self):
        result = traceroute([hop(1, None, [None] * 3)])
        assert lastmile_samples(result) == []

    def test_negative_differences_kept(self):
        """Noise can make a diff negative; medians handle it (§2.1)."""
        result = traceroute([
            hop(1, "192.168.1.1", [5.0] * 3),
            hop(2, "60.0.0.1", [4.0] * 3),
        ])
        assert all(s == -1.0 for s in lastmile_samples(result))


class TestEstimateProbeSeries:
    def grid(self, days=1):
        return TimeGrid(
            MeasurementPeriod("t", dt.datetime(2019, 9, 2), days)
        )

    def test_binning_and_median(self):
        grid = self.grid()
        results = [
            typical_traceroute(timestamp=i * 60.0, public_rtt=3.0 + i)
            for i in range(5)
        ]  # all within bin 0
        series = estimate_probe_series(results, grid)
        assert series.traceroute_counts[0] == 5
        # diffs are 2.5, 3.5, 4.5, 5.5, 6.5 -> median 4.5
        assert series.median_rtt_ms[0] == pytest.approx(4.5)
        assert np.isnan(series.median_rtt_ms[1])

    def test_sanity_check_drops_sparse_bins(self):
        """§2: bins with < 3 traceroutes are discarded."""
        grid = self.grid()
        results = [
            typical_traceroute(timestamp=0.0),
            typical_traceroute(timestamp=60.0),
        ]
        series = estimate_probe_series(results, grid)
        assert series.traceroute_counts[0] == 2
        assert np.isnan(series.median_rtt_ms[0])

    def test_min_traceroutes_parameter(self):
        grid = self.grid()
        results = [typical_traceroute(timestamp=0.0)]
        series = estimate_probe_series(results, grid, min_traceroutes=1)
        assert not np.isnan(series.median_rtt_ms[0])

    def test_empty_input_requires_prb_id(self):
        grid = self.grid()
        with pytest.raises(ValueError):
            estimate_probe_series([], grid)
        series = estimate_probe_series([], grid, prb_id=7)
        assert series.prb_id == 7
        assert np.all(np.isnan(series.median_rtt_ms))

    def test_median_robust_to_interference_outlier(self):
        """One wild traceroute cannot move the bin median much."""
        grid = self.grid()
        results = [
            typical_traceroute(timestamp=i * 60.0) for i in range(23)
        ]
        results.append(
            typical_traceroute(timestamp=23 * 60.0, public_rtt=500.0)
        )
        series = estimate_probe_series(results, grid)
        assert series.median_rtt_ms[0] == pytest.approx(3.0, abs=0.01)
