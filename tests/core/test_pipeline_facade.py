"""Tests for the one-call analysis facade."""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import ProbeMeta
from repro.core import ASAnalysis, LastMileDataset, ProbeBinSeries, Severity, analyze_asn
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("facade", dt.datetime(2019, 9, 2), 15)


@pytest.fixture(scope="module")
def dataset():
    grid = TimeGrid(PERIOD)
    rng = np.random.default_rng(21)
    t = np.arange(grid.num_bins) / grid.bins_per_day
    data = LastMileDataset(grid=grid)
    prb = 1
    for asn, amplitude in ((100, 1.5), (200, 0.0)):
        for _ in range(4):
            medians = (
                2.0 + amplitude * (1 + np.sin(2 * np.pi * t))
                + rng.normal(0, 0.05, grid.num_bins)
            )
            data.add(
                ProbeBinSeries(
                    prb_id=prb, median_rtt_ms=medians,
                    traceroute_counts=np.full(grid.num_bins, 24),
                ),
                meta=ProbeMeta(
                    prb_id=prb, asn=asn, is_anchor=False,
                    public_address="20.0.0.1",
                ),
            )
            prb += 1
    return data


class TestAnalyzeASN:
    def test_congested_verdict(self, dataset):
        analysis = analyze_asn(dataset, asn=100)
        assert isinstance(analysis, ASAnalysis)
        assert analysis.is_congested
        assert analysis.severity in (Severity.MILD, Severity.SEVERE)
        assert analysis.signal.probe_count == 4

    def test_clean_verdict(self, dataset):
        analysis = analyze_asn(dataset, asn=200)
        assert not analysis.is_congested
        assert analysis.severity == Severity.NONE

    def test_confidence_interval(self, dataset):
        analysis = analyze_asn(
            dataset, asn=100, with_confidence=True,
            bootstrap_replicates=30,
        )
        ci = analysis.amplitude_ci
        assert ci is not None
        assert ci.low <= ci.value <= ci.high
        assert ci.value == pytest.approx(3.0, rel=0.3)

    def test_explicit_probe_ids(self, dataset):
        analysis = analyze_asn(dataset, probe_ids=[1, 2, 3, 4])
        assert analysis.is_congested
        assert analysis.asn == -1

    def test_requires_selection(self, dataset):
        with pytest.raises(ValueError):
            analyze_asn(dataset)
        with pytest.raises(ValueError):
            analyze_asn(dataset, asn=999)

    def test_summary_readable(self, dataset):
        text = analyze_asn(
            dataset, asn=100, with_confidence=True,
            bootstrap_replicates=20,
        ).summary()
        assert "AS100" in text
        assert "daily amplitude" in text
        assert "CI" in text
        assert "day  1" in text

    def test_deterministic_ci(self, dataset):
        a = analyze_asn(dataset, asn=100, with_confidence=True,
                        bootstrap_replicates=30)
        b = analyze_asn(dataset, asn=100, with_confidence=True,
                        bootstrap_replicates=30)
        assert a.amplitude_ci.low == b.amplitude_ci.low
