"""Tests for text rendering helpers."""

import numpy as np
import pytest

from repro.core import (
    daily_panel,
    downsample,
    horizontal_bars,
    sparkline,
    timeseries_panel,
)
from repro.core.textplot import GAP_CHAR, SPARK_LEVELS


class TestSparkline:
    def test_levels_span_range(self):
        text = sparkline([0.0, 0.5, 1.0])
        assert text[0] == SPARK_LEVELS[0]
        assert text[-1] == SPARK_LEVELS[-1]
        assert len(text) == 3

    def test_nan_renders_gap(self):
        text = sparkline([1.0, np.nan, 2.0])
        assert text[1] == GAP_CHAR

    def test_empty(self):
        assert sparkline([]) == ""

    def test_constant_series(self):
        text = sparkline([2.0, 2.0, 2.0])
        assert len(set(text)) == 1

    def test_explicit_maximum(self):
        # Against a high ceiling, modest values stay low.
        text = sparkline([1.0], maximum=100.0)
        assert text == SPARK_LEVELS[0]


class TestDownsample:
    def test_short_series_unchanged(self):
        values = np.arange(5.0)
        assert np.array_equal(downsample(values, 10), values)

    def test_reduces_to_width(self):
        values = np.arange(100.0)
        reduced = downsample(values, 10)
        assert reduced.shape == (10,)
        assert np.all(np.diff(reduced) > 0)  # still monotone

    def test_nan_blocks_stay_nan(self):
        values = np.full(100, np.nan)
        values[50:] = 1.0
        reduced = downsample(values, 10)
        assert np.isnan(reduced[0])
        assert reduced[-1] == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            downsample(np.arange(5.0), 0)


class TestPanels:
    def test_timeseries_panel(self):
        text = timeseries_panel(
            np.linspace(0, 4, 200), label="ISP_A", unit="ms"
        )
        assert text.startswith("ISP_A")
        assert "0.00–4.00 ms" in text

    def test_daily_panel_rows(self):
        values = np.tile(np.linspace(0, 2, 48), 3)  # 3 days
        text = daily_panel(values, bins_per_day=48, label="delay")
        lines = text.splitlines()
        assert lines[0].startswith("delay")
        assert len(lines) == 4  # header + 3 days
        assert "day  1" in lines[1]


class TestHorizontalBars:
    def test_bars_scale(self):
        text = horizontal_bars(
            ["a", "bb"], [1.0, 2.0], width=10, unit="ms"
        )
        lines = text.splitlines()
        assert lines[0].count("█") == 5
        assert lines[1].count("█") == 10
        assert "2.00 ms" in lines[1]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            horizontal_bars(["a"], [1.0, 2.0])

    def test_zero_values(self):
        text = horizontal_bars(["a"], [0.0], width=5)
        assert "░░░░░" in text
