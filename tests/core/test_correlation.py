"""Tests for delay–throughput correlation (§4.3)."""

import datetime as dt

import numpy as np
import pytest

from repro.core import spearman_delay_throughput, align_series
from repro.core.aggregate import AggregatedSignal
from repro.core.throughput import ThroughputSeries
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("t", dt.datetime(2019, 9, 19), 2)


def delay_signal(values):
    grid = TimeGrid(PERIOD, 1800)
    values = np.asarray(values, dtype=float)
    return AggregatedSignal(
        grid=grid, delay_ms=values, probe_count=5,
        contributing=np.full(grid.num_bins, 5),
    )


def throughput_series(values):
    grid = TimeGrid(PERIOD, 900)
    return ThroughputSeries(
        grid=grid, median_mbps=np.asarray(values, dtype=float),
        sample_counts=np.full(grid.num_bins, 10),
    )


def diurnal_delay(amplitude=3.0):
    grid = TimeGrid(PERIOD, 1800)
    t = np.arange(grid.num_bins) / grid.bins_per_day
    return amplitude * (1 + np.sin(2 * np.pi * t)) / 2


class TestAlign:
    def test_downsample_by_mean(self):
        delay = delay_signal(np.zeros(96))
        tput_values = np.arange(192, dtype=float)
        tput = throughput_series(tput_values)
        _d, resampled = align_series(delay, tput)
        assert resampled[0] == pytest.approx(0.5)   # mean(0, 1)
        assert resampled[1] == pytest.approx(2.5)

    def test_nan_half_bin_uses_other_half(self):
        delay = delay_signal(np.zeros(96))
        values = np.full(192, 10.0)
        values[0] = np.nan
        _d, resampled = align_series(delay, throughput_series(values))
        assert resampled[0] == pytest.approx(10.0)

    def test_grid_mismatch_rejected(self):
        delay = delay_signal(np.zeros(96))
        other_period = MeasurementPeriod("o", dt.datetime(2019, 9, 19), 1)
        bad = ThroughputSeries(
            grid=TimeGrid(other_period, 900),
            median_mbps=np.zeros(96),
            sample_counts=np.zeros(96),
        )
        with pytest.raises(ValueError):
            align_series(delay, bad)


class TestSpearman:
    def test_anticorrelated_congested_isp(self):
        """ISP_A shape: delay up, throughput down -> strongly negative."""
        delay = diurnal_delay()
        rng = np.random.default_rng(0)
        tput_30 = 50.0 - 12.0 * delay + rng.normal(0, 1.0, size=96)
        tput_15 = np.repeat(tput_30, 2)
        result = spearman_delay_throughput(
            delay_signal(delay), throughput_series(tput_15)
        )
        assert result.rho < -0.5
        assert result.p_value < 0.01
        assert result.n_bins == 96

    def test_uncorrelated_healthy_isp(self):
        """ISP_C shape: independent fluctuation -> rho ~ 0."""
        rng = np.random.default_rng(1)
        delay = rng.uniform(0, 0.2, size=96)
        tput_15 = 50.0 + rng.normal(0, 3.0, size=192)
        result = spearman_delay_throughput(
            delay_signal(delay), throughput_series(tput_15)
        )
        assert abs(result.rho) < 0.3

    def test_constant_series_reports_zero(self):
        result = spearman_delay_throughput(
            delay_signal(np.zeros(96)),
            throughput_series(np.full(192, 50.0)),
        )
        assert result.rho == 0.0

    def test_joint_gaps_dropped(self):
        delay = diurnal_delay()
        delay[:10] = np.nan
        tput = np.repeat(50.0 - 10.0 * diurnal_delay(), 2)
        tput[40:60] = np.nan
        result = spearman_delay_throughput(
            delay_signal(delay), throughput_series(tput)
        )
        assert result.n_bins < 96
        assert result.rho < -0.5

    def test_too_few_bins_rejected(self):
        delay = diurnal_delay()
        delay[5:] = np.nan
        with pytest.raises(ValueError):
            spearman_delay_throughput(
                delay_signal(delay),
                throughput_series(np.full(192, 50.0)),
            )

    def test_scatter_arrays_exposed(self):
        delay = diurnal_delay()
        tput = np.repeat(50.0 - 10.0 * delay, 2)
        result = spearman_delay_throughput(
            delay_signal(delay), throughput_series(tput)
        )
        assert result.delay_ms.shape == result.throughput_mbps.shape
        assert result.delay_ms.shape[0] == result.n_bins
