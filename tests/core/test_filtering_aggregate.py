"""Tests for probe selection and population aggregation."""

import datetime as dt

import numpy as np
import pytest

from repro.atlas import ProbeMeta
from repro.bgp import RoutingTable
from repro.core import (
    AggregatedSignal,
    LastMileDataset,
    ProbeBinSeries,
    aggregate_population,
    asns_with_min_probes,
    non_anchor_probes,
    probe_queuing_delay,
    probes_in_asn,
    probes_in_greater_tokyo,
    probes_with_daily_delay_over,
    resolve_probe_asn,
)
from repro.netbase import Prefix
from repro.timebase import MeasurementPeriod, TimeGrid


def meta(prb_id, asn=64500, anchor=False, address="20.0.0.5", city=""):
    return ProbeMeta(
        prb_id=prb_id, asn=asn, is_anchor=anchor,
        public_address=address, city=city,
    )


def make_grid(days=2):
    return TimeGrid(MeasurementPeriod("t", dt.datetime(2019, 9, 2), days))


def series_with(grid, prb_id, medians, counts=None):
    medians = np.asarray(medians, dtype=float)
    if counts is None:
        counts = np.full(grid.num_bins, 24)
    return ProbeBinSeries(
        prb_id=prb_id, median_rtt_ms=medians, traceroute_counts=counts
    )


class TestResolution:
    def test_resolve_by_lpm(self):
        table = RoutingTable()
        table.announce_prefix(Prefix.parse("20.0.0.0/16"), 64500)
        assert resolve_probe_asn(meta(1, address="20.0.0.5"), table) == 64500
        assert resolve_probe_asn(meta(1, address="30.0.0.5"), table) is None

    def test_resolve_bad_address(self):
        assert resolve_probe_asn(meta(1, address="bogus"), RoutingTable()) is None

    def test_probes_in_asn_with_table(self):
        table = RoutingTable()
        table.announce_prefix(Prefix.parse("20.0.0.0/16"), 64500)
        metas = {
            1: meta(1, asn=0, address="20.0.0.1"),
            2: meta(2, asn=0, address="20.0.0.2"),
            3: meta(3, asn=0, address="30.0.0.1"),
        }
        assert probes_in_asn(metas, 64500, table=table) == [1, 2]

    def test_probes_in_asn_trusts_meta_without_table(self):
        metas = {1: meta(1, asn=7), 2: meta(2, asn=8)}
        assert probes_in_asn(metas, 7) == [1]


class TestSelectors:
    def test_non_anchor(self):
        metas = {1: meta(1), 2: meta(2, anchor=True), 3: meta(3)}
        assert non_anchor_probes(metas) == [1, 3]

    def test_anchor_excluded_from_asn_selection(self):
        metas = {1: meta(1), 2: meta(2, anchor=True)}
        assert probes_in_asn(metas, 64500) == [1]
        assert probes_in_asn(metas, 64500, include_anchors=True) == [1, 2]

    def test_greater_tokyo(self):
        metas = {
            1: meta(1, city="Tokyo"),
            2: meta(2, city="Yokohama"),
            3: meta(3, city="Osaka"),
            4: meta(4, city="Chiba", anchor=True),
        }
        assert probes_in_greater_tokyo(metas) == [1, 2]
        assert probes_in_greater_tokyo(
            metas, include_anchors=True
        ) == [1, 2, 4]

    def test_asns_with_min_probes(self):
        metas = {
            1: meta(1, asn=100), 2: meta(2, asn=100), 3: meta(3, asn=100),
            4: meta(4, asn=200), 5: meta(5, asn=200),
            6: meta(6, asn=100, anchor=True),
        }
        result = asns_with_min_probes(metas, min_probes=3)
        assert result == {100: [1, 2, 3]}


class TestProbeQueuingDelay:
    def test_subtracts_minimum(self):
        grid = make_grid(1)
        medians = np.linspace(5.0, 6.0, grid.num_bins)
        series = series_with(grid, 1, medians)
        delay = probe_queuing_delay(series)
        assert delay[0] == pytest.approx(0.0)
        assert delay[-1] == pytest.approx(1.0)

    def test_invalid_bins_are_nan(self):
        grid = make_grid(1)
        counts = np.full(grid.num_bins, 24)
        counts[0] = 2  # fails sanity check
        series = series_with(grid, 1, np.full(grid.num_bins, 5.0), counts)
        delay = probe_queuing_delay(series)
        assert np.isnan(delay[0])
        assert delay[1] == pytest.approx(0.0)

    def test_all_invalid(self):
        grid = make_grid(1)
        series = series_with(
            grid, 1, np.full(grid.num_bins, np.nan)
        )
        assert np.all(np.isnan(probe_queuing_delay(series)))

    def test_baseline_is_per_period_minimum(self):
        """Minimum-median subtraction makes the lowest point zero."""
        grid = make_grid(1)
        medians = 3.0 + np.abs(np.sin(np.arange(grid.num_bins)))
        series = series_with(grid, 1, medians)
        delay = probe_queuing_delay(series)
        assert np.nanmin(delay) == pytest.approx(0.0)


class TestAggregatePopulation:
    def test_median_across_probes(self):
        grid = make_grid(1)
        dataset = LastMileDataset(grid=grid)
        # Three probes with constant offsets; after baseline removal
        # each contributes zero queueing delay except probe 3's bump.
        flat = np.full(grid.num_bins, 5.0)
        bumped = flat.copy()
        bumped[10] += 4.0
        dataset.add(series_with(grid, 1, flat))
        dataset.add(series_with(grid, 2, flat))
        dataset.add(series_with(grid, 3, bumped))
        signal = aggregate_population(dataset)
        assert signal.probe_count == 3
        # Median of (0, 0, 4) is 0: one congested probe is invisible.
        assert signal.delay_ms[10] == pytest.approx(0.0)

    def test_majority_congestion_visible(self):
        grid = make_grid(1)
        dataset = LastMileDataset(grid=grid)
        flat = np.full(grid.num_bins, 5.0)
        bumped = flat.copy()
        bumped[10] += 4.0
        dataset.add(series_with(grid, 1, bumped))
        dataset.add(series_with(grid, 2, bumped))
        dataset.add(series_with(grid, 3, flat))
        signal = aggregate_population(dataset)
        assert signal.delay_ms[10] == pytest.approx(4.0)

    def test_probe_subset(self):
        grid = make_grid(1)
        dataset = LastMileDataset(grid=grid)
        dataset.add(series_with(grid, 1, np.full(grid.num_bins, 5.0)))
        dataset.add(series_with(grid, 2, np.full(grid.num_bins, 9.0)))
        signal = aggregate_population(dataset, probe_ids=[1])
        assert signal.probe_count == 1

    def test_empty_selection_rejected(self):
        grid = make_grid(1)
        dataset = LastMileDataset(grid=grid)
        dataset.add(series_with(grid, 1, np.full(grid.num_bins, 5.0)))
        with pytest.raises(ValueError):
            aggregate_population(dataset, probe_ids=[99])

    def test_min_probes_per_bin(self):
        grid = make_grid(1)
        dataset = LastMileDataset(grid=grid)
        medians = np.full(grid.num_bins, 5.0)
        gappy = medians.copy()
        gappy[5] = np.nan
        dataset.add(series_with(grid, 1, medians))
        dataset.add(series_with(grid, 2, gappy))
        signal = aggregate_population(dataset, min_probes_per_bin=2)
        assert np.isnan(signal.delay_ms[5])
        assert signal.contributing[5] == 1

    def test_daily_max(self):
        grid = make_grid(2)
        dataset = LastMileDataset(grid=grid)
        medians = np.zeros(grid.num_bins)
        medians[10] = 3.0   # day 1
        medians[60] = 7.0   # day 2
        dataset.add(series_with(grid, 1, medians + 1.0))
        signal = aggregate_population(dataset)
        assert list(signal.daily_max_ms()) == [3.0, 7.0]


class TestDailyDelayOver:
    def test_counts_probes_exceeding_daily(self):
        grid = make_grid(4)
        dataset = LastMileDataset(grid=grid)
        quiet = np.full(grid.num_bins, 2.0)
        noisy = quiet.copy()
        # Probe 2 exceeds 5 ms every day.
        for day in range(4):
            noisy[day * 48 + 40] = 2.0 + 6.0
        dataset.add(series_with(grid, 1, quiet))
        dataset.add(series_with(grid, 2, noisy))
        result = probes_with_daily_delay_over(dataset, [1, 2], 5.0)
        assert result == [2]

    def test_fraction_threshold(self):
        grid = make_grid(4)
        dataset = LastMileDataset(grid=grid)
        sometimes = np.full(grid.num_bins, 2.0)
        sometimes[40] = 9.0  # only day 1 of 4
        dataset.add(series_with(grid, 1, sometimes))
        assert probes_with_daily_delay_over(dataset, [1], 5.0) == []
        assert probes_with_daily_delay_over(
            dataset, [1], 5.0, min_days_fraction=0.25
        ) == [1]

    def test_missing_probe_ignored(self):
        grid = make_grid(4)
        dataset = LastMileDataset(grid=grid)
        assert probes_with_daily_delay_over(dataset, [42], 5.0) == []


class TestQuarantineAccounting:
    """The former silent ``except ValueError`` now leaves a paper trail."""

    def test_unparseable_address_recorded(self):
        from repro.quality import DataQualityReport, DropReason

        quality = DataQualityReport()
        table = RoutingTable()
        assert resolve_probe_asn(
            meta(7, address="not-an-ip"), table, quality=quality
        ) is None
        assert quality.dropped_count(DropReason.UNPARSEABLE_ADDRESS) == 1
        [record] = quality.stage("core.filtering").quarantine
        assert "probe 7" in record.detail
        assert "not-an-ip" in record.detail

    def test_unresolved_asn_recorded(self):
        from repro.quality import DataQualityReport, DropReason

        quality = DataQualityReport()
        table = RoutingTable()
        table.announce_prefix(Prefix.parse("20.0.0.0/16"), 64500)
        assert resolve_probe_asn(
            meta(8, address="99.0.0.1"), table, quality=quality
        ) is None
        assert quality.dropped_count(DropReason.UNRESOLVED_ASN) == 1

    def test_group_selection_accounts_every_probe(self):
        from repro.quality import DataQualityReport, DropReason

        table = RoutingTable()
        table.announce_prefix(Prefix.parse("20.0.0.0/16"), 64500)
        metas = {
            1: meta(1, address="20.0.0.1"),
            2: meta(2, address="20.0.0.2"),
            3: meta(3, address="20.0.0.3"),
            4: meta(4, address="garbage"),
            5: meta(5, address="99.0.0.1"),
            6: meta(6, anchor=True),
        }
        quality = DataQualityReport()
        groups = asns_with_min_probes(
            metas, min_probes=3, table=table, quality=quality
        )
        assert groups == {64500: [1, 2, 3]}
        stage = quality.stage("core.filtering")
        assert stage.ingested == 5  # anchor never enters
        assert quality.dropped_count(DropReason.UNPARSEABLE_ADDRESS) == 1
        assert quality.dropped_count(DropReason.UNRESOLVED_ASN) == 1

    def test_quality_optional_behavior_unchanged(self):
        table = RoutingTable()
        assert resolve_probe_asn(meta(1, address="bogus"), table) is None


class TestAggregateQuality:
    def test_metadata_without_series_counted(self):
        from repro.netbase import EmptyPopulationError
        from repro.quality import DataQualityReport, DropReason

        grid = make_grid()
        dataset = LastMileDataset(grid=grid)
        quality = DataQualityReport()
        with pytest.raises(EmptyPopulationError):
            aggregate_population(dataset, [1, 2], quality=quality)
        assert quality.dropped_count(DropReason.NO_VALID_BINS) == 2

    def test_all_nan_probe_degraded(self):
        from repro.quality import DataQualityReport, DropReason

        grid = make_grid()
        dataset = LastMileDataset(grid=grid)
        dataset.add(series_with(grid, 1, np.full(grid.num_bins, 5.0)))
        dataset.add(series_with(grid, 2, np.full(grid.num_bins, np.nan)))
        quality = DataQualityReport()
        signal = aggregate_population(dataset, [1, 2], quality=quality)
        assert signal.probe_count == 2
        assert quality.degraded_count(DropReason.NO_VALID_BINS) == 1
