"""Tests for the geolocation-bias experiment (§6)."""

import datetime as dt

import numpy as np
import pytest

from repro.core.geoloc import (
    FIBER_KM_PER_MS,
    GeolocationStudy,
    peak_hour_mask,
    per_bin_distance_errors,
    rtt_to_distance_km,
    run_geolocation_study,
)
from repro.core.series import LastMileDataset, ProbeBinSeries
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("geo", dt.datetime(2019, 9, 2), 15)


def make_dataset(congested_probes=2, quiet_probes=2, amplitude=4.0):
    """Probes with JST-evening congestion in their last-mile series."""
    grid = TimeGrid(PERIOD)
    rng = np.random.default_rng(3)
    hour = grid.local_hour_of_day(9.0)
    evening = np.exp(-0.5 * ((hour - 21.0) / 1.5) ** 2)
    dataset = LastMileDataset(grid=grid)
    for prb_id in range(congested_probes + quiet_probes):
        base = rng.uniform(1.0, 2.0)
        medians = base + rng.normal(0, 0.03, grid.num_bins)
        if prb_id < congested_probes:
            medians = medians + amplitude * evening
        dataset.add(ProbeBinSeries(
            prb_id=prb_id, median_rtt_ms=medians,
            traceroute_counts=np.full(grid.num_bins, 24),
        ))
    return dataset


class TestConversions:
    def test_fiber_bound(self):
        # 10 ms RTT -> 5 ms one-way -> 500 km.
        assert rtt_to_distance_km(10.0) == pytest.approx(500.0)
        assert FIBER_KM_PER_MS == 100.0

    def test_vectorized_and_validated(self):
        out = rtt_to_distance_km(np.array([2.0, 4.0]))
        assert out == pytest.approx([100.0, 200.0])
        with pytest.raises(ValueError):
            rtt_to_distance_km(-1.0)

    def test_per_bin_errors(self):
        errors = per_bin_distance_errors(
            np.array([10.0, 12.0, np.nan]), true_distance_km=500.0
        )
        assert errors[0] == pytest.approx(0.0)
        assert errors[1] == pytest.approx(100.0)
        assert np.isnan(errors[2])


class TestPeakMask:
    def test_jst_evening(self):
        grid = TimeGrid(PERIOD)
        mask = peak_hour_mask(grid, 9.0)
        hour = grid.local_hour_of_day(9.0)
        assert mask[(hour >= 19.5) & (hour <= 22.5)].all()
        assert not mask[(hour >= 2) & (hour <= 6)].any()
        # 4-hour window = ~1/6 of the day.
        assert 0.1 < mask.mean() < 0.25


class TestStudy:
    def test_policy_ordering(self):
        """The paper's recommendations must actually help:
        peak-hours inference is the worst, off-peak better, and
        filtering congested probes best."""
        dataset = make_dataset()
        study = run_geolocation_study(
            dataset, path_rtt_ms=10.0, utc_offset_hours=9.0
        )
        peak = study.median_error("peak_hours")
        any_time = study.median_error("any_time")
        off_peak = study.median_error("off_peak")
        filtered = study.median_error("filtered")
        assert peak > any_time >= off_peak >= 0.0
        assert filtered <= off_peak + 1e-9
        # Peak-hour inference through a 4 ms-congested last mile is
        # off by ~hundreds of km at the p90.
        assert study.p90_error("peak_hours") > 100.0
        assert study.p90_error("filtered") < 30.0

    def test_congested_probes_excluded(self):
        dataset = make_dataset(congested_probes=2, quiet_probes=2)
        study = run_geolocation_study(
            dataset, path_rtt_ms=10.0, utc_offset_hours=9.0
        )
        assert sorted(study.excluded_probes) == [0, 1]

    def test_quiet_population_all_policies_agree(self):
        dataset = make_dataset(congested_probes=0, quiet_probes=3)
        study = run_geolocation_study(
            dataset, path_rtt_ms=10.0, utc_offset_hours=9.0
        )
        assert study.excluded_probes == []
        assert study.median_error("peak_hours") == pytest.approx(
            study.median_error("off_peak"), abs=5.0
        )

    def test_true_distance_override(self):
        dataset = make_dataset(congested_probes=0, quiet_probes=1)
        study = run_geolocation_study(
            dataset, path_rtt_ms=10.0, utc_offset_hours=9.0,
            true_distance_km=400.0,
        )
        # Path RTT of 10 ms implies 500 km; against a 400 km truth the
        # error floor is ~100 km.
        assert study.median_error("off_peak") == pytest.approx(
            100.0, abs=10.0
        )

    def test_samples_accounting(self):
        dataset = make_dataset()
        study = run_geolocation_study(
            dataset, path_rtt_ms=10.0, utc_offset_hours=9.0
        )
        assert study.samples("any_time") == (
            study.samples("peak_hours") + study.samples("off_peak")
        )
        assert study.samples("filtered") < study.samples("off_peak")

    def test_empty_policy_is_nan(self):
        study = GeolocationStudy(500.0, {"any_time": []}, [])
        assert np.isnan(study.median_error("any_time"))
        assert np.isnan(study.p90_error("missing"))
