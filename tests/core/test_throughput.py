"""Tests for the CDN throughput pipeline (§4.2)."""

import datetime as dt

import numpy as np
import pytest

from repro.bgp import RoutingTable
from repro.cdn import AccessLogDataset, AccessLogRecord, MobilePrefixList
from repro.core import (
    MIN_OBJECT_BYTES,
    ThroughputSeries,
    filter_requests,
    median_throughput_series,
    per_asn_throughput,
    resolve_client_asns,
)
from repro.netbase import Prefix
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("t", dt.datetime(2019, 9, 19), 1)


def grid15():
    return TimeGrid(PERIOD, 900)


def record(ts=0.0, ip="20.0.0.1", size=5_000_000, dur=1000.0, hit=True):
    af = 6 if ":" in ip else 4
    return AccessLogRecord(
        timestamp=ts, client_ip=ip, af=af,
        bytes_sent=size, duration_ms=dur, cache_hit=hit,
    )


class TestFilterRequests:
    def test_size_filter(self):
        dataset = AccessLogDataset.from_records([
            record(size=MIN_OBJECT_BYTES + 1),
            record(size=MIN_OBJECT_BYTES),     # boundary: excluded
            record(size=1_000),
        ])
        assert len(filter_requests(dataset)) == 1

    def test_cache_filter(self):
        dataset = AccessLogDataset.from_records([
            record(hit=True), record(hit=False),
        ])
        assert len(filter_requests(dataset)) == 1
        assert len(filter_requests(dataset, cache_hit_only=False)) == 2

    def test_mobile_exclusion_and_only(self):
        mobile = MobilePrefixList([Prefix.parse("21.0.0.0/16")])
        dataset = AccessLogDataset.from_records([
            record(ip="20.0.0.1"),
            record(ip="21.0.0.1"),
        ])
        broadband = filter_requests(dataset, mobile_prefixes=mobile)
        assert len(broadband) == 1
        assert str(broadband.client_values[0]) != ""
        only = filter_requests(
            dataset, mobile_prefixes=mobile, mobile_mode="only"
        )
        assert len(only) == 1

    def test_bad_mode(self):
        with pytest.raises(ValueError):
            filter_requests(AccessLogDataset.empty(), mobile_mode="x")


class TestResolveClientASNs:
    def test_lpm_with_unannounced(self):
        table = RoutingTable()
        table.announce_prefix(Prefix.parse("20.0.0.0/16"), 64500)
        dataset = AccessLogDataset.from_records([
            record(ip="20.0.0.1"), record(ip="99.0.0.1"),
        ])
        asns = resolve_client_asns(dataset, table)
        assert list(asns) == [64500, -1]


class TestMedianSeries:
    def test_median_per_bin(self):
        # Two requests in bin 0 at 40 and 20 Mbps, one in bin 1.
        dataset = AccessLogDataset.from_records([
            record(ts=10.0, dur=1000.0),    # 40 Mbps
            record(ts=20.0, dur=2000.0),    # 20 Mbps
            record(ts=30.0, dur=4000.0),    # 10 Mbps
            record(ts=910.0, dur=1000.0),
        ])
        series = median_throughput_series(
            dataset, grid15(), min_samples_per_bin=1
        )
        assert series.median_mbps[0] == pytest.approx(20.0)
        assert series.median_mbps[1] == pytest.approx(40.0)
        assert series.sample_counts[0] == 3
        assert np.isnan(series.median_mbps[5])

    def test_min_samples(self):
        dataset = AccessLogDataset.from_records([record(ts=10.0)])
        series = median_throughput_series(dataset, grid15())
        assert np.isnan(series.median_mbps[0])  # below min 3

    def test_per_ip_mode_resists_heavy_users(self):
        """One chatty fast client must not dominate the per-IP median."""
        records = []
        # Client A: 10 requests at 80 Mbps in bin 0.
        for i in range(10):
            records.append(record(
                ts=float(i), ip="20.0.0.1", dur=500.0
            ))
        # Clients B, C, D: one request each at 10 Mbps.
        for i, ip in enumerate(["20.0.0.2", "20.0.0.3", "20.0.0.4"]):
            records.append(record(ts=float(i), ip=ip, dur=4000.0))
        dataset = AccessLogDataset.from_records(records)

        per_request = median_throughput_series(
            dataset, grid15(), min_samples_per_bin=1
        )
        per_ip = median_throughput_series(
            dataset, grid15(), min_samples_per_bin=1, per_ip=True
        )
        # Per-request: 10 of 13 samples are 80 Mbps -> median 80.
        assert per_request.median_mbps[0] == pytest.approx(80.0)
        # Per-IP: samples are (80, 10, 10, 10) -> median 10.
        assert per_ip.median_mbps[0] == pytest.approx(10.0)
        assert per_ip.sample_counts[0] == 4

    def test_per_ip_counts_clients_not_requests(self):
        records = [record(ts=float(i), ip="20.0.0.1") for i in range(5)]
        dataset = AccessLogDataset.from_records(records)
        series = median_throughput_series(
            dataset, grid15(), min_samples_per_bin=1, per_ip=True
        )
        assert series.sample_counts[0] == 1

    def test_daily_min(self):
        period = MeasurementPeriod("d2", dt.datetime(2019, 9, 19), 2)
        grid = TimeGrid(period, 900)
        medians = np.full(grid.num_bins, 50.0)
        medians[10] = 12.0          # day 1 dip
        medians[96 + 20] = 8.0      # day 2 dip
        series = ThroughputSeries(
            grid=grid, median_mbps=medians,
            sample_counts=np.full(grid.num_bins, 10),
        )
        assert series.daily_min_mbps() == pytest.approx([12.0, 8.0])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ThroughputSeries(
                grid=grid15(), median_mbps=np.zeros(3),
                sample_counts=np.zeros(3),
            )


class TestPerASN:
    def test_grouping(self):
        table = RoutingTable()
        table.announce_prefix(Prefix.parse("20.0.0.0/16"), 64500)
        table.announce_prefix(Prefix.parse("21.0.0.0/16"), 64501)
        records = []
        for i in range(20):
            records.append(record(ts=float(i), ip="20.0.0.5", dur=1000.0))
            records.append(record(ts=float(i), ip="21.0.0.5", dur=4000.0))
        dataset = AccessLogDataset.from_records(records)
        result = per_asn_throughput(dataset, grid15(), table)
        assert set(result) == {64500, 64501}
        assert result[64500].median_mbps[0] == pytest.approx(40.0)
        assert result[64501].median_mbps[0] == pytest.approx(10.0)

    def test_af_restriction(self):
        table = RoutingTable()
        table.announce_prefix(Prefix.parse("20.0.0.0/16"), 64500)
        table.announce_prefix(Prefix.parse("2400:8900::/32"), 64500)
        records = [
            record(ts=float(i), ip="20.0.0.5", dur=4000.0)
            for i in range(5)
        ] + [
            record(ts=float(i), ip="2400:8900::5", dur=1000.0)
            for i in range(5)
        ]
        dataset = AccessLogDataset.from_records(records)
        v4 = per_asn_throughput(dataset, grid15(), table, af=4)
        v6 = per_asn_throughput(dataset, grid15(), table, af=6)
        assert v4[64500].median_mbps[0] == pytest.approx(10.0)
        assert v6[64500].median_mbps[0] == pytest.approx(40.0)

    def test_explicit_asn_list(self):
        table = RoutingTable()
        table.announce_prefix(Prefix.parse("20.0.0.0/16"), 64500)
        dataset = AccessLogDataset.from_records([record()])
        result = per_asn_throughput(
            dataset, grid15(), table, asns=[64500, 64999]
        )
        assert set(result) == {64500, 64999}
        assert np.all(np.isnan(result[64999].median_mbps))
