"""Tests for bootstrap statistics and churn metrics."""

import datetime as dt

import numpy as np
import pytest

from repro.core import (
    LastMileDataset,
    ProbeBinSeries,
    bootstrap_daily_amplitude,
    bootstrap_spearman,
    bootstrap_statistic,
    churn_jaccard,
)
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("stats", dt.datetime(2019, 9, 2), 15)


class TestBootstrapStatistic:
    def test_mean_interval_contains_truth(self):
        rng = np.random.default_rng(0)
        sample = rng.normal(5.0, 1.0, size=200)
        estimate = bootstrap_statistic(
            sample, np.mean, replicates=500,
            rng=np.random.default_rng(1),
        )
        assert estimate.low < 5.0 < estimate.high
        assert estimate.value == pytest.approx(sample.mean())
        assert estimate.width < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_statistic(np.array([1.0]), np.mean)
        with pytest.raises(ValueError):
            bootstrap_statistic(
                np.array([1.0, 2.0]), np.mean, confidence=1.0
            )

    def test_reproducible(self):
        sample = np.arange(50.0)
        a = bootstrap_statistic(
            sample, np.median, rng=np.random.default_rng(3)
        )
        b = bootstrap_statistic(
            sample, np.median, rng=np.random.default_rng(3)
        )
        assert (a.low, a.high) == (b.low, b.high)

    def test_str(self):
        estimate = bootstrap_statistic(
            np.arange(20.0), np.mean, rng=np.random.default_rng(0)
        )
        text = str(estimate)
        assert "95% CI" in text


class TestBootstrapAmplitude:
    def make_dataset(self, probes=6, amplitude=1.5):
        grid = TimeGrid(PERIOD)
        rng = np.random.default_rng(5)
        t = np.arange(grid.num_bins) / grid.bins_per_day
        dataset = LastMileDataset(grid=grid)
        for prb_id in range(probes):
            per_probe_amp = amplitude * rng.uniform(0.8, 1.2)
            medians = (
                rng.uniform(1, 3)
                + per_probe_amp * (1 + np.sin(2 * np.pi * t))
                + rng.normal(0, 0.05, grid.num_bins)
            )
            dataset.add(ProbeBinSeries(
                prb_id=prb_id, median_rtt_ms=medians,
                traceroute_counts=np.full(grid.num_bins, 24),
            ))
        return dataset

    def test_interval_brackets_point(self):
        dataset = self.make_dataset()
        estimate = bootstrap_daily_amplitude(
            dataset, replicates=50, rng=np.random.default_rng(2)
        )
        assert estimate.low <= estimate.value <= estimate.high
        # sine amplitude ~1.5 -> pk-pk ~3.
        assert estimate.value == pytest.approx(3.0, rel=0.25)
        assert estimate.width < 1.5

    def test_needs_two_probes(self):
        dataset = self.make_dataset(probes=1)
        with pytest.raises(ValueError):
            bootstrap_daily_amplitude(dataset)


class TestBootstrapSpearman:
    def test_strong_anticorrelation_detected(self):
        rng = np.random.default_rng(4)
        x = np.linspace(0, 3, 200) + rng.normal(0, 0.1, 200)
        y = 50 - 10 * x + rng.normal(0, 1.0, 200)
        estimate = bootstrap_spearman(
            x, y, replicates=200, rng=np.random.default_rng(5)
        )
        assert estimate.value < -0.9
        assert estimate.high < -0.8

    def test_null_interval_contains_zero(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=300)
        y = rng.normal(size=300)
        estimate = bootstrap_spearman(
            x, y, replicates=300, rng=np.random.default_rng(7)
        )
        assert estimate.low < 0.0 < estimate.high

    def test_nan_bins_dropped(self):
        x = np.linspace(0, 1, 100)
        y = 1 - x
        x2 = x.copy()
        x2[:10] = np.nan
        estimate = bootstrap_spearman(
            x2, y, replicates=50, rng=np.random.default_rng(8)
        )
        assert estimate.value == pytest.approx(-1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_spearman(np.zeros(5), np.zeros(6))
        with pytest.raises(ValueError):
            bootstrap_spearman(np.zeros(10), np.zeros(10), block=8)


class TestChurn:
    def test_jaccard(self):
        assert churn_jaccard([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)
        assert churn_jaccard([], []) == 1.0
        assert churn_jaccard([1], []) == 0.0
        assert churn_jaccard([1, 2], [1, 2]) == 1.0

    def test_suite_integration(self):
        import datetime as dt

        from repro.core import SurveyResult, SurveySuite
        from repro.core.classify import Classification, Severity
        from repro.core.survey import ASReport

        def result(name, asns):
            r = SurveyResult(period=MeasurementPeriod(
                name, dt.datetime(2019, 9, 1), 15
            ))
            for asn in asns:
                r.reports[asn] = ASReport(
                    asn=asn, probe_count=3,
                    classification=Classification(Severity.MILD, None),
                )
            return r

        suite = SurveySuite()
        suite.add(result("p1", [1, 2, 3]))
        suite.add(result("p2", [2, 3, 4]))
        assert suite.churn_between("p1", "p2") == pytest.approx(0.5)
        assert suite.mean_consecutive_similarity() == pytest.approx(0.5)
