"""Tests for the alternative detectors and their evaluation harness."""

import numpy as np
import pytest

from repro.core.detectors import (
    AutocorrelationDetector,
    DetectorScore,
    HourOfDayVarianceDetector,
    RangeDetector,
    WelchDetector,
    evaluate_detectors,
)

BIN = 1800
BPD = 48


def daily_signal(amplitude=1.0, days=15, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(days * BPD) / BPD
    return np.clip(
        amplitude * (1 + np.sin(2 * np.pi * t))
        + rng.normal(0, noise, days * BPD),
        0, None,
    )


def noise_signal(scale=0.1, days=15, seed=1):
    rng = np.random.default_rng(seed)
    return np.abs(rng.normal(0.2, scale, days * BPD))


def trend_signal(total_rise=3.0, days=15):
    """Monotone drift with no periodicity (e.g. a routing change)."""
    return np.linspace(0.0, total_rise, days * BPD)


class TestIndividualDetectors:
    @pytest.mark.parametrize("detector_cls", [
        WelchDetector, AutocorrelationDetector,
        RangeDetector, HourOfDayVarianceDetector,
    ])
    def test_detects_clear_congestion(self, detector_cls):
        detection = detector_cls().detect(daily_signal(2.0), BIN)
        assert detection.reported
        assert detection.score > 0

    @pytest.mark.parametrize("detector_cls", [
        WelchDetector, AutocorrelationDetector,
        RangeDetector, HourOfDayVarianceDetector,
    ])
    def test_quiet_signal_not_reported(self, detector_cls):
        detection = detector_cls().detect(noise_signal(0.02), BIN)
        assert not detection.reported

    def test_constant_signal_handled(self):
        flat = np.full(15 * BPD, 1.0)
        for detector in (
            WelchDetector(), AutocorrelationDetector(),
            HourOfDayVarianceDetector(),
        ):
            assert not detector.detect(flat, BIN).reported

    def test_range_detector_false_positive_on_trend(self):
        """The naive detector flags a trend; periodicity-aware ones
        don't — the reason the paper requires the daily signature."""
        trend = trend_signal(3.0)
        assert RangeDetector().detect(trend, BIN).reported
        assert not WelchDetector().detect(trend, BIN).reported
        assert not AutocorrelationDetector().detect(trend, BIN).reported

    def test_short_signal_autocorrelation_safe(self):
        short = daily_signal(days=1)
        assert not AutocorrelationDetector().detect(short, BIN).reported

    def test_nan_gaps_tolerated(self):
        signal = daily_signal(2.0)
        signal[100:130] = np.nan
        for detector in (
            WelchDetector(), AutocorrelationDetector(),
            HourOfDayVarianceDetector(), RangeDetector(),
        ):
            assert detector.detect(signal, BIN).reported


class TestDetectorScore:
    def test_metrics(self):
        score = DetectorScore("x", true_positives=8, false_positives=2,
                              false_negatives=2, true_negatives=88)
        assert score.precision == pytest.approx(0.8)
        assert score.recall == pytest.approx(0.8)
        assert score.f1 == pytest.approx(0.8)

    def test_degenerate_metrics_nan(self):
        score = DetectorScore("x", 0, 0, 0, 10)
        assert np.isnan(score.precision)
        assert np.isnan(score.recall)
        assert np.isnan(score.f1)


class TestEvaluation:
    def test_labels_length_checked(self):
        with pytest.raises(ValueError):
            evaluate_detectors([np.zeros(10)], [True, False], BIN)

    def test_welch_beats_range_on_trendy_population(self):
        """Population with trends: the periodicity requirement pays."""
        signals = (
            [daily_signal(2.0, seed=i) for i in range(6)]
            + [noise_signal(seed=i) for i in range(6)]
            + [trend_signal(2.0 + i * 0.5) for i in range(6)]
        )
        labels = [True] * 6 + [False] * 12
        scores = evaluate_detectors(signals, labels, BIN)
        welch = scores["welch (paper)"]
        naive = scores["range"]
        assert welch.recall == pytest.approx(1.0)
        assert welch.precision == pytest.approx(1.0)
        assert naive.precision < 0.75  # trends fool it

    def test_custom_detector_list(self):
        scores = evaluate_detectors(
            [daily_signal(2.0)], [True], BIN,
            detectors=[RangeDetector(range_threshold_ms=0.5)],
        )
        assert list(scores) == ["range"]
        assert scores["range"].true_positives == 1
