"""Tests for report/series helpers."""

import datetime as dt

import numpy as np
import pytest

from repro.core import (
    Severity,
    amplitude_distribution,
    cdf,
    daily_fraction,
    delay_throughput_scatter_bins,
    format_table,
    render_severity_breakdown,
    render_throughput_summary,
    render_weekly_overlay,
    weekly_delay_overlay,
)
from repro.core.aggregate import AggregatedSignal
from repro.core.classify import ClassificationThresholds
from repro.core.throughput import ThroughputSeries
from repro.timebase import MeasurementPeriod, TimeGrid


class TestCDF:
    def test_basic(self):
        x, y = cdf([3.0, 1.0, 2.0])
        assert list(x) == [1.0, 2.0, 3.0]
        assert y[-1] == 1.0
        assert y[0] == pytest.approx(1 / 3)

    def test_nan_dropped(self):
        x, _y = cdf([1.0, np.nan, 2.0])
        assert len(x) == 2

    def test_empty(self):
        x, y = cdf([])
        assert len(x) == 0 and len(y) == 0


class TestAmplitudeDistribution:
    def test_fractions(self):
        amps = [0.1] * 83 + [0.7] * 7 + [2.0] * 6 + [5.0] * 4
        dist = amplitude_distribution(amps)
        assert dist["below_low"] == pytest.approx(0.83)
        assert dist["low_to_mild"] == pytest.approx(0.07)
        assert dist["mild_to_severe"] == pytest.approx(0.06)
        assert dist["above_severe"] == pytest.approx(0.04)
        assert sum(dist.values()) == pytest.approx(1.0)

    def test_custom_thresholds(self):
        dist = amplitude_distribution(
            [0.2, 0.8],
            ClassificationThresholds(low_ms=0.1, mild_ms=0.5, severe_ms=1.0),
        )
        assert dist["low_to_mild"] == pytest.approx(0.5)

    def test_empty_is_nan(self):
        dist = amplitude_distribution([])
        assert all(np.isnan(v) for v in dist.values())


class TestDailyFraction:
    def test_counts_near_daily(self):
        freqs = [1 / 24, 1 / 24 * 1.1, 0.5, 0.02]
        assert daily_fraction(freqs) == pytest.approx(0.5)

    def test_empty(self):
        assert np.isnan(daily_fraction([]))


class TestFormatTable:
    def test_alignment_and_floats(self):
        text = format_table(["name", "x"], [["abc", 1.23456], ["d", 2.0]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "1.235" in lines[2]
        assert lines[0].startswith("name")

    def test_empty_rows(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestOverlayRender:
    def make_signal(self):
        period = MeasurementPeriod("t", dt.datetime(2019, 9, 2), 14)
        grid = TimeGrid(period)
        t = np.arange(grid.num_bins) / grid.bins_per_day
        delay = 2.0 * (1 + np.sin(2 * np.pi * (t - 0.375)))  # peak ~21h
        return AggregatedSignal(
            grid=grid, delay_ms=delay, probe_count=3,
            contributing=np.full(grid.num_bins, 3),
        )

    def test_weekly_delay_overlay(self):
        signal = self.make_signal()
        hours, medians = weekly_delay_overlay(signal)
        assert len(hours) == 7 * 48
        assert medians.max() == pytest.approx(4.0, rel=0.05)

    def test_render(self):
        signal = self.make_signal()
        text = render_weekly_overlay(
            {"ISP_X": weekly_delay_overlay(signal)}
        )
        assert "ISP_X" in text
        assert "peak at" in text

    def test_render_empty_series(self):
        text = render_weekly_overlay({"empty": (np.array([]), np.array([]))})
        assert "empty" in text


class TestRenderers:
    def test_severity_breakdown(self):
        pct = {
            "1 to 10": {s: 10.0 for s in Severity},
            "11 to 100": {s: 15.0 for s in Severity},
        }
        text = render_severity_breakdown(pct, title="Fig. 4")
        assert text.startswith("Fig. 4")
        assert "severe" in text and "1 to 10" in text

    def test_throughput_summary(self):
        period = MeasurementPeriod("t", dt.datetime(2019, 9, 19), 1)
        grid = TimeGrid(period, 900)
        ts = ThroughputSeries(
            grid=grid,
            median_mbps=np.linspace(20, 50, grid.num_bins),
            sample_counts=np.full(grid.num_bins, 10),
        )
        text = render_throughput_summary({"ISP_A": ts})
        assert "ISP_A" in text
        assert "20.0" in text


class TestScatterBins:
    def test_median_per_delay_bin(self):
        delay = np.array([0.1, 0.1, 2.5, 2.5])
        tput = np.array([50.0, 52.0, 10.0, 14.0])
        bins = delay_throughput_scatter_bins(delay, tput)
        centers = [b[0] for b in bins]
        assert len(bins) == 2
        assert bins[0][1] == pytest.approx(51.0)
        assert bins[1][1] == pytest.approx(12.0)
        assert all(c >= 0 for c in centers)

    def test_empty_bins_skipped(self):
        bins = delay_throughput_scatter_bins(
            np.array([0.1]), np.array([50.0])
        )
        assert len(bins) == 1
        assert bins[0][2] == 1
