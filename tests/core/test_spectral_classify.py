"""Tests for Welch analysis and severity classification (§2.3)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DAILY_FREQUENCY_CPH,
    Classification,
    ClassificationThresholds,
    Severity,
    classify_markers,
    classify_signal,
    extract_markers,
    fill_gaps,
    welch_periodogram,
)

BIN_SECONDS = 1800
BINS_PER_DAY = 48


def daily_sine(days=15, amplitude=1.0, noise=0.0, seed=0, freq_cpd=1.0):
    """Delay signal with a sinusoidal daily component (peak-to-peak 2A)."""
    rng = np.random.default_rng(seed)
    t = np.arange(days * BINS_PER_DAY) / BINS_PER_DAY  # days
    signal = amplitude * (1 + np.sin(2 * np.pi * freq_cpd * t))
    if noise:
        signal = signal + rng.normal(0, noise, size=signal.shape)
    return np.clip(signal, 0, None)


class TestFillGaps:
    def test_no_nans_passthrough(self):
        values = np.arange(5.0)
        assert np.array_equal(fill_gaps(values), values)

    def test_interior_gap_interpolated(self):
        values = np.array([1.0, np.nan, 3.0])
        assert fill_gaps(values)[1] == pytest.approx(2.0)

    def test_edges_take_nearest(self):
        values = np.array([np.nan, 2.0, np.nan])
        filled = fill_gaps(values)
        assert filled[0] == 2.0 and filled[2] == 2.0

    def test_all_nan_becomes_zeros(self):
        assert np.all(fill_gaps(np.full(10, np.nan)) == 0.0)


class TestWelchPeriodogram:
    def test_recovers_daily_sine_amplitude(self):
        """A sine with peak-to-peak 2 ms reads ~2 ms at 1/24 cph."""
        signal = daily_sine(days=15, amplitude=1.0)
        periodogram = welch_periodogram(signal, BIN_SECONDS)
        assert periodogram.amplitude_at(DAILY_FREQUENCY_CPH) == (
            pytest.approx(2.0, rel=0.1)
        )

    def test_daily_bin_exists_exactly(self):
        signal = daily_sine(days=15)
        periodogram = welch_periodogram(signal, BIN_SECONDS)
        gap = np.min(
            np.abs(periodogram.frequencies_cph - DAILY_FREQUENCY_CPH)
        )
        assert gap == pytest.approx(0.0, abs=1e-12)

    def test_flat_spectrum_for_noise(self):
        rng = np.random.default_rng(1)
        noise = rng.normal(0, 0.3, size=15 * BINS_PER_DAY)
        periodogram = welch_periodogram(noise, BIN_SECONDS)
        daily = periodogram.amplitude_at(DAILY_FREQUENCY_CPH)
        assert daily < 0.5

    def test_prominent_finds_daily(self):
        signal = daily_sine(days=15, amplitude=1.0, noise=0.1)
        periodogram = welch_periodogram(signal, BIN_SECONDS)
        freq, amp = periodogram.prominent()
        assert freq == pytest.approx(DAILY_FREQUENCY_CPH, rel=0.01)
        assert amp > 1.0

    def test_prominent_finds_twice_daily(self):
        signal = daily_sine(days=15, amplitude=1.0, freq_cpd=2.0)
        periodogram = welch_periodogram(signal, BIN_SECONDS)
        freq, _amp = periodogram.prominent()
        assert freq == pytest.approx(2 * DAILY_FREQUENCY_CPH, rel=0.01)

    def test_short_signal_adapts_segment(self):
        signal = daily_sine(days=2, amplitude=1.0)
        periodogram = welch_periodogram(signal, BIN_SECONDS)
        assert periodogram.amplitude_at(DAILY_FREQUENCY_CPH) > 1.0

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            welch_periodogram(np.array([1.0]), BIN_SECONDS)

    def test_gaps_tolerated(self):
        signal = daily_sine(days=15, amplitude=1.0)
        signal[100:110] = np.nan
        periodogram = welch_periodogram(signal, BIN_SECONDS)
        assert periodogram.amplitude_at(DAILY_FREQUENCY_CPH) == (
            pytest.approx(2.0, rel=0.15)
        )

    @settings(deadline=None)
    @given(st.floats(min_value=0.3, max_value=5.0))
    def test_amplitude_scales_linearly(self, amplitude):
        signal = daily_sine(days=15, amplitude=amplitude)
        periodogram = welch_periodogram(signal, BIN_SECONDS)
        assert periodogram.amplitude_at(DAILY_FREQUENCY_CPH) == (
            pytest.approx(2 * amplitude, rel=0.1)
        )


class TestExtractMarkers:
    def test_constant_signal_degenerate(self):
        assert extract_markers(np.full(720, 2.0), BIN_SECONDS) is None
        assert extract_markers(np.full(720, np.nan), BIN_SECONDS) is None

    def test_daily_markers(self):
        markers = extract_markers(
            daily_sine(days=15, amplitude=1.0, noise=0.05), BIN_SECONDS
        )
        assert markers.daily_is_prominent
        assert markers.daily_amplitude_ms == pytest.approx(2.0, rel=0.15)

    def test_weekly_pattern_not_daily(self):
        """A weekly-only pattern must not register as daily."""
        t = np.arange(15 * BINS_PER_DAY) / BINS_PER_DAY
        weekly = 2.0 * (1 + np.sin(2 * np.pi * t / 7.0))
        markers = extract_markers(weekly, BIN_SECONDS)
        if markers is not None:
            assert not markers.daily_is_prominent


class TestClassification:
    @pytest.mark.parametrize(
        "amplitude,expected",
        [
            (0.1, Severity.NONE),
            (0.4, Severity.LOW),       # pk-pk 0.8 -> Low
            (0.8, Severity.MILD),      # pk-pk 1.6 -> Mild
            (2.5, Severity.SEVERE),    # pk-pk 5.0 -> Severe
        ],
    )
    def test_thresholds(self, amplitude, expected):
        signal = daily_sine(days=15, amplitude=amplitude, noise=0.02)
        result = classify_signal(signal, BIN_SECONDS)
        assert result.severity == expected

    def test_flat_signal_is_none(self):
        result = classify_signal(np.full(720, 1.0), BIN_SECONDS)
        assert result.severity == Severity.NONE
        assert result.daily_amplitude_ms == 0.0

    def test_noise_is_none(self):
        rng = np.random.default_rng(3)
        noise = rng.normal(1.0, 0.1, size=720)
        result = classify_signal(noise, BIN_SECONDS)
        assert result.severity == Severity.NONE

    def test_nondaily_pattern_is_none_even_if_large(self):
        t = np.arange(15 * BINS_PER_DAY) / BINS_PER_DAY
        fast = 5.0 * (1 + np.sin(2 * np.pi * 6.0 * t))  # 4-hour cycle
        result = classify_signal(fast, BIN_SECONDS)
        assert result.severity == Severity.NONE

    def test_custom_thresholds(self):
        signal = daily_sine(days=15, amplitude=0.4)
        strict = ClassificationThresholds(
            low_ms=0.1, mild_ms=0.2, severe_ms=0.5
        )
        result = classify_signal(signal, BIN_SECONDS, strict)
        assert result.severity == Severity.SEVERE

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            ClassificationThresholds(low_ms=2.0, mild_ms=1.0, severe_ms=3.0)

    def test_severity_ordering(self):
        assert Severity.NONE < Severity.LOW < Severity.MILD < Severity.SEVERE
        assert not Severity.NONE.is_reported
        assert Severity.LOW.is_reported

    def test_classify_markers_none_input(self):
        result = classify_markers(None)
        assert result == Classification(Severity.NONE, None)


class TestDegenerateSeries:
    """Degenerate inputs read "no daily pattern", never raise.

    Run under ``python -W error::RuntimeWarning`` these also prove the
    guards fire before numpy's mean-of-empty-slice warnings would.
    """

    def test_empty_series(self):
        assert extract_markers(np.array([]), BIN_SECONDS) is None
        result = classify_signal(np.array([]), BIN_SECONDS)
        assert result.severity == Severity.NONE

    def test_single_bin(self):
        assert extract_markers(np.array([2.5]), BIN_SECONDS) is None
        result = classify_signal(np.array([2.5]), BIN_SECONDS)
        assert result.severity == Severity.NONE

    def test_all_nan(self):
        values = np.full(15 * BINS_PER_DAY, np.nan)
        assert extract_markers(values, BIN_SECONDS) is None
        result = classify_signal(values, BIN_SECONDS)
        assert result.severity == Severity.NONE

    def test_mostly_nan_gap_fraction(self):
        values = daily_sine(days=15, amplitude=2.0)
        rng = np.random.default_rng(8)
        hole = rng.random(values.size) < 0.7
        values[hole] = np.nan
        assert extract_markers(values, BIN_SECONDS) is None

    def test_moderate_gaps_still_classified(self):
        values = daily_sine(days=15, amplitude=2.0)
        rng = np.random.default_rng(8)
        hole = rng.random(values.size) < 0.2
        values[hole] = np.nan
        markers = extract_markers(values, BIN_SECONDS)
        assert markers is not None
        assert markers.prominent_frequency_cph == pytest.approx(
            DAILY_FREQUENCY_CPH, rel=0.05
        )

    def test_short_series_does_not_raise(self):
        # One day fits a single (clamped) Welch segment — a legitimate,
        # if noisy, estimate; the guard only rejects size < 2.
        values = daily_sine(days=1, amplitude=2.0)
        result = classify_signal(values, BIN_SECONDS)
        assert result.severity in list(Severity)

    def test_constant_after_fill(self):
        values = np.full(15 * BINS_PER_DAY, 3.0)
        values[::5] = np.nan
        assert extract_markers(values, BIN_SECONDS) is None

    def test_2d_input_rejected_softly(self):
        assert extract_markers(
            np.ones((4, 48)), BIN_SECONDS
        ) is None
