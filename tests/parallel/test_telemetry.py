"""Cross-process telemetry: worker metrics/spans merged into the parent.

The tentpole acceptance: a ``--workers 2`` survey under a live
observer must leave the parent registry with per-stage
``items_in``/``items_out`` totals *equal to the serial run's* (shards
partition the work, merge sums it back), with every worker span
grafted under a ``survey-shard`` marker so the report renders one
coherent tree — and none of it may perturb the classification bytes.
"""

import pytest

from repro.obs import (
    MetricsRegistry,
    Observability,
    get_observer,
    observed,
)
from repro.parallel import classify_dataset_sharded
from repro.parallel.worker import DatasetShardTask, run_dataset_shard
from repro.scenarios import run_survey_period

from .test_equivalence import (
    PERIOD,
    canonical_bytes,
    run_serial,
    synthetic_dataset,
)

STAGE_COUNTERS = ("pipeline_items_in_total", "pipeline_items_out_total")


def _stage_totals(registry):
    """{counter-name: {stage: value}} for the per-stage counters."""
    snapshot = registry.to_dict()
    return {
        name: {
            sample["labels"]["stage"]: sample["value"]
            for sample in snapshot[name]["samples"]
        }
        for name in STAGE_COUNTERS
        if name in snapshot
    }


class TestSurveyTelemetryEquivalence:
    @pytest.fixture(scope="class")
    def serial_run(self, specs):
        with observed() as obs:
            result, _ = run_serial(specs, PERIOD, seed=7)
        return canonical_bytes(result), _stage_totals(obs.metrics)

    # The module-scoped specs fixture lives in test_equivalence.
    @pytest.fixture(scope="class")
    def specs(self):
        from .test_equivalence import generate_specs

        return generate_specs(num_ases=10, num_countries=6, seed=5)

    def test_workers_two_matches_serial_stage_totals(
        self, specs, serial_run
    ):
        serial_bytes, serial_totals = serial_run
        with observed() as obs:
            result, _ = run_survey_period(
                specs, PERIOD, seed=7, workers=2
            )
        assert canonical_bytes(result) == serial_bytes
        parallel_totals = _stage_totals(obs.metrics)
        assert parallel_totals == serial_totals
        # The partition genuinely covered the classify stage.
        in_totals = parallel_totals["pipeline_items_in_total"]
        assert in_totals["core-lastmile"] > 0

    def test_worker_spans_graft_under_shard_markers(self, specs):
        with observed() as obs:
            run_survey_period(specs, PERIOD, seed=7, workers=2)
        markers = obs.tracer.find("survey-shard")
        assert len(markers) == 2
        shards = set()
        for marker in markers:
            assert marker.children, "worker subtree missing"
            for root in marker.children:
                shards.add(root.attrs["shard"])
        assert shards == {0, 1}
        # One trace: every marker sits inside the parent's own tree.
        assert len(obs.tracer.roots) == 1

    def test_duration_histogram_covers_worker_stages(self, specs):
        with observed() as obs:
            run_survey_period(specs, PERIOD, seed=7, workers=2)
        histogram = obs.metrics.get("pipeline_duration_seconds")
        stages = {dict(key)["stage"] for key, _ in histogram.samples()}
        # Worker-side stages only exist in the parent via the merge.
        assert {"lastmile", "spectral", "survey-period"} <= stages


class TestDatasetShardTelemetry:
    def test_unobserved_parent_ships_no_telemetry(self):
        task = DatasetShardTask(
            index=0,
            dataset=synthetic_dataset(num_ases=2),
            groups={100: [1, 2, 3, 4], 101: [5, 6, 7, 8]},
        )
        result = run_dataset_shard(task)
        assert result.telemetry is None

    def test_capturing_task_ships_snapshot_and_restores_observer(self):
        task = DatasetShardTask(
            index=1,
            dataset=synthetic_dataset(num_ases=2),
            groups={100: [1, 2, 3, 4], 101: [5, 6, 7, 8]},
            capture_telemetry=True,
        )
        before = get_observer()
        result = run_dataset_shard(task)
        assert result.telemetry is not None
        assert result.telemetry.shard == 1
        totals = _stage_totals(
            MetricsRegistry.from_dict(result.telemetry.metrics)
        )
        assert totals["pipeline_items_in_total"]["core-aggregate"] > 0
        # The worker's observer never leaks into this process.
        assert get_observer() is before

    def test_sharded_classify_merges_like_survey(self):
        dataset = synthetic_dataset()
        with observed() as obs:
            classify_dataset_sharded(dataset, PERIOD, workers=2)
        totals = _stage_totals(obs.metrics)
        with observed(Observability()) as serial_obs:
            classify_dataset_sharded(dataset, PERIOD, workers=1)
        assert totals == _stage_totals(serial_obs.metrics)
