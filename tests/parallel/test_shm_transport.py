"""Property suite for the zero-copy shared-memory shard transport.

The transport contract (:mod:`repro.parallel.transport`): arbitrary
flat survey arrays round-trip through shared-memory blocks losslessly
(bit-for-bit, NaN placement included); the sharded survey is
byte-identical across worker counts and kernel backends whether the
data rides shared memory or the pickle fallback; and blocks are
always unlinked — on success, on pickle fallback, and when a shard
worker raises mid-flight.
"""

import datetime as dt
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import KERNELS_ENV
from repro.io import survey_to_dict
from repro.parallel import (
    SHM_ENV,
    WORKERS_ENV,
    classify_dataset_sharded,
)
from repro.parallel import executor as executor_module
from repro.parallel import transport
from repro.parallel.transport import (
    PackedDataset,
    pack_arrays,
    pack_dataset,
    pack_signals,
    shm_enabled,
    unpack_arrays,
    unpack_dataset,
    unpack_signals,
)
from repro.core.aggregate import AggregatedSignal
from repro.core.series import LastMileDataset, ProbeBinSeries
from repro.timebase import MeasurementPeriod, TimeGrid

from tests.kernels.test_differential import (
    PERIOD,
    degenerate_dataset,
    synthetic_dataset,
)

GRID = TimeGrid(PERIOD)


def attach_fails(block_name: str) -> bool:
    """True when the named block no longer exists (was unlinked)."""
    from multiprocessing import shared_memory

    try:
        segment = shared_memory.SharedMemory(name=block_name)
    except FileNotFoundError:
        return True
    transport._untrack(segment)
    segment.close()
    return False


@pytest.fixture(autouse=True)
def _pin_environment(monkeypatch):
    monkeypatch.delenv(WORKERS_ENV, raising=False)
    monkeypatch.delenv(KERNELS_ENV, raising=False)
    monkeypatch.delenv(SHM_ENV, raising=False)


@st.composite
def flat_arrays(draw):
    """A mapping of named arrays with adversarial shapes/NaNs."""
    count = draw(st.integers(min_value=0, max_value=5))
    seed = draw(st.integers(min_value=0, max_value=2**31))
    rng = np.random.default_rng(seed)
    arrays = {}
    for index in range(count):
        kind = draw(st.sampled_from(["f8", "i8", "f8-2d", "empty"]))
        if kind == "empty":
            arrays[f"a{index}"] = np.zeros(0, dtype=np.float64)
        elif kind == "i8":
            n = draw(st.integers(min_value=1, max_value=64))
            arrays[f"a{index}"] = rng.integers(
                -(2**40), 2**40, n
            ).astype(np.int64)
        else:
            shape = (
                (draw(st.integers(1, 16)),)
                if kind == "f8"
                else (draw(st.integers(1, 8)), draw(st.integers(1, 16)))
            )
            values = rng.normal(0, 100, shape)
            values[rng.random(shape) < 0.3] = np.nan
            if values.size:
                values.flat[0] = np.inf
            arrays[f"a{index}"] = values
    return arrays


class TestArrayRoundTrip:
    @settings(max_examples=50, deadline=None)
    @given(arrays=flat_arrays())
    def test_lossless_and_unlinked(self, arrays):
        ref = pack_arrays(arrays)
        try:
            got, close = unpack_arrays(ref)
            assert set(got) == set(arrays)
            for name, original in arrays.items():
                view = got[name]
                assert view.dtype == original.dtype
                assert view.shape == original.shape
                np.testing.assert_array_equal(view, original)
                assert not view.flags.writeable
            close()
        finally:
            ref.release()
        assert attach_fails(ref.block_name)

    def test_release_is_idempotent(self):
        ref = pack_arrays({"x": np.arange(4.0)})
        ref.release()
        ref.release()
        assert attach_fails(ref.block_name)


def dataset_from_matrix(medians, counts):
    from repro.atlas import ProbeMeta

    dataset = LastMileDataset(grid=GRID)
    for row in range(medians.shape[0]):
        prb_id = row + 1
        dataset.add(
            ProbeBinSeries(
                prb_id=prb_id, median_rtt_ms=medians[row],
                traceroute_counts=counts[row],
            ),
            meta=ProbeMeta(
                prb_id=prb_id, asn=100 + row % 3, is_anchor=False,
                public_address="20.0.0.1",
            ),
        )
    return dataset


class TestDatasetRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        num_probes=st.integers(min_value=0, max_value=12),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    def test_lossless(self, num_probes, seed):
        rng = np.random.default_rng(seed)
        medians = rng.normal(3.0, 1.0, (num_probes, GRID.num_bins))
        medians[rng.random(medians.shape) < 0.4] = np.nan
        counts = rng.integers(0, 30, medians.shape).astype(np.int64)
        dataset = dataset_from_matrix(medians, counts)

        packed = pack_dataset(dataset, use_shm=True)
        try:
            assert packed.block is not None
            rebuilt, close = unpack_dataset(packed)
            assert sorted(rebuilt.series) == sorted(dataset.series)
            assert rebuilt.probe_meta == dataset.probe_meta
            for prb_id, series in dataset.series.items():
                twin = rebuilt.series[prb_id]
                np.testing.assert_array_equal(
                    twin.median_rtt_ms, series.median_rtt_ms
                )
                np.testing.assert_array_equal(
                    twin.traceroute_counts, series.traceroute_counts
                )
            close()
        finally:
            packed.release()
        assert attach_fails(packed.block.block_name)

    def test_zero_probe_dataset(self):
        dataset = LastMileDataset(grid=GRID)
        packed = pack_dataset(dataset, use_shm=True)
        try:
            rebuilt, close = unpack_dataset(packed)
            assert len(rebuilt) == 0
            close()
        finally:
            packed.release()

    def test_meta_only_probe_survives(self):
        """A probe with metadata but no series (the missing-series
        drop case) must survive the framing."""
        from repro.atlas import ProbeMeta

        dataset = LastMileDataset(grid=GRID)
        dataset.probe_meta[99] = ProbeMeta(
            prb_id=99, asn=100, is_anchor=False,
            public_address="20.0.0.1",
        )
        packed = pack_dataset(dataset, use_shm=True)
        try:
            rebuilt, close = unpack_dataset(packed)
            assert 99 in rebuilt.probe_meta
            assert 99 not in rebuilt.series
            close()
        finally:
            packed.release()

    def test_pickle_fallback_reuses_dataset(self):
        dataset = synthetic_dataset(num_ases=2, seed=1)
        packed = pack_dataset(dataset, use_shm=False)
        assert packed.block is None
        rebuilt, close = unpack_dataset(packed)
        assert rebuilt is dataset
        close()
        packed.release()  # no-op, must not raise

    def test_env_knob_disables_shm(self, monkeypatch):
        monkeypatch.setenv(SHM_ENV, "0")
        assert not shm_enabled()
        packed = pack_dataset(synthetic_dataset(num_ases=1, seed=0))
        assert packed.block is None
        monkeypatch.setenv(SHM_ENV, "1")
        assert shm_enabled()


class TestSignalsRoundTrip:
    def test_lossless(self):
        rng = np.random.default_rng(4)
        signals = {}
        for asn in (300, 301):
            delay = rng.normal(1.0, 0.5, GRID.num_bins)
            delay[rng.random(GRID.num_bins) < 0.2] = np.nan
            signals[asn] = AggregatedSignal(
                grid=GRID, delay_ms=delay,
                probe_count=int(rng.integers(1, 9)),
                contributing=rng.integers(
                    0, 5, GRID.num_bins
                ).astype(np.int64),
            )
        packed = pack_signals(signals, use_shm=True)
        got = unpack_signals(packed, GRID)
        packed.release()
        assert set(got) == set(signals)
        for asn, signal in signals.items():
            np.testing.assert_array_equal(
                got[asn].delay_ms, signal.delay_ms
            )
            np.testing.assert_array_equal(
                got[asn].contributing, signal.contributing
            )
            assert got[asn].probe_count == signal.probe_count
            # Copies, not views: usable after the block is gone.
            assert got[asn].delay_ms.flags.owndata
        assert attach_fails(packed.block.block_name)

    def test_empty_signals_skip_block(self):
        assert pack_signals({}, use_shm=True) is None
        assert pack_signals({}, use_shm=False) is None


def canonical(result):
    return json.dumps(survey_to_dict(result), sort_keys=True)


class TestShardedEquivalence:
    @pytest.mark.parametrize("kernels", ["reference", "vector"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_and_backends_identical(self, workers, kernels):
        dataset = synthetic_dataset(num_ases=6, seed=8)
        serial = classify_dataset_sharded(
            dataset, PERIOD, workers=1, kernels="reference",
        )
        sharded = classify_dataset_sharded(
            dataset, PERIOD, workers=workers, kernels=kernels,
        )
        assert canonical(sharded) == canonical(serial)

    @pytest.mark.parametrize("shm", ["1", "0"])
    def test_shm_vs_pickle_identical(self, shm, monkeypatch):
        dataset = degenerate_dataset()
        reference = classify_dataset_sharded(
            dataset, PERIOD, workers=1, kernels="reference",
        )
        monkeypatch.setenv(SHM_ENV, shm)
        sharded = classify_dataset_sharded(
            dataset, PERIOD, workers=3, kernels="vector",
        )
        assert canonical(sharded) == canonical(reference)

    def test_keep_signals_through_shm(self):
        dataset = synthetic_dataset(num_ases=4, seed=2)
        serial = classify_dataset_sharded(
            dataset, PERIOD, workers=1, kernels="reference",
            keep_signals=True,
        )
        sharded = classify_dataset_sharded(
            dataset, PERIOD, workers=2, kernels="vector",
            keep_signals=True,
        )
        assert set(sharded.signals) == set(serial.signals)
        for asn, signal in serial.signals.items():
            np.testing.assert_array_equal(
                sharded.signals[asn].delay_ms, signal.delay_ms
            )
            np.testing.assert_array_equal(
                sharded.signals[asn].contributing,
                signal.contributing,
            )


class TestUnlinkDiscipline:
    def test_blocks_unlinked_when_worker_raises(self, monkeypatch):
        """Every parent-created block must be gone after a run whose
        shard workers all blew up."""
        created = []
        real_pack = transport.pack_dataset

        def spying_pack(dataset, use_shm=None):
            packed = real_pack(dataset, use_shm=use_shm)
            if packed.block is not None:
                created.append(packed.block.block_name)
            return packed

        def exploding_shard(task):
            raise RuntimeError("worker crashed mid-shard")

        monkeypatch.setattr(
            executor_module, "pack_dataset", spying_pack
        )
        monkeypatch.setattr(
            executor_module, "run_dataset_shard", exploding_shard
        )
        # Force the in-process path so the monkeypatched worker is
        # actually the one that runs (a pool would re-import the
        # original by reference).
        def no_pool(*args, **kwargs):
            raise OSError("pools disabled for this test")

        monkeypatch.setattr(
            executor_module, "ProcessPoolExecutor", no_pool
        )

        dataset = synthetic_dataset(num_ases=4, seed=5)
        result = classify_dataset_sharded(
            dataset, PERIOD, workers=2, kernels="vector",
        )
        assert created, "expected shared-memory blocks to be created"
        assert result.failures and not result.reports
        for failure in result.failures.values():
            assert failure.error == "ShardExecutionError"
        for name in created:
            assert attach_fails(name), f"leaked shm block {name}"

    def test_blocks_unlinked_on_success(self, monkeypatch):
        created = []
        real_pack = transport.pack_dataset

        def spying_pack(dataset, use_shm=None):
            packed = real_pack(dataset, use_shm=use_shm)
            if packed.block is not None:
                created.append(packed.block.block_name)
            return packed

        monkeypatch.setattr(
            executor_module, "pack_dataset", spying_pack
        )
        dataset = synthetic_dataset(num_ases=4, seed=5)
        result = classify_dataset_sharded(
            dataset, PERIOD, workers=2, kernels="vector",
        )
        assert created
        assert result.reports and not result.failures
        for name in created:
            assert attach_fails(name), f"leaked shm block {name}"

    def test_object_dtype_rejected_before_any_block(self):
        with pytest.raises(TypeError, match="object dtype"):
            pack_arrays({"good": np.arange(4.0), "bad": object()})

    def test_pack_failure_unlinks_partial_block(self, monkeypatch):
        """If writing into a fresh block raises, the block must not
        leak."""
        from multiprocessing import shared_memory

        names = []
        real_shm = shared_memory.SharedMemory

        class UndersizedShm(real_shm):
            """Allocates one byte no matter what was asked for, so
            the packer's writes blow up mid-block."""

            def __init__(self, *args, **kwargs):
                if kwargs.get("create"):
                    kwargs["size"] = 1
                super().__init__(*args, **kwargs)
                if kwargs.get("create"):
                    names.append(self.name)

        monkeypatch.setattr(
            "multiprocessing.shared_memory.SharedMemory",
            UndersizedShm,
        )
        with pytest.raises(Exception):
            pack_arrays({"x": np.arange(64.0)})
        assert names, "expected a block to be created"
        for name in names:
            assert attach_fails(name)
