"""Serial/parallel equivalence: the executor's core contract.

For any worker count — including the in-process ``workers=1``
fallback — and with or without injected faults, the sharded executor
must produce ``survey_to_dict`` output byte-identical to the legacy
serial path: classifications, amplitudes, failures, and quality-ledger
counts included.  A shard crash must degrade to per-AS failures for
that shard's ASes only, never kill the run.
"""

import datetime as dt
import json
import os

import numpy as np
import pytest

from repro.atlas import ProbeMeta
from repro.core import (
    LastMileDataset,
    ProbeBinSeries,
    classify_dataset,
)
from repro.faults import BinLoss, FaultLog, NaNBursts, PoisonAS
from repro.io import survey_to_dict
from repro.parallel import WORKERS_ENV, classify_dataset_sharded
from repro.parallel import executor as executor_mod
from repro.parallel.worker import run_dataset_shard
from repro.quality import DropReason
from repro.scenarios import generate_specs, run_survey_period
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("2019-09", dt.datetime(2019, 9, 2), 4)


def canonical_bytes(result):
    """The serialized survey as bytes — the equality the suite asserts."""
    return json.dumps(
        survey_to_dict(result), sort_keys=True
    ).encode("ascii")


def run_serial(specs, period, **kwargs):
    """The legacy serial path, immune to the CI ``REPRO_WORKERS`` leg."""
    saved = os.environ.pop(WORKERS_ENV, None)
    try:
        return run_survey_period(specs, period, **kwargs)
    finally:
        if saved is not None:
            os.environ[WORKERS_ENV] = saved


@pytest.fixture(scope="module")
def specs():
    return generate_specs(num_ases=10, num_countries=6, seed=5)


@pytest.fixture(scope="module")
def serial_baseline(specs):
    result, _world = run_serial(specs, PERIOD, seed=7)
    return canonical_bytes(result)


def synthetic_dataset(num_ases=8, probes_per_asn=4, seed=0):
    grid = TimeGrid(PERIOD)
    rng = np.random.default_rng(seed)
    dataset = LastMileDataset(grid=grid)
    t = np.arange(grid.num_bins) / grid.bins_per_day
    prb_id = 1
    for asn in range(100, 100 + num_ases):
        amplitude = rng.uniform(0.0, 2.5)
        for _ in range(probes_per_asn):
            medians = (
                rng.uniform(1.0, 3.0)
                + rng.normal(0, 0.05, grid.num_bins)
                + amplitude * (1 + np.sin(2 * np.pi * t))
            )
            dataset.add(
                ProbeBinSeries(
                    prb_id=prb_id,
                    median_rtt_ms=medians,
                    traceroute_counts=np.full(grid.num_bins, 24),
                ),
                meta=ProbeMeta(
                    prb_id=prb_id, asn=asn, is_anchor=False,
                    public_address="20.0.0.1",
                ),
            )
            prb_id += 1
    return dataset


class TestWorldSurveyEquivalence:
    def test_workers_one_matches_serial(self, specs, serial_baseline):
        """The deterministic in-process fallback is bit-faithful."""
        result, _ = run_survey_period(specs, PERIOD, seed=7, workers=1)
        assert canonical_bytes(result) == serial_baseline

    def test_pool_matches_serial(self, specs, serial_baseline):
        """A real process pool (more shards than ASes are balanced
        into) reproduces the serial bytes."""
        result, _ = run_survey_period(specs, PERIOD, seed=7, workers=4)
        assert canonical_bytes(result) == serial_baseline

    def test_quality_ledger_counts_match(self, specs, serial_baseline):
        """The quality section rides inside the canonical bytes, but
        assert it explicitly — ledger drift is the likeliest silent
        divergence."""
        result, _ = run_survey_period(specs, PERIOD, seed=7, workers=3)
        parallel = survey_to_dict(result)
        serial = json.loads(serial_baseline)
        assert parallel["quality"] == serial["quality"]
        assert parallel["failures"] == serial["failures"]


class TestFaultedEquivalence:
    FAULTS = staticmethod(lambda: [
        BinLoss(rate=0.05),
        NaNBursts(probe_rate=0.3),
        PoisonAS(count=1),
    ])

    def test_faulted_pool_matches_faulted_serial(self, specs):
        """Content-keyed injection makes chaos runs shard-invariant:
        same corrupted bins, same poisoned AS, same failures."""
        serial_log, parallel_log = FaultLog(), FaultLog()
        serial, _ = run_serial(
            specs, PERIOD, seed=7,
            dataset_faults=self.FAULTS(), fault_seed=3,
            fault_log=serial_log,
        )
        parallel, _ = run_survey_period(
            specs, PERIOD, seed=7, workers=4,
            dataset_faults=self.FAULTS(), fault_seed=3,
            fault_log=parallel_log,
        )
        assert canonical_bytes(parallel) == canonical_bytes(serial)
        assert parallel_log.counts == serial_log.counts
        for injector in ("bin-loss", "nan-bursts", "poison-as"):
            assert sorted(
                parallel_log.keys(injector), key=repr
            ) == sorted(serial_log.keys(injector), key=repr)

    def test_poisoned_as_fails_identically(self, specs):
        """The injected per-AS failure lands on the same AS with the
        same error under both executors."""
        faults = [PoisonAS(count=1)]
        serial, _ = run_serial(
            specs, PERIOD, seed=7, dataset_faults=faults, fault_seed=3,
        )
        parallel, _ = run_survey_period(
            specs, PERIOD, seed=7, workers=3,
            dataset_faults=faults, fault_seed=3,
        )
        assert serial.failures, "PoisonAS should fail at least one AS"
        assert set(parallel.failures) == set(serial.failures)
        for asn, failure in serial.failures.items():
            assert parallel.failures[asn].error == failure.error


class TestClassifyDatasetEquivalence:
    def test_workers_match_serial(self):
        dataset = synthetic_dataset()
        serial = classify_dataset(dataset, PERIOD)
        parallel = classify_dataset(dataset, PERIOD, workers=3)
        assert canonical_bytes(parallel) == canonical_bytes(serial)

    def test_sharded_entrypoint_matches(self):
        dataset = synthetic_dataset(seed=2)
        serial = classify_dataset(dataset, PERIOD)
        parallel = classify_dataset_sharded(dataset, PERIOD, workers=2)
        assert canonical_bytes(parallel) == canonical_bytes(serial)


def _crash_shard_one(task):
    """Module-level (hence picklable) shard runner that dies on shard 1."""
    if task.index == 1:
        raise RuntimeError("simulated worker crash")
    return run_dataset_shard(task)


class TestShardFailureIsolation:
    def test_crashed_shard_degrades_to_per_as_failures(self, monkeypatch):
        """One shard blowing up must not kill the others: its ASes
        come back as ShardExecutionError failures, the rest classify
        normally, and the ledger records the drops."""
        monkeypatch.setattr(
            executor_mod, "run_dataset_shard", _crash_shard_one
        )
        dataset = synthetic_dataset()
        result = classify_dataset_sharded(dataset, PERIOD, workers=2)

        asns = sorted(range(100, 108))
        doomed = set(asns[1::2])  # round-robin shard 1
        assert set(result.failures) == doomed
        assert set(result.reports) == set(asns) - doomed
        for failure in result.failures.values():
            assert failure.error == "ShardExecutionError"
            assert "simulated worker crash" in failure.message
        dropped = sum(
            stage.dropped.get(DropReason.AS_FAILURE, 0)
            for stage in result.quality.stages.values()
        )
        assert dropped == len(doomed)

    def test_inprocess_guard_isolates_too(self, monkeypatch):
        """The workers=1 fallback uses the same guard."""
        monkeypatch.setattr(
            executor_mod, "run_dataset_shard", _crash_shard_one
        )
        dataset = synthetic_dataset()
        # workers=1 collapses to a single shard (index 0) which
        # survives; force two shards through the pool-free path by
        # patching after sharding is impossible, so assert the guarded
        # single-shard run simply succeeds.
        result = classify_dataset_sharded(dataset, PERIOD, workers=1)
        assert not result.failures
        assert len(result.reports) == 8
