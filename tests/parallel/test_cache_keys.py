"""Property-based tests on cache keys and entry integrity.

The digest must be a pure function of fingerprint *content*: dict
insertion order and cache-directory location never reach it, while any
change to a parameter, the dataset fingerprint, or the code salt
yields a different key.  Entries on disk are checksummed: a corrupted
or truncated entry is detected, quarantined and recomputed — never
silently served.
"""

import datetime as dt
import json
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atlas import ProbeMeta, ProbeVersion
from repro.core import LastMileDataset, ProbeBinSeries
from repro.core.classify import ClassificationThresholds
from repro.netbase import AccessTechnology
from repro.parallel import (
    ResultCache,
    canonical_json,
    classify_dataset_sharded,
    dataset_as_fingerprint,
    fingerprint_digest,
    survey_as_fingerprint,
)
from repro.timebase import MeasurementPeriod, TimeGrid

# -- strategies ------------------------------------------------------------

json_leaves = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**31), max_value=2**31),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=12),
)
json_values = st.recursive(
    json_leaves,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)
fingerprints = st.dictionaries(
    st.text(min_size=1, max_size=8), json_values,
    min_size=1, max_size=6,
)


def reordered(value):
    """The same JSON value with every dict's insertion order reversed."""
    if isinstance(value, dict):
        return {
            key: reordered(value[key]) for key in reversed(list(value))
        }
    if isinstance(value, list):
        return [reordered(item) for item in value]
    return value


# -- digest properties -----------------------------------------------------


class TestDigestProperties:
    @given(fingerprint=fingerprints)
    def test_insertion_order_never_reaches_digest(self, fingerprint):
        shuffled = reordered(fingerprint)
        assert fingerprint_digest(shuffled) == fingerprint_digest(
            fingerprint
        )
        assert canonical_json(shuffled) == canonical_json(fingerprint)

    @given(fingerprint=fingerprints, data=st.data())
    def test_any_leaf_change_changes_digest(self, fingerprint, data):
        key = data.draw(
            st.sampled_from(sorted(fingerprint)), label="mutated key"
        )
        mutated = dict(fingerprint)
        mutated[key] = {"mutated": True, "was": repr(fingerprint[key])}
        assert fingerprint_digest(mutated) != fingerprint_digest(
            fingerprint
        )

    @given(fingerprint=fingerprints, tmp=st.integers(0, 10**6))
    @settings(max_examples=25)
    def test_cache_location_never_reaches_key(self, fingerprint, tmp):
        here = ResultCache(f"/tmp/cache-a-{tmp}")
        there = ResultCache(f"/tmp/cache-b-{tmp}/nested/deeper")
        assert here.key(fingerprint) == there.key(fingerprint)

    @given(fingerprint=fingerprints)
    @settings(max_examples=25)
    def test_salt_always_changes_key(self, fingerprint):
        v1 = ResultCache("/tmp/c", salt="repro-pipeline-v1")
        v2 = ResultCache("/tmp/c", salt="repro-pipeline-v2")
        assert v1.key(fingerprint) != v2.key(fingerprint)


# -- fingerprint-recipe sensitivity ----------------------------------------


def base_survey_kwargs():
    spec = SimpleNamespace(
        asn=64500, name="ISP", country="JP", subscribers=100_000,
        intent="mild", technology=AccessTechnology.FTTH_PPPOE_LEGACY,
        peak_utilization=0.9, service_time_ms=None, probe_count=4,
        lockdown_daytime_boost=0.1, lockdown_evening_boost=0.2,
    )
    deployment = SimpleNamespace(
        version_weights={ProbeVersion.V3: 1.0},
        outage_rate_per_day=0.01,
        reconnect_rate_per_day=0.05,
    )
    return dict(
        asn=64500, spec=spec, spec_index=3,
        probe_pairs=[(10, 3), (11, 3), (12, 1)],
        period=MeasurementPeriod("2019-09", dt.datetime(2019, 9, 2), 15),
        world_seed=7, lockdown=False,
        thresholds=ClassificationThresholds(),
        max_attempts=2, deployment=deployment, bin_seconds=1800,
    )


class TestSurveyFingerprintSensitivity:
    # Every entry rewrites one keyword of base_survey_kwargs(); each
    # must move the digest — a missed input here is a stale-cache bug.
    PERTURBATIONS = {
        "world_seed": 8,
        "lockdown": True,
        "spec_index": 4,
        "max_attempts": 3,
        "bin_seconds": 900,
        "probe_pairs": [(10, 3), (11, 3), (12, 3)],
        "thresholds": ClassificationThresholds(severe_ms=4.0),
        "period": MeasurementPeriod(
            "2019-09b", dt.datetime(2019, 9, 2), 15
        ),
    }

    @pytest.mark.parametrize("field", sorted(PERTURBATIONS))
    def test_parameter_reaches_digest(self, field):
        kwargs = base_survey_kwargs()
        baseline = fingerprint_digest(survey_as_fingerprint(**kwargs))
        kwargs[field] = self.PERTURBATIONS[field]
        assert fingerprint_digest(
            survey_as_fingerprint(**kwargs)
        ) != baseline

    @pytest.mark.parametrize("field,value", [
        ("peak_utilization", 0.91),
        ("probe_count", 5),
        ("technology", AccessTechnology.CABLE),
        ("lockdown_evening_boost", 0.25),
    ])
    def test_spec_field_reaches_digest(self, field, value):
        kwargs = base_survey_kwargs()
        baseline = fingerprint_digest(survey_as_fingerprint(**kwargs))
        setattr(kwargs["spec"], field, value)
        assert fingerprint_digest(
            survey_as_fingerprint(**kwargs)
        ) != baseline


PERIOD = MeasurementPeriod("2019-09", dt.datetime(2019, 9, 2), 2)


def tiny_dataset(seed=0, asn=100, probes=3):
    grid = TimeGrid(PERIOD)
    rng = np.random.default_rng(seed)
    dataset = LastMileDataset(grid=grid)
    for prb_id in range(1, probes + 1):
        dataset.add(
            ProbeBinSeries(
                prb_id=prb_id,
                median_rtt_ms=rng.uniform(1, 3, grid.num_bins),
                traceroute_counts=np.full(grid.num_bins, 24),
            ),
            meta=ProbeMeta(
                prb_id=prb_id, asn=asn, is_anchor=False,
                public_address="20.0.0.1",
            ),
        )
    return dataset


class TestDatasetFingerprintSensitivity:
    def test_single_bin_change_reaches_digest(self):
        dataset = tiny_dataset()
        args = ([1, 2, 3], ClassificationThresholds(), 2)
        baseline = fingerprint_digest(
            dataset_as_fingerprint(dataset, 100, *args)
        )
        dataset.series[2].median_rtt_ms[17] += 1e-9
        assert fingerprint_digest(
            dataset_as_fingerprint(dataset, 100, *args)
        ) != baseline

    def test_probe_membership_reaches_digest(self):
        dataset = tiny_dataset()
        thresholds = ClassificationThresholds()
        full = fingerprint_digest(
            dataset_as_fingerprint(dataset, 100, [1, 2, 3], thresholds, 2)
        )
        partial = fingerprint_digest(
            dataset_as_fingerprint(dataset, 100, [1, 2], thresholds, 2)
        )
        assert full != partial


# -- entry integrity -------------------------------------------------------


class TestEntryIntegrity:
    PAYLOAD = {"report": {"severity": "mild"}, "quality": {}}

    def put_one(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        key = cache.key({"kind": "test", "asn": 64500})
        cache.put(key, self.PAYLOAD)
        return cache, key

    @given(data=st.data())
    @settings(max_examples=30)
    def test_truncated_entry_quarantined_never_served(
        self, data, tmp_path_factory
    ):
        tmp_path = tmp_path_factory.mktemp("cache-trunc")
        cache, key = self.put_one(tmp_path)
        path = cache.path_for(key)
        raw = path.read_bytes()
        cut = data.draw(
            st.integers(0, len(raw) - 1), label="truncation offset"
        )
        path.write_bytes(raw[:cut])

        assert cache.get(key) is None, "truncated entry was served"
        assert cache.stats.corrupt == 1
        assert not path.exists()
        quarantined = list((cache.directory / "quarantine").iterdir())
        assert [q.name for q in quarantined] == [path.name]

    def test_checksum_mismatch_quarantined(self, tmp_path):
        cache, key = self.put_one(tmp_path)
        path = cache.path_for(key)
        entry = json.loads(path.read_text())
        entry["payload"]["report"]["severity"] = "severe"  # tampered
        path.write_text(json.dumps(entry))

        assert cache.get(key) is None
        assert cache.stats.corrupt == 1
        assert (cache.directory / "quarantine" / path.name).exists()

    def test_missing_payload_quarantined(self, tmp_path):
        cache, key = self.put_one(tmp_path)
        cache.path_for(key).write_text(json.dumps({"checksum": "x"}))
        assert cache.get(key) is None
        assert cache.stats.corrupt == 1

    def test_recompute_after_corruption(self, tmp_path):
        """A quarantined entry is rewritten by the next run and then
        served intact."""
        cache, key = self.put_one(tmp_path)
        cache.path_for(key).write_text("{not json")
        assert cache.get(key) is None
        cache.put(key, self.PAYLOAD)
        assert cache.get(key) == self.PAYLOAD
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "corrupt": 1, "writes": 2,
        }

    def test_roundtrip_and_stats(self, tmp_path):
        cache, key = self.put_one(tmp_path)
        assert cache.get(key) == self.PAYLOAD
        assert cache.get("0" * 64) is None  # plain miss, not corrupt
        assert cache.stats.as_dict() == {
            "hits": 1, "misses": 1, "corrupt": 0, "writes": 1,
        }


class TestEndToEndRecompute:
    def test_corrupted_entry_recomputed_identically(self, tmp_path):
        """Classify with a cache, corrupt one entry on disk, re-run:
        the damaged AS is recomputed (not served) and the survey is
        byte-identical to the cold run."""
        from repro.io import survey_to_dict

        dataset = tiny_dataset(probes=4)
        cache = ResultCache(tmp_path / "cache")
        cold = classify_dataset_sharded(
            dataset, PERIOD, workers=1, cache=cache,
        )
        assert cache.stats.writes == 1

        entries = [
            path
            for path in cache.directory.rglob("*.json")
            if path.parent.name != "quarantine"
        ]
        assert len(entries) == 1
        entries[0].write_text(entries[0].read_text()[:40])

        before = cache.stats.as_dict()
        warm = classify_dataset_sharded(
            dataset, PERIOD, workers=1, cache=cache,
        )
        after = cache.stats.as_dict()
        assert after["corrupt"] == before["corrupt"] + 1
        assert after["writes"] == before["writes"] + 1
        assert survey_to_dict(warm) == survey_to_dict(cold)
