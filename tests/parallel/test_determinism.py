"""Determinism audit: same seed, same bytes — run to run, path to path.

The survey's reproducibility story rests on every random draw being
seeded from run parameters, never from process state (wall clock,
hash randomization, pool scheduling, dict iteration over fresh
objects).  These tests run the same survey twice in the same process
and across executor configurations and require identical serialized
output — any ordering or seed leak shows up as a byte diff.
"""

import datetime as dt
import json

import pytest

from repro.io import survey_to_dict
from repro.parallel import ResultCache, partition_asns, shard_groups
from repro.scenarios import generate_specs, run_survey, run_survey_period
from repro.timebase import MeasurementPeriod

PERIODS = [
    MeasurementPeriod("2019-09", dt.datetime(2019, 9, 2), 3),
    MeasurementPeriod("2020-04", dt.datetime(2020, 4, 1), 3),
]


def suite_bytes(suite):
    return json.dumps(
        {
            name: survey_to_dict(result)
            for name, result in suite.results.items()
        },
        sort_keys=True,
    ).encode("ascii")


@pytest.fixture(scope="module")
def specs():
    return generate_specs(num_ases=8, num_countries=5, seed=13)


class TestRunToRunDeterminism:
    def test_full_survey_twice_identical(self, specs):
        """The complete multi-period survey (lockdown period included)
        is a pure function of (specs, periods, seed)."""
        first, _ = run_survey(specs, PERIODS, seed=7)
        second, _ = run_survey(specs, PERIODS, seed=7)
        assert suite_bytes(first) == suite_bytes(second)

    def test_parallel_survey_twice_identical(self, specs):
        """Pool scheduling (shard completion order) never reaches the
        output: two sharded runs serialize identically."""
        first, _ = run_survey(specs, PERIODS, seed=7, workers=3)
        second, _ = run_survey(specs, PERIODS, seed=7, workers=3)
        assert suite_bytes(first) == suite_bytes(second)

    def test_worker_count_never_reaches_output(self, specs):
        """Different shard counts partition differently but must merge
        to the same bytes."""
        period = PERIODS[0]
        two, _ = run_survey_period(specs, period, seed=7, workers=2)
        five, _ = run_survey_period(specs, period, seed=7, workers=5)
        assert json.dumps(
            survey_to_dict(two), sort_keys=True
        ) == json.dumps(survey_to_dict(five), sort_keys=True)

    def test_seed_reaches_output(self, specs):
        """The complement: a different seed must actually change the
        data (otherwise the determinism tests prove nothing)."""
        period = PERIODS[0]
        a, _ = run_survey_period(specs, period, seed=7, workers=2)
        b, _ = run_survey_period(specs, period, seed=8, workers=2)
        assert survey_to_dict(a) != survey_to_dict(b)

    def test_warm_cache_serves_same_bytes(self, specs, tmp_path):
        """Cache temperature is invisible in the output."""
        period = PERIODS[0]
        cache = ResultCache(tmp_path / "cache")
        cold, _ = run_survey_period(
            specs, period, seed=7, workers=2, cache=cache
        )
        warm, _ = run_survey_period(
            specs, period, seed=7, workers=2, cache=cache
        )
        assert cache.stats.hits == len(warm.reports)
        assert json.dumps(
            survey_to_dict(cold), sort_keys=True
        ) == json.dumps(survey_to_dict(warm), sort_keys=True)


class TestShardingDeterminism:
    def test_partition_is_pure_and_covering(self):
        asns = [500, 100, 300, 200, 400]
        first = partition_asns(asns, 3)
        second = partition_asns(list(reversed(asns)), 3)
        assert first == second  # input order never matters
        assert sorted(asn for shard in first for asn in shard) == sorted(
            asns
        )
        assert first[0] == [100, 400]  # round-robin over sorted ASNs

    def test_shard_groups_preserve_probe_lists(self):
        groups = {200: [4, 5, 6], 100: [1, 2, 3], 300: [7, 8, 9]}
        shards = shard_groups(groups, 2)
        merged = {}
        for shard in shards:
            merged.update(shard)
        assert merged == groups
        assert all(shard for shard in shards)  # no empty shards
