"""API-quality meta-tests: documentation and export hygiene.

Deliverable (e) requires doc comments on every public item; these
tests enforce it mechanically so the guarantee survives refactors.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

PUBLIC_PACKAGES = [
    "repro", "repro.netbase", "repro.bgp", "repro.topology",
    "repro.traffic", "repro.queueing", "repro.atlas", "repro.cdn",
    "repro.apnic", "repro.core", "repro.scenarios", "repro.raclette",
    "repro.io",
]


def iter_public_modules():
    for package_name in PUBLIC_PACKAGES:
        package = importlib.import_module(package_name)
        yield package
        if hasattr(package, "__path__"):
            for info in pkgutil.iter_modules(package.__path__):
                if info.name.startswith("_"):
                    continue
                yield importlib.import_module(
                    f"{package_name}.{info.name}"
                )


ALL_MODULES = list(iter_public_modules())


class TestModuleDocs:
    @pytest.mark.parametrize(
        "module", ALL_MODULES, ids=lambda m: m.__name__
    )
    def test_module_has_docstring(self, module):
        assert module.__doc__ and module.__doc__.strip(), (
            f"{module.__name__} lacks a module docstring"
        )


class TestExportHygiene:
    @pytest.mark.parametrize(
        "package_name", PUBLIC_PACKAGES,
    )
    def test_all_names_resolve(self, package_name):
        """Every name in __all__ actually exists."""
        package = importlib.import_module(package_name)
        exported = getattr(package, "__all__", None)
        if exported is None:
            pytest.skip("no __all__")
        for name in exported:
            assert hasattr(package, name), (
                f"{package_name}.__all__ lists missing name {name!r}"
            )

    def test_exported_callables_documented(self):
        """Every function/class exported from a public package has a
        docstring."""
        undocumented = []
        for package_name in PUBLIC_PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                obj = getattr(package, name, None)
                if obj is None or not (
                    inspect.isclass(obj) or inspect.isfunction(obj)
                ):
                    continue
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(f"{package_name}.{name}")
        assert not undocumented, (
            "undocumented public items: " + ", ".join(undocumented)
        )

    def test_public_methods_documented(self):
        """Public methods of exported classes carry docstrings."""
        undocumented = []
        for package_name in PUBLIC_PACKAGES:
            package = importlib.import_module(package_name)
            for name in getattr(package, "__all__", []):
                obj = getattr(package, name, None)
                if not inspect.isclass(obj):
                    continue
                for attr_name, attr in vars(obj).items():
                    if attr_name.startswith("_"):
                        continue
                    if not (
                        inspect.isfunction(attr)
                        or isinstance(attr, property)
                    ):
                        continue
                    target = (
                        attr.fget if isinstance(attr, property) else attr
                    )
                    if target is None:
                        continue
                    if not (target.__doc__ and target.__doc__.strip()):
                        undocumented.append(
                            f"{package_name}.{name}.{attr_name}"
                        )
        assert not undocumented, (
            "undocumented public methods: " + ", ".join(undocumented)
        )


class TestVersion:
    def test_semver_shape(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(p.isdigit() for p in parts)
