"""Shared fixtures for the survey-archive tests."""

import datetime as dt

import pytest

from repro.apnic import EyeballRanking
from repro.core import Classification, Severity, SurveyResult
from repro.core.spectral import SpectralMarkers
from repro.core.survey import ASFailure, ASReport
from repro.netbase import ASInfo, ASRegistry, ASRole
from repro.timebase import MeasurementPeriod


def make_report(asn, severity, amplitude=0.0, probes=5):
    markers = None
    if severity is not Severity.NONE or amplitude:
        markers = SpectralMarkers(
            prominent_frequency_cph=1 / 24,
            prominent_amplitude_ms=amplitude,
            daily_amplitude_ms=amplitude,
        )
    return ASReport(
        asn=asn, probe_count=probes,
        classification=Classification(severity, markers),
    )


def make_survey(name, start, classes):
    """One synthetic period; ``classes`` maps asn -> Severity."""
    result = SurveyResult(
        period=MeasurementPeriod(name, start, 15)
    )
    amplitudes = {
        Severity.NONE: 0.0, Severity.LOW: 0.7,
        Severity.MILD: 2.5, Severity.SEVERE: 4.5,
    }
    for asn, severity in classes.items():
        result.reports[asn] = make_report(
            asn, severity, amplitudes[severity]
        )
    return result


def make_ranking():
    registry = ASRegistry()
    registry.register(ASInfo(100, "Big", "JP", ASRole.EYEBALL,
                             subscribers=1_000_000))
    registry.register(ASInfo(200, "Mid", "US", ASRole.EYEBALL,
                             subscribers=50_000))
    registry.register(ASInfo(300, "Small", "DE", ASRole.EYEBALL,
                             subscribers=5_000))
    registry.register(ASInfo(400, "Tiny", "JP", ASRole.EYEBALL,
                             subscribers=1_000))
    return EyeballRanking.from_registry(registry)


@pytest.fixture()
def ranking():
    return make_ranking()


@pytest.fixture()
def survey_june():
    result = make_survey(
        "2019-06", dt.datetime(2019, 6, 1),
        {100: Severity.SEVERE, 200: Severity.LOW, 300: Severity.NONE},
    )
    result.failures[900] = ASFailure(
        asn=900, error="EmptyPopulationError",
        message="no probes to aggregate", attempts=2,
    )
    result.quality.ingest("survey", n=4)
    return result


@pytest.fixture()
def survey_september():
    return make_survey(
        "2019-09", dt.datetime(2019, 9, 1),
        {100: Severity.MILD, 300: Severity.NONE, 400: Severity.SEVERE},
    )
