"""Tests for the packed segment format."""

import pytest

from repro.io import survey_to_dict
from repro.parallel.cache import canonical_json
from repro.store import ArchiveCorruptionError
from repro.store.segments import MAGIC, SegmentReader, write_segment


@pytest.fixture()
def payload(survey_june):
    return survey_to_dict(survey_june)


@pytest.fixture()
def segment(tmp_path, payload):
    return write_segment(tmp_path / "p.seg", payload)


class TestWriteRead:
    def test_magic_header(self, segment):
        assert segment.read_bytes().startswith(MAGIC)

    def test_point_lookup(self, segment, payload):
        with SegmentReader(segment) as reader:
            assert reader.asns() == [100, 200, 300]
            assert 100 in reader and 77777 not in reader
            entry = reader.get(100)
        assert canonical_json(entry) == canonical_json(
            payload["reports"]["100"]
        )

    def test_absent_asn_is_none(self, segment):
        with SegmentReader(segment) as reader:
            assert reader.get(77777) is None

    def test_period_header(self, segment, payload):
        with SegmentReader(segment) as reader:
            assert reader.period == payload["period"]

    def test_full_payload_lossless(self, segment, payload):
        with SegmentReader(segment) as reader:
            assert canonical_json(reader.payload()) == canonical_json(
                payload
            )

    def test_failures_and_quality_survive(self, segment, payload):
        with SegmentReader(segment) as reader:
            restored = reader.payload()
        assert restored["failures"] == payload["failures"]
        assert restored["quality"] == payload["quality"]


class TestCorruption:
    def test_missing_file(self, tmp_path):
        with pytest.raises(ArchiveCorruptionError):
            SegmentReader(tmp_path / "absent.seg")

    def test_bad_magic(self, segment):
        data = segment.read_bytes()
        segment.write_bytes(b"NOTASEG!!\n" + data[len(MAGIC):])
        with pytest.raises(ArchiveCorruptionError, match="magic"):
            SegmentReader(segment)

    def test_truncated_file(self, segment):
        segment.write_bytes(segment.read_bytes()[:20])
        with pytest.raises(ArchiveCorruptionError):
            SegmentReader(segment)

    def test_flipped_blob_bit(self, segment, payload):
        # Corrupt the first report blob (just after the magic) —
        # the footer still parses, the blob checksum must catch it.
        data = bytearray(segment.read_bytes())
        data[len(MAGIC) + 2] ^= 0xFF
        segment.write_bytes(bytes(data))
        reader = SegmentReader(segment)
        with pytest.raises(ArchiveCorruptionError, match="AS100"):
            reader.get(100)
        with pytest.raises(ArchiveCorruptionError):
            reader.payload()
        reader.close()

    def test_flipped_footer_bit(self, segment):
        data = bytearray(segment.read_bytes())
        data[-100] ^= 0xFF  # inside footer or trailer
        segment.write_bytes(bytes(data))
        with pytest.raises(ArchiveCorruptionError):
            SegmentReader(segment)


class TestConcurrency:
    def test_shared_reader_across_threads(self, segment, payload):
        import threading

        reader = SegmentReader(segment)
        failures = []

        def worker():
            for _ in range(50):
                for asn in (100, 200, 300):
                    entry = reader.get(asn)
                    if entry != payload["reports"][str(asn)]:
                        failures.append(asn)

        threads = [
            threading.Thread(target=worker) for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        reader.close()
        assert not failures
