"""fsck: detection and repair of every corruption class it audits."""

import datetime as dt
import json

import pytest

from repro.core import Severity
from repro.faults import FsFaultKey, flip_bit, tear_file
from repro.obs import observed
from repro.quality import DropReason
from repro.store import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_REPAIRED,
    EXIT_UNUSABLE,
    SurveyArchive,
    run_fsck,
)

from tests.store.conftest import make_ranking, make_survey


@pytest.fixture()
def stocked(tmp_path):
    """Two committed periods, one compacted to a segment."""
    archive = SurveyArchive(tmp_path / "arc")
    ranking = make_ranking()
    archive.ingest(
        make_survey("2019-06", dt.datetime(2019, 6, 1), {
            100: Severity.SEVERE, 200: Severity.LOW,
        }),
        ranking=ranking,
    )
    archive.ingest(
        make_survey("2019-09", dt.datetime(2019, 9, 1), {
            100: Severity.MILD, 400: Severity.SEVERE,
        }),
        ranking=ranking,
    )
    archive.compact(["2019-09"])
    archive.close()
    return archive


class TestCleanArchive:
    def test_clean_exit_zero(self, stocked):
        report = run_fsck(stocked.root)
        assert report.clean
        assert report.exit_code == EXIT_CLEAN
        assert report.periods_checked == 2
        assert report.findings == []

    def test_empty_archive_clean(self, tmp_path):
        SurveyArchive(tmp_path / "empty")
        report = run_fsck(tmp_path / "empty")
        assert report.exit_code == EXIT_CLEAN


class TestJsonPayloadCorruption:
    def test_bit_flip_detected_not_repaired(self, stocked):
        flip_bit(
            stocked.root / "periods" / "2019-06.json",
            key=FsFaultKey(11),
        )
        report = run_fsck(stocked.root)
        assert not report.clean
        assert report.exit_code == EXIT_ERRORS
        kinds = {f.kind for f in report.errors}
        assert kinds <= {"payload", "index"}
        # Read-only: nothing moved, nothing deleted.
        assert (stocked.root / "periods" / "2019-06.json").exists()
        assert not (stocked.root / "quarantine").exists()

    def test_bit_flip_repair_quarantines_period(self, stocked):
        flip_bit(
            stocked.root / "periods" / "2019-06.json",
            key=FsFaultKey(11),
        )
        report = run_fsck(stocked.root, repair=True)
        assert report.exit_code == EXIT_REPAIRED
        assert not (stocked.root / "periods" / "2019-06.json").exists()
        assert (
            stocked.root / "quarantine" / "2019-06.json"
        ).exists()
        manifest = json.loads(
            (stocked.root / "MANIFEST.json").read_text()
        )
        assert "2019-06" not in manifest["periods"]
        assert "2019-09" in manifest["periods"]
        # Repaired archive is clean on the next pass.
        assert run_fsck(stocked.root).exit_code == EXIT_CLEAN

    def test_repair_books_quality_drop(self, stocked):
        flip_bit(
            stocked.root / "periods" / "2019-06.json",
            key=FsFaultKey(11),
        )
        from repro.quality import DataQualityReport

        quality = DataQualityReport()
        run_fsck(stocked.root, repair=True, quality=quality)
        dropped = quality.stages["store-fsck"].dropped
        assert dropped[DropReason.CORRUPT_ARTIFACT] >= 1


class TestSegmentCorruption:
    def test_torn_segment_detected(self, stocked):
        tear_file(
            stocked.root / "segments" / "2019-09.seg",
            key=FsFaultKey(5),
        )
        report = run_fsck(stocked.root)
        assert report.exit_code == EXIT_ERRORS
        assert any(f.kind == "segment" for f in report.errors)

    def test_torn_segment_repair(self, stocked):
        tear_file(
            stocked.root / "segments" / "2019-09.seg",
            key=FsFaultKey(5),
        )
        report = run_fsck(stocked.root, repair=True)
        assert report.exit_code == EXIT_REPAIRED
        assert run_fsck(stocked.root).exit_code == EXIT_CLEAN
        manifest = json.loads(
            (stocked.root / "MANIFEST.json").read_text()
        )
        assert "2019-09" not in manifest["periods"]


class TestIndexProblems:
    def test_missing_index_rebuilt(self, stocked):
        (stocked.root / "index" / "2019-06.json").unlink()
        report = run_fsck(stocked.root, repair=True)
        assert report.exit_code == EXIT_REPAIRED
        assert (stocked.root / "index" / "2019-06.json").exists()
        # The period itself survives a rebuildable index problem.
        manifest = json.loads(
            (stocked.root / "MANIFEST.json").read_text()
        )
        assert "2019-06" in manifest["periods"]
        assert run_fsck(stocked.root).exit_code == EXIT_CLEAN

    def test_rebuilt_index_notes_empty_country(self, stocked):
        (stocked.root / "index" / "2019-06.json").unlink()
        report = run_fsck(stocked.root, repair=True)
        (finding,) = [f for f in report.findings if f.kind == "index"]
        assert "country index empty" in finding.action

    def test_severity_index_cross_reference(self, stocked):
        index_path = stocked.root / "index" / "2019-06.json"
        entry = json.loads(index_path.read_text())
        entry["payload"]["severity"]["severe"] = [999]
        from repro.store import payload_checksum

        entry["checksum"] = payload_checksum(entry["payload"])
        index_path.write_text(json.dumps(entry))
        report = run_fsck(stocked.root)
        assert any(
            "severity index disagrees" in f.detail
            for f in report.errors
        )


class TestManifestProblems:
    def test_garbage_manifest_unusable(self, stocked):
        (stocked.root / "MANIFEST.json").write_text("not json{{{")
        report = run_fsck(stocked.root)
        assert report.exit_code == EXIT_UNUSABLE
        assert not report.manifest_usable

    def test_missing_manifest_with_data_unusable(self, stocked):
        (stocked.root / "MANIFEST.json").unlink()
        report = run_fsck(stocked.root)
        assert report.exit_code == EXIT_UNUSABLE

    def test_schema_mismatch_unusable(self, stocked):
        path = stocked.root / "MANIFEST.json"
        manifest = json.loads(path.read_text())
        manifest["schema"] = 999
        path.write_text(json.dumps(manifest))
        assert run_fsck(stocked.root).exit_code == EXIT_UNUSABLE


class TestLeftovers:
    def test_orphan_warned_and_quarantined(self, stocked):
        orphan = stocked.root / "periods" / "2031-01.json"
        orphan.write_text("{}")
        report = run_fsck(stocked.root)
        assert report.exit_code == EXIT_CLEAN  # warnings stay clean
        assert any(f.kind == "orphan" for f in report.findings)
        report = run_fsck(stocked.root, repair=True)
        assert not orphan.exists()
        assert (stocked.root / "quarantine" / "2031-01.json").exists()

    def test_stale_tmp_swept_on_repair(self, stocked):
        stale = stocked.root / "periods" / ".x.json.12345.tmp"
        stale.write_text("partial")
        report = run_fsck(stocked.root)
        assert any(f.kind == "stale-tmp" for f in report.findings)
        assert stale.exists()
        run_fsck(stocked.root, repair=True)
        assert not stale.exists()


class TestArchiveFsckMethod:
    def test_archive_keeps_serving_after_repair(self, stocked):
        archive = SurveyArchive(stocked.root)
        flip_bit(
            stocked.root / "periods" / "2019-06.json",
            key=FsFaultKey(11),
        )
        generation = archive.generation
        report = archive.fsck(repair=True)
        assert report.repair_count >= 1
        # The in-memory view reloaded: bad period gone, good one live.
        assert "2019-06" not in archive
        assert archive.get(100, "2019-09")["severity"] == "mild"
        assert archive.generation > generation

    def test_fsck_counters(self, stocked):
        flip_bit(
            stocked.root / "periods" / "2019-06.json",
            key=FsFaultKey(11),
        )
        with observed() as obs:
            run_fsck(stocked.root)
        runs = obs.metrics.counter(
            "store_fsck_runs_total", "", ("mode",)
        )
        assert runs.value(mode="check") == 1
        findings = obs.metrics.counter(
            "store_fsck_findings_total", "", ("kind",)
        )
        assert findings.value(kind="payload") >= 1
