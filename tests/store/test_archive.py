"""Tests for the longitudinal survey archive."""

import json

import pytest

from repro.core import SurveySuite
from repro.io import survey_to_dict
from repro.parallel.cache import canonical_json
from repro.store import (
    ArchiveCorruptionError,
    ASNotFoundError,
    PeriodExistsError,
    PeriodNotFoundError,
    SchemaVersionError,
    SurveyArchive,
    payload_checksum,
)


@pytest.fixture()
def archive(tmp_path, survey_june, survey_september, ranking):
    archive = SurveyArchive(tmp_path / "arc")
    archive.ingest(survey_june, ranking=ranking)
    archive.ingest(survey_september, ranking=ranking)
    return archive


class TestIngest:
    def test_commit_and_enumerate(self, archive):
        assert len(archive) == 2
        assert archive.periods() == ["2019-06", "2019-09"]
        assert archive.latest() == "2019-09"
        assert "2019-06" in archive

    def test_append_only(self, archive, survey_june):
        with pytest.raises(PeriodExistsError):
            archive.ingest(survey_june)

    def test_ingest_accepts_payload_dict(self, tmp_path, survey_june):
        archive = SurveyArchive(tmp_path / "arc2")
        name = archive.ingest(survey_to_dict(survey_june))
        assert name == "2019-06"
        assert len(archive) == 1

    def test_ingest_suite(self, tmp_path, survey_june,
                          survey_september):
        suite = SurveySuite()
        suite.add(survey_june)
        suite.add(survey_september)
        archive = SurveyArchive(tmp_path / "arc3")
        names = suite.ingest_into(archive)
        assert names == ["2019-06", "2019-09"]

    def test_manifest_records_meta(self, archive):
        meta = archive.period_meta("2019-06")
        assert meta["repr"] == "json"
        assert meta["ases"] == 3
        assert meta["start"].startswith("2019-06-01")

    def test_empty_archive_latest_raises(self, tmp_path):
        with pytest.raises(PeriodNotFoundError):
            SurveyArchive(tmp_path / "empty").latest()


class TestRoundtrip:
    def test_lossless_json_repr(self, archive, survey_june):
        stored = archive.get_period("2019-06")
        assert canonical_json(stored) == canonical_json(
            survey_to_dict(survey_june)
        )

    def test_lossless_after_reopen(self, archive, survey_june):
        archive.close()
        reopened = SurveyArchive(archive.root)
        assert canonical_json(
            reopened.get_period("2019-06")
        ) == canonical_json(survey_to_dict(survey_june))

    def test_lossless_after_compaction(self, archive, survey_june,
                                       survey_september):
        archive.compact()
        for name, original in (
            ("2019-06", survey_june), ("2019-09", survey_september),
        ):
            archive._payloads.pop(name, None)
            assert canonical_json(
                archive.get_period(name)
            ) == canonical_json(survey_to_dict(original))


class TestPointLookup:
    def test_get_latest(self, archive):
        entry = archive.get(100)
        assert entry["severity"] == "mild"

    def test_get_named_period(self, archive):
        entry = archive.get(100, "2019-06")
        assert entry["severity"] == "severe"

    def test_unknown_asn(self, archive):
        with pytest.raises(ASNotFoundError):
            archive.get(77777, "2019-06")

    def test_unknown_period(self, archive):
        with pytest.raises(PeriodNotFoundError):
            archive.get(100, "2024-01")

    def test_segment_point_lookup(self, archive):
        archive.compact()
        archive._payloads.clear()
        entry = archive.get(400, "2019-09")
        assert entry["severity"] == "severe"
        assert archive.stats.segment_lookups >= 1


class TestSecondaryIndexes:
    def test_severity_index(self, archive):
        assert archive.severe_asns("2019-06") == [100]
        assert archive.asns_with_severity("2019-09", "mild") == [100]
        assert archive.asns_with_severity("2019-09", "severe") == [400]

    def test_reported_asns(self, archive):
        assert archive.reported_asns("2019-06") == [100, 200]

    def test_country_index(self, archive):
        assert archive.asns_in_country("2019-06", "jp") == [100]
        assert archive.asns_in_country("2019-09", "JP") == [100, 400]
        assert archive.countries("2019-06") == ["DE", "JP", "US"]

    def test_country_index_empty_without_ranking(
        self, tmp_path, survey_june
    ):
        archive = SurveyArchive(tmp_path / "noranking")
        archive.ingest(survey_june)
        assert archive.asns_in_country("2019-06", "JP") == []
        assert archive.countries("2019-06") == []

    def test_asns(self, archive):
        assert archive.asns("2019-06") == [100, 200, 300]


class TestLongitudinal:
    def test_history_marks_unmonitored(self, archive):
        history = archive.history(200)
        assert [e["period"] for e in history] == [
            "2019-06", "2019-09",
        ]
        assert history[0]["monitored"] is True
        assert history[0]["severity"] == "low"
        assert history[1]["monitored"] is False
        assert history[1]["severity"] is None

    def test_scan_range(self, archive):
        names = [name for name, _ in archive.scan("2019-07-01")]
        assert names == ["2019-09"]
        names = [name for name, _ in archive.scan(end="2019-07-01")]
        assert names == ["2019-06"]

    def test_deltas(self, archive):
        delta = archive.deltas_between("2019-06", "2019-09")
        assert delta["new"] == [400]
        assert delta["gone"] == [200]
        assert delta["persisting"] == [100]
        assert 0.0 < delta["jaccard"] < 1.0

    def test_churn_deltas(self, archive):
        deltas = archive.churn_deltas()
        assert len(deltas) == 1
        assert deltas[0]["before"] == "2019-06"

    def test_to_suite(self, archive):
        suite = archive.to_suite()
        assert suite.period_names() == ["2019-06", "2019-09"]
        assert suite.results["2019-06"].reported_asns() == [100, 200]


class TestCompaction:
    def test_repr_flips_and_json_removed(self, archive):
        compacted = archive.compact()
        assert compacted == ["2019-06", "2019-09"]
        assert archive.period_meta("2019-06")["repr"] == "segment"
        assert not archive.period_path("2019-06").exists()
        assert archive.segment_path("2019-06").exists()

    def test_keep_json(self, archive):
        archive.compact(keep_json=True)
        assert archive.period_path("2019-06").exists()

    def test_recompaction_is_noop(self, archive):
        archive.compact()
        assert archive.compact() == []

    def test_survives_reopen(self, archive, survey_june):
        archive.compact()
        archive.close()
        reopened = SurveyArchive(archive.root)
        assert reopened.period_meta("2019-06")["repr"] == "segment"
        assert canonical_json(
            reopened.get_period("2019-06")
        ) == canonical_json(survey_to_dict(survey_june))


class TestCorruption:
    def _corrupt(self, path):
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))

    def test_corrupt_period_json_quarantined(self, archive):
        self._corrupt(archive.period_path("2019-06"))
        archive._payloads.clear()
        with pytest.raises(ArchiveCorruptionError):
            archive.get_period("2019-06")
        assert archive.stats.corrupt == 1
        quarantined = archive.root / "quarantine" / "2019-06.json"
        assert quarantined.exists()
        assert not archive.period_path("2019-06").exists()

    def test_corrupt_segment_quarantined(self, archive):
        archive.compact()
        archive.close()
        archive._payloads.clear()
        self._corrupt(archive.segment_path("2019-09"))
        with pytest.raises(ArchiveCorruptionError):
            archive.get(400, "2019-09")
        assert (
            archive.root / "quarantine" / "2019-09.seg"
        ).exists()

    def test_verify_reports_without_raising(self, archive):
        self._corrupt(archive.period_path("2019-06"))
        outcome = archive.verify()
        assert outcome["2019-09"] == "ok"
        assert outcome["2019-06"].startswith("corrupt:")

    def test_missing_committed_artifact(self, archive):
        archive.period_path("2019-06").unlink()
        archive._payloads.clear()
        with pytest.raises(ArchiveCorruptionError):
            archive.get_period("2019-06")

    def test_schema_version_gate(self, archive):
        archive.close()
        manifest = json.loads(archive.manifest_path.read_text())
        manifest["schema"] = 99
        archive.manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SchemaVersionError):
            SurveyArchive(archive.root)

    def test_garbage_manifest(self, archive):
        archive.close()
        archive.manifest_path.write_text("{nope")
        with pytest.raises(ArchiveCorruptionError):
            SurveyArchive(archive.root)
        assert (
            archive.root / "quarantine" / "MANIFEST.json"
        ).exists()


class TestChecksums:
    def test_payload_checksum_is_canonical(self, survey_june):
        payload = survey_to_dict(survey_june)
        shuffled = json.loads(json.dumps(payload))
        assert payload_checksum(payload) == payload_checksum(shuffled)
