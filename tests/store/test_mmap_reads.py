"""Differential suite: mmap segment reads vs parsed-JSON reads.

The serving contract of the mmap path is byte-identity: every archive
query — point lookup, range scan, per-AS history, severity/country
indexes, anomaly reports — must return exactly the same canonical
JSON whichever representation (JSON document vs packed segment) and
read mode (mmap vs seek+read handle) currently backs the period.
These tests pin that across a seeded multi-period archive, including
after compaction, after fsck repair, and for pre-columns segments.
"""

import datetime as dt
import json

import pytest

from repro.core import Severity
from repro.store import (
    ASNotFoundError,
    STORE_MMAP_ENV,
    SurveyArchive,
    store_mmap_enabled,
)
from repro.store.segments import SegmentReader, _TRAILER_LEN, _sha
from tests.store.conftest import make_ranking, make_survey
from tests.store.test_anomaly_artifacts import LINK, make_anomaly_payload

PERIODS = [
    ("2019-06", dt.datetime(2019, 6, 1),
     {100: Severity.SEVERE, 200: Severity.LOW, 300: Severity.NONE}),
    ("2019-09", dt.datetime(2019, 9, 1),
     {100: Severity.MILD, 300: Severity.NONE, 400: Severity.SEVERE}),
    ("2019-12", dt.datetime(2019, 12, 1),
     {100: Severity.NONE, 200: Severity.SEVERE, 300: Severity.LOW,
      400: Severity.MILD}),
    ("2020-03", dt.datetime(2020, 3, 1),
     {200: Severity.NONE, 400: Severity.SEVERE}),
]
ALL_ASNS = (100, 200, 300, 400, 999)
SEVERITIES = ("none", "low", "mild", "severe")


@pytest.fixture(autouse=True)
def _pin_environment(monkeypatch):
    monkeypatch.delenv(STORE_MMAP_ENV, raising=False)


def seed_archive(root):
    archive = SurveyArchive(root)
    ranking = make_ranking()
    for name, start, classes in PERIODS:
        archive.ingest(
            make_survey(name, start, classes), ranking=ranking
        )
    archive.ingest_anomalies(
        "2019-06", make_anomaly_payload("2019-06")
    )
    archive.ingest_anomalies(
        "2019-09", make_anomaly_payload("2019-09")
    )
    return archive


def query_snapshot(archive):
    """Canonical JSON of every read query — the equivalence surface.

    Hot-path queries (history, severity, point lookups) run first so
    they exercise the columnar/segment readers before ``get_period``
    warms the payload cache and shadows them.
    """
    snap = {}
    snap["periods"] = archive.periods()
    for asn in ALL_ASNS:
        snap[f"history:{asn}"] = archive.history(asn)
    for name in archive.periods():
        snap[f"asns:{name}"] = archive.asns(name)
        snap[f"countries:{name}"] = archive.countries(name)
        snap[f"severe:{name}"] = archive.severe_asns(name)
        snap[f"reported:{name}"] = archive.reported_asns(name)
        for severity in SEVERITIES:
            snap[f"severity:{name}:{severity}"] = (
                archive.asns_with_severity(name, severity)
            )
        for country in archive.countries(name):
            snap[f"country:{name}:{country}"] = (
                archive.asns_in_country(name, country)
            )
        for asn in ALL_ASNS:
            try:
                snap[f"get:{name}:{asn}"] = archive.get(asn, name)
            except ASNotFoundError:
                snap[f"get:{name}:{asn}"] = None
    for name in archive.periods():
        snap[f"payload:{name}"] = archive.get_period(name)
    snap["scan"] = list(archive.scan())
    snap["scan:bounded"] = list(
        archive.scan(start="2019-08-01", end="2020-01-01")
    )
    names = archive.periods()
    if "2019-06" in names and "2019-09" in names:
        snap["deltas"] = archive.deltas_between("2019-06", "2019-09")
    snap["churn"] = archive.churn_deltas()
    snap["anomalies"] = {
        name: archive.get_anomalies(name)
        for name in archive.anomaly_periods()
    }
    snap["link_history"] = archive.link_history(LINK)
    return json.dumps(snap, sort_keys=True)


@pytest.fixture()
def baseline(tmp_path):
    """(root, snapshot) with every period still a JSON document."""
    root = tmp_path / "arc"
    archive = seed_archive(root)
    snapshot = query_snapshot(archive)
    archive.close()
    return root, snapshot


def strip_columns(path):
    """Rewrite a segment as if written before the columns section.

    Drops the ``columns`` footer key and re-seals the trailer; blob
    offsets are untouched, so the file reads exactly like an
    old-format segment (the orphaned column bytes are unreachable).
    """
    raw = path.read_bytes()
    trailer = raw[-_TRAILER_LEN:]
    footer_offset = int(trailer[:20])
    footer_length = int(trailer[20:40])
    footer = json.loads(raw[footer_offset:footer_offset + footer_length])
    assert footer.pop("columns", None) is not None
    from repro.parallel.cache import canonical_json

    footer_bytes = canonical_json(footer).encode("ascii")
    new_trailer = (
        f"{footer_offset:020d}{len(footer_bytes):020d}"
        f"{_sha(footer_bytes)}"
    ).encode("ascii")
    path.write_bytes(raw[:footer_offset] + footer_bytes + new_trailer)


class TestCompactedEquivalence:
    def test_mmap_reads_match_json_documents(self, baseline):
        root, expected = baseline
        with SurveyArchive(root) as archive:
            archive.compact()
            assert query_snapshot(archive) == expected
        # A fresh process over the compacted archive agrees too.
        with SurveyArchive(root) as fresh:
            assert query_snapshot(fresh) == expected
            for name, _, _ in PERIODS:
                assert fresh._reader(name).mapped

    def test_handle_mode_matches(self, baseline, monkeypatch):
        root, expected = baseline
        with SurveyArchive(root) as archive:
            archive.compact()
        monkeypatch.setenv(STORE_MMAP_ENV, "0")
        assert not store_mmap_enabled()
        with SurveyArchive(root) as archive:
            assert query_snapshot(archive) == expected
            for name, _, _ in PERIODS:
                assert not archive._reader(name).mapped

    def test_mixed_representation_matches(self, baseline):
        root, expected = baseline
        with SurveyArchive(root) as archive:
            archive.compact(names=["2019-09", "2020-03"])
            assert query_snapshot(archive) == expected
        with SurveyArchive(root) as fresh:
            assert query_snapshot(fresh) == expected

    def test_segment_without_columns_matches(self, baseline):
        root, expected = baseline
        with SurveyArchive(root) as archive:
            archive.compact()
        for name, _, _ in PERIODS:
            strip_columns(root / "segments" / f"{name}.seg")
        with SurveyArchive(root) as archive:
            for name, _, _ in PERIODS:
                reader = archive._reader(name)
                assert not reader.has_columns()
                assert reader.columns() is None
                assert reader.column_entry(100) is None
            assert query_snapshot(archive) == expected

    def test_post_fsck_repair_matches(self, baseline, monkeypatch):
        root, expected = baseline
        with SurveyArchive(root) as archive:
            archive.compact()
            report = archive.fsck(repair=True)
            assert report.clean
            assert query_snapshot(archive) == expected
        monkeypatch.setenv(STORE_MMAP_ENV, "off")
        with SurveyArchive(root) as archive:
            assert query_snapshot(archive) == expected

    def test_fsck_repair_of_torn_segment_keeps_modes_agreeing(
        self, baseline, monkeypatch
    ):
        root, _ = baseline
        with SurveyArchive(root) as archive:
            archive.compact()
        seg = root / "segments" / "2019-09.seg"
        raw = bytearray(seg.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        seg.write_bytes(raw)
        with SurveyArchive(root) as archive:
            report = archive.fsck(repair=True)
            assert report.repair_count >= 1
            assert "2019-09" not in archive.periods()
            repaired = query_snapshot(archive)
        monkeypatch.setenv(STORE_MMAP_ENV, "0")
        with SurveyArchive(root) as archive:
            assert query_snapshot(archive) == repaired


class TestColumnIntegrity:
    def make_segment(self, tmp_path):
        root = tmp_path / "arc"
        archive = seed_archive(root)
        archive.compact()
        archive.close()
        return root / "segments" / "2019-06.seg"

    def test_column_entry_values(self, tmp_path):
        path = self.make_segment(tmp_path)
        with SegmentReader(path) as reader:
            assert reader.mapped
            entry = reader.column_entry(100)
            assert entry == {
                "severity": "severe", "probe_count": 5,
                "daily_amplitude_ms": 4.5,
            }
            assert reader.column_entry(999) is None
            assert reader.asns_with_severity("low") == [200]
            assert reader.asns_with_severity("nonesuch") == []
            assert reader.reported_asns() == [100, 200]

    def test_corrupt_columns_fail_checksum(self, tmp_path):
        from repro.store import ArchiveCorruptionError

        path = self.make_segment(tmp_path)
        with SegmentReader(path, use_mmap=False) as probe:
            meta = probe._footer["columns"]
        raw = bytearray(path.read_bytes())
        raw[int(meta["offset"])] ^= 0xFF
        path.write_bytes(raw)
        # The torn byte sits between the blobs and the footer, so the
        # segment still opens and point lookups still verify...
        with SegmentReader(path) as reader:
            assert reader.get(100) is not None
            # ...but the columns section refuses to serve.
            with pytest.raises(ArchiveCorruptionError):
                reader.columns()

    def test_mmap_and_handle_columns_identical(self, tmp_path):
        path = self.make_segment(tmp_path)
        with SegmentReader(path, use_mmap=True) as fast, \
                SegmentReader(path, use_mmap=False) as slow:
            fast_cols = fast.columns()
            slow_cols = slow.columns()
            assert fast_cols.keys() == slow_cols.keys()
            for name in fast_cols:
                assert fast_cols[name].tobytes() == \
                    slow_cols[name].tobytes()
            for asn in ALL_ASNS:
                assert fast.column_entry(asn) == slow.column_entry(asn)

    def test_close_tolerates_outstanding_views(self, tmp_path):
        path = self.make_segment(tmp_path)
        reader = SegmentReader(path)
        columns = reader.columns()
        held = columns["asn"]
        reader.close()  # must not raise despite the live view
        assert held[0] == 100


class TestFallback:
    def test_torn_segment_serves_json_and_counts(
        self, baseline
    ):
        from repro.obs import Observability, observed

        root, expected = baseline
        with SurveyArchive(root) as archive:
            archive.compact(keep_json=True)
        seg = root / "segments" / "2019-09.seg"
        raw = bytearray(seg.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        seg.write_bytes(raw)
        with observed(Observability()) as obs:
            with SurveyArchive(root) as archive:
                generation = archive.generation
                assert query_snapshot(archive) == expected
                assert archive.generation > generation
        assert obs.metrics.counter(
            "store_fallback_total", ""
        ).value() >= 1
        # The torn segment is evidence now, not a serving source.
        assert not seg.exists()
        assert (root / "quarantine" / "2019-09.seg").exists()

    def test_point_lookup_falls_back(self, baseline):
        root, _ = baseline
        with SurveyArchive(root) as archive:
            archive.compact(keep_json=True)
            want = archive.get_period("2019-06")["reports"]["100"]
        seg = root / "segments" / "2019-06.seg"
        raw = bytearray(seg.read_bytes())
        raw[len(raw) // 3] ^= 0xFF
        seg.write_bytes(raw)
        with SurveyArchive(root) as archive:
            assert archive.get(100, "2019-06") == want

    def test_no_json_left_still_raises(self, baseline):
        from repro.store import ArchiveCorruptionError

        root, _ = baseline
        with SurveyArchive(root) as archive:
            archive.compact()  # keep_json=False: segment is the only copy
        seg = root / "segments" / "2019-06.seg"
        raw = bytearray(seg.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        seg.write_bytes(raw)
        with SurveyArchive(root) as archive:
            with pytest.raises(ArchiveCorruptionError):
                archive.get_period("2019-06")


class TestEnvKnob:
    @pytest.mark.parametrize("value", ["0", "off", "false", "no", "json"])
    def test_disabled_values(self, monkeypatch, value):
        monkeypatch.setenv(STORE_MMAP_ENV, value)
        assert not store_mmap_enabled()

    @pytest.mark.parametrize("value", ["", "1", "on", "mmap"])
    def test_enabled_values(self, monkeypatch, value):
        monkeypatch.setenv(STORE_MMAP_ENV, value)
        assert store_mmap_enabled()
