"""Crash-recovery property test: every commit step, pre or post, never between.

The contract under test (see DESIGN.md §12): an archive writer killed
at ANY byte boundary of an ingest leaves the archive in exactly the
pre-commit or post-commit state after recovery-on-open — and fsck
finds nothing to complain about either way.

The op sequence is *measured*, not hardcoded: a dry run under
:class:`RecordingIO` enumerates the protocol's operations, then one
fresh archive per (operation, byte offset) is crashed there with
:class:`CrashingIO` and reopened with real IO.  A handful of cases
also die by real SIGKILL in a subprocess, proving recovery holds
against a genuinely dead writer, not just an unwound stack.
"""

import json
import signal
import subprocess
import sys
import textwrap

import pytest

from repro.faults import CrashingIO, CrashPlan, RecordingIO, SimulatedCrash
from repro.obs import observed
from repro.store import (
    EXIT_CLEAN,
    CommitJournal,
    SurveyArchive,
    TornJournal,
    recover,
    run_fsck,
)


def archive_state(root):
    """Everything that defines archive content, as comparable data."""
    manifest_path = root / "MANIFEST.json"
    manifest = (
        json.loads(manifest_path.read_text())
        if manifest_path.exists() else None
    )
    files = sorted(
        str(p.relative_to(root))
        for p in root.rglob("*")
        if p.is_file() and "quarantine" not in p.parts
    )
    return {"manifest": manifest, "files": files}


def recorded_ops(survey, ranking, tmp_path):
    """Dry-run one ingest; return its operation sequence."""
    io = RecordingIO()
    archive = SurveyArchive(tmp_path / "record", io=io)
    io.ops.clear()  # drop archive-creation noise, keep ingest ops
    archive.ingest(survey, ranking=ranking)
    return io.ops


class TestOpEnumeration:
    def test_ingest_protocol_shape(self, tmp_path, survey_june, ranking):
        ops = recorded_ops(survey_june, ranking, tmp_path)
        kinds = [op.kind for op in ops]
        # journal, period, index, manifest: four atomic writes (write +
        # replace each), then the journal acknowledgment remove.
        assert kinds == ["write", "replace"] * 4 + ["remove"]
        assert "JOURNAL" in ops[1].path
        assert "MANIFEST" in ops[7].path
        assert "JOURNAL" in ops[8].path


class TestCrashAtEveryBoundary:
    def test_every_op_every_offset_pre_or_post(
        self, tmp_path, survey_june, ranking
    ):
        """The tentpole property: kill the writer anywhere → recovery
        lands on exactly the pre- or post-commit state, fsck clean."""
        ops = recorded_ops(survey_june, ranking, tmp_path)

        # Reference states: an untouched archive and a committed one.
        pre_root = tmp_path / "pre"
        SurveyArchive(pre_root)
        pre_state = archive_state(pre_root)
        post_root = tmp_path / "post"
        committed = SurveyArchive(post_root)
        committed.ingest(survey_june, ranking=ranking)
        post_state = archive_state(post_root)
        manifest_op = next(
            i for i, op in enumerate(ops)
            if op.kind == "replace" and "MANIFEST" in op.path
        )

        cases = []
        for op_index, op in enumerate(ops):
            offsets = [None]
            if op.kind == "write":
                # Tear at nothing-written, mid-write, and all-but-end.
                offsets = [0, op.size // 2, op.size - 1]
            for offset in offsets:
                cases.append((op_index, offset))

        for op_index, offset in cases:
            root = tmp_path / f"crash-{op_index}-{offset}"
            io = CrashingIO(CrashPlan(op_index, byte_offset=offset))
            archive = SurveyArchive(root, io=io)
            with pytest.raises(SimulatedCrash):
                archive.ingest(survey_june, ranking=ranking)
            assert io.crashed

            # Reopen with real IO: recovery-on-open runs here.
            reopened = SurveyArchive(root)
            state = archive_state(root)
            # The crash lands *before* the planned replace, so dying
            # at the manifest rename itself is still pre-commit; only
            # ops after it see the flipped manifest.
            if op_index > manifest_op:
                assert state == post_state, (
                    f"crash at op {op_index} offset {offset}: "
                    "expected post-commit state"
                )
                assert reopened.last_recovery.outcome in (
                    "roll-forward", "clean"
                )
                assert "2019-06" in reopened
                assert reopened.get(100, "2019-06")["severity"] == "severe"
            else:
                assert state == pre_state, (
                    f"crash at op {op_index} offset {offset}: "
                    "expected pre-commit state"
                )
                assert "2019-06" not in reopened
            # Either way: nothing half-committed for fsck to find.
            report = run_fsck(root, repair=False)
            assert report.exit_code == EXIT_CLEAN, [
                f.detail for f in report.findings
            ]

    def test_recovery_is_idempotent(self, tmp_path, survey_june, ranking):
        root = tmp_path / "idem"
        io = CrashingIO(CrashPlan(op_index=4))  # after journal+period
        archive = SurveyArchive(root, io=io)
        with pytest.raises(SimulatedCrash):
            archive.ingest(survey_june, ranking=ranking)
        first = SurveyArchive(root)
        assert first.last_recovery.outcome == "rollback"
        second = SurveyArchive(root)
        assert second.last_recovery.outcome == "clean"
        assert not second.last_recovery.acted

    def test_no_reader_sees_partial_period(
        self, tmp_path, survey_june, ranking
    ):
        """Mid-commit state is invisible even *before* recovery: a
        reader opening the same directory sees only the manifest."""
        root = tmp_path / "reader"
        io = CrashingIO(CrashPlan(op_index=6))  # period+index on disk
        archive = SurveyArchive(root, io=io)
        with pytest.raises(SimulatedCrash):
            archive.ingest(survey_june, ranking=ranking)
        # Data files exist, but the manifest has not flipped...
        assert (root / "periods" / "2019-06.json").exists()
        reader = SurveyArchive(root)
        # ...so the period is simply not there (and rollback cleaned).
        assert "2019-06" not in reader
        assert len(reader) == 0

    def test_recovery_counter_emitted(self, tmp_path, survey_june, ranking):
        root = tmp_path / "obs"
        io = CrashingIO(CrashPlan(op_index=3))
        archive = SurveyArchive(root, io=io)
        with pytest.raises(SimulatedCrash):
            archive.ingest(survey_june, ranking=ranking)
        with observed() as obs:
            reopened = SurveyArchive(root)
        assert reopened.last_recovery.acted
        recovered = obs.metrics.counter(
            "store_recovery_total", "", ("outcome",)
        )
        assert recovered.value(outcome="rollback") == 1


class TestTornJournal:
    def test_torn_journal_quarantined_and_cleared(
        self, tmp_path, survey_june, ranking
    ):
        root = tmp_path / "torn"
        io = CrashingIO(CrashPlan(op_index=4))
        archive = SurveyArchive(root, io=io)
        with pytest.raises(SimulatedCrash):
            archive.ingest(survey_june, ranking=ranking)
        journal_path = root / CommitJournal.FILENAME
        journal_path.write_text(journal_path.read_text()[:-20])
        with pytest.raises(TornJournal):
            CommitJournal(root).pending()
        reopened = SurveyArchive(root)
        assert reopened.last_recovery.outcome == "torn-journal"
        assert not journal_path.exists()
        assert (root / "quarantine" / CommitJournal.FILENAME).exists()
        # Idempotent from here on.
        assert SurveyArchive(root).last_recovery.outcome == "clean"

    def test_recover_function_directly(self, tmp_path):
        root = tmp_path / "direct"
        root.mkdir()
        journal = CommitJournal(root)
        journal.begin("ingest", "2020-01", "cafe", ["periods/2020-01.json"])
        (root / "periods").mkdir()
        (root / "periods" / "2020-01.json").write_text("{}")
        report = recover(root, lambda period: None)
        assert report.outcome == "rollback"
        assert report.removed == ["periods/2020-01.json"]
        assert not (root / "periods" / "2020-01.json").exists()

    def test_roll_forward_never_deletes_committed(self, tmp_path):
        root = tmp_path / "forward"
        root.mkdir()
        (root / "periods").mkdir()
        (root / "periods" / "2020-01.json").write_text("{}")
        journal = CommitJournal(root)
        journal.begin("ingest", "2020-01", "cafe", ["periods/2020-01.json"])
        # The manifest says the period is committed.
        report = recover(
            root, lambda period: {"checksum": "cafe", "repr": "json"}
        )
        assert report.outcome == "roll-forward"
        assert report.removed == []
        assert (root / "periods" / "2020-01.json").exists()


class TestCrashDuringCommitPartial:
    """The live-checkpoint twin of the ingest property: a writer
    killed at ANY byte boundary of a ``commit_partial`` leaves the
    archive on exactly the previous or the new revision — never a
    blend — and fsck stays clean.  The checkpoint deliberately
    carries the *same payload* as the previous one: recovery must
    tell the revisions apart by the journal's revision number, not
    by checksum."""

    LIVE = "2019-06"

    def open_live(self, root, io=None):
        archive = (
            SurveyArchive(root, io=io) if io is not None
            else SurveyArchive(root)
        )
        return archive, archive.begin_live_period(self.LIVE)

    def test_checkpoint_protocol_shape(self, tmp_path, survey_june):
        io = RecordingIO()
        _, writer = self.open_live(tmp_path / "record", io)
        writer.commit_partial(survey_june)
        io.ops.clear()
        writer.commit_partial(survey_june)
        kinds = [op.kind for op in io.ops]
        # journal, live payload, live index, manifest: four atomic
        # writes; then retire the two previous-revision files and
        # acknowledge the journal.
        assert kinds == ["write", "replace"] * 4 + ["remove"] * 3

    def test_every_op_every_offset_pre_or_post(
        self, tmp_path, survey_june
    ):
        io = RecordingIO()
        _, writer = self.open_live(tmp_path / "record", io)
        writer.commit_partial(survey_june)
        base = len(io.ops)
        writer.commit_partial(survey_june)
        ops = io.ops[base:]
        manifest_op = next(
            i for i, op in enumerate(ops)
            if op.kind == "replace" and "MANIFEST" in op.path
        )

        # Reference states: revision 1 committed, and revision 2.
        pre_root = tmp_path / "pre"
        _, pre_writer = self.open_live(pre_root)
        pre_writer.commit_partial(survey_june)
        pre_state = archive_state(pre_root)
        post_root = tmp_path / "post"
        _, post_writer = self.open_live(post_root)
        post_writer.commit_partial(survey_june)
        post_writer.commit_partial(survey_june)
        post_state = archive_state(post_root)

        cases = []
        for op_index, op in enumerate(ops):
            offsets = [None]
            if op.kind == "write":
                offsets = [0, op.size // 2, op.size - 1]
            for offset in offsets:
                cases.append((op_index, offset))

        for op_index, offset in cases:
            root = tmp_path / f"crash-{op_index}-{offset}"
            io = CrashingIO(
                CrashPlan(base + op_index, byte_offset=offset)
            )
            _, writer = self.open_live(root, io)
            writer.commit_partial(survey_june)
            with pytest.raises(SimulatedCrash):
                writer.commit_partial(survey_june)
            assert io.crashed

            reopened = SurveyArchive(root)
            state = archive_state(root)
            meta = reopened.period_meta(self.LIVE)
            if op_index > manifest_op:
                assert state == post_state, (
                    f"crash at op {op_index} offset {offset}: "
                    "expected post-checkpoint state"
                )
                assert meta["revision"] == 2
            else:
                assert state == pre_state, (
                    f"crash at op {op_index} offset {offset}: "
                    "expected pre-checkpoint state"
                )
                assert meta["revision"] == 1
            # Either revision serves a readable period...
            assert reopened.get_period(self.LIVE)["period"][
                "name"
            ] == self.LIVE
            # ...and fsck has nothing to say.
            report = run_fsck(root, repair=False)
            assert report.exit_code == EXIT_CLEAN, [
                f.detail for f in report.findings
            ]


@pytest.mark.slow
class TestSigkillDuringCommitPartial:
    """A genuinely dead writer mid-checkpoint, not an unwound stack."""

    CHILD = textwrap.dedent("""
        import datetime as dt, sys
        sys.path.insert(0, {src!r})
        sys.path.insert(0, {repo!r})
        from repro.faults import CrashingIO, CrashPlan
        from repro.store import SurveyArchive
        from tests.store.conftest import make_survey
        from repro.core import Severity

        survey = make_survey(
            "2019-06", dt.datetime(2019, 6, 1),
            {{100: Severity.SEVERE, 200: Severity.LOW}},
        )
        io = CrashingIO(CrashPlan({op}, mode="kill"))
        archive = SurveyArchive({root!r}, io=io)
        writer = archive.begin_live_period("2019-06")
        writer.commit_partial(survey)
        writer.commit_partial(survey)
        print("survived", flush=True)  # plan never fired
    """)

    def measured(self, tmp_path):
        """(ops before checkpoint 2, its op count, its manifest op)."""
        from tests.store.conftest import make_survey
        import datetime as dt
        from repro.core import Severity

        survey = make_survey(
            "2019-06", dt.datetime(2019, 6, 1),
            {100: Severity.SEVERE, 200: Severity.LOW},
        )
        io = RecordingIO()
        archive = SurveyArchive(tmp_path / "measure", io=io)
        writer = archive.begin_live_period("2019-06")
        writer.commit_partial(survey)
        base = len(io.ops)
        writer.commit_partial(survey)
        manifest_op = next(
            i for i, op in enumerate(io.ops[base:])
            if op.kind == "replace" and "MANIFEST" in op.path
        )
        return base, len(io.ops) - base, manifest_op

    @pytest.mark.parametrize("which", ["first-write", "post-manifest"])
    def test_sigkill_mid_checkpoint(self, tmp_path, which):
        base, count, manifest_op = self.measured(tmp_path)
        offset = 0 if which == "first-write" else manifest_op + 1
        root = tmp_path / "killed"
        repo = __import__("pathlib").Path(__file__).resolve().parents[2]
        script = self.CHILD.format(
            src=str(repo / "src"), repo=str(repo), root=str(root),
            op=base + offset,
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        reopened = SurveyArchive(root)
        expected = 1 if which == "first-write" else 2
        assert reopened.period_meta("2019-06")["revision"] == expected
        assert run_fsck(root, repair=False).exit_code == EXIT_CLEAN


@pytest.mark.slow
class TestRealSigkill:
    """A few boundaries exercised with a genuinely dead writer."""

    CHILD = textwrap.dedent("""
        import datetime as dt, sys
        sys.path.insert(0, {src!r})
        sys.path.insert(0, {repo!r})
        from repro.faults import CrashingIO, CrashPlan
        from repro.store import SurveyArchive
        from tests.store.conftest import make_ranking, make_survey
        from repro.core import Severity

        survey = make_survey(
            "2019-06", dt.datetime(2019, 6, 1),
            {{100: Severity.SEVERE, 200: Severity.LOW}},
        )
        io = CrashingIO(CrashPlan({op}, byte_offset={offset}, mode="kill"))
        archive = SurveyArchive({root!r}, io=io)
        archive.ingest(survey, ranking=make_ranking())
        print("survived", flush=True)  # plan never fired
    """)

    @pytest.mark.parametrize("op_index,offset", [
        (0, 7),    # torn journal temp write
        (3, None), # died before the period rename
        (7, None), # died before the manifest flip
        (8, None), # died before journal acknowledgment (committed!)
    ])
    def test_sigkill_mid_commit(self, tmp_path, op_index, offset):
        root = tmp_path / "killed"
        repo = __import__("pathlib").Path(__file__).resolve().parents[2]
        script = self.CHILD.format(
            src=str(repo / "src"), repo=str(repo), root=str(root),
            op=op_index, offset=offset,
        )
        proc = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        reopened = SurveyArchive(root)
        if op_index >= 8:
            assert "2019-06" in reopened
            assert reopened.last_recovery.outcome == "roll-forward"
        else:
            assert "2019-06" not in reopened
        report = run_fsck(root, repair=False)
        assert report.exit_code == EXIT_CLEAN
