"""Anomaly-report artifacts: journaled commits, queries, fsck, crashes.

The report artifact rides the archive's existing write-ahead commit
protocol; these tests pin the artifact-specific contracts — one
immutable report per committed period, crash-at-any-boundary recovery
to exactly the reported or report-less state, and fsck's surgical
repair (quarantine the report, keep the period)."""

import json

import pytest

from repro.faults import CrashingIO, CrashPlan, RecordingIO, SimulatedCrash
from repro.store import (
    EXIT_CLEAN,
    EXIT_ERRORS,
    EXIT_REPAIRED,
    AnomalyReportExistsError,
    AnomalyReportNotFoundError,
    ArchiveCorruptionError,
    LinkNotFoundError,
    PeriodExistsError,
    PeriodNotFoundError,
    SurveyArchive,
    run_fsck,
)
from tests.store.test_journal import archive_state

LINK = "60.0.0.1--60.0.0.2"


def make_anomaly_payload(period, links=None, events=()):
    links = links if links is not None else {
        LINK: {
            "near": "60.0.0.1", "far": "60.0.0.2",
            "samples": 90, "bins": 48, "median_ms": 3.1,
            "band_ms": [2.9, 3.3], "anomalous_bins": [],
            "reference": {
                "median_ms": [3.1] * 48,
                "low_ms": [2.9] * 48,
                "high_ms": [3.3] * 48,
            },
        },
    }
    return {
        "kind": "anomaly-report", "period": period,
        "bin_seconds": 1800, "num_bins": 48, "bins_per_day": 48,
        "confidence": 0.95, "min_samples": 3,
        "forwarding_threshold": 0.5, "min_gap_ms": 2.0,
        "reference_source": "self", "processed": 500,
        "links_total": len(links), "links": links,
        "forwarding": {}, "events": list(events),
    }


@pytest.fixture()
def reported(tmp_path, survey_june, survey_september):
    """Archive with two periods, the first carrying a report."""
    archive = SurveyArchive(tmp_path / "arc")
    archive.ingest(survey_june)
    archive.ingest(survey_september)
    archive.ingest_anomalies(
        "2019-06", make_anomaly_payload("2019-06")
    )
    return archive


class TestCommitAndRead:
    def test_round_trip(self, reported):
        assert reported.anomaly_periods() == ["2019-06"]
        payload = reported.get_anomalies("2019-06")
        assert payload["kind"] == "anomaly-report"
        assert LINK in payload["links"]

    def test_survives_reopen(self, reported):
        reopened = SurveyArchive(reported.root)
        assert reopened.anomaly_periods() == ["2019-06"]
        assert reopened.get_anomalies("2019-06")["links_total"] == 1

    def test_default_period_is_latest(self, reported):
        # Latest committed period (2019-09) has no report.
        with pytest.raises(AnomalyReportNotFoundError):
            reported.get_anomalies()

    def test_reports_are_immutable(self, reported):
        with pytest.raises(AnomalyReportExistsError):
            reported.ingest_anomalies(
                "2019-06", make_anomaly_payload("2019-06")
            )

    def test_period_must_exist(self, reported):
        with pytest.raises(PeriodNotFoundError):
            reported.ingest_anomalies(
                "2031-01", make_anomaly_payload("2031-01")
            )

    def test_live_period_rejected(self, tmp_path, survey_june):
        import datetime as dt

        from repro.core import Severity
        from tests.store.conftest import make_survey

        archive = SurveyArchive(tmp_path / "live")
        archive.ingest(survey_june)
        writer = archive.begin_live_period("2019-12")
        writer.commit_partial(make_survey(
            "2019-12", dt.datetime(2019, 12, 1),
            {100: Severity.LOW},
        ))
        with pytest.raises(PeriodExistsError):
            archive.ingest_anomalies(
                "2019-12", make_anomaly_payload("2019-12")
            )

    def test_stats_and_generation_move(self, tmp_path, survey_june):
        archive = SurveyArchive(tmp_path / "arc")
        archive.ingest(survey_june)
        generation = archive.generation
        archive.ingest_anomalies(
            "2019-06", make_anomaly_payload("2019-06")
        )
        assert archive.stats.anomaly_ingests == 1
        assert archive.stats.as_dict()["anomaly_ingests"] == 1
        assert archive.generation == generation + 1

    def test_checksum_mismatch_refused(self, reported):
        path = reported.anomalies_path("2019-06")
        wrapped = json.loads(path.read_text())
        wrapped["payload"]["processed"] = 9_999
        # Keep the file's own wrapper checksum out of the way: the
        # manifest cross-check must catch the divergence regardless.
        from repro.store import payload_checksum

        wrapped["checksum"] = payload_checksum(wrapped["payload"])
        path.write_text(json.dumps(wrapped))
        fresh = SurveyArchive(reported.root)
        with pytest.raises(ArchiveCorruptionError):
            fresh.get_anomalies("2019-06")


class TestVerify:
    def test_verify_audits_reports(self, reported):
        assert reported.verify() == {
            "2019-06": "ok", "2019-09": "ok",
            "2019-06/anomalies": "ok",
        }

    def test_verify_flags_corrupt_report(self, reported):
        from repro.faults import FsFaultKey, flip_bit

        flip_bit(
            reported.anomalies_path("2019-06"), key=FsFaultKey(5)
        )
        outcome = reported.verify()
        assert outcome["2019-06"] == "ok"
        assert outcome["2019-06/anomalies"].startswith("corrupt:")


class TestLinkHistory:
    def test_observed_and_unobserved_periods(
        self, reported, survey_september
    ):
        reported.ingest_anomalies("2019-09", make_anomaly_payload(
            "2019-09", links={
                "10.0.0.1--10.0.0.2": {
                    "near": "10.0.0.1", "far": "10.0.0.2",
                    "samples": 30, "bins": 48, "median_ms": 1.0,
                    "band_ms": [0.9, 1.1], "anomalous_bins": [3],
                    "reference": {
                        "median_ms": [1.0] * 48,
                        "low_ms": [0.9] * 48,
                        "high_ms": [1.1] * 48,
                    },
                },
            },
        ))
        history = reported.link_history(LINK)
        assert [e["period"] for e in history] == [
            "2019-06", "2019-09"
        ]
        assert history[0]["observed"] is True
        assert history[1] == {
            "period": "2019-09", "observed": False,
            "anomalous_bins": [],
        }

    def test_unknown_link_raises(self, reported):
        with pytest.raises(LinkNotFoundError):
            reported.link_history("9.9.9.9--8.8.8.8")

    def test_malformed_link_raises_value_error(self, reported):
        with pytest.raises(ValueError):
            reported.link_history("not-a-link")


class TestDeltas:
    def test_churn_between_reports(self, reported):
        event = {
            "kind": "delay", "link": LINK, "bin": 7,
            "direction": "high", "median_ms": 40.0,
            "band_ms": [38.0, 42.0], "reference_ms": [2.9, 3.3],
            "reference_median_ms": 3.1, "gap_ms": 34.7,
        }
        reported.ingest_anomalies("2019-09", make_anomaly_payload(
            "2019-09", events=[event],
        ))
        deltas = reported.anomaly_deltas_between("2019-06", "2019-09")
        assert deltas["new"] == [LINK]
        assert deltas["resolved"] == []
        churn = reported.anomaly_churn()
        assert [
            (d["before"], d["after"]) for d in churn
        ] == [("2019-06", "2019-09")]


def recorded_ops(tmp_path, survey):
    """Dry-run one report attach; return its operation sequence."""
    io = RecordingIO()
    archive = SurveyArchive(tmp_path / "record", io=io)
    archive.ingest(survey)
    io.ops.clear()  # keep only the anomaly-attach ops
    archive.ingest_anomalies(
        "2019-06", make_anomaly_payload("2019-06")
    )
    return io.ops


class TestCrashAtEveryBoundary:
    def test_attach_protocol_shape(self, tmp_path, survey_june):
        ops = recorded_ops(tmp_path, survey_june)
        kinds = [op.kind for op in ops]
        # journal, report, manifest: three atomic writes, then the
        # journal acknowledgment remove.
        assert kinds == ["write", "replace"] * 3 + ["remove"]
        assert "JOURNAL" in ops[1].path
        assert "anomalies" in ops[3].path
        assert "MANIFEST" in ops[5].path

    def test_every_op_every_offset_pre_or_post(
        self, tmp_path, survey_june
    ):
        ops = recorded_ops(tmp_path, survey_june)

        pre_root = tmp_path / "pre"
        pre = SurveyArchive(pre_root)
        pre.ingest(survey_june)
        pre_state = archive_state(pre_root)
        post_root = tmp_path / "post"
        post = SurveyArchive(post_root)
        post.ingest(survey_june)
        post.ingest_anomalies(
            "2019-06", make_anomaly_payload("2019-06")
        )
        post_state = archive_state(post_root)
        manifest_op = next(
            i for i, op in enumerate(ops)
            if op.kind == "replace" and "MANIFEST" in op.path
        )

        cases = []
        for op_index, op in enumerate(ops):
            offsets = [None]
            if op.kind == "write":
                offsets = [0, op.size // 2, op.size - 1]
            for offset in offsets:
                cases.append((op_index, offset))

        for op_index, offset in cases:
            root = tmp_path / f"crash-{op_index}-{offset}"
            SurveyArchive(root).ingest(survey_june)
            io = CrashingIO(CrashPlan(op_index, byte_offset=offset))
            archive = SurveyArchive(root, io=io)
            with pytest.raises(SimulatedCrash):
                archive.ingest_anomalies(
                    "2019-06", make_anomaly_payload("2019-06")
                )
            assert io.crashed

            reopened = SurveyArchive(root)
            state = archive_state(root)
            if op_index > manifest_op:
                assert state == post_state, (
                    f"crash at op {op_index} offset {offset}: "
                    "expected reported state"
                )
                assert reopened.anomaly_periods() == ["2019-06"]
            else:
                assert state == pre_state, (
                    f"crash at op {op_index} offset {offset}: "
                    "expected report-less state"
                )
                assert reopened.anomaly_periods() == []
                assert "2019-06" in reopened  # period untouched
            report = run_fsck(root, repair=False)
            assert report.exit_code == EXIT_CLEAN, [
                f.detail for f in report.findings
            ]


class TestFsck:
    def test_clean_archive_is_clean(self, reported):
        assert run_fsck(reported.root).exit_code == EXIT_CLEAN

    def test_corrupt_report_detected_then_repaired(self, reported):
        from repro.faults import FsFaultKey, flip_bit

        flip_bit(
            reported.anomalies_path("2019-06"), key=FsFaultKey(3)
        )
        found = run_fsck(reported.root, repair=False)
        assert found.exit_code == EXIT_ERRORS
        assert any(
            f.kind == "anomaly-report" for f in found.errors
        )

        repaired = run_fsck(reported.root, repair=True)
        assert repaired.exit_code == EXIT_REPAIRED
        reopened = SurveyArchive(reported.root)
        # Surgical: the report is gone, the period survives.
        assert reopened.anomaly_periods() == []
        assert "2019-06" in reopened
        assert run_fsck(reported.root).exit_code == EXIT_CLEAN

    def test_missing_report_file_repaired(self, reported):
        reported.anomalies_path("2019-06").unlink()
        found = run_fsck(reported.root, repair=False)
        assert found.exit_code == EXIT_ERRORS
        assert run_fsck(
            reported.root, repair=True
        ).exit_code == EXIT_REPAIRED
        assert run_fsck(reported.root).exit_code == EXIT_CLEAN
        assert SurveyArchive(reported.root).anomaly_periods() == []

    def test_orphan_report_quarantined(self, reported):
        orphan = reported.anomalies_path("2019-09")
        orphan.write_text(
            reported.anomalies_path("2019-06").read_text()
        )
        found = run_fsck(reported.root, repair=False)
        assert any(
            f.kind == "orphan" and f.severity == "warning"
            for f in found.findings
        )
        # Warnings repair without tripping the exit code.
        assert run_fsck(
            reported.root, repair=True
        ).exit_code == EXIT_CLEAN
        assert not orphan.exists()
        assert run_fsck(reported.root).exit_code == EXIT_CLEAN
