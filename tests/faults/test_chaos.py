"""Chaos tests: every injector on, pipeline hardened, books balanced.

The acceptance bar for the hardened pipeline:

* a measurement stream hit by *all* record- and line-level injectors at
  realistic rates (>= 5 % record loss) loads, estimates and classifies
  without raising, and the :class:`DataQualityReport` accounts for the
  damage — exactly, injector by injector, when faults don't interact;
* a world-survey run over a faulted binned dataset (bin loss, NaN
  bursts, one poisoned AS) completes as a *partial* result: the
  poisoned AS lands in the failure log, every genuinely congested AS
  still classifies as congested.
"""

import datetime as dt
import json

import numpy as np
import pytest

from repro.core import (
    aggregate_population,
    classify_signal,
    estimate_dataset,
)
from repro.faults import (
    BinLoss,
    ClockSkew,
    CorruptLines,
    DropRecords,
    DuplicateRecords,
    FaultLog,
    GarbageRTT,
    MissingReplies,
    NaNBursts,
    PoisonAS,
    ProbeChurn,
    RateLimitPrivateHops,
    ReorderRecords,
    TruncateTraceroutes,
    inject_lines,
    inject_records,
)
from repro.io import load_traceroutes, save_traceroutes
from repro.netbase import AccessTechnology
from repro.quality import DropReason
from repro.timebase import MeasurementPeriod, TimeGrid

PERIOD = MeasurementPeriod("chaos", dt.datetime(2019, 9, 2), 2)
LOAD = "io.load_traceroutes"


@pytest.fixture(scope="module")
def clean_campaign(tmp_path_factory):
    """A small congested-ISP campaign: records, JSONL path, metadata."""
    from repro.atlas import AtlasPlatform, ProbeVersion
    from repro.netbase import ASInfo, ASRole
    from repro.topology import ProvisioningPolicy, World

    world = World(seed=13)
    isp = world.add_isp(
        ASInfo(
            64500, "ChaosNet", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_PPPOE_LEGACY: 0.97},
            device_spread=0.01,
        ),
    )
    world.add_default_targets()
    world.finalize()
    platform = AtlasPlatform(world)
    platform.config.outage_rate_per_day = 0.0
    probes = platform.deploy_probes_on_isp(isp, 5, version=ProbeVersion.V3)
    dataset = platform.run_period(PERIOD, probes)
    path = tmp_path_factory.mktemp("chaos") / "clean.jsonl"
    save_traceroutes(dataset, path)
    records = [
        result.to_json()
        for prb_id in dataset.probe_ids()
        for result in dataset.for_probe(prb_id)
    ]
    return records, path, dataset


def write_jsonl(path, lines):
    path.write_text("\n".join(lines) + "\n")
    return path


class TestExactAccounting:
    """One injector at a time: ledger drops == injected ground truth."""

    def test_corrupt_lines_match_loader_drops(self, clean_campaign,
                                              tmp_path):
        records, _, _ = clean_campaign
        lines = [json.dumps(r) for r in records]
        corrupted, log = inject_lines(lines, [CorruptLines(0.05)], seed=21)
        path = write_jsonl(tmp_path / "corrupt.jsonl", corrupted)
        dataset = load_traceroutes(path, strict=False)
        assert log.count("corrupt-lines") > 0
        assert dataset.quality.dropped_count(
            DropReason.CORRUPT_LINE
        ) == log.count("corrupt-lines")
        assert len(dataset) == len(records) - log.count("corrupt-lines")

    def test_duplicates_match_loader_drops(self, clean_campaign, tmp_path):
        records, _, _ = clean_campaign
        out, log = inject_records(records, [DuplicateRecords(0.03)],
                                  seed=21)
        path = write_jsonl(
            tmp_path / "dup.jsonl", [json.dumps(r) for r in out]
        )
        dataset = load_traceroutes(path, strict=False)
        assert log.count("duplicates") > 0
        assert dataset.quality.dropped_count(
            DropReason.DUPLICATE_RECORD
        ) == log.count("duplicates")
        assert len(dataset) == len(records)

    def test_garbage_rtts_match_loader_degrades(self, clean_campaign,
                                                tmp_path):
        records, _, _ = clean_campaign
        out, log = inject_records(records, [GarbageRTT(0.005)], seed=21)
        path = write_jsonl(
            tmp_path / "garbage.jsonl", [json.dumps(r) for r in out]
        )
        dataset = load_traceroutes(path, strict=False)
        assert log.count("garbage-rtt") > 0
        assert dataset.quality.degraded_count(
            DropReason.GARBAGE_RTT
        ) == log.count("garbage-rtt")
        assert len(dataset) == len(records)

    def test_drop_loss_matches_record_count(self, clean_campaign,
                                            tmp_path):
        records, _, _ = clean_campaign
        out, log = inject_records(records, [DropRecords(0.06)], seed=21)
        path = write_jsonl(
            tmp_path / "loss.jsonl", [json.dumps(r) for r in out]
        )
        dataset = load_traceroutes(path, strict=False)
        assert len(dataset) == len(records) - log.count("drop-records")
        # Loss is invisible to the loader (nothing to drop) — the
        # ledger stays clean; the gap shows up downstream as bins with
        # fewer traceroutes.
        assert dataset.quality.total_dropped == 0


class TestStreamChaos:
    """All injectors at once at realistic rates."""

    RECORD_INJECTORS = [
        MissingReplies(0.03),
        TruncateTraceroutes(0.02),
        RateLimitPrivateHops(0.02),
        GarbageRTT(0.01),
        DuplicateRecords(0.02),
        ReorderRecords(0.03),
        ClockSkew(probe_rate=0.2, max_skew_seconds=600.0),
        ProbeChurn(probe_rate=0.4, outage_fraction=0.15),
        DropRecords(0.04),
    ]

    @pytest.fixture(scope="class")
    def chaotic_load(self, clean_campaign, tmp_path_factory):
        records, _, clean = clean_campaign
        log = FaultLog()
        out, _ = inject_records(
            records, self.RECORD_INJECTORS, seed=99, log=log
        )
        lines, _ = inject_lines(
            [json.dumps(r) for r in out], [CorruptLines(0.01)],
            seed=100, log=log,
        )
        path = write_jsonl(
            tmp_path_factory.mktemp("chaos") / "storm.jsonl", lines
        )
        dataset = load_traceroutes(path, strict=False)
        return records, log, dataset, clean

    def test_loss_is_realistic(self, chaotic_load):
        records, log, dataset, _ = chaotic_load
        lost = log.count("probe-churn") + log.count("drop-records")
        assert lost >= 0.05 * len(records)
        assert len(dataset) <= 0.95 * len(records)

    def test_ledger_bounds_the_damage(self, chaotic_load):
        records, log, dataset, _ = chaotic_load
        quality = dataset.quality
        # Every corrupted line is either dropped as corrupt or — when
        # corruption hit a line we can't even count — missing; never
        # silently parsed.
        assert quality.dropped_count(DropReason.CORRUPT_LINE) <= (
            log.count("corrupt-lines")
        )
        assert quality.dropped_count(DropReason.CORRUPT_LINE) > 0
        # Duplicates dropped never exceed duplicates injected.
        assert quality.dropped_count(DropReason.DUPLICATE_RECORD) <= (
            log.count("duplicates")
        )
        # Garbage RTTs: every one that survived loss was coerced.
        assert quality.degraded_count(DropReason.GARBAGE_RTT) <= (
            log.count("garbage-rtt")
        )
        assert quality.degraded_count(DropReason.GARBAGE_RTT) > 0
        # Conservation: lines in = records kept + drops.
        assert quality.total_ingested == (
            len(dataset) + quality.total_dropped
        )

    def test_pipeline_completes_and_still_detects(self, chaotic_load):
        _, _, dataset, clean = chaotic_load
        grid = TimeGrid(PERIOD)
        dataset.probe_meta.update(clean.probe_meta)
        estimated = estimate_dataset(
            dataset.results, grid, probe_meta=dataset.probe_meta,
            quality=dataset.quality,
        )
        signal = aggregate_population(estimated)
        classification = classify_signal(
            signal.delay_ms, grid.bin_seconds
        )
        # The congested ISP still reads congested through the storm.
        assert classification.severity.is_reported


class TestSurveyChaos:
    """Survey-level chaos: partial results, isolated failures."""

    @pytest.fixture(scope="class")
    def chaotic_survey(self):
        from repro.scenarios.worldsurvey import (
            SurveyASSpec,
            run_survey_period,
        )

        def spec(index, intent, technology, peak, service, country="JP"):
            return SurveyASSpec(
                asn=65000 + index, name=f"chaos-{index}", country=country,
                subscribers=500_000, intent=intent, technology=technology,
                peak_utilization=peak, service_time_ms=service,
                probe_count=5, lockdown_daytime_boost=0.0,
                lockdown_evening_boost=0.0,
            )

        legacy = AccessTechnology.FTTH_PPPOE_LEGACY
        own = AccessTechnology.FTTH_OWN
        congested = [
            spec(0, "severe", legacy, 0.990, 0.60),
            spec(1, "severe", legacy, 0.985, 0.55),
            spec(2, "mild", legacy, 0.975, 0.40, country="US"),
            spec(3, "mild", legacy, 0.970, 0.38),
            spec(4, "severe", legacy, 0.988, 0.50, country="US"),
            spec(5, "mild", legacy, 0.972, 0.42),
        ]
        quiet = [
            spec(10, "flat", own, 0.40, None),
            spec(11, "flat", own, 0.45, None, country="DE"),
            spec(12, "flat", own, 0.35, None),
            spec(13, "flat", own, 0.50, None, country="FR"),
        ]
        poisoned_asn = quiet[0].asn
        period = MeasurementPeriod("chaos-7d", dt.datetime(2019, 9, 2), 7)
        fault_log = FaultLog()
        result, _world = run_survey_period(
            congested + quiet, period, lockdown=False, seed=23,
            dataset_faults=[
                BinLoss(0.06),
                NaNBursts(probe_rate=0.25, max_run_bins=24),
                PoisonAS(asns=[poisoned_asn]),
            ],
            fault_seed=5, fault_log=fault_log,
        )
        return result, fault_log, congested, poisoned_asn

    def test_survey_is_partial_not_crashed(self, chaotic_survey):
        result, _, congested, poisoned_asn = chaotic_survey
        assert result.monitored_count >= len(congested)
        assert poisoned_asn not in result.reports

    def test_poisoned_as_in_failure_log(self, chaotic_survey):
        result, fault_log, _, poisoned_asn = chaotic_survey
        assert result.failed_asns() == [poisoned_asn]
        failure = result.failures[poisoned_asn]
        assert failure.error == "EmptyPopulationError"
        assert str(poisoned_asn) in str(failure)
        # Ledger and ground truth agree exactly.
        assert result.quality.dropped_count(
            DropReason.AS_FAILURE
        ) == fault_log.count("poison-as") == 1

    def test_congested_ases_still_detected(self, chaotic_survey):
        result, _, congested, _ = chaotic_survey
        truth = {s.asn for s in congested}
        detected = truth & set(result.reported_asns())
        assert len(detected) >= int(np.ceil(0.95 * len(truth)))

    def test_bin_loss_ground_truth_recorded(self, chaotic_survey):
        _, fault_log, _, _ = chaotic_survey
        assert fault_log.count("bin-loss") > 0
        assert fault_log.count("nan-bursts") > 0
