"""Unit tests for the windowed transient link-fault injectors."""

import datetime as dt

from repro.atlas.traceroute import (
    Hop,
    MeasurementDataset,
    Reply,
    TracerouteResult,
)
from repro.faults import (
    DelaySurge,
    LinkFault,
    NextHopFlip,
    inject_transients,
    score_events,
)
from repro.timebase import MeasurementPeriod, TimeGrid

GRID = TimeGrid(
    MeasurementPeriod("transient", dt.datetime(2019, 9, 2), 1), 1800
)


def trace(timestamp, addresses, rtts=None, prb_id=1):
    rtts = rtts or [float(10 * (i + 1)) for i in range(len(addresses))]
    hops = tuple(
        Hop(hop=i + 1, replies=(Reply(addr, rtt),))
        for i, (addr, rtt) in enumerate(zip(addresses, rtts))
    )
    return TracerouteResult(
        prb_id=prb_id, msm_id=1, timestamp=timestamp,
        src_address="192.168.1.2", from_address="60.0.0.9",
        dst_address="9.9.9.9", hops=hops,
    )


def dataset(*results):
    ds = MeasurementDataset()
    ds.extend(results)
    return ds


PATH = ["10.0.0.1", "10.0.0.2", "10.0.0.3"]


class TestDelaySurge:
    def test_surge_hits_far_and_downstream(self):
        surge = DelaySurge("10.0.0.1", "10.0.0.2", 0.0, 3600.0,
                           surge_ms=50.0)
        out, log = inject_transients(
            dataset(trace(100.0, PATH)), [surge]
        )
        [result] = out.for_probe(1)
        assert result.hops[0].rtts == [10.0]          # near untouched
        assert result.hops[1].rtts == [70.0]          # far +50
        assert result.hops[2].rtts == [80.0]          # downstream +50
        assert len(log.events) == 1

    def test_outside_window_untouched(self):
        surge = DelaySurge("10.0.0.1", "10.0.0.2", 0.0, 50.0)
        out, log = inject_transients(
            dataset(trace(100.0, PATH)), [surge]
        )
        [result] = out.for_probe(1)
        assert result.hops[1].rtts == [20.0]
        assert not log.events

    def test_non_crossing_path_untouched(self):
        surge = DelaySurge("10.0.0.9", "10.0.0.2", 0.0, 3600.0)
        out, _log = inject_transients(
            dataset(trace(100.0, PATH)), [surge]
        )
        assert out.for_probe(1)[0] == trace(100.0, PATH)

    def test_jitter_is_seed_deterministic(self):
        surge = DelaySurge("10.0.0.1", "10.0.0.2", 0.0, 3600.0,
                           surge_ms=50.0, jitter_ms=2.0)
        runs = [
            inject_transients(
                dataset(trace(100.0, PATH)), [surge], seed=3
            )[0].for_probe(1)[0]
            for _ in range(2)
        ]
        assert runs[0] == runs[1]
        assert runs[0].hops[1].rtts != [70.0]  # jitter applied


class TestNextHopFlip:
    def test_flip_readdresses_without_touching_rtts(self):
        flip = NextHopFlip("10.0.0.1", "10.0.0.2", "10.0.0.7",
                           0.0, 3600.0)
        out, log = inject_transients(
            dataset(trace(100.0, PATH)), [flip]
        )
        [result] = out.for_probe(1)
        assert result.hops[1].responding_address == "10.0.0.7"
        assert result.hops[1].rtts == [20.0]
        assert len(log.events) == 1

    def test_other_links_untouched(self):
        flip = NextHopFlip("10.0.0.2", "10.0.0.3", "10.0.0.7",
                           0.0, 3600.0)
        out, _log = inject_transients(
            dataset(trace(100.0, PATH)), [flip]
        )
        [result] = out.for_probe(1)
        assert result.hops[1].responding_address == "10.0.0.2"
        assert result.hops[2].responding_address == "10.0.0.7"

    def test_input_dataset_unmodified(self):
        original = dataset(trace(100.0, PATH))
        flip = NextHopFlip("10.0.0.1", "10.0.0.2", "10.0.0.7",
                           0.0, 3600.0)
        inject_transients(original, [flip])
        assert original.for_probe(1)[0].hops[1].responding_address == \
            "10.0.0.2"


class TestGroundTruth:
    def test_fault_bins_are_fully_covered_bins_only(self):
        fault = LinkFault("delay", "a", "b", 1800.0, 5400.0)
        assert fault.bins(GRID) == [1, 2]
        partial = LinkFault("delay", "a", "b", 900.0, 5400.0)
        assert partial.bins(GRID) == [1, 2]  # bin 0 only half-covered

    def test_score_events_exact_match(self):
        faults = [LinkFault("delay", "a", "b", 0.0, 3600.0)]
        events = [
            {"kind": "delay", "link": "a--b", "bin": 0},
            {"kind": "delay", "link": "a--b", "bin": 1},
        ]
        score = score_events(events, faults, GRID)
        assert score == {
            "precision": 1.0, "recall": 1.0,
            "predicted": 2, "truth": 2, "hits": 2,
        }

    def test_score_penalizes_false_positives_and_misses(self):
        faults = [LinkFault("forwarding", "a", "b", 0.0, 3600.0)]
        events = [
            {"kind": "forwarding", "near": "a", "bin": 0},
            {"kind": "forwarding", "near": "z", "bin": 0},
        ]
        score = score_events(events, faults, GRID)
        assert score["precision"] == 0.5
        assert score["recall"] == 0.5

    def test_no_events_no_faults_is_perfect(self):
        score = score_events([], [], GRID)
        assert score["precision"] == 1.0
        assert score["recall"] == 1.0
