"""Tests for the fault injectors and their ground-truth accounting."""

import copy
import json
import math

import numpy as np
import pytest

from repro.faults import (
    BinLoss,
    ClockSkew,
    CorruptLines,
    DropRecords,
    DuplicateRecords,
    FaultLog,
    GarbageRTT,
    MissingReplies,
    NaNBursts,
    PoisonAS,
    ProbeChurn,
    RateLimitPrivateHops,
    ReorderRecords,
    TruncateTraceroutes,
    corrupt_jsonl,
    inject_dataset,
    inject_lines,
    inject_records,
)


def make_records(num_probes=3, per_probe=40, interval=300.0):
    """Atlas-schema records with private + public hops and 3 replies."""
    records = []
    for prb_id in range(1, num_probes + 1):
        for index in range(per_probe):
            records.append({
                "prb_id": prb_id,
                "msm_id": 5001,
                "timestamp": index * interval + prb_id,
                "src_addr": "192.168.1.10",
                "from": f"20.0.{prb_id}.5",
                "dst_addr": "192.5.0.1",
                "af": 4,
                "type": "traceroute",
                "result": [
                    {"hop": hop, "result": [
                        {"from": address, "rtt": rtt} for _ in range(3)
                    ]}
                    for hop, address, rtt in (
                        (1, "192.168.1.1", 0.8),
                        (2, "10.10.0.1", 4.0),
                        (3, "60.0.0.1", 12.0),
                    )
                ],
            })
    return records


def reply_count(records, predicate):
    return sum(
        1
        for record in records
        for hop in record["result"]
        for reply in hop["result"]
        if predicate(reply)
    )


class TestDeterminism:
    def test_same_seed_same_output(self):
        records = make_records()
        injectors = [
            MissingReplies(0.05), TruncateTraceroutes(0.05),
            GarbageRTT(0.05), DuplicateRecords(0.05),
            ReorderRecords(0.05), DropRecords(0.05),
        ]
        out1, log1 = inject_records(records, injectors, seed=11)
        out2, log2 = inject_records(records, injectors, seed=11)
        # json text compares NaN RTTs by representation, not identity.
        assert json.dumps(out1) == json.dumps(out2)
        assert log1.counts == log2.counts

    def test_different_seed_differs(self):
        records = make_records()
        out1, _ = inject_records(records, [DropRecords(0.2)], seed=1)
        out2, _ = inject_records(records, [DropRecords(0.2)], seed=2)
        assert out1 != out2

    def test_input_not_mutated(self):
        records = make_records(num_probes=1, per_probe=10)
        pristine = copy.deepcopy(records)
        inject_records(records, [
            MissingReplies(0.5), GarbageRTT(0.5),
            RateLimitPrivateHops(0.5), TruncateTraceroutes(0.5),
            ClockSkew(probe_rate=1.0),
        ], seed=0)
        assert records == pristine


class TestRecordInjectors:
    def test_missing_replies_counts_blanked(self):
        records = make_records()
        out, log = inject_records(records, [MissingReplies(0.1)], seed=3)
        blanked = reply_count(out, lambda r: "x" in r)
        assert blanked == log.count("missing-replies") > 0

    def test_truncate_shortens_hop_lists(self):
        records = make_records()
        out, log = inject_records(
            records, [TruncateTraceroutes(0.2)], seed=3
        )
        short = sum(1 for r in out if len(r["result"]) < 3)
        assert short == log.count("truncate") > 0

    def test_rate_limit_silences_private_hops(self):
        records = make_records()
        out, log = inject_records(
            records, [RateLimitPrivateHops(0.2)], seed=3
        )
        hit = log.count("rate-limit-private")
        assert hit > 0
        dark = 0
        for record in out:
            for hop in record["result"]:
                if all("x" in reply for reply in hop["result"]):
                    dark += 1
        # Each hit record has both its private hops (192.168/10.) silenced.
        assert dark == 2 * hit

    def test_garbage_rtt_kinds(self):
        records = make_records()
        out, log = inject_records(records, [GarbageRTT(0.1)], seed=5)

        def garbage(reply):
            if "rtt" not in reply:
                return False
            rtt = reply["rtt"]
            if isinstance(rtt, str):
                return True
            return not math.isfinite(rtt) or rtt < 0 or rtt > 1e6

        assert reply_count(out, garbage) == log.count("garbage-rtt") > 0

    def test_duplicates_inserted_adjacent(self):
        records = make_records()
        out, log = inject_records(records, [DuplicateRecords(0.1)], seed=3)
        assert len(out) == len(records) + log.count("duplicates")
        assert log.count("duplicates") > 0
        adjacent = sum(1 for a, b in zip(out, out[1:]) if a == b)
        assert adjacent == log.count("duplicates")

    def test_reorder_preserves_multiset(self):
        records = make_records()
        out, log = inject_records(records, [ReorderRecords(0.2)], seed=3)
        assert log.count("reorder") > 0
        key = lambda r: (r["prb_id"], r["timestamp"])  # noqa: E731
        assert sorted(out, key=key) == sorted(records, key=key)
        assert out != records

    def test_clock_skew_shifts_whole_probe(self):
        records = make_records(num_probes=4)
        out, log = inject_records(
            records, [ClockSkew(probe_rate=0.5, max_skew_seconds=900)],
            seed=3,
        )
        skewed = set(log.keys("clock-skew"))
        assert 0 < len(skewed) < 4
        for original, mutated in zip(records, out):
            delta = mutated["timestamp"] - original["timestamp"]
            if original["prb_id"] in skewed:
                assert delta != 0 and abs(delta) <= 900
            else:
                assert delta == 0

    def test_probe_churn_drops_contiguous_burst(self):
        records = make_records(num_probes=4, per_probe=60)
        out, log = inject_records(
            records, [ProbeChurn(probe_rate=0.5, outage_fraction=0.3)],
            seed=3,
        )
        dropped = log.count("probe-churn")
        assert dropped > 0
        assert len(out) == len(records) - dropped
        # Each churned probe loses one contiguous timestamp window.
        for prb_id in log.keys("probe-churn"):
            kept = [r["timestamp"] for r in out if r["prb_id"] == prb_id]
            lost = sorted(
                r["timestamp"] for r in records
                if r["prb_id"] == prb_id and r["timestamp"] not in kept
            )
            assert lost == sorted(lost)
            gaps = [b - a for a, b in zip(lost, lost[1:])]
            assert all(g == 300.0 for g in gaps)

    def test_drop_records_counts_loss(self):
        records = make_records()
        out, log = inject_records(records, [DropRecords(0.1)], seed=3)
        assert len(out) == len(records) - log.count("drop-records")
        assert log.count("drop-records") > 0


class TestLineInjectors:
    def test_corrupted_lines_are_invalid_json(self):
        lines = [json.dumps(r) for r in make_records()]
        out, log = inject_lines(lines, [CorruptLines(0.2)], seed=9)
        assert len(out) == len(lines)
        hit = log.count("corrupt-lines")
        assert hit > 0
        bad = 0
        for line in out:
            try:
                json.loads(line)
            except json.JSONDecodeError:
                bad += 1
        assert bad == hit

    def test_every_mode_invalid(self):
        injector = CorruptLines(1.0)
        rng = np.random.default_rng(0)
        line = json.dumps(make_records(1, 1)[0])
        for _ in range(50):
            corrupted = injector.corrupt_one(line, rng)
            assert corrupted
            with pytest.raises(json.JSONDecodeError):
                json.loads(corrupted)

    def test_corrupt_jsonl_roundtrip(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        lines = [json.dumps(r) for r in make_records()]
        path.write_text("\n".join(lines) + "\n")
        log = corrupt_jsonl(path, rate=0.3, seed=4)
        assert log.count("corrupt-lines") > 0
        assert len(path.read_text().splitlines()) == len(lines)


class TestFaultLog:
    def test_merge_and_summary(self):
        log = FaultLog()
        log.record("a", n=2, key=1)
        other = FaultLog()
        other.record("a", n=1)
        other.record("b", key=7)
        log.merge(other)
        assert log.count("a") == 3
        assert log.count() == 4
        assert log.keys("b") == [7]
        assert log.summary() == "faults: a=3 b=1"

    def test_empty_summary(self):
        assert FaultLog().summary() == "faults: none injected"


class TestDatasetInjectors:
    def build_dataset(self, num_asns=3, probes_per_asn=3, days=2):
        import datetime as dt

        from repro.atlas import ProbeMeta
        from repro.core import LastMileDataset, ProbeBinSeries
        from repro.timebase import MeasurementPeriod, TimeGrid

        period = MeasurementPeriod("faults", dt.datetime(2019, 9, 2), days)
        grid = TimeGrid(period)
        dataset = LastMileDataset(grid=grid)
        prb_id = 1
        for asn in range(100, 100 + num_asns):
            for _ in range(probes_per_asn):
                dataset.add(
                    ProbeBinSeries(
                        prb_id=prb_id,
                        median_rtt_ms=np.full(grid.num_bins, 5.0),
                        traceroute_counts=np.full(grid.num_bins, 24),
                    ),
                    meta=ProbeMeta(
                        prb_id=prb_id, asn=asn, is_anchor=False,
                        public_address="20.0.0.1",
                    ),
                )
                prb_id += 1
        return dataset

    def test_bin_loss_exact_accounting(self):
        dataset = self.build_dataset()
        _, log = inject_dataset(dataset, [BinLoss(0.1)], seed=2)
        erased = sum(
            int(np.isnan(series.median_rtt_ms).sum())
            for series in dataset.series.values()
        )
        assert erased == log.count("bin-loss") > 0
        for series in dataset.series.values():
            nan = np.isnan(series.median_rtt_ms)
            assert np.all(series.traceroute_counts[nan] == 0)

    def test_nan_bursts_are_contiguous(self):
        dataset = self.build_dataset()
        _, log = inject_dataset(
            dataset, [NaNBursts(probe_rate=0.5, max_run_bins=10)], seed=2
        )
        assert log.count("nan-bursts") > 0
        for prb_id in log.keys("nan-bursts"):
            nan = np.isnan(dataset.series[prb_id].median_rtt_ms)
            indices = np.flatnonzero(nan)
            assert indices.size > 0
            assert np.all(np.diff(indices) == 1)
            # Counts untouched: traceroutes arrived, samples unusable.
            assert np.all(
                dataset.series[prb_id].traceroute_counts[nan] == 24
            )

    def test_poison_as_keeps_metadata(self):
        dataset = self.build_dataset()
        _, log = inject_dataset(dataset, [PoisonAS(count=1)], seed=2)
        [asn] = log.keys("poison-as")
        poisoned_probes = [
            prb_id for prb_id, meta in dataset.probe_meta.items()
            if meta.asn == asn
        ]
        assert len(poisoned_probes) == 3
        for prb_id in poisoned_probes:
            assert prb_id not in dataset.series
            assert prb_id in dataset.probe_meta

    def test_poison_as_explicit_target(self):
        dataset = self.build_dataset()
        inject_dataset(dataset, [PoisonAS(asns=[101])], seed=0)
        remaining = {
            meta.asn for prb_id, meta in dataset.probe_meta.items()
            if prb_id in dataset.series
        }
        assert remaining == {100, 102}
