"""Filesystem fault injectors: crash plans, recording, at-rest damage."""

from pathlib import Path

import pytest

from repro.faults import (
    CrashPlan,
    CrashingIO,
    FaultLog,
    FsFaultKey,
    OpRecord,
    RecordingIO,
    SimulatedCrash,
    flip_bit,
    tear_file,
)
from repro.store.io import REAL_IO, is_tmp, tmp_name


class TestStoreIO:
    def test_write_atomic_lands_whole(self, tmp_path):
        target = tmp_path / "deep" / "file.json"
        REAL_IO.write_atomic(target, b"payload")
        assert target.read_bytes() == b"payload"
        # No temp residue after a clean atomic write.
        assert [p for p in target.parent.iterdir()] == [target]

    def test_remove_idempotent(self, tmp_path):
        missing = tmp_path / "never-existed"
        REAL_IO.remove(missing)  # must not raise

    def test_tmp_naming_roundtrip(self, tmp_path):
        target = tmp_path / "file.json"
        tmp = tmp_name(target)
        assert is_tmp(tmp)
        assert not is_tmp(target)


class TestRecordingIO:
    def test_records_the_op_sequence(self, tmp_path):
        io = RecordingIO()
        io.write_atomic(tmp_path / "a.json", b"xyz")
        io.remove(tmp_path / "a.json")
        kinds = [op.kind for op in io.ops]
        assert kinds == ["write", "replace", "remove"]
        assert io.ops[0].size == 3
        assert (tmp_path / "a.json").exists() is False

    def test_op_record_paths_name_final_target(self, tmp_path):
        io = RecordingIO()
        io.write_atomic(tmp_path / "a.json", b"xyz")
        write, replace = io.ops
        assert is_tmp(Path(write.path))
        assert Path(replace.path) == tmp_path / "a.json"


class TestCrashingIO:
    def test_crash_before_replace_leaves_torn_tmp(self, tmp_path):
        target = tmp_path / "a.json"
        io = CrashingIO(CrashPlan(op_index=1))
        with pytest.raises(SimulatedCrash):
            io.write_atomic(target, b"0123456789")
        assert io.crashed
        assert not target.exists()
        leftovers = list(tmp_path.iterdir())
        assert len(leftovers) == 1 and is_tmp(leftovers[0])

    def test_torn_write_keeps_exact_prefix(self, tmp_path):
        target = tmp_path / "a.json"
        io = CrashingIO(CrashPlan(op_index=0, byte_offset=4))
        with pytest.raises(SimulatedCrash):
            io.write_atomic(target, b"0123456789")
        (leftover,) = list(tmp_path.iterdir())
        assert leftover.read_bytes() == b"0123"

    def test_zero_offset_write_leaves_nothing(self, tmp_path):
        io = CrashingIO(CrashPlan(op_index=0, byte_offset=0))
        with pytest.raises(SimulatedCrash):
            io.write_atomic(tmp_path / "a.json", b"0123456789")
        assert list(tmp_path.iterdir()) == []

    def test_plan_beyond_run_never_fires(self, tmp_path):
        io = CrashingIO(CrashPlan(op_index=99))
        io.write_atomic(tmp_path / "a.json", b"data")
        assert not io.crashed
        assert (tmp_path / "a.json").read_bytes() == b"data"

    def test_simulated_crash_is_not_an_exception(self):
        # `except Exception` must never swallow a crash.
        assert not issubclass(SimulatedCrash, Exception)

    def test_crash_lands_in_fault_log(self, tmp_path):
        log = FaultLog()
        io = CrashingIO(CrashPlan(op_index=0), log=log)
        with pytest.raises(SimulatedCrash):
            io.write_atomic(tmp_path / "a.json", b"data")
        assert log.count("fs-crash") == 1

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            CrashPlan(op_index=0, mode="explode")


class TestAtRestCorruption:
    def test_flip_bit_changes_exactly_one_bit(self, tmp_path):
        target = tmp_path / "blob"
        target.write_bytes(bytes(range(32)))
        before = target.read_bytes()
        offset, bit = flip_bit(target, key=FsFaultKey(7))
        after = target.read_bytes()
        assert len(after) == len(before)
        diff = [
            i for i, (a, b) in enumerate(zip(before, after)) if a != b
        ]
        assert diff == [offset]
        assert before[offset] ^ after[offset] == 1 << bit

    def test_flip_bit_content_keyed_determinism(self, tmp_path):
        a = tmp_path / "blob"
        a.write_bytes(bytes(range(64)))
        first = flip_bit(a, key=FsFaultKey(7))
        a.write_bytes(bytes(range(64)))
        second = flip_bit(a, key=FsFaultKey(7))
        assert first == second
        a.write_bytes(bytes(range(64)))
        other_seed = flip_bit(a, key=FsFaultKey(8))
        other_path = tmp_path / "blob2"
        other_path.write_bytes(bytes(range(64)))
        other_file = flip_bit(other_path, key=FsFaultKey(7))
        assert other_seed != first or other_file != first

    def test_flip_bit_refuses_empty_file(self, tmp_path):
        target = tmp_path / "empty"
        target.write_bytes(b"")
        with pytest.raises(ValueError):
            flip_bit(target)

    def test_tear_file_keeps_prefix(self, tmp_path):
        target = tmp_path / "blob"
        target.write_bytes(b"0123456789")
        kept = tear_file(target, keep=3)
        assert kept == 3
        assert target.read_bytes() == b"012"

    def test_tear_file_logs(self, tmp_path):
        log = FaultLog()
        target = tmp_path / "blob"
        target.write_bytes(b"0123456789")
        tear_file(target, keep=5, log=log)
        assert log.count("fs-tear") == 1
