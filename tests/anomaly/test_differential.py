"""The tentpole determinism contract: anomaly reports are
byte-identical across kernel backends and across shard counts."""

import numpy as np
import pytest

from repro.anomaly import detect_anomalies, link_bin_medians, scan_links
from repro.core.kernels import available_kernels
from repro.parallel.cache import canonical_json

pytestmark = pytest.mark.skipif(
    "vector" not in available_kernels(),
    reason="vector backend unavailable",
)


def report_bytes(sim, grid, **kwargs):
    report = detect_anomalies(
        sim[0].results, grid, period_name="simulated", **kwargs
    )
    return canonical_json(report.payload)


class TestByteIdentity:
    def test_reference_vs_vector(self, sim, grid):
        assert report_bytes(sim, grid, kernels="reference") == \
            report_bytes(sim, grid, kernels="vector")

    def test_serial_vs_sharded(self, sim, grid):
        serial = report_bytes(sim, grid, kernels="reference")
        for shards in (2, 3):
            assert report_bytes(
                sim, grid, kernels="reference", shards=shards
            ) == serial

    def test_sharded_vector_vs_serial_reference(self, sim, grid):
        # The full cross: both axes at once.
        assert report_bytes(sim, grid, kernels="reference") == \
            report_bytes(sim, grid, kernels="vector", shards=3)


class TestKernelMedians:
    def test_backends_agree_exactly(self, sim, grid):
        scan = scan_links(sim[0].results, grid)
        ids_ref, med_ref, counts_ref = link_bin_medians(
            scan, kernels="reference"
        )
        ids_vec, med_vec, counts_vec = link_bin_medians(
            scan, kernels="vector"
        )
        assert ids_ref == ids_vec
        assert np.array_equal(counts_ref, counts_vec)
        assert np.array_equal(med_ref, med_vec, equal_nan=True)

    def test_min_samples_gate(self, sim, grid):
        scan = scan_links(sim[0].results, grid)
        _ids, medians, counts = link_bin_medians(
            scan, min_samples=10_000, kernels="reference"
        )
        assert np.all(np.isnan(medians))
        assert counts.sum() > 0
