"""Detection quality: silent on healthy worlds, sharp on faulted ones."""

import pytest

from repro.anomaly import detect_anomalies
from repro.faults import score_events
from repro.obs import observed


@pytest.fixture(scope="module")
def healthy_report(sim, grid):
    return detect_anomalies(
        sim[0].results, grid, period_name="simulated"
    )


@pytest.fixture(scope="module")
def faulted_report(faulted, grid):
    return detect_anomalies(
        faulted[0].results, grid, period_name="simulated"
    )


class TestHealthyWorld:
    def test_no_delay_anomalies(self, healthy_report):
        assert healthy_report.events_of_kind("delay") == []

    def test_no_forwarding_anomalies(self, healthy_report):
        assert healthy_report.events_of_kind("forwarding") == []

    def test_links_observed(self, healthy_report):
        assert healthy_report.payload["links_total"] > 50
        assert healthy_report.payload["reference_source"] == "self"


class TestFaultedWorld:
    def test_precision_and_recall(self, faulted_report, injectors, grid):
        faults = [
            fault for injector in injectors
            for fault in injector.ground_truth()
        ]
        score = score_events(faulted_report.events, faults, grid)
        assert score["precision"] >= 0.9, score
        assert score["recall"] >= 0.9, score

    def test_surge_pinned_to_exactly_the_surged_link(
        self, faulted_report
    ):
        # The surge raises RTTs on every hop past the link, but the
        # differential cancels downstream: only the surged link is
        # flagged.
        assert faulted_report.anomalous_links == [
            "60.0.0.1--60.0.0.2"
        ]

    def test_flip_detected_as_forwarding_only(self, faulted_report):
        forwarding = faulted_report.events_of_kind("forwarding")
        assert forwarding, "next-hop flip not detected"
        assert {e["near"] for e in forwarding} == {"60.0.0.2"}
        assert all(
            e["observed"] == "80.0.0.58" and e["expected"] == "80.0.0.57"
            for e in forwarding
        )

    def test_surge_direction_and_gap(self, faulted_report):
        delay = faulted_report.events_of_kind("delay")
        assert delay
        assert all(e["direction"] == "high" for e in delay)
        assert all(e["gap_ms"] > 2.0 for e in delay)


class TestObservability:
    def test_counters_and_span(self, faulted, grid):
        with observed() as obs:
            report = detect_anomalies(
                faulted[0].results, grid, period_name="simulated"
            )
        links = obs.metrics.counter("anomaly_links_total", "")
        assert links.value() == report.payload["links_total"]
        events = obs.metrics.counter(
            "anomaly_events_total", "", ("kind",)
        )
        assert events.value(kind="delay") == len(
            report.events_of_kind("delay")
        )
        assert events.value(kind="forwarding") == len(
            report.events_of_kind("forwarding")
        )
        assert obs.tracer.find("anomaly")


class TestExternalReference:
    def test_healthy_reference_sees_faults(
        self, sim, faulted, grid
    ):
        from repro.anomaly import reference_from_payload

        healthy = detect_anomalies(
            sim[0].results, grid, period_name="baseline"
        )
        reference = reference_from_payload(healthy.payload)
        judged = detect_anomalies(
            faulted[0].results, grid, period_name="faulted",
            reference=reference,
        )
        assert judged.payload["reference_source"] == "period:baseline"
        assert "60.0.0.1--60.0.0.2" in judged.anomalous_links
