"""Unit tests for per-link differential extraction on hand-built paths."""

import datetime as dt

import pytest

from repro.anomaly import (
    link_id,
    link_samples,
    next_hop_pairs,
    scan_links,
    split_link_id,
)
from repro.atlas.traceroute import Hop, Reply, TracerouteResult
from repro.quality import DataQualityReport, DropReason
from repro.timebase import MeasurementPeriod, TimeGrid


def trace(timestamp, path, prb_id=1, dst="9.9.9.9"):
    """Build a traceroute from [(address_or_None, [rtts...]), ...]."""
    hops = []
    for number, (address, rtts) in enumerate(path, start=1):
        if address is None:
            replies = (Reply.timeout(),)
        else:
            replies = tuple(Reply(address, rtt) for rtt in rtts)
        hops.append(Hop(hop=number, replies=replies))
    return TracerouteResult(
        prb_id=prb_id, msm_id=5001, timestamp=timestamp,
        src_address="192.168.1.2", from_address="60.0.0.9",
        dst_address=dst, hops=tuple(hops),
    )


GRID = TimeGrid(
    MeasurementPeriod("links", dt.datetime(2019, 9, 2), 1), 1800
)


class TestLinkId:
    def test_round_trip(self):
        assert split_link_id(link_id("10.0.0.1", "10.0.0.2")) == (
            "10.0.0.1", "10.0.0.2"
        )

    @pytest.mark.parametrize("bad", ["", "10.0.0.1", "a--", "--b",
                                     "a--b--c"])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            split_link_id(bad)


class TestLinkSamples:
    def test_pairwise_differentials(self):
        result = trace(0.0, [
            ("10.0.0.1", [1.0, 2.0]),
            ("10.0.0.2", [5.0, 6.0, 7.0]),
        ])
        [(key, samples)] = link_samples(result)
        assert key == ("10.0.0.1", "10.0.0.2")
        # 3 far x 2 near pairwise differences.
        assert sorted(samples) == [3.0, 4.0, 4.0, 5.0, 5.0, 6.0]

    def test_silent_hop_spanned(self):
        result = trace(0.0, [
            ("10.0.0.1", [1.0]),
            (None, []),
            ("10.0.0.3", [9.0]),
        ])
        [(key, samples)] = link_samples(result)
        assert key == ("10.0.0.1", "10.0.0.3")
        assert samples == [8.0]

    def test_routing_loop_skipped(self):
        result = trace(0.0, [
            ("10.0.0.1", [1.0]),
            ("10.0.0.1", [2.0]),
            ("10.0.0.2", [3.0]),
        ])
        keys = [key for key, _ in link_samples(result)]
        assert keys == [("10.0.0.1", "10.0.0.2")]

    def test_link_observed_even_without_sane_samples(self):
        # One reply present but insane on the far side: the link is
        # observed (counts toward bin sanity) with no samples.
        result = trace(0.0, [
            ("10.0.0.1", [1.0]),
            ("10.0.0.2", [float("nan")]),
        ])
        [(key, samples)] = link_samples(result)
        assert key == ("10.0.0.1", "10.0.0.2")
        assert samples == []


class TestNextHopPairs:
    def test_keyed_per_destination(self):
        result = trace(0.0, [
            ("20.0.0.1", [1.0]), ("30.0.0.1", [2.0]),
        ], dst="9.9.9.9")
        assert next_hop_pairs(result) == [
            ("20.0.0.1", "9.9.9.9", "30.0.0.1")
        ]

    def test_private_near_excluded(self):
        result = trace(0.0, [
            ("192.168.1.1", [1.0]),
            ("20.0.0.1", [2.0]),
            ("30.0.0.1", [3.0]),
        ])
        nears = [near for near, _dst, _far in next_hop_pairs(result)]
        assert nears == ["20.0.0.1"]


class TestScan:
    def test_gating_matches_lastmile_semantics(self):
        quality = DataQualityReport()
        results = {1: [
            trace(100.0, [("10.0.0.1", [1.0]), ("10.0.0.2", [2.0])]),
            trace(float("nan"),
                  [("10.0.0.1", [1.0]), ("10.0.0.2", [2.0])]),
            trace(86400.0 * 2,
                  [("10.0.0.1", [1.0]), ("10.0.0.2", [2.0])]),
            trace(200.0, [("10.0.0.1", [1.0]), (None, [])]),
        ]}
        scan = scan_links(results, GRID, quality=quality)
        assert scan.processed == 4
        assert scan.counts[("10.0.0.1", "10.0.0.2")] == {0: 1}
        counted = quality.stages["anomaly-links"]
        assert counted.dropped[DropReason.MALFORMED_RECORD] == 1
        assert counted.dropped[DropReason.OUT_OF_PERIOD] == 1
        assert counted.degraded[DropReason.NO_BOUNDARY] == 1

    def test_sharded_scan_merges_to_serial(self, sim, grid):
        serial = scan_links(sim[0].results, grid)
        sharded = scan_links(sim[0].results, grid, shards=3)
        assert sharded.processed == serial.processed
        assert sharded.counts == serial.counts
        assert sharded.next_hops == serial.next_hops
        # Sample multisets match per (link, bin); order may differ.
        assert sharded.samples.keys() == serial.samples.keys()
        for key, bins in serial.samples.items():
            assert sharded.samples[key].keys() == bins.keys()
            for bin_index, values in bins.items():
                assert sorted(sharded.samples[key][bin_index]) == \
                    sorted(values)
