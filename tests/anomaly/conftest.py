"""Shared fixtures for the anomaly-pinpointing tests.

The simulated world is the expensive part (~1s/probe-day), so the
fault-free campaign and its faulted twin are built once per session
and shared read-only — every consumer treats datasets as immutable,
which the frozen traceroute records enforce anyway.
"""

import datetime as dt

import pytest

from repro.atlas import AtlasPlatform
from repro.faults import DelaySurge, NextHopFlip, inject_transients
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.timebase import MeasurementPeriod, TimeGrid
from repro.topology import ProvisioningPolicy, World

DAY = 86400
BIN_SECONDS = 1800

#: The fault windows, aligned to bin boundaries: a delay surge on the
#: access link during day 1, a next-hop flip near the core on day 2.
SURGE = dict(start_s=DAY + 8 * BIN_SECONDS, end_s=DAY + 14 * BIN_SECONDS)
FLIP = dict(start_s=2 * DAY + 20 * BIN_SECONDS,
            end_s=2 * DAY + 26 * BIN_SECONDS)


def simulate(probes=4, days=3, seed=11, peak=0.7):
    """One healthy simulated campaign (period-relative timestamps)."""
    world = World(seed=seed)
    isp = world.add_isp(
        ASInfo(
            64500, "SimNet", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={
                AccessTechnology.FTTH_PPPOE_LEGACY: peak
            },
            device_spread=0.01,
            load_jitter_std=0.008,
        ),
    )
    world.add_default_targets()
    world.finalize()
    platform = AtlasPlatform(world)
    deployed = platform.deploy_probes_on_isp(isp, probes)
    period = MeasurementPeriod(
        "simulated", dt.datetime(2019, 9, 2), days
    )
    return platform.run_period(period, deployed), period


@pytest.fixture(scope="session")
def sim():
    """(dataset, period) of the fault-free campaign."""
    return simulate()


@pytest.fixture(scope="session")
def grid(sim):
    return TimeGrid(sim[1], BIN_SECONDS)


@pytest.fixture(scope="session")
def injectors(sim):
    """Transient injectors targeting links the campaign really uses."""
    return [
        DelaySurge(
            "60.0.0.1", "60.0.0.2", surge_ms=60.0, jitter_ms=1.0,
            **SURGE,
        ),
        NextHopFlip(
            "60.0.0.2", "80.0.0.57", "80.0.0.58", **FLIP,
        ),
    ]


@pytest.fixture(scope="session")
def faulted(sim, injectors):
    """(dataset, fault_log) with the transient faults injected."""
    return inject_transients(sim[0], injectors, seed=7)
