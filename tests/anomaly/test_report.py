"""AnomalyReport payload round-trips, references, and churn deltas."""

import pytest

from repro.anomaly import (
    AnomalyReport,
    anomaly_deltas,
    merge_references,
    reference_from_payload,
)


def payload(period="p1", events=(), links=None):
    links = links if links is not None else {
        "10.0.0.1--10.0.0.2": {
            "near": "10.0.0.1", "far": "10.0.0.2",
            "samples": 90, "bins": 4, "median_ms": 3.0,
            "band_ms": [2.8, 3.2], "anomalous_bins": [],
            "reference": {
                "median_ms": [3.0, 3.1],
                "low_ms": [2.8, 2.9],
                "high_ms": [3.2, 3.3],
            },
        },
    }
    return {
        "kind": "anomaly-report", "period": period,
        "bin_seconds": 1800, "num_bins": 4, "bins_per_day": 2,
        "confidence": 0.95, "min_samples": 3,
        "forwarding_threshold": 0.5, "min_gap_ms": 2.0,
        "reference_source": "self", "processed": 100,
        "links_total": len(links), "links": links,
        "forwarding": {"10.0.0.1--9.9.9.9": {"10.0.0.2": 30}},
        "events": list(events),
    }


def delay_event(link, bin_index=1):
    return {
        "kind": "delay", "link": link, "bin": bin_index,
        "direction": "high", "median_ms": 9.0,
        "band_ms": [8.0, 10.0], "reference_ms": [2.8, 3.2],
        "reference_median_ms": 3.0, "gap_ms": 4.8,
    }


class TestRoundTrip:
    def test_from_payload_accepts_report_kind(self):
        report = AnomalyReport.from_payload(payload())
        assert report.links
        assert report.events == []

    def test_from_payload_rejects_other_kinds(self):
        with pytest.raises(ValueError):
            AnomalyReport.from_payload({"kind": "survey"})

    def test_anomalous_links_from_delay_events_only(self):
        report = AnomalyReport.from_payload(payload(events=[
            delay_event("10.0.0.1--10.0.0.2"),
            {"kind": "forwarding", "near": "10.0.0.1",
             "dst": "9.9.9.9", "bin": 2, "shift": 0.9,
             "observed": "10.0.0.3", "expected": "10.0.0.2"},
        ]))
        assert report.anomalous_links == ["10.0.0.1--10.0.0.2"]
        assert len(report.events_of_kind("forwarding")) == 1


class TestReferences:
    def test_reference_from_payload(self):
        reference = reference_from_payload(payload(period="2019-09"))
        assert reference["source"] == "period:2019-09"
        assert "10.0.0.1--10.0.0.2" in reference["bands"]
        assert reference["forwarding"] == {
            "10.0.0.1--9.9.9.9": {"10.0.0.2": 30}
        }

    def test_merge_is_elementwise_median(self):
        refs = [
            reference_from_payload(payload(period=f"p{i}", links={
                "a--b": {
                    "near": "a", "far": "b", "samples": 10,
                    "bins": 2, "median_ms": m, "band_ms": [m, m],
                    "anomalous_bins": [],
                    "reference": {
                        "median_ms": [m, None],
                        "low_ms": [m - 1, None],
                        "high_ms": [m + 1, None],
                    },
                },
            }))
            for i, m in enumerate([1.0, 3.0, 100.0])
        ]
        merged = merge_references(refs)
        assert merged["bands"]["a--b"]["median_ms"] == [3.0, None]
        assert merged["bands"]["a--b"]["low_ms"] == [2.0, None]
        # Forwarding counts sum.
        assert merged["forwarding"]["10.0.0.1--9.9.9.9"] == {
            "10.0.0.2": 90
        }

    def test_single_reference_passes_through(self):
        ref = reference_from_payload(payload())
        assert merge_references([ref]) is ref

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_references([])


class TestDeltas:
    def test_new_resolved_persisting(self):
        before = payload(period="p1", events=[
            delay_event("a--b"), delay_event("c--d"),
        ])
        after = payload(period="p2", events=[
            delay_event("c--d"), delay_event("e--f"),
        ])
        deltas = anomaly_deltas(before, after)
        assert deltas["before"] == "p1"
        assert deltas["after"] == "p2"
        assert deltas["new"] == ["e--f"]
        assert deltas["resolved"] == ["a--b"]
        assert deltas["persisting"] == ["c--d"]
        assert deltas["jaccard"] == pytest.approx(1 / 3)

    def test_identical_sets_jaccard_one(self):
        doc = payload(events=[delay_event("a--b")])
        assert anomaly_deltas(doc, doc)["jaccard"] == 1.0
