"""Smoke tests: every example script runs to completion.

Examples are part of the public deliverable; a refactor that breaks
one must fail CI.  Each runs as a subprocess, the way a user would.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=600):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, (
        f"{name} failed:\nstdout:\n{result.stdout}\n"
        f"stderr:\n{result.stderr}"
    )
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "classification" in out
        assert "SEVERE" in out or "MILD" in out or "LOW" in out

    def test_atlas_json_pipeline(self):
        out = run_example("atlas_json_pipeline.py")
        assert "exported" in out
        assert "classification" in out

    def test_streaming_monitor(self):
        out = run_example("streaming_monitor.py")
        assert "raclette:" in out
        assert "congestion-start" in out
        assert "HotNet" in out

    def test_tokyo_case_study_small(self):
        out = run_example(
            "tokyo_case_study.py", "--client-scale", "0.1"
        )
        assert "Fig. 5" in out
        assert "Spearman" in out
        assert "ISP_D anchor" in out

    def test_world_survey_small(self):
        out = run_example(
            "world_survey.py",
            "--ases", "30", "--countries", "8", "--periods", "1",
        )
        assert "headline statistics" in out
        assert "COVID increase" in out

    @pytest.mark.slow
    def test_capacity_planning(self):
        out = run_example("capacity_planning.py")
        assert "legacy PPPoE BRAS" in out
        assert "flagged as congested from" in out
