"""Tests for LinkModel and SharedDevice."""

import datetime as dt

import numpy as np
import pytest

from repro.queueing import LinkModel, SharedDevice
from repro.timebase import MeasurementPeriod, TimeGrid
from repro.traffic import DemandSeries, WeeklyDemandModel, flat


def make_grid(days=7):
    return TimeGrid(MeasurementPeriod("t", dt.datetime(2019, 9, 2), days))


def residential_device(peak=0.95, **link_kwargs):
    return SharedDevice(
        name="bras-1",
        link=LinkModel(**link_kwargs),
        demand=DemandSeries(model=WeeklyDemandModel.residential()),
        peak_utilization=peak,
    )


class TestLinkModel:
    def test_delay_monotone_in_utilization(self):
        link = LinkModel()
        rho = np.linspace(0, 0.99, 50)
        delays = link.mean_delay_ms(rho)
        assert np.all(np.diff(delays) >= 0)

    def test_delay_capped_at_buffer(self):
        link = LinkModel(service_time_ms=1.0, max_delay_ms=10.0)
        assert link.mean_delay_ms(0.999) == pytest.approx(10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkModel(service_time_ms=0)
        with pytest.raises(ValueError):
            LinkModel(max_delay_ms=0)
        with pytest.raises(ValueError):
            LinkModel(loss_onset=0)

    def test_loss_negligible_at_low_load(self):
        link = LinkModel()
        assert link.loss_probability(0.3) < 1e-3

    def test_sampled_delays_respect_cap_and_mean(self):
        link = LinkModel(service_time_ms=0.5, max_delay_ms=50.0)
        rng = np.random.default_rng(0)
        samples = link.sample_packet_delays_ms(0.9, 20000, rng)
        assert samples.max() <= 50.0
        assert samples.mean() == pytest.approx(
            link.mean_delay_ms(0.9), rel=0.1
        )


class TestSharedDevice:
    def test_congested_device_has_diurnal_delay(self):
        device = residential_device(peak=0.97, service_time_ms=0.15)
        grid = make_grid()
        delays = device.delay_series_ms(grid)
        daily = delays.reshape(7, grid.bins_per_day)
        # Peak delay well above the trough, every day.
        assert np.all(daily.max(axis=1) > 5.0 * daily.min(axis=1).clip(1e-6))
        assert delays.max() > 1.0

    def test_healthy_device_stays_flat(self):
        device = residential_device(peak=0.5)
        grid = make_grid()
        delays = device.delay_series_ms(grid)
        assert delays.max() < 0.5  # well under the Low threshold

    def test_utilization_cached_per_grid(self):
        device = residential_device()
        grid = make_grid()
        a = device.utilization(grid)
        b = device.utilization(grid)
        assert a is b

    def test_jittered_path_distinct_from_deterministic(self):
        device = residential_device()
        grid = make_grid()
        det = device.utilization(grid, rng=None)
        jit = device.utilization(grid, rng=np.random.default_rng(0))
        assert not np.array_equal(det, jit)

    def test_loss_series_shape(self):
        device = residential_device()
        grid = make_grid()
        loss = device.loss_series(grid)
        assert loss.shape == (grid.num_bins,)
        assert np.all((loss >= 0) & (loss <= 0.15))

    def test_flat_demand_flat_delay(self):
        device = SharedDevice(
            name="core",
            link=LinkModel(),
            demand=DemandSeries(model=WeeklyDemandModel.uniform(flat(0.4))),
            peak_utilization=0.4,
        )
        grid = make_grid(1)
        delays = device.delay_series_ms(grid)
        assert delays.std() == pytest.approx(0.0, abs=1e-9)
