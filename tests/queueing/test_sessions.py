"""Tests for the PPPoE session-concentrator model."""

import datetime as dt

import numpy as np
import pytest

from repro.queueing import (
    SessionConcentrator,
    SessionConcentratorSpec,
    dimension_for_blocking,
)
from repro.timebase import MeasurementPeriod, TimeGrid
from repro.traffic import DemandSeries, WeeklyDemandModel, flat


def make_grid(days=7):
    return TimeGrid(MeasurementPeriod(
        "sess", dt.datetime(2019, 9, 2), days
    ))


def residential_demand(utc_offset=9.0):
    return DemandSeries(
        model=WeeklyDemandModel.residential(),
        utc_offset_hours=utc_offset,
    )


def concentrator(slots, subscribers, **kwargs):
    spec = SessionConcentratorSpec(
        session_slots=slots, subscribers=subscribers, **kwargs
    )
    return SessionConcentrator(spec, residential_demand())


class TestSpecValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SessionConcentratorSpec(session_slots=0, subscribers=10)
        with pytest.raises(ValueError):
            SessionConcentratorSpec(session_slots=10, subscribers=0)
        with pytest.raises(ValueError):
            SessionConcentratorSpec(
                session_slots=10, subscribers=10,
                mean_holding_hours=0,
            )


class TestOfferedSessions:
    def test_bounded_by_subscribers(self):
        grid = make_grid()
        offered = concentrator(1000, 800).offered_sessions(grid)
        assert offered.max() <= 800
        assert offered.min() >= 0.4 * 800  # long-held sessions persist

    def test_diurnal_shape(self):
        grid = make_grid()
        offered = concentrator(1000, 800).offered_sessions(grid)
        hour = grid.local_hour_of_day(9.0)
        evening = offered[(hour >= 20) & (hour <= 22)].mean()
        night = offered[(hour >= 3) & (hour <= 5)].mean()
        assert evening > night

    def test_long_holding_flattens_demand(self):
        grid = make_grid()
        short = SessionConcentrator(
            SessionConcentratorSpec(
                1000, 800, mean_holding_hours=2.0
            ),
            residential_demand(),
        ).offered_sessions(grid)
        long = SessionConcentrator(
            SessionConcentratorSpec(
                1000, 800, mean_holding_hours=200.0
            ),
            residential_demand(),
        ).offered_sessions(grid)
        assert short.std() > long.std()


class TestEvaluate:
    def test_overprovisioned_never_blocks(self):
        grid = make_grid()
        result = concentrator(2000, 800).evaluate(grid)
        assert result.peak_blocking < 1e-3
        assert result.hours_blocked_over(0.01, grid.bin_seconds) == 0.0
        # Setup latency essentially baseline.
        assert result.setup_latency_ms.max() < 400.0

    def test_underprovisioned_blocks_at_peak(self):
        grid = make_grid()
        result = concentrator(620, 800).evaluate(grid)
        assert result.peak_blocking > 0.02
        hour = grid.local_hour_of_day(9.0)
        evening = result.blocking_probability[
            (hour >= 20) & (hour <= 22)
        ].mean()
        night = result.blocking_probability[
            (hour >= 3) & (hour <= 5)
        ].mean()
        assert evening > 2 * night

    def test_setup_latency_explodes_near_exhaustion(self):
        grid = make_grid()
        result = concentrator(620, 800).evaluate(grid)
        assert result.setup_latency_ms.max() > 2000.0
        assert result.setup_latency_ms.min() >= 150.0

    def test_blocking_in_unit_interval(self):
        grid = make_grid()
        result = concentrator(100, 800).evaluate(grid)
        assert np.all(result.blocking_probability >= 0.0)
        assert np.all(result.blocking_probability <= 1.0)

    def test_flat_demand_flat_sessions(self):
        grid = make_grid(1)
        spec = SessionConcentratorSpec(1000, 800)
        demand = DemandSeries(model=WeeklyDemandModel.uniform(flat(0.5)))
        result = SessionConcentrator(spec, demand).evaluate(grid)
        assert result.occupancy.std() == pytest.approx(0.0, abs=1e-12)


class TestDimensioning:
    def test_finds_minimal_slots(self):
        grid = make_grid()
        slots = dimension_for_blocking(
            subscribers=800,
            target_blocking=0.01,
            demand=residential_demand(),
            grid=grid,
        )
        # The chosen dimensioning meets the target...
        spec = SessionConcentratorSpec(slots, 800)
        result = SessionConcentrator(
            spec, residential_demand()
        ).evaluate(grid)
        assert result.peak_blocking <= 0.01
        # ...and is not wildly overprovisioned.
        assert slots <= 4 * 800

    def test_validation(self):
        grid = make_grid()
        with pytest.raises(ValueError):
            dimension_for_blocking(
                800, 0.0, residential_demand(), grid
            )

    def test_impossible_target(self):
        grid = make_grid(1)
        with pytest.raises(ValueError, match="no candidate"):
            dimension_for_blocking(
                800, 1e-12, residential_demand(), grid,
                candidate_slots=[10],
            )
