"""Tests for closed-form queueing models."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.queueing import (
    MAX_STABLE_UTILIZATION,
    erlang_loss,
    md1_wait,
    mg1_wait,
    mm1_wait,
    mm1_wait_quantile,
    overload_loss,
    sample_mm1_waits,
)


class TestMM1:
    def test_known_values(self):
        # rho=0.5: W_q = 0.5/0.5 * s = s
        assert mm1_wait(0.5, 2.0) == pytest.approx(2.0)
        assert mm1_wait(0.0, 2.0) == pytest.approx(0.0)
        # rho=0.9: 0.9/0.1 = 9x service time
        assert mm1_wait(0.9, 1.0) == pytest.approx(9.0)

    def test_clips_at_max_stable(self):
        assert mm1_wait(1.0, 1.0) == mm1_wait(MAX_STABLE_UTILIZATION, 1.0)

    def test_vectorized(self):
        rho = np.array([0.1, 0.5, 0.9])
        out = mm1_wait(rho, 1.0)
        assert out.shape == (3,)
        assert np.all(np.diff(out) > 0)

    def test_rejects_negative_rho_and_service(self):
        with pytest.raises(ValueError):
            mm1_wait(-0.1, 1.0)
        with pytest.raises(ValueError):
            mm1_wait(0.5, 0.0)

    @given(st.floats(min_value=0.0, max_value=0.99))
    def test_monotone_in_rho(self, rho):
        assert mm1_wait(rho + 0.005, 1.0) >= mm1_wait(rho, 1.0)


class TestMD1MG1:
    def test_md1_is_half_mm1(self):
        assert md1_wait(0.8, 1.0) == pytest.approx(0.5 * mm1_wait(0.8, 1.0))

    def test_mg1_interpolates(self):
        assert mg1_wait(0.8, 1.0, scv=0.0) == pytest.approx(md1_wait(0.8, 1.0))
        assert mg1_wait(0.8, 1.0, scv=1.0) == pytest.approx(mm1_wait(0.8, 1.0))
        assert mg1_wait(0.8, 1.0, scv=2.0) > mm1_wait(0.8, 1.0)

    def test_rejects_negative_scv(self):
        with pytest.raises(ValueError):
            mg1_wait(0.5, 1.0, scv=-1.0)


class TestQuantile:
    def test_median_zero_when_queue_mostly_empty(self):
        # rho=0.3: P(W=0) = 0.7 >= 0.5, so the median wait is 0.
        assert mm1_wait_quantile(0.3, 1.0, 0.5) == pytest.approx(0.0)

    def test_median_positive_when_busy(self):
        median = mm1_wait_quantile(0.9, 1.0, 0.5)
        assert median > 0.0
        # Median below mean for this right-skewed distribution.
        assert median < mm1_wait(0.9, 1.0)

    def test_quantile_monotone_in_q(self):
        qs = [0.5, 0.7, 0.9, 0.99]
        values = [mm1_wait_quantile(0.95, 1.0, q) for q in qs]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_matches_analytic_cdf(self):
        # For q > 1-rho: F(w) = 1 - rho*exp(-w(1-rho)/s) == q
        rho, s, q = 0.8, 2.0, 0.9
        w = mm1_wait_quantile(rho, s, q)
        cdf = 1.0 - rho * np.exp(-w * (1.0 - rho) / s)
        assert cdf == pytest.approx(q)

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            mm1_wait_quantile(0.5, 1.0, 0.0)
        with pytest.raises(ValueError):
            mm1_wait_quantile(0.5, 1.0, 1.0)


class TestSampling:
    def test_scalar_and_vector_shapes(self):
        rng = np.random.default_rng(0)
        out = sample_mm1_waits(0.5, 1.0, 100, rng)
        assert out.shape == (100,)
        out2 = sample_mm1_waits(np.array([0.2, 0.8]), 1.0, 50, rng)
        assert out2.shape == (2, 50)

    @settings(deadline=None)
    @given(st.floats(min_value=0.05, max_value=0.95))
    def test_sample_mean_matches_analytic(self, rho):
        rng = np.random.default_rng(42)
        waits = sample_mm1_waits(rho, 1.0, 20000, rng)
        assert waits.mean() == pytest.approx(
            mm1_wait(rho, 1.0), rel=0.15, abs=0.02
        )

    def test_sample_median_matches_quantile(self):
        rng = np.random.default_rng(1)
        waits = sample_mm1_waits(0.9, 1.0, 40000, rng)
        assert np.median(waits) == pytest.approx(
            mm1_wait_quantile(0.9, 1.0, 0.5), rel=0.1
        )

    def test_zero_load_gives_zero_waits(self):
        rng = np.random.default_rng(2)
        waits = sample_mm1_waits(0.0, 1.0, 100, rng)
        assert np.all(waits == 0.0)


class TestErlangLoss:
    def test_single_server_known_value(self):
        # Erlang-B with 1 server and offered load a: B = a/(1+a).
        assert erlang_loss(0.5, servers=1) == pytest.approx(0.5 / 1.5)

    def test_more_servers_less_blocking(self):
        assert erlang_loss(0.9, servers=4) < erlang_loss(0.9, servers=1)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_loss(0.5, servers=0)
        with pytest.raises(ValueError):
            erlang_loss(-0.5)


class TestOverloadLoss:
    def test_negligible_below_onset(self):
        assert overload_loss(0.5) < 1e-3
        assert overload_loss(0.7) < 5e-3

    def test_material_above_onset(self):
        assert overload_loss(0.98) > 0.01

    def test_monotone_and_bounded(self):
        rho = np.linspace(0.0, 1.0, 100)
        loss = overload_loss(rho)
        assert np.all(np.diff(loss) >= 0)
        assert loss.max() <= 0.04

    def test_ceiling_parameter(self):
        assert overload_loss(0.999, ceiling=0.10) > 0.04
        with pytest.raises(ValueError):
            overload_loss(0.5, ceiling=0.0)
