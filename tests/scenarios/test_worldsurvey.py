"""Tests for the world survey scenario (§3) at reduced scale."""

import numpy as np
import pytest

from repro.apnic import EyeballRanking
from repro.core import Severity, SurveySuite, breakdown_by_rank
from repro.scenarios import generate_specs, run_survey, run_survey_period
from repro.scenarios.worldsurvey import INTENT_TABLE, build_survey_world
from repro.timebase import COVID_PERIOD, LONGITUDINAL_PERIODS


@pytest.fixture(scope="module")
def specs():
    return generate_specs(num_ases=120, num_countries=30, seed=101)


@pytest.fixture(scope="module")
def september(specs):
    result, world = run_survey_period(specs, LONGITUDINAL_PERIODS[5])
    return result, world


class TestSpecGeneration:
    def test_counts_and_countries(self, specs):
        assert len(specs) == 120
        countries = {s.country for s in specs}
        assert len(countries) == 30
        # ASNs unique.
        assert len({s.asn for s in specs}) == 120

    def test_every_country_has_an_as(self):
        specs = generate_specs(num_ases=646, num_countries=98, seed=1)
        assert len({s.country for s in specs}) == 98

    def test_intent_mix_roughly_matches_table(self):
        specs = generate_specs(num_ases=646, seed=3)
        fractions = {
            intent: sum(1 for s in specs if s.intent == intent) / 646
            for intent in INTENT_TABLE
        }
        assert fractions["flat"] == pytest.approx(0.44, abs=0.08)
        assert fractions["severe"] < 0.08

    def test_japan_biased_toward_severe(self):
        specs = generate_specs(num_ases=646, seed=5)
        jp = [s for s in specs if s.country == "JP"]
        other = [s for s in specs if s.country not in ("JP", "US")]
        jp_severe = sum(1 for s in jp if s.intent == "severe") / len(jp)
        other_severe = sum(
            1 for s in other if s.intent == "severe"
        ) / len(other)
        assert jp_severe > other_severe

    def test_probe_counts_at_least_three(self, specs):
        assert all(s.probe_count >= 3 for s in specs)

    def test_deterministic(self):
        a = generate_specs(num_ases=50, seed=9)
        b = generate_specs(num_ases=50, seed=9)
        assert [s.peak_utilization for s in a] == (
            [s.peak_utilization for s in b]
        )


class TestBuild:
    def test_world_contains_all_ases(self, specs):
        world, platform = build_survey_world(specs)
        assert len(world.isps) == 120
        total_probes = sum(s.probe_count for s in specs)
        assert len(platform.probes) == total_probes


class TestSurveyRun:
    def test_none_dominates(self, september):
        result, _world = september
        assert result.monitored_count > 100
        assert result.none_fraction() > 0.80

    def test_reported_severity_spectrum(self, september):
        result, _world = september
        counts = result.severity_counts()
        assert counts[Severity.SEVERE] >= 1
        assert counts[Severity.MILD] >= 1
        assert counts[Severity.LOW] >= 1

    def test_daily_prominent_majority(self, september):
        """Fig. 3 top: the daily bin dominates across monitored ASes."""
        from repro.core import daily_fraction

        result, _world = september
        fraction = daily_fraction(result.prominent_frequencies())
        assert fraction > 0.5

    def test_congestion_in_large_eyeballs(self, september):
        """Fig. 4: reported ASes concentrate in the top rank buckets."""
        result, world = september
        ranking = EyeballRanking.from_registry(world.registry)
        breakdown = breakdown_by_rank(result, ranking)
        top = breakdown["1 to 10"]
        reported_top = sum(
            c for s, c in top.items() if s.is_reported
        )
        # The biggest bucket has at least one reported AS; random
        # small-tail buckets dominate the None class.
        assert reported_top + sum(
            c for s, c in breakdown["11 to 100"].items()
            if s.is_reported
        ) >= 1


class TestCovid:
    def test_reported_count_increases(self, specs, september):
        result_sep, _ = september
        result_covid, _ = run_survey_period(specs, COVID_PERIOD)
        before = len(result_sep.reported_asns())
        after = len(result_covid.reported_asns())
        assert after > before
        # The paper reports +55 %; at reduced scale accept 20–120 %.
        assert 1.2 <= after / before <= 2.2

    def test_suite_increase_helper(self, specs):
        suite, _ranking = run_survey(
            specs, [LONGITUDINAL_PERIODS[5], COVID_PERIOD]
        )
        before, after, increase = suite.reported_increase(
            "2019-09", "2020-04"
        )
        assert after > before
        assert increase > 0.2


class TestRecurrence:
    def test_congested_intents_recur(self, specs):
        periods = [LONGITUDINAL_PERIODS[3], LONGITUDINAL_PERIODS[5]]
        suite, _ranking = run_survey(specs, periods)
        recurrent = suite.recurrent_asns(min_fraction=1.0)
        severe_asns = {
            s.asn for s in specs if s.intent in ("mild", "severe")
        }
        # Strongly congested ASes are reported in both periods.
        assert severe_asns & set(recurrent)
        overlap = len(severe_asns & set(recurrent)) / len(severe_asns)
        assert overlap > 0.7
