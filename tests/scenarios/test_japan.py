"""Tests for the Tokyo case study scenario (§4, Appendices)."""

import numpy as np
import pytest

from repro.core import (
    aggregate_population,
    filter_requests,
    per_asn_throughput,
    probe_queuing_delay,
    probes_in_greater_tokyo,
    spearman_delay_throughput,
)
from repro.scenarios import (
    ISP_A_ASN,
    ISP_A_MOBILE_ASN,
    ISP_B_ASN,
    ISP_C_ASN,
    build_tokyo_case_study,
)
from repro.timebase import TimeGrid


@pytest.fixture(scope="module")
def study():
    return build_tokyo_case_study(client_scale=0.25)


@pytest.fixture(scope="module")
def logs(study):
    return study.edge.generate(study.period)


@pytest.fixture(scope="module")
def broadband_v4(study, logs):
    filtered = filter_requests(
        logs, mobile_prefixes=study.mobile_prefixes
    )
    return filtered.select(filtered.afs == 4)


class TestDeployment:
    def test_probe_plan_counts(self, study):
        assert len(study.probes["ISP_A"]) == 8
        assert len(study.probes["ISP_B"]) == 5
        assert len(study.probes["ISP_C"]) == 8
        assert len(study.probes["ISP_D"]) == 6
        assert study.anchor is not None

    def test_all_case_probes_in_greater_tokyo(self, study):
        dataset = study.dataset_for("ISP_A")
        tokyo = probes_in_greater_tokyo(dataset.probe_meta)
        assert len(tokyo) == 8

    def test_period_is_paper_window(self, study):
        assert study.period.days == 8
        assert study.period.start.month == 9
        assert study.period.start.day == 19

    def test_mobile_prefix_list_contents(self, study):
        """A-mobile whole AS + B/C same-AS mobile blocks (App. A)."""
        prefixes = study.mobile_prefixes
        a_mobile = study.isps["ISP_A_mobile"]
        addr = a_mobile.customer_prefix_v4.first
        assert prefixes.is_mobile(addr.value, 4)
        b = study.isps["ISP_B"]
        assert prefixes.is_mobile(b.mobile_prefix_v4.first.value, 4)
        assert not prefixes.is_mobile(
            b.customer_prefix_v4.first.value, 4
        )


class TestFig5Delays:
    def test_legacy_isps_congested_own_fiber_stable(self, study):
        sig_a = aggregate_population(study.dataset_for("ISP_A"))
        sig_b = aggregate_population(study.dataset_for("ISP_B"))
        sig_c = aggregate_population(study.dataset_for("ISP_C"))
        # A and B show multi-ms peaks; C stays an order of magnitude
        # lower (Fig. 5).
        assert sig_a.max_delay_ms > 2.0
        assert sig_b.max_delay_ms > 1.0
        assert sig_c.max_delay_ms < 0.7
        assert np.nanmedian(sig_a.daily_max_ms()) > (
            5 * np.nanmedian(sig_c.daily_max_ms())
        )

    def test_daily_peaks_every_day(self, study):
        sig_a = aggregate_population(study.dataset_for("ISP_A"))
        assert np.all(sig_a.daily_max_ms() > 1.0)

    def test_off_peak_similar_across_isps(self, study):
        """Fig. 5: the three networks agree outside peak hours."""
        for name in ("ISP_A", "ISP_B", "ISP_C"):
            sig = aggregate_population(study.dataset_for(name))
            grid = sig.grid
            hour = grid.local_hour_of_day(9.0)  # JST
            night = sig.delay_ms[(hour >= 3) & (hour <= 6)]
            assert np.nanmedian(night) < 0.4


class TestFig8AnchorVsProbes:
    def test_probes_congested_anchor_flat(self, study):
        probes_sig = aggregate_population(study.dataset_for("ISP_D"))
        anchor_ds = study.anchor_dataset()
        anchor_delay = probe_queuing_delay(
            anchor_ds.series[study.anchor.probe_id]
        )
        assert probes_sig.max_delay_ms > 5.0
        assert np.nanmax(anchor_delay) < 1.0


class TestFig6Throughput:
    def grid15(self, study):
        return TimeGrid(study.period, 900)

    def test_broadband_halves_at_peak_for_legacy(
        self, study, broadband_v4
    ):
        tput = per_asn_throughput(
            broadband_v4, self.grid15(study), study.world.table,
            asns=[ISP_A_ASN, ISP_B_ASN, ISP_C_ASN],
        )
        for asn in (ISP_A_ASN, ISP_B_ASN):
            series = tput[asn]
            overall = np.nanmedian(series.median_mbps)
            worst = np.nanmin(series.daily_min_mbps())
            assert worst < 0.5 * overall
        series_c = tput[ISP_C_ASN]
        worst_c = np.nanmin(series_c.daily_min_mbps())
        assert worst_c > 0.6 * np.nanmedian(series_c.median_mbps)

    def test_mobile_stable_above_20(self, study, logs):
        mobile = filter_requests(
            logs, mobile_prefixes=study.mobile_prefixes,
            mobile_mode="only",
        )
        tput = per_asn_throughput(
            mobile, self.grid15(study), study.world.table,
            asns=[ISP_A_MOBILE_ASN, ISP_B_ASN, ISP_C_ASN],
        )
        for asn in (ISP_A_MOBILE_ASN, ISP_B_ASN, ISP_C_ASN):
            series = tput[asn]
            # Paper: median stays above 20 Mbps; with the reduced
            # client scale in tests the per-bin minimum is noisier.
            assert np.nanmedian(series.median_mbps) > 20.0
            assert np.nanmin(series.daily_min_mbps()) > 14.0


class TestFig9IPv6:
    def test_ipv6_stable_for_legacy_isps(self, study, logs):
        """Appendix C: IPoE-borne IPv6 avoids the PPPoE bottleneck."""
        broadband = filter_requests(
            logs, mobile_prefixes=study.mobile_prefixes
        )
        grid = TimeGrid(study.period, 900)
        v6 = per_asn_throughput(
            broadband, grid, study.world.table,
            asns=[ISP_A_ASN, ISP_B_ASN], af=6,
        )
        v4 = per_asn_throughput(
            broadband, grid, study.world.table,
            asns=[ISP_A_ASN, ISP_B_ASN], af=4,
        )
        for asn in (ISP_A_ASN, ISP_B_ASN):
            worst_v6 = np.nanmin(v6[asn].daily_min_mbps())
            worst_v4 = np.nanmin(v4[asn].daily_min_mbps())
            assert worst_v6 > 2.0 * worst_v4


class TestFig7Correlation:
    def test_spearman_signs(self, study, broadband_v4):
        grid = TimeGrid(study.period, 900)
        tput = per_asn_throughput(
            broadband_v4, grid, study.world.table,
            asns=[ISP_A_ASN, ISP_C_ASN],
        )
        sig_a = aggregate_population(study.dataset_for("ISP_A"))
        corr_a = spearman_delay_throughput(sig_a, tput[ISP_A_ASN])
        assert corr_a.rho < -0.45

        sig_c = aggregate_population(study.dataset_for("ISP_C"))
        corr_c = spearman_delay_throughput(sig_c, tput[ISP_C_ASN])
        assert abs(corr_c.rho) < 0.25
