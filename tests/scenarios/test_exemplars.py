"""Tests for the ISP_DE / ISP_US exemplar scenario (§2.2)."""

import numpy as np
import pytest

from repro.core import (
    Severity,
    aggregate_population,
    classify_signal,
    probes_with_daily_delay_over,
)
from repro.scenarios import (
    ISP_DE_ASN,
    ISP_US_ASN,
    PROBE_COUNTS,
    build_exemplar_run,
)
from repro.timebase import ALL_SURVEY_PERIODS, COVID_PERIOD

SMALL = {"ISP_DE": 30, "ISP_US": 30}


def period(name):
    return next(p for p in ALL_SURVEY_PERIODS if p.name == name)


@pytest.fixture(scope="module")
def run_2019():
    return build_exemplar_run(period("2019-09"), probe_counts=SMALL)


@pytest.fixture(scope="module")
def run_covid():
    return build_exemplar_run(COVID_PERIOD, probe_counts=SMALL)


class TestStructure:
    def test_probe_counts_table_matches_figure_legend(self):
        assert PROBE_COUNTS["2020-04"] == {"ISP_DE": 345, "ISP_US": 331}
        assert len(PROBE_COUNTS) == 7

    def test_asns_registered(self, run_2019):
        assert ISP_DE_ASN in run_2019.world.registry
        assert ISP_US_ASN in run_2019.world.registry
        assert len(run_2019.probes["ISP_DE"]) == 30

    def test_lockdown_defaults_to_covid_period(self):
        run = build_exemplar_run(COVID_PERIOD, probe_counts=SMALL)
        # ISP_US stack carries the lockdown modifier; ISP_DE's doesn't.
        us = run.world.isps[ISP_US_ASN]
        de = run.world.isps[ISP_DE_ASN]
        assert len(us.demand_modifiers.modifiers) == 2
        assert len(de.demand_modifiers.modifiers) == 1


class TestDelayShapes:
    def test_isp_de_flat_all_periods(self, run_2019, run_covid):
        for run in (run_2019, run_covid):
            dataset = run.dataset_for("ISP_DE")
            signal = aggregate_population(dataset)
            result = classify_signal(
                signal.delay_ms, dataset.grid.bin_seconds
            )
            assert result.severity == Severity.NONE
            assert result.daily_amplitude_ms < 0.3

    def test_isp_us_mild_only_under_lockdown(self, run_2019, run_covid):
        """The paper: Mild in April 2020, not congested otherwise."""
        dataset = run_2019.dataset_for("ISP_US")
        signal = aggregate_population(dataset)
        result = classify_signal(signal.delay_ms, dataset.grid.bin_seconds)
        assert result.severity == Severity.NONE
        # ...but a visible daily pattern exists (~0.4 ms in the paper).
        assert result.markers is not None
        assert result.markers.daily_is_prominent
        assert 0.15 < result.daily_amplitude_ms <= 0.5

        covid_dataset = run_covid.dataset_for("ISP_US")
        covid_signal = aggregate_population(covid_dataset)
        covid_result = classify_signal(
            covid_signal.delay_ms, covid_dataset.grid.bin_seconds
        )
        assert covid_result.severity == Severity.MILD
        assert covid_result.daily_amplitude_ms == pytest.approx(
            1.19, abs=0.45
        )

    def test_probes_over_5ms_triples_under_lockdown(
        self, run_2019, run_covid
    ):
        """§2.2: probes with daily delay > 5 ms roughly tripled and
        reached about a quarter of the fleet in April 2020."""
        before_ds = run_2019.dataset_for("ISP_US")
        before = probes_with_daily_delay_over(
            before_ds, before_ds.probe_ids(), 5.0
        )
        after_ds = run_covid.dataset_for("ISP_US")
        after = probes_with_daily_delay_over(
            after_ds, after_ds.probe_ids(), 5.0
        )
        assert len(after) >= 2 * max(len(before), 1)
        assert len(after) / len(after_ds) > 0.10
