"""Tests for the CDN edge workload generator."""

import datetime as dt

import numpy as np
import pytest

from repro.cdn import CDNConfig, CDNEdge
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.timebase import MeasurementPeriod, TimeGrid
from repro.topology import ProvisioningPolicy, World

PERIOD = MeasurementPeriod("cdn-test", dt.datetime(2019, 9, 19), 2)


def build_world():
    world = World(seed=11)
    legacy = world.add_isp(
        ASInfo(
            64501, "LegacyISP", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={
                AccessTechnology.FTTH_PPPOE_LEGACY: 0.97,
                AccessTechnology.FTTH_IPOE_LEGACY: 0.60,
            }
        ),
        ipv6_technology=AccessTechnology.FTTH_IPOE_LEGACY,
    )
    own = world.add_isp(
        ASInfo(
            64502, "OwnFiber", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_OWN],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_OWN: 0.5}
        ),
    )
    world.finalize()
    return world, legacy, own


def make_edge(world, seed=5):
    return CDNEdge(rng=np.random.default_rng(seed))


class TestClientProvisioning:
    def test_add_clients(self):
        world, legacy, _ = build_world()
        edge = make_edge(world)
        added = edge.add_clients(legacy, 200)
        assert added == 200
        assert edge.total_clients == 200
        # Devices interned for both PPPoE (v4) and IPoE (v6).
        techs = {d.technology for d in edge.devices}
        assert AccessTechnology.FTTH_PPPOE_LEGACY in techs
        assert AccessTechnology.FTTH_IPOE_LEGACY in techs

    def test_rejects_bad_count(self):
        world, legacy, _ = build_world()
        with pytest.raises(ValueError):
            make_edge(world).add_clients(legacy, 0)

    def test_client_addresses_from_customer_block(self):
        world, legacy, _ = build_world()
        edge = make_edge(world)
        edge.add_clients(legacy, 50)
        pool = edge._pools[0]
        for value in pool.v4_values:
            assert legacy.customer_prefix_v4.contains_value(value, 4)

    def test_dual_stack_fraction(self):
        world, legacy, _ = build_world()
        edge = make_edge(world)
        edge.add_clients(legacy, 400, dual_stack_fraction=0.5)
        share = edge._pools[0].has_v6.mean()
        assert 0.35 < share < 0.65


class TestLogGeneration:
    def test_volume_roughly_matches_rate(self):
        world, legacy, _ = build_world()
        edge = make_edge(world)
        edge.add_clients(legacy, 300)
        logs = edge.generate(PERIOD)
        expected = 300 * edge.config.requests_per_client_per_day * 2
        assert 0.5 * expected < len(logs) < 1.5 * expected

    def test_requests_follow_diurnal_demand(self):
        world, legacy, _ = build_world()
        edge = make_edge(world)
        edge.add_clients(legacy, 500)
        logs = edge.generate(PERIOD)
        grid = TimeGrid(PERIOD, 900)
        bins = grid.bin_index(logs.timestamps)
        counts = np.bincount(bins, minlength=grid.num_bins)
        hour = grid.local_hour_of_day(9.0)  # JST
        evening = counts[(hour >= 19) & (hour <= 23)].mean()
        night = counts[(hour >= 2) & (hour <= 6)].mean()
        assert evening > 1.5 * night

    def test_v6_requests_present_for_dual_stack(self):
        world, legacy, _ = build_world()
        edge = make_edge(world)
        edge.add_clients(legacy, 300, dual_stack_fraction=0.5)
        logs = edge.generate(PERIOD)
        assert (logs.afs == 6).sum() > 0
        assert (logs.afs == 4).sum() > 0

    def test_cache_hit_rate(self):
        world, legacy, _ = build_world()
        edge = make_edge(world)
        edge.add_clients(legacy, 300)
        logs = edge.generate(PERIOD)
        assert 0.85 < logs.cache_hits.mean() < 0.97

    def test_congested_isp_throughput_drops_at_peak(self):
        """The core coupling: PPPoE clients slow down in the evening."""
        world, legacy, _ = build_world()
        edge = make_edge(world)
        edge.add_clients(legacy, 800, dual_stack_fraction=0.0)
        logs = edge.generate(PERIOD)
        big_hits = logs.select(
            (logs.bytes_sent > 3_000_000) & logs.cache_hits
        )
        grid = TimeGrid(PERIOD, 900)
        bins = grid.bin_index(big_hits.timestamps)
        tput = big_hits.throughput_mbps()
        hour = grid.local_hour_of_day(9.0)[bins]
        peak = np.median(tput[(hour >= 20) & (hour <= 22)])
        off = np.median(tput[(hour >= 4) & (hour <= 7)])
        assert peak < 0.6 * off

    def test_healthy_isp_throughput_stable(self):
        world, _, own = build_world()
        edge = make_edge(world)
        edge.add_clients(own, 800, dual_stack_fraction=0.0)
        logs = edge.generate(PERIOD)
        big_hits = logs.select(
            (logs.bytes_sent > 3_000_000) & logs.cache_hits
        )
        grid = TimeGrid(PERIOD, 900)
        bins = grid.bin_index(big_hits.timestamps)
        tput = big_hits.throughput_mbps()
        hour = grid.local_hour_of_day(9.0)[bins]
        peak = np.median(tput[(hour >= 20) & (hour <= 22)])
        off = np.median(tput[(hour >= 4) & (hour <= 7)])
        assert peak > 0.7 * off

    def test_empty_edge_generates_empty_log(self):
        world, _, _ = build_world()
        edge = make_edge(world)
        logs = edge.generate(PERIOD)
        assert len(logs) == 0

    def test_deterministic_given_seed(self):
        world_a, legacy_a, _ = build_world()
        edge_a = CDNEdge(rng=np.random.default_rng(3))
        edge_a.add_clients(legacy_a, 100)
        logs_a = edge_a.generate(PERIOD)

        world_b, legacy_b, _ = build_world()
        edge_b = CDNEdge(rng=np.random.default_rng(3))
        edge_b.add_clients(legacy_b, 100)
        logs_b = edge_b.generate(PERIOD)

        assert len(logs_a) == len(logs_b)
        assert np.allclose(logs_a.timestamps, logs_b.timestamps)
