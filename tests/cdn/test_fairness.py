"""Tests for the BBR/loss-based fairness model (§6 discussion)."""

import pytest

from repro.cdn import (
    BBR_V1_GAIN,
    BBR_V2_GAIN,
    BottleneckScenario,
    bbr_deployment_sweep,
    bbr_inflight_share,
    solve_fairness,
)


def scenario(**overrides):
    defaults = dict(
        capacity_mbps=1000.0, base_rtt_ms=12.0, buffer_ms=60.0,
        cubic_flows=40, bbr_flows=10,
    )
    defaults.update(overrides)
    return BottleneckScenario(**defaults)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            scenario(capacity_mbps=0)
        with pytest.raises(ValueError):
            scenario(buffer_ms=-1)
        with pytest.raises(ValueError):
            scenario(cubic_flows=0, bbr_flows=0)
        with pytest.raises(ValueError):
            scenario(bbr_gain=0.5)


class TestInflightShare:
    def test_deep_buffer_bounds_share(self):
        # B = 5R: share = 2R/(6R) = 1/3.
        assert bbr_inflight_share(12.0, 60.0) == pytest.approx(1 / 3)

    def test_shallow_buffer_lets_bbr_dominate(self):
        assert bbr_inflight_share(12.0, 4.0) == pytest.approx(0.95)

    def test_gain_scales_share(self):
        v1 = bbr_inflight_share(12.0, 60.0, BBR_V1_GAIN)
        v2 = bbr_inflight_share(12.0, 60.0, BBR_V2_GAIN)
        assert v2 < v1


class TestPureLossBased:
    def test_fair_share_and_moderate_queue(self):
        result = solve_fairness(scenario(bbr_flows=0))
        assert result.cubic_throughput_mbps == pytest.approx(25.0)
        assert result.standing_queue_ms == pytest.approx(36.0)
        assert result.bbr_aggregate_share == 0.0
        assert result.loss_probability < 0.01


class TestBBRv1Competition:
    def test_share_independent_of_flow_counts(self):
        """Ware et al.'s headline: the inflight cap, not the flow mix,
        sets BBR's aggregate share."""
        few = solve_fairness(scenario(cubic_flows=45, bbr_flows=5))
        many = solve_fairness(scenario(cubic_flows=10, bbr_flows=40))
        assert few.bbr_aggregate_share == pytest.approx(
            many.bbr_aggregate_share
        )

    def test_queue_pinned_at_buffer(self):
        """§6: BBRv1 adds burden — the queue stays at the top."""
        without = solve_fairness(scenario(bbr_flows=0))
        with_bbr = solve_fairness(scenario())
        assert with_bbr.standing_queue_ms == pytest.approx(60.0)
        assert with_bbr.standing_queue_ms > without.standing_queue_ms

    def test_loss_increases(self):
        without = solve_fairness(scenario(bbr_flows=0))
        with_bbr = solve_fairness(scenario())
        assert with_bbr.loss_probability > 5 * without.loss_probability

    def test_cubic_users_lose(self):
        """Adding 10 BBR flows hurts the existing 40 cubic flows far
        more than 10 extra cubic flows would."""
        alone = solve_fairness(scenario(bbr_flows=0, cubic_flows=40))
        with_bbr = solve_fairness(scenario())       # 40 cubic + 10 bbr
        fair_50 = solve_fairness(scenario(bbr_flows=0, cubic_flows=50))
        assert with_bbr.cubic_throughput_mbps < (
            0.7 * alone.cubic_throughput_mbps
        )
        assert with_bbr.cubic_throughput_mbps < (
            0.9 * fair_50.cubic_throughput_mbps
        )

    def test_shallow_buffer_starves_cubic(self):
        result = solve_fairness(scenario(buffer_ms=6.0))
        assert result.bbr_aggregate_share == pytest.approx(0.95)
        assert result.cubic_throughput_mbps < 2.0

    def test_bbr_alone_builds_own_queue(self):
        result = solve_fairness(scenario(cubic_flows=0))
        assert result.standing_queue_ms == pytest.approx(12.0)  # (g-1)R
        assert result.bbr_aggregate_share == 1.0


class TestBBRv2Competition:
    def v2(self, **overrides):
        return solve_fairness(scenario(
            bbr_gain=BBR_V2_GAIN, bbr_loss_responsive=True, **overrides
        ))

    def test_queue_not_pinned(self):
        without = solve_fairness(scenario(bbr_flows=0))
        with_v2 = self.v2()
        assert with_v2.standing_queue_ms == pytest.approx(
            without.standing_queue_ms
        )

    def test_loss_stays_low(self):
        assert self.v2().loss_probability < 0.001

    def test_roughly_proportional_share(self):
        result = self.v2(cubic_flows=40, bbr_flows=10)
        assert result.bbr_aggregate_share < 0.3


class TestSweep:
    def test_monotone_burden_for_v1(self):
        sweep = bbr_deployment_sweep()
        baseline = sweep[0.0]
        for fraction, result in sweep.items():
            if fraction > 0:
                assert result.standing_queue_ms >= (
                    baseline.standing_queue_ms
                )
                assert result.loss_probability > (
                    baseline.loss_probability
                )

    def test_v2_sweep_benign(self):
        sweep = bbr_deployment_sweep(
            bbr_gain=BBR_V2_GAIN, bbr_loss_responsive=True
        )
        baseline = sweep[0.0]
        for fraction, result in sweep.items():
            assert result.standing_queue_ms <= (
                baseline.standing_queue_ms + 1e-9
            )
