"""Tests for TCP throughput models."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cdn import (
    bbr_throughput_mbps,
    capped_flow_throughput_mbps,
    mathis_throughput_mbps,
    pftk_throughput_mbps,
)


class TestMathis:
    def test_known_value(self):
        # MSS 1460 B, RTT 100 ms, p = 0.01:
        # 1.2247/(0.1*0.1) = 122.47 seg/s -> 1.43 Mbps
        value = mathis_throughput_mbps(100.0, 0.01)
        assert value == pytest.approx(1.43, rel=0.01)

    def test_scales_inverse_rtt(self):
        assert mathis_throughput_mbps(10.0, 0.01) == pytest.approx(
            10 * mathis_throughput_mbps(100.0, 0.01)
        )

    def test_scales_inverse_sqrt_loss(self):
        assert mathis_throughput_mbps(10.0, 0.0001) == pytest.approx(
            10 * mathis_throughput_mbps(10.0, 0.01)
        )

    def test_loss_floor_keeps_finite(self):
        assert np.isfinite(mathis_throughput_mbps(10.0, 0.0))

    def test_validation(self):
        with pytest.raises(ValueError):
            mathis_throughput_mbps(0.0, 0.01)
        with pytest.raises(ValueError):
            mathis_throughput_mbps(10.0, 1.0)
        with pytest.raises(ValueError):
            mathis_throughput_mbps(10.0, -0.1)

    @given(
        st.floats(min_value=1.0, max_value=300.0),
        st.floats(min_value=1e-5, max_value=0.3),
    )
    def test_positive(self, rtt, loss):
        assert mathis_throughput_mbps(rtt, loss) > 0


class TestPFTK:
    def test_close_to_mathis_at_low_loss(self):
        """With negligible timeouts PFTK approaches Mathis (b=1 vs 2
        differ by √2; just check the same order of magnitude)."""
        mathis = mathis_throughput_mbps(50.0, 1e-4)
        pftk = pftk_throughput_mbps(50.0, 1e-4)
        assert 0.3 * mathis < pftk < 1.5 * mathis

    def test_below_mathis_at_high_loss(self):
        """The timeout term bites when loss is heavy."""
        assert pftk_throughput_mbps(50.0, 0.05) < (
            mathis_throughput_mbps(50.0, 0.05)
        )

    def test_monotone_in_loss(self):
        losses = np.array([1e-4, 1e-3, 1e-2, 5e-2])
        rates = pftk_throughput_mbps(50.0, losses)
        assert np.all(np.diff(rates) < 0)


class TestBBR:
    def test_loss_blind_below_tolerance(self):
        clean = bbr_throughput_mbps(100.0, 0.001)
        lossy = bbr_throughput_mbps(100.0, 0.10)
        # BBRv1 barely cares about 10 % loss...
        assert lossy > 0.85 * clean

    def test_collapse_past_tolerance(self):
        assert bbr_throughput_mbps(100.0, 0.30) < 0.15 * 100.0

    def test_contrast_with_cubic(self):
        """The §6 point: loss-based TCP collapses at congested-BRAS
        loss rates while BBRv1 keeps pushing."""
        loss = 0.02
        cubic = capped_flow_throughput_mbps(15.0, loss, 100.0, "mathis")
        bbr = capped_flow_throughput_mbps(15.0, loss, 100.0, "bbr")
        assert bbr > 3 * cubic


class TestCappedFlow:
    def test_cap_binds_on_clean_path(self):
        rate = capped_flow_throughput_mbps(10.0, 1e-5, 50.0)
        assert rate == pytest.approx(50.0)

    def test_model_binds_on_lossy_path(self):
        rate = capped_flow_throughput_mbps(30.0, 0.02, 1000.0)
        assert rate < 1000.0

    def test_vectorized(self):
        rtt = np.array([10.0, 20.0])
        loss = np.array([1e-5, 0.01])
        cap = np.array([100.0, 100.0])
        rates = capped_flow_throughput_mbps(rtt, loss, cap)
        assert rates.shape == (2,)
        assert rates[0] > rates[1]

    def test_unknown_model(self):
        with pytest.raises(ValueError):
            capped_flow_throughput_mbps(10.0, 0.01, 100.0, model="reno")
