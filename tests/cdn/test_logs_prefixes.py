"""Tests for access-log storage and mobile prefix lists."""

import numpy as np
import pytest

from repro.cdn import (
    AccessLogDataset,
    AccessLogRecord,
    MobilePrefixList,
)
from repro.netbase import Prefix, parse_address


def record(ts=0.0, ip="20.0.0.1", size=5_000_000, dur=1000.0, hit=True,
           af=None):
    if af is None:
        af = 6 if ":" in ip else 4
    return AccessLogRecord(
        timestamp=ts, client_ip=ip, af=af,
        bytes_sent=size, duration_ms=dur, cache_hit=hit,
    )


class TestAccessLogRecord:
    def test_throughput(self):
        # 5 MB in 1 s = 40 Mbps.
        assert record().throughput_mbps == pytest.approx(40.0)

    def test_zero_duration(self):
        assert record(dur=0.0).throughput_mbps == 0.0

    def test_json_roundtrip(self):
        original = record(ts=12.5, ip="2400:8900::1", hit=False)
        restored = AccessLogRecord.from_json(original.to_json())
        assert restored == original


class TestAccessLogDataset:
    def test_from_records_roundtrip(self):
        records = [
            record(ts=1.0, ip="20.0.0.1"),
            record(ts=2.0, ip="2400:8900::1", hit=False),
        ]
        dataset = AccessLogDataset.from_records(records)
        assert len(dataset) == 2
        assert list(dataset.rows()) == records

    def test_jsonl_roundtrip(self):
        dataset = AccessLogDataset.from_records(
            [record(ts=float(i)) for i in range(5)]
        )
        restored = AccessLogDataset.from_jsonl(dataset.to_jsonl())
        assert len(restored) == 5
        assert np.array_equal(restored.timestamps, dataset.timestamps)

    def test_select(self):
        dataset = AccessLogDataset.from_records([
            record(size=10_000_000), record(size=1_000_000),
        ])
        big = dataset.select(dataset.bytes_sent > 3_000_000)
        assert len(big) == 1
        assert big.bytes_sent[0] == 10_000_000

    def test_throughput_vector(self):
        dataset = AccessLogDataset.from_records([
            record(size=5_000_000, dur=1000.0),
            record(size=5_000_000, dur=2000.0),
        ])
        assert dataset.throughput_mbps() == pytest.approx([40.0, 20.0])

    def test_unique_clients(self):
        dataset = AccessLogDataset.from_records([
            record(ip="20.0.0.1"), record(ip="20.0.0.2"),
            record(ip="20.0.0.1"),
        ])
        assert len(dataset.unique_clients()) == 2

    def test_concatenate_and_empty(self):
        a = AccessLogDataset.from_records([record()])
        b = AccessLogDataset.empty()
        merged = AccessLogDataset.concatenate([a, b])
        assert len(merged) == 1
        assert len(AccessLogDataset.concatenate([])) == 0

    def test_column_length_mismatch(self):
        with pytest.raises(ValueError):
            AccessLogDataset(
                np.zeros(2), [1], np.zeros(2, dtype=np.int8),
                np.zeros(2, dtype=np.int64), np.zeros(2),
                np.zeros(2, dtype=bool),
            )

    def test_af_mismatch_rejected(self):
        with pytest.raises(ValueError):
            AccessLogDataset.from_records([record(ip="20.0.0.1", af=6)])


class TestMobilePrefixList:
    def test_membership(self):
        prefixes = MobilePrefixList([Prefix.parse("21.64.0.0/16")])
        inside, _ = parse_address("21.64.5.5")
        outside, _ = parse_address("21.65.0.1")
        assert prefixes.is_mobile(inside, 4)
        assert not prefixes.is_mobile(outside, 4)

    def test_dual_stack(self):
        prefixes = MobilePrefixList([
            Prefix.parse("21.64.0.0/16"),
            Prefix.parse("2400:1::/32"),
        ])
        v6, _ = parse_address("2400:1::5")
        assert prefixes.is_mobile(v6, 6)
        assert not prefixes.is_mobile(v6, 4)

    def test_text_roundtrip(self):
        original = MobilePrefixList([
            Prefix.parse("21.64.0.0/16"), Prefix.parse("2400:1::/32"),
        ])
        restored = MobilePrefixList.from_text(
            "# MNO published list\n" + original.to_text()
        )
        assert len(restored) == 2
        value, _ = parse_address("21.64.0.1")
        assert restored.is_mobile(value, 4)

    def test_from_mobile_isps(self):
        from repro.netbase import AccessTechnology, ASInfo, ASRole
        from repro.topology import World

        world = World(seed=0)
        mobile = world.add_isp(ASInfo(
            64600, "MobileOp", "JP", ASRole.MOBILE,
            access_technologies=[AccessTechnology.LTE],
        ))
        prefixes = MobilePrefixList.from_mobile_isps([mobile])
        assert len(prefixes) == 2  # v4 + v6 customer blocks
        addr = mobile.allocate_customer_addresses(1)[0]
        assert prefixes.is_mobile(addr.value, 4)
