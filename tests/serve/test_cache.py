"""Tests for the LRU hot-object cache and its invalidation contract."""

import datetime as dt
import threading

import pytest

from repro.core import Severity
from repro.serve import LRUCache, SurveyAPI
from repro.store import SurveyArchive
from tests.store.conftest import make_ranking, make_survey


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_capacity_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh: b becomes coldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_refreshes_existing(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # refresh, no eviction
        assert len(cache) == 2
        assert cache.get("a") == 10

    def test_invalidate_and_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_keys_coldest_first(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.keys() == ("b", "a")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_hit_rate(self):
        cache = LRUCache(2)
        assert cache.stats.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("z")
        assert cache.stats.hit_rate == 0.5


class TestThreadSafety:
    def test_concurrent_eviction_correctness(self):
        """Hammer a tiny cache from many threads: every surviving
        entry still maps to its own value and capacity holds."""
        cache = LRUCache(4)
        barrier = threading.Barrier(8)

        def worker(seed):
            barrier.wait()
            for i in range(500):
                key = (seed * 31 + i) % 12
                cache.put(key, ("v", key))

        threads = [
            threading.Thread(target=worker, args=(n,))
            for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(cache) == 4
        for key in cache.keys():
            assert cache.get(key) == ("v", key)

    def test_concurrent_hit_miss_accounting(self):
        """stats.hits + stats.misses equals exactly the number of
        get() calls, even under contention."""
        cache = LRUCache(8)
        for key in range(8):
            cache.put(key, key)
        gets_per_thread = 400
        barrier = threading.Barrier(6)

        def worker(seed):
            barrier.wait()
            for i in range(gets_per_thread):
                cache.get((seed + i) % 16)  # half hit, half miss

        threads = [
            threading.Thread(target=worker, args=(n,))
            for n in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        total = cache.stats.hits + cache.stats.misses
        assert total == 6 * gets_per_thread

    def test_concurrent_mixed_load(self):
        cache = LRUCache(16)
        errors = []

        def worker(seed):
            try:
                for i in range(200):
                    key = (seed + i) % 32
                    cache.put(key, key * 2)
                    value = cache.get(key)
                    if value is not None and value != key * 2:
                        errors.append((key, value))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,))
            for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 16


class TestNoStaleEntries:
    """Archive mutations must never leave the response cache stale."""

    def test_etag_changes_after_repair_and_reingest(self, archive):
        from repro.faults import FsFaultKey, flip_bit

        archive = SurveyArchive(archive.root)  # cold: reads hit disk
        api = SurveyAPI(archive)

        first = api.handle("/v1/period/2019-06")
        assert first.status == 200
        repeat = api.handle("/v1/period/2019-06")
        # Same rendered body/ETag = served from cache (each
        # response carries its own X-Request-Id, so identity
        # no longer holds).
        assert (repeat.body, repeat.etag) == (first.body, first.etag)

        # The period rots on disk; fsck --repair quarantines it.
        flip_bit(
            archive.period_path("2019-06"), key=FsFaultKey(3)
        )
        report = archive.fsck(repair=True)
        assert report.repair_count >= 1

        # The generation moved, so the cache was dropped: the route
        # now reflects reality (404), not the stale 200.
        gone = api.handle("/v1/period/2019-06")
        assert gone.status == 404

        # Re-ingest the period with different content: the fresh
        # render must carry a different ETag than the original.
        archive.ingest(
            make_survey("2019-06", dt.datetime(2019, 6, 1), {
                100: Severity.LOW, 200: Severity.SEVERE,
            }),
            ranking=make_ranking(),
        )
        fresh = api.handle("/v1/period/2019-06")
        assert fresh.status == 200
        assert fresh.etag != first.etag
        assert fresh.body != first.body
        # And the fresh response is itself cached again.
        refreshed = api.handle("/v1/period/2019-06")
        assert (refreshed.body, refreshed.etag) == (fresh.body, fresh.etag)

    def test_quarantine_on_read_invalidates(self, archive):
        """A read-path quarantine (not fsck) also bumps the
        generation and drops cached responses."""
        archive = SurveyArchive(archive.root)
        api = SurveyAPI(archive)
        cached = api.handle("/v1/periods")
        repeat = api.handle("/v1/periods")
        # Same rendered body/ETag = served from cache (each
        # response carries its own X-Request-Id, so identity
        # no longer holds).
        assert (repeat.body, repeat.etag) == (cached.body, cached.etag)

        archive.period_path("2019-09").write_bytes(b"rot")
        failed = api.handle("/v1/period/2019-09")
        assert failed.status == 503  # quarantined on read

        # The generation bump invalidated the whole cache.
        assert api.handle("/v1/periods") is not cached
