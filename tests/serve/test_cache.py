"""Tests for the LRU hot-object cache."""

import threading

import pytest

from repro.serve import LRUCache


class TestBasics:
    def test_miss_then_hit(self):
        cache = LRUCache(4)
        assert cache.get("a") is None
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1

    def test_capacity_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")          # refresh: b becomes coldest
        cache.put("c", 3)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1

    def test_put_refreshes_existing(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)      # refresh, no eviction
        assert len(cache) == 2
        assert cache.get("a") == 10

    def test_invalidate_and_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.invalidate("a") is True
        assert cache.invalidate("a") is False
        cache.put("b", 2)
        cache.clear()
        assert len(cache) == 0

    def test_keys_coldest_first(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        assert cache.keys() == ("b", "a")

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(0)

    def test_hit_rate(self):
        cache = LRUCache(2)
        assert cache.stats.hit_rate == 0.0
        cache.put("a", 1)
        cache.get("a")
        cache.get("z")
        assert cache.stats.hit_rate == 0.5


class TestThreadSafety:
    def test_concurrent_mixed_load(self):
        cache = LRUCache(16)
        errors = []

        def worker(seed):
            try:
                for i in range(200):
                    key = (seed + i) % 32
                    cache.put(key, key * 2)
                    value = cache.get(key)
                    if value is not None and value != key * 2:
                        errors.append((key, value))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,))
            for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 16
