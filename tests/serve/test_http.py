"""End-to-end HTTP tests on an ephemeral port."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve import SERVER_NAME, SurveyServer


@pytest.fixture()
def server(archive):
    with SurveyServer(archive) as server:
        yield server


def fetch(url, headers=None):
    request = urllib.request.Request(url, headers=headers or {})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, dict(response.headers), (
                response.read()
            )
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


class TestEndToEnd:
    def test_ephemeral_port_bound(self, server):
        assert server.port != 0
        assert server.url.startswith("http://127.0.0.1:")

    def test_healthz(self, server):
        status, headers, body = fetch(server.url + "/v1/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        assert SERVER_NAME in headers["Server"]
        assert json.loads(body)["status"] == "ok"

    def test_as_lookup_with_etag(self, server):
        status, headers, body = fetch(server.url + "/v1/as/100")
        assert status == 200
        assert headers["ETag"].startswith('"')
        assert json.loads(body)["report"]["severity"] == "mild"
        assert headers["Cache-Control"] == "max-age=300"

    def test_conditional_request_304(self, server):
        _status, headers, body = fetch(server.url + "/v1/as/100")
        status, headers2, body2 = fetch(
            server.url + "/v1/as/100",
            headers={"If-None-Match": headers["ETag"]},
        )
        assert status == 304
        assert body2 == b""
        assert headers2["ETag"] == headers["ETag"]

    def test_conditional_request_star(self, server):
        status, _headers, _body = fetch(
            server.url + "/v1/as/100",
            headers={"If-None-Match": "*"},
        )
        assert status == 304

    def test_stale_etag_gets_full_response(self, server):
        status, _headers, body = fetch(
            server.url + "/v1/as/100",
            headers={"If-None-Match": '"deadbeef"'},
        )
        assert status == 200
        assert body

    def test_error_statuses_over_http(self, server):
        status, _headers, body = fetch(server.url + "/v1/as/77777")
        assert status == 404
        assert json.loads(body)["error"] == "ASNotFoundError"
        status, _headers, _body = fetch(server.url + "/v1/as/banana")
        assert status == 400
        status, _headers, _body = fetch(server.url + "/nope")
        assert status == 404

    def test_head_request(self, server):
        request = urllib.request.Request(
            server.url + "/v1/healthz", method="HEAD"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            assert response.status == 200
            assert response.read() == b""
            assert int(response.headers["Content-Length"]) > 0

    def test_history_over_http(self, server):
        status, _headers, body = fetch(
            server.url + "/v1/as/200/history"
        )
        assert status == 200
        history = json.loads(body)["history"]
        assert history[0]["severity"] == "low"


class TestLifecycle:
    def test_graceful_stop_releases_port(self, archive):
        server = SurveyServer(archive).start()
        port = server.port
        status, _headers, _body = fetch(
            server.url + "/v1/healthz"
        )
        assert status == 200
        server.stop()
        # The port is released: a new server can bind it again.
        rebound = SurveyServer(archive, port=port)
        rebound.start()
        rebound.stop()

    def test_double_start_refused(self, archive):
        server = SurveyServer(archive).start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_serves_compacted_archive(self, archive):
        archive.compact()
        with SurveyServer(archive) as server:
            status, _headers, body = fetch(
                server.url + "/v1/as/400?period=2019-09"
            )
        assert status == 200
        assert json.loads(body)["report"]["severity"] == "severe"
