"""Socket-free tests for the survey query API."""

import json

import pytest

from repro.parallel.cache import canonical_json
from repro.serve import SEVERITY_CLASSES, SurveyAPI, status_for
from repro.store import (
    ArchiveCorruptionError,
    ASNotFoundError,
    PeriodNotFoundError,
)


@pytest.fixture()
def api(archive):
    return SurveyAPI(archive, cache_size=32)


def body(response):
    return json.loads(response.body)


class TestRoutes:
    def test_healthz(self, api):
        response = api.handle("/v1/healthz")
        assert response.status == 200
        payload = body(response)
        assert payload["status"] == "ok"
        assert payload["periods"] == 2
        assert payload["latest"] == "2019-09"

    def test_periods(self, api):
        payload = body(api.handle("/v1/periods"))
        names = [entry["name"] for entry in payload["periods"]]
        assert names == ["2019-06", "2019-09"]

    def test_period_full_payload(self, api, archive):
        response = api.handle("/v1/period/2019-06")
        assert response.status == 200
        assert canonical_json(body(response)) == canonical_json(
            archive.get_period("2019-06")
        )

    def test_as_latest(self, api):
        payload = body(api.handle("/v1/as/100"))
        assert payload["period"] == "2019-09"
        assert payload["report"]["severity"] == "mild"

    def test_as_with_period_query(self, api):
        payload = body(api.handle("/v1/as/100?period=2019-06"))
        assert payload["period"] == "2019-06"
        assert payload["report"]["severity"] == "severe"

    def test_as_prefix_accepted(self, api):
        assert api.handle("/v1/as/AS100").status == 200

    def test_severe(self, api):
        payload = body(api.handle("/v1/period/2019-09/severe"))
        assert payload["asns"] == [400]
        assert payload["count"] == 1
        assert payload["reports"]["400"]["severity"] == "severe"

    def test_severity_classes(self, api):
        for severity in SEVERITY_CLASSES:
            response = api.handle(
                f"/v1/period/2019-06/severity/{severity}"
            )
            assert response.status == 200

    def test_country(self, api):
        payload = body(api.handle("/v1/period/2019-09/country/jp"))
        assert payload["country"] == "JP"
        assert payload["asns"] == [100, 400]

    def test_history(self, api):
        payload = body(api.handle("/v1/as/200/history"))
        assert [e["monitored"] for e in payload["history"]] == [
            True, False,
        ]


class TestErrorMapping:
    def test_unknown_route_404(self, api):
        assert api.handle("/v1/nope").status == 404
        assert api.handle("/other/healthz").status == 404

    def test_unknown_period_404(self, api):
        response = api.handle("/v1/period/2024-01")
        assert response.status == 404
        assert body(response)["error"] == "PeriodNotFoundError"

    def test_unknown_as_404(self, api):
        assert api.handle("/v1/as/77777").status == 404
        assert api.handle("/v1/as/77777/history").status == 404

    def test_bad_asn_400(self, api):
        response = api.handle("/v1/as/banana")
        assert response.status == 400
        assert body(response)["error"] == "ValueError"

    def test_bad_severity_400(self, api):
        response = api.handle("/v1/period/2019-06/severity/awful")
        assert response.status == 400

    def test_corruption_503_never_served(self, api, archive):
        path = archive.period_path("2019-06")
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        archive._payloads.clear()
        response = api.handle("/v1/period/2019-06")
        assert response.status == 503
        assert body(response)["error"] == "ArchiveCorruptionError"

    def test_status_for_taxonomy(self):
        assert status_for(PeriodNotFoundError("x")) == 404
        assert status_for(ASNotFoundError(1, "x")) == 404
        assert status_for(ArchiveCorruptionError("p", "d")) == 503
        assert status_for(ValueError("v")) == 400
        assert status_for(RuntimeError("r")) == 500


class TestCachingAndETags:
    def test_etag_stable_across_requests(self, api):
        first = api.handle("/v1/as/100")
        second = api.handle("/v1/as/100")
        assert first.etag is not None
        assert first.etag == second.etag
        assert first.body == second.body

    def test_second_request_hits_cache(self, api):
        api.handle("/v1/as/100")
        before = api.cache.stats.hits
        api.handle("/v1/as/100")
        assert api.cache.stats.hits == before + 1

    def test_errors_not_cached(self, api):
        api.handle("/v1/as/77777")
        assert api.cache.get("/v1/as/77777") is None

    def test_query_string_is_part_of_key(self, api):
        latest = api.handle("/v1/as/100")
        pinned = api.handle("/v1/as/100?period=2019-06")
        assert latest.etag != pinned.etag

    def test_serves_from_compacted_archive(self, api, archive):
        archive.compact()
        archive._payloads.clear()
        api.cache.clear()
        payload = body(api.handle("/v1/as/400?period=2019-09"))
        assert payload["report"]["severity"] == "severe"
