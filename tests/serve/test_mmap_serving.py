"""Serving over mmap-backed segments: concurrency, staleness, tears.

The serving layer's contract does not change when the archive flips
periods from JSON documents to mapped segments: identical bytes and
ETags, coherent responses while a re-ingest bumps the generation
mid-flight, and a torn segment degrading to the JSON document (with
``store_fallback_total`` booked) instead of a 500.
"""

import datetime as dt
import json
import threading

import pytest

from repro.core import Severity
from repro.obs import Observability, observed
from repro.serve import SurveyAPI
from repro.store import STORE_MMAP_ENV, SurveyArchive
from tests.store.conftest import make_ranking, make_survey

THREADS = 8
ROUNDS = 25

HOT_PATHS = (
    "/v1/as/100/history",
    "/v1/as/400/history",
    "/v1/as/100?period=2019-06",
    "/v1/period/2019-09/severity/severe",
    "/v1/period/2019-09/severity/none",
    "/v1/period/2019-06/severe",
    "/v1/period/2019-06",
)


@pytest.fixture(autouse=True)
def _pin_environment(monkeypatch):
    monkeypatch.delenv(STORE_MMAP_ENV, raising=False)


def build_archive(root, ranking=None):
    """The conftest two-period archive, buildable at any path."""
    archive = SurveyArchive(root)
    ranking = ranking if ranking is not None else make_ranking()
    archive.ingest(
        make_survey("2019-06", dt.datetime(2019, 6, 1), {
            100: Severity.SEVERE, 200: Severity.LOW,
            300: Severity.NONE,
        }),
        ranking=ranking,
    )
    archive.ingest(
        make_survey("2019-09", dt.datetime(2019, 9, 1), {
            100: Severity.MILD, 300: Severity.NONE,
            400: Severity.SEVERE,
        }),
        ranking=ranking,
    )
    return archive


def serve_all(api, paths=HOT_PATHS):
    return {
        path: (response.status, response.body, response.etag)
        for path, response in (
            (path, api.handle(path)) for path in paths
        )
    }


class TestConcurrentMmapReads:
    def test_eight_threads_byte_identical(self, tmp_path):
        with build_archive(tmp_path / "arc") as archive:
            archive.compact()
            api = SurveyAPI(archive, cache_size=8)
            expected = serve_all(api)
            assert all(
                status == 200 for status, _, _ in expected.values()
            )

            results = [[] for _ in range(THREADS)]
            errors = []
            barrier = threading.Barrier(THREADS)

            def reader(slot):
                try:
                    barrier.wait()
                    for _ in range(ROUNDS):
                        results[slot].append(serve_all(api))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, args=(slot,))
                for slot in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            for slot_results in results:
                assert len(slot_results) == ROUNDS
                for observed_pages in slot_results:
                    assert observed_pages == expected

    def test_generation_bump_mid_flight(self, tmp_path):
        ranking = make_ranking()
        with build_archive(tmp_path / "arc", ranking) as archive:
            archive.compact()
            api = SurveyAPI(archive, cache_size=8)
            path = "/v1/as/400/history"
            first = api.handle(path)
            before = (first.status, first.body, first.etag)

            seen = [[] for _ in range(THREADS)]
            errors = []
            barrier = threading.Barrier(THREADS + 1)
            ingested = threading.Event()

            def reader(slot):
                try:
                    barrier.wait()
                    while not ingested.is_set():
                        response = api.handle(path)
                        seen[slot].append((
                            response.status, response.body,
                            response.etag,
                        ))
                    # Tail reads start strictly after the commit:
                    # stale bytes here would be a coherence bug.
                    for _ in range(3):
                        response = api.handle(path)
                        seen[slot].append((
                            response.status, response.body,
                            response.etag,
                        ))
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [
                threading.Thread(target=reader, args=(slot,))
                for slot in range(THREADS)
            ]
            for thread in threads:
                thread.start()
            barrier.wait()
            # Re-ingest mid-flight: a third period lands and the
            # archive generation bumps while readers are in the maps.
            archive.ingest(
                make_survey("2019-12", dt.datetime(2019, 12, 1), {
                    100: Severity.LOW, 400: Severity.MILD,
                }),
                ranking=ranking,
            )
            after_response = api.handle(path)
            ingested.set()
            for thread in threads:
                thread.join()
            assert not errors

            after = (
                after_response.status, after_response.body,
                after_response.etag,
            )
            # The new period is visible and the ETag rolled.
            assert after[0] == 200
            assert before[1] != after[1]
            assert before[2] != after[2]
            periods = [
                entry["period"]
                for entry in json.loads(after[1])["history"]
            ]
            assert "2019-12" in periods
            # Every observation is one of the two committed renders —
            # never a torn mixture, never stale bytes after the bump.
            for slot_observations in seen:
                for observation in slot_observations:
                    assert observation in (before, after)
                assert slot_observations[-1] == after

    def test_mmap_and_json_modes_serve_identical_bytes(
        self, tmp_path, monkeypatch
    ):
        with build_archive(tmp_path / "mapped") as archive:
            archive.compact()
            mapped = serve_all(SurveyAPI(archive, cache_size=8))
        monkeypatch.setenv(STORE_MMAP_ENV, "0")
        with build_archive(tmp_path / "plain") as archive:
            archive.compact()
            plain = serve_all(SurveyAPI(archive, cache_size=8))
        assert mapped == plain


class TestTornSegmentServing:
    def test_torn_segment_falls_back_not_500(self, tmp_path):
        with build_archive(tmp_path / "pristine") as archive:
            expected = serve_all(SurveyAPI(archive, cache_size=8))

        root = tmp_path / "arc"
        with build_archive(root) as archive:
            archive.compact(keep_json=True)
        seg = root / "segments" / "2019-06.seg"
        raw = bytearray(seg.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        seg.write_bytes(raw)

        with observed(Observability()) as obs:
            with SurveyArchive(root) as archive:
                api = SurveyAPI(archive, cache_size=8)
                served = serve_all(api)
        for path, (status, body, etag) in served.items():
            assert status < 500, path
        # Byte-identical to a never-compacted archive's serving.
        assert served == expected
        assert obs.metrics.counter(
            "store_fallback_total", ""
        ).value() >= 1

    def test_torn_segment_under_concurrency(self, tmp_path):
        root = tmp_path / "arc"
        with build_archive(root) as archive:
            archive.compact(keep_json=True)
        for name in ("2019-06", "2019-09"):
            seg = root / "segments" / f"{name}.seg"
            raw = bytearray(seg.read_bytes())
            raw[len(raw) // 2] ^= 0xFF
            seg.write_bytes(raw)

        with observed(Observability()) as obs:
            with SurveyArchive(root) as archive:
                api = SurveyAPI(archive, cache_size=8)
                statuses = []
                errors = []
                barrier = threading.Barrier(THREADS)

                def reader():
                    try:
                        barrier.wait()
                        for _ in range(ROUNDS):
                            for path in HOT_PATHS:
                                statuses.append(
                                    api.handle(path).status
                                )
                    except Exception as exc:  # pragma: no cover
                        errors.append(exc)

                threads = [
                    threading.Thread(target=reader)
                    for _ in range(THREADS)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        assert not errors
        assert statuses and all(
            status < 500 for status in statuses
        )
        assert obs.metrics.counter(
            "store_fallback_total", ""
        ).value() >= 1
