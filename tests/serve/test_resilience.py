"""Resilience middleware: shedding, breaker, deadlines, retry client."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import observed
from repro.serve import (
    BreakerOpenError,
    CircuitBreaker,
    ConcurrencyLimiter,
    Deadline,
    DeadlineExceeded,
    OverloadedError,
    ResilienceConfig,
    RetriesExhausted,
    RetryingClient,
    SurveyAPI,
    SurveyServer,
    parse_retry_after,
    retry_call,
)
from repro.serve.client import ClientResult


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestConcurrencyLimiter:
    def test_sheds_past_limit(self):
        limiter = ConcurrencyLimiter(2)
        limiter.acquire()
        limiter.acquire()
        with pytest.raises(OverloadedError):
            limiter.acquire()
        assert limiter.shed_total == 1
        limiter.release()
        limiter.acquire()  # slot freed, admission resumes
        assert limiter.in_flight == 2

    def test_release_never_goes_negative(self):
        limiter = ConcurrencyLimiter(1)
        limiter.release()
        assert limiter.in_flight == 0

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            ConcurrencyLimiter(0)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_seconds=30,
                                 clock=clock)
        breaker.check("p")  # closed: admits
        breaker.record_failure("p")
        breaker.record_failure("p")
        assert breaker.state("p") == "closed"
        breaker.record_failure("p")
        assert breaker.state("p") == "open"
        with pytest.raises(BreakerOpenError):
            breaker.check("p")

    def test_per_key_isolation(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        breaker.record_failure("bad")
        assert breaker.state("bad") == "open"
        breaker.check("good")  # unaffected
        assert breaker.tripped() == {"bad": "open"}

    def test_half_open_probe_then_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, cooldown_seconds=10,
                                 clock=clock)
        breaker.record_failure("p")
        with pytest.raises(BreakerOpenError):
            breaker.check("p")
        clock.advance(11)
        breaker.check("p")  # the half-open probe is admitted
        assert breaker.state("p") == "half-open"
        # Concurrent callers fail fast while the probe is out.
        with pytest.raises(BreakerOpenError):
            breaker.check("p")
        breaker.record_success("p")
        assert breaker.state("p") == "closed"
        assert breaker.tripped() == {}

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=3, cooldown_seconds=10,
                                 clock=clock)
        for _ in range(3):
            breaker.record_failure("p")
        clock.advance(11)
        breaker.check("p")
        breaker.record_failure("p")  # probe failed
        assert breaker.state("p") == "open"
        with pytest.raises(BreakerOpenError):
            breaker.check("p")  # cooldown restarted

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, clock=FakeClock())
        breaker.record_failure("p")
        breaker.record_success("p")
        breaker.record_failure("p")
        assert breaker.state("p") == "closed"

    def test_reset_closes(self):
        breaker = CircuitBreaker(threshold=1, clock=FakeClock())
        breaker.record_failure("p")
        breaker.reset("p")
        assert breaker.state("p") == "closed"


class TestDeadline:
    def test_expires_with_the_clock(self):
        clock = FakeClock()
        deadline = Deadline(5.0, clock=clock)
        deadline.check()
        assert deadline.remaining() == 5.0
        clock.advance(5.1)
        assert deadline.expired
        with pytest.raises(DeadlineExceeded):
            deadline.check()


class BlockingArchive:
    """Archive wrapper whose period reads block on an event."""

    def __init__(self, archive, gate):
        self._archive = archive
        self._gate = gate

    def __getattr__(self, name):
        return getattr(self._archive, name)

    def __len__(self):
        return len(self._archive)

    def __contains__(self, name):
        return name in self._archive

    def get_period(self, name):
        self._gate.wait(timeout=30)
        return self._archive.get_period(name)


class TestShedding:
    def test_burst_sheds_exactly_the_overflow(self, archive):
        """The acceptance burst: limit N, 4N requests → N served,
        3N shed with 503 + Retry-After, counter matches exactly."""
        limit = 4
        gate = threading.Event()
        api = SurveyAPI(
            BlockingArchive(archive, gate),
            resilience=ResilienceConfig(
                max_concurrency=limit, retry_after_seconds=2,
            ),
        )
        results = [None] * (4 * limit)

        def worker(i):
            results[i] = api.handle("/v1/period/2019-06")

        with observed() as obs:
            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(len(results))
            ]
            # Fill every slot first, then send the overflow.
            for t in threads[:limit]:
                t.start()
            deadline = threading.Event()
            for _ in range(100):
                if api.limiter.in_flight == limit:
                    break
                deadline.wait(0.05)
            assert api.limiter.in_flight == limit
            for t in threads[limit:]:
                t.start()
            for t in threads[limit:]:
                t.join(timeout=30)
            gate.set()
            for t in threads[:limit]:
                t.join(timeout=30)

        statuses = sorted(r.status for r in results)
        assert statuses == [200] * limit + [503] * (3 * limit)
        for r in results:
            if r.status == 503:
                assert dict(r.headers)["Retry-After"] == "2"
                assert json.loads(r.body)["error"] == "Overloaded"
        shed = obs.metrics.counter("requests_shed_total", "")
        assert shed.value() == 3 * limit
        assert api.limiter.shed_total == 3 * limit
        assert api.limiter.in_flight == 0

    def test_http_burst_no_hangs(self, archive):
        """End-to-end overload through a real socket: every request
        answers 200 or 503, nothing hangs, counters reconcile."""
        limit = 4
        burst = 4 * limit
        gate = threading.Event()
        api = SurveyAPI(
            BlockingArchive(archive, gate),
            resilience=ResilienceConfig(max_concurrency=limit),
        )
        statuses = [None] * burst
        with SurveyServer(api) as server:
            def fetch(i):
                try:
                    with urllib.request.urlopen(
                        server.url + "/v1/period/2019-09", timeout=30
                    ) as reply:
                        statuses[i] = reply.status
                except urllib.error.HTTPError as exc:
                    statuses[i] = exc.code
                    assert exc.headers["Retry-After"] is not None

            threads = [
                threading.Thread(target=fetch, args=(i,))
                for i in range(burst)
            ]
            for t in threads:
                t.start()
            # Open the gate once the limiter saturated (or the whole
            # burst was already absorbed, on a slow machine).
            for _ in range(200):
                if api.limiter.in_flight >= limit or all(
                    s is not None for s in statuses
                ):
                    break
                threading.Event().wait(0.05)
            gate.set()
            for t in threads:
                t.join(timeout=30)

        assert all(s in (200, 503) for s in statuses), statuses
        assert statuses.count(200) >= 1
        served = statuses.count(200)
        assert api.limiter.shed_total == burst - served


class TestBreakerIntegration:
    def test_corrupt_period_trips_then_recovers(self, archive):
        from repro.store import SurveyArchive

        # Reopen cold: the ingesting instance holds payloads in
        # memory and would never touch the corrupted bytes.
        archive = SurveyArchive(archive.root)
        clock = FakeClock()
        api = SurveyAPI(
            archive,
            resilience=ResilienceConfig(
                breaker_threshold=2, breaker_cooldown_seconds=30,
            ),
            clock=clock,
        )
        period_file = archive.period_path("2019-06")
        pristine = period_file.read_bytes()
        period_file.write_bytes(pristine[:-40] + b"x" * 40)

        # Repeated corrupt reads: 503s, then the circuit opens.
        first = api.handle("/v1/period/2019-06")
        assert first.status == 503
        assert json.loads(first.body)["error"] == "ArchiveCorruptionError"
        second = api.handle("/v1/period/2019-06")
        assert second.status == 503
        assert api.breaker.state("2019-06") == "open"
        tripped = api.handle("/v1/period/2019-06")
        assert tripped.status == 503
        assert json.loads(tripped.body)["error"] == "BreakerOpenError"
        assert dict(tripped.headers)["Retry-After"]

        # The healthy period keeps serving throughout.
        assert api.handle("/v1/period/2019-09").status == 200

        # Health reports the degradation, uncached.
        health = json.loads(api.handle("/v1/healthz").body)
        assert health["status"] == "degraded"
        assert health["degraded_periods"] == {"2019-06": "open"}

        # Cooldown passes, the artifact is restored (the first read
        # quarantined it), the probe succeeds: circuit closes.
        clock.advance(31)
        period_file.parent.mkdir(exist_ok=True)
        period_file.write_bytes(pristine)
        probe = api.handle("/v1/period/2019-06")
        assert probe.status == 200
        assert api.breaker.state("2019-06") == "closed"
        assert json.loads(api.handle("/v1/healthz").body)["status"] == "ok"

    def test_breaker_counters(self, archive):
        from repro.store import SurveyArchive

        archive = SurveyArchive(archive.root)
        with observed() as obs:
            api = SurveyAPI(
                archive,
                resilience=ResilienceConfig(breaker_threshold=1),
                clock=FakeClock(),
            )
            period_file = archive.period_path("2019-06")
            period_file.write_bytes(b"garbage")
            api.handle("/v1/period/2019-06")
        gauge = obs.metrics.gauge("breaker_state", "", ("period",))
        assert gauge.value(period="2019-06") == 2  # open
        transitions = obs.metrics.counter(
            "breaker_transitions_total", "", ("period", "state")
        )
        assert transitions.value(period="2019-06", state="open") == 1


class AdvancingArchive:
    """Archive wrapper that burns fake time on every meta read."""

    def __init__(self, archive, clock, cost):
        self._archive = archive
        self._clock = clock
        self._cost = cost

    def __getattr__(self, name):
        return getattr(self._archive, name)

    def __len__(self):
        return len(self._archive)

    def period_meta(self, name):
        self._clock.advance(self._cost)
        return self._archive.period_meta(name)


class TestDeadlineIntegration:
    def test_slow_walk_maps_to_503(self, archive):
        clock = FakeClock()
        api = SurveyAPI(
            AdvancingArchive(archive, clock, cost=6.0),
            resilience=ResilienceConfig(deadline_seconds=5.0),
            clock=clock,
        )
        response = api.handle("/v1/periods")
        assert response.status == 503
        assert json.loads(response.body)["error"] == "DeadlineExceeded"


class TestRetryingClient:
    def scripted(self, replies):
        """A fetch stub that pops scripted (status, headers) replies."""
        calls = []

        def fetch(url, timeout):
            calls.append(url)
            status, headers = replies.pop(0)
            return status, b'{"ok": true}', headers

        return fetch, calls

    def test_retries_until_success(self):
        fetch, calls = self.scripted([
            (503, {"Retry-After": "3"}),
            (503, {}),
            (200, {}),
        ])
        waits = []
        client = RetryingClient(
            "http://x", fetch=fetch, sleep=waits.append,
            backoff_base=0.1,
        )
        result = client.get("/v1/healthz")
        assert result.status == 200
        assert result.attempts == 3
        assert len(calls) == 3
        # First wait honors the server's Retry-After ask.
        assert waits[0] >= 3.0
        # Second wait is pure jittered backoff: base*2 scaled by
        # jitter in [0.5, 1.5).
        assert 0.1 <= waits[1] < 0.3

    def test_non_retryable_returns_immediately(self):
        fetch, calls = self.scripted([(404, {})])
        client = RetryingClient("http://x", fetch=fetch,
                                sleep=lambda s: None)
        result = client.get("/v1/nope")
        assert result.status == 404
        assert result.attempts == 1
        assert len(calls) == 1

    def test_exhaustion_raises(self):
        fetch, calls = self.scripted([(503, {})] * 3)
        client = RetryingClient(
            "http://x", max_attempts=3, fetch=fetch,
            sleep=lambda s: None,
        )
        with pytest.raises(RetriesExhausted) as excinfo:
            client.get("/v1/periods")
        assert len(calls) == 3
        assert "HTTP 503" in str(excinfo.value)

    def test_backoff_grows_exponentially(self):
        fetch, _ = self.scripted([(503, {})] * 4 + [(200, {})])
        waits = []
        client = RetryingClient(
            "http://x", fetch=fetch, sleep=waits.append,
            backoff_base=1.0, max_attempts=5,
        )
        client.get("/")
        # Jitter scales by [0.5, 1.5), so consecutive doublings still
        # satisfy waits[i+1] > waits[i] * 2 * (0.5/1.5) bounds; check
        # the envelope rather than exact values.
        for i, wait in enumerate(waits):
            assert 0.5 * 2 ** i <= wait < 1.5 * 2 ** i

    def test_transport_errors_retried(self):
        attempts = []

        def fetch(url, timeout):
            attempts.append(url)
            if len(attempts) < 3:
                raise ConnectionResetError("peer vanished")
            return 200, b"{}", {}

        client = RetryingClient("http://x", fetch=fetch,
                                sleep=lambda s: None)
        assert client.get("/").status == 200
        assert len(attempts) == 3

    def test_against_live_server_shed_then_served(self, archive):
        """A shed client retries after the 503 and lands a 200."""
        api = SurveyAPI(
            archive,
            resilience=ResilienceConfig(
                max_concurrency=1, retry_after_seconds=0,
            ),
        )
        gate = threading.Event()
        release = threading.Event()
        original = api.archive.get_period

        def slow_get_period(name):
            gate.set()
            release.wait(timeout=30)
            return original(name)

        api.archive.get_period = slow_get_period
        with SurveyServer(api) as server:
            occupant = threading.Thread(
                target=urllib.request.urlopen,
                args=(server.url + "/v1/period/2019-06",),
                kwargs={"timeout": 30},
            )
            occupant.start()
            assert gate.wait(timeout=30)

            waits = []

            def sleeper(seconds):
                waits.append(seconds)
                release.set()  # free the slot while "sleeping"
                occupant.join(timeout=30)

            client = RetryingClient(
                server.url, sleep=sleeper, backoff_base=0.01,
            )
            result = client.get("/v1/healthz")
            assert result.status == 200
            assert result.attempts >= 2
            assert waits  # it really backed off


class TestRetryCall:
    def test_honors_retry_after_header(self):
        replies = [
            ClientResult(503, b"", {"Retry-After": "5"}),
            ClientResult(200, b"{}"),
        ]
        waits = []
        result = retry_call(
            lambda: replies.pop(0), sleep=waits.append,
            backoff_base=0.01,
        )
        assert result.status == 200
        assert result.attempts == 2
        assert waits[0] >= 5.0

    def test_returns_last_result_when_exhausted(self):
        result = retry_call(
            lambda: ClientResult(503, b""),
            max_attempts=3, sleep=lambda s: None,
        )
        assert result.status == 503
        assert result.attempts == 3


class TestParseRetryAfter:
    def test_forms(self):
        assert parse_retry_after("3") == 3.0
        assert parse_retry_after("0.5") == 0.5
        assert parse_retry_after("-1") == 0.0
        assert parse_retry_after(None) is None
        assert parse_retry_after("Wed, 21 Oct 2015") is None
