"""Serving observability: /v1/metrics, X-Request-Id, RED metrics and
the structured access log — including their behavior under genuine
concurrency (counter consistency, uncorrupted JSONL)."""

import json
import threading

import pytest

from repro.obs import NOOP, Observability, observed, parse_prometheus
from repro.serve import AccessLog, SurveyAPI, read_access_log
from repro.serve.app import METRICS_CONTENT_TYPE, REQUEST_ID_HEADER


def _request_id_of(response):
    return dict(response.headers)[REQUEST_ID_HEADER]


class TestMetricsEndpoint:
    def test_prometheus_by_default_and_round_trips(self, archive):
        with observed() as obs:
            api = SurveyAPI(archive)
            api.handle("/v1/as/100")
            response = api.handle("/v1/metrics")
        assert response.status == 200
        assert response.content_type == METRICS_CONTENT_TYPE
        parsed = parse_prometheus(response.body.decode())
        samples = {
            (sample["labels"]["route"], sample["labels"]["status"]):
                sample["value"]
            for sample in parsed["http_requests_total"]["samples"]
        }
        assert samples[("as", "200")] == 1.0
        # The scrape pre-dates its own accounting; the live registry
        # has since counted the /v1/metrics request itself.
        json_samples = {
            (s["labels"]["route"], s["labels"]["status"]): s["value"]
            for s in obs.metrics.to_dict()["http_requests_total"]
            ["samples"]
        }
        assert json_samples[("as", "200")] == samples[("as", "200")]
        assert json_samples[("metrics", "200")] == 1.0

    def test_json_via_accept_header(self, archive):
        with observed():
            api = SurveyAPI(archive)
            api.handle("/v1/healthz")
            response = api.handle(
                "/v1/metrics",
                headers={"Accept": "application/json"},
            )
        assert response.content_type == "application/json"
        payload = json.loads(response.body)
        assert payload["http_requests_total"]["type"] == "counter"

    def test_format_query_beats_accept(self, archive):
        with observed():
            api = SurveyAPI(archive)
            response = api.handle(
                "/v1/metrics?format=prometheus",
                headers={"Accept": "application/json"},
            )
        assert response.content_type == METRICS_CONTENT_TYPE

    def test_unknown_format_is_400(self, archive):
        with observed():
            response = SurveyAPI(archive).handle("/v1/metrics?format=xml")
        assert response.status == 400

    def test_unavailable_without_live_observer(self, archive):
        response = SurveyAPI(archive).handle("/v1/metrics")
        assert response.status == 503
        assert b"MetricsUnavailable" in response.body

    def test_never_cached(self, archive):
        with observed():
            api = SurveyAPI(archive)
            first = api.handle("/v1/metrics")
            api.handle("/v1/as/100")
            second = api.handle("/v1/metrics")
        assert first.etag is None
        # A scrape sees current values, not the cached first body.
        assert second.body != first.body


class TestRequestId:
    def test_client_id_is_echoed(self, archive):
        response = SurveyAPI(archive).handle(
            "/v1/healthz", headers={REQUEST_ID_HEADER: "abc-123"}
        )
        assert _request_id_of(response) == "abc-123"

    def test_generated_when_absent_and_unique(self, archive):
        api = SurveyAPI(archive)
        first = api.handle("/v1/healthz")
        second = api.handle("/v1/healthz")
        assert _request_id_of(first) != _request_id_of(second)

    def test_cache_hit_gets_fresh_id(self, archive):
        api = SurveyAPI(archive)
        first = api.handle("/v1/as/100")
        hit = api.handle("/v1/as/100")
        assert hit.body == first.body
        assert _request_id_of(hit) != _request_id_of(first)

    def test_oversized_id_is_truncated(self, archive):
        response = SurveyAPI(archive).handle(
            "/v1/healthz", headers={REQUEST_ID_HEADER: "x" * 500}
        )
        assert _request_id_of(response) == "x" * 128

    def test_error_responses_carry_an_id(self, archive):
        response = SurveyAPI(archive).handle("/v1/as/999999")
        assert response.status == 404
        assert _request_id_of(response)


class TestRedMetrics:
    def _counter_samples(self, obs):
        return {
            (dict(key)["route"], dict(key)["status"]): value
            for key, value in obs.metrics.counter(
                "http_requests_total", "", ("route", "status")
            ).samples()
        }

    def test_cache_hit_keeps_real_route(self, archive):
        with observed() as obs:
            api = SurveyAPI(archive)
            api.handle("/v1/as/100")
            api.handle("/v1/as/100")  # cache hit
        samples = self._counter_samples(obs)
        assert samples[("as", "200")] == 2.0
        assert not any(route == "cached" for route, _ in samples)
        # The legacy series keeps its historical cached label.
        legacy = dict(obs.metrics.counter(
            "serve_requests_total", "", ("route",)
        ).samples())
        assert legacy[(("route", "as"),)] == 1
        assert legacy[(("route", "cached"),)] == 1

    def test_statuses_land_on_their_series(self, archive):
        with observed() as obs:
            api = SurveyAPI(archive)
            api.handle("/v1/as/100")
            api.handle("/v1/as/999999")        # 404
            api.handle("/v1/as/not-a-number")  # 400
        samples = self._counter_samples(obs)
        assert samples[("as", "200")] == 1.0
        assert samples[("as", "404")] == 1.0
        assert samples[("as", "400")] == 1.0

    def test_in_flight_returns_to_zero_and_hit_ratio_tracks(
        self, archive
    ):
        with observed() as obs:
            api = SurveyAPI(archive)
            api.handle("/v1/as/100")
            api.handle("/v1/as/100")
        assert obs.metrics.gauge("serve_in_flight", "").value() == 0
        assert obs.metrics.gauge(
            "serve_cache_hit_ratio", ""
        ).value() == pytest.approx(0.5)


class TestAccessLog:
    def test_records_request_fields(self, archive, tmp_path):
        path = tmp_path / "access.jsonl"
        with AccessLog(path) as log:
            api = SurveyAPI(archive, access_log=log)
            api.handle(
                "/v1/as/100", headers={REQUEST_ID_HEADER: "rid-1"}
            )
            api.handle("/v1/as/100")
            api.handle("/v1/as/999999")
        entries = list(read_access_log(path))
        assert [e["outcome"] for e in entries] == [
            "ok", "cached", "error",
        ]
        first = entries[0]
        assert first["request_id"] == "rid-1"
        assert first["route"] == "as"
        assert first["status"] == 200
        assert first["target"] == "/v1/as/100"
        assert first["duration_ms"] >= 0
        assert entries[2]["status"] == 404

    def test_in_memory_mode_and_bounding(self):
        log = AccessLog(keep=3)
        for i in range(10):
            log.record(seq=i)
        assert log.written == 10
        assert [e["seq"] for e in log.entries] == [7, 8, 9]

    def test_close_is_idempotent(self, tmp_path):
        log = AccessLog(tmp_path / "a.jsonl")
        log.record(x=1)
        log.close()
        log.close()
        assert [e["x"] for e in read_access_log(tmp_path / "a.jsonl")] \
            == [1]

    def test_corrupt_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="corrupt"):
            list(read_access_log(path))


class TestConcurrentTelemetry:
    THREADS = 8
    PER_THREAD = 25

    def test_counters_and_log_consistent_under_concurrency(
        self, archive, tmp_path
    ):
        """Parallel handlers must leave the books exactly balanced:
        the per-route/status counter sum equals the number of requests
        issued, and every access-log line is one valid JSON object."""
        targets = [
            "/v1/as/100", "/v1/as/200", "/v1/period/2019-06",
            "/v1/healthz", "/v1/as/999999",
        ]
        path = tmp_path / "access.jsonl"
        with AccessLog(path) as log, observed() as obs:
            api = SurveyAPI(archive, access_log=log)
            barrier = threading.Barrier(self.THREADS)

            def worker(index):
                barrier.wait()
                for i in range(self.PER_THREAD):
                    api.handle(targets[(index + i) % len(targets)])

            threads = [
                threading.Thread(target=worker, args=(i,))
                for i in range(self.THREADS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()

        total = self.THREADS * self.PER_THREAD
        by_series = dict(obs.metrics.counter(
            "http_requests_total", "", ("route", "status")
        ).samples())
        assert sum(by_series.values()) == total
        legacy_total = sum(dict(obs.metrics.counter(
            "serve_requests_total", "", ("route",)
        ).samples()).values())
        assert legacy_total == total
        assert obs.metrics.histogram(
            "serve_request_seconds", "", ("route",)
        )  # exists with the same schema — would raise otherwise

        entries = list(read_access_log(path))  # raises on corruption
        assert len(entries) == total
        assert log.written == total
        by_outcome = {}
        for entry in entries:
            by_outcome[entry["outcome"]] = \
                by_outcome.get(entry["outcome"], 0) + 1
        # Everything resolved: no outcome category went missing.
        assert sum(by_outcome.values()) == total
        assert by_outcome.get("ok", 0) + by_outcome.get("cached", 0) > 0

    def test_noop_observer_still_serves(self, archive):
        api = SurveyAPI(archive)
        assert api.handle("/v1/as/100").status == 200
        assert NOOP.metrics is None


class TestObserverIsolation:
    def test_observed_restores_previous(self, archive):
        outer = Observability()
        with observed(outer):
            with observed() as inner:
                SurveyAPI(archive).handle("/v1/healthz")
            assert inner is not outer
        assert outer.metrics.counter(
            "http_requests_total", "", ("route", "status")
        ).value(route="healthz", status="200") == 0
