"""Serving-layer tests for the anomaly pinpointing routes."""

import json

import pytest

from repro.parallel.cache import canonical_json
from repro.serve import SurveyAPI, SurveyServer, status_for
from repro.store import (
    AnomalyReportNotFoundError,
    LinkNotFoundError,
)
from tests.store.test_anomaly_artifacts import LINK, make_anomaly_payload


@pytest.fixture()
def reported_archive(archive):
    archive.ingest_anomalies(
        "2019-06", make_anomaly_payload("2019-06")
    )
    return archive


@pytest.fixture()
def api(reported_archive):
    return SurveyAPI(reported_archive, cache_size=32)


def body(response):
    return json.loads(response.body)


class TestAnomaliesRoute:
    def test_full_payload(self, api, reported_archive):
        response = api.handle("/v1/period/2019-06/anomalies")
        assert response.status == 200
        assert canonical_json(body(response)) == canonical_json(
            reported_archive.get_anomalies("2019-06")
        )

    def test_report_less_period_is_404(self, api):
        response = api.handle("/v1/period/2019-09/anomalies")
        assert response.status == 404
        payload = body(response)
        assert payload["error"] == "AnomalyReportNotFoundError"
        assert "2019-09" in payload["detail"]

    def test_unknown_period_is_404(self, api):
        assert api.handle(
            "/v1/period/2031-01/anomalies"
        ).status == 404

    def test_status_mapping(self):
        assert status_for(AnomalyReportNotFoundError("x")) == 404
        assert status_for(LinkNotFoundError("a--b")) == 404


class TestLinkHistoryRoute:
    def test_history_spans_periods(self, api):
        response = api.handle(f"/v1/link/{LINK}/history")
        assert response.status == 200
        payload = body(response)
        assert payload["link"] == LINK
        assert [e["period"] for e in payload["history"]] == [
            "2019-06"
        ]
        assert payload["history"][0]["observed"] is True

    def test_unknown_link_is_404(self, api):
        assert api.handle(
            "/v1/link/9.9.9.9--8.8.8.8/history"
        ).status == 404

    def test_malformed_link_is_400(self, api):
        assert api.handle("/v1/link/not-a-link/history").status == 400


class TestCaching:
    def test_etag_stable_and_cached(self, api):
        first = api.handle("/v1/period/2019-06/anomalies")
        before = api.cache.stats.hits
        second = api.handle("/v1/period/2019-06/anomalies")
        assert first.etag is not None
        assert first.etag == second.etag
        assert api.cache.stats.hits == before + 1

    def test_new_report_invalidates_history(
        self, api, reported_archive
    ):
        stale = api.handle(f"/v1/link/{LINK}/history")
        reported_archive.ingest_anomalies(
            "2019-09", make_anomaly_payload("2019-09")
        )
        fresh = api.handle(f"/v1/link/{LINK}/history")
        assert [
            e["period"] for e in body(fresh)["history"]
        ] == ["2019-06", "2019-09"]
        assert fresh.etag != stale.etag


class TestHttpConditional:
    def test_anomalies_200_then_304_replay(self, reported_archive):
        import urllib.request

        with SurveyServer(reported_archive) as server:
            url = server.url + "/v1/period/2019-06/anomalies"
            with urllib.request.urlopen(url, timeout=10) as response:
                etag = response.headers["ETag"]
                assert response.status == 200
                assert json.loads(response.read())["links"]
            request = urllib.request.Request(
                url, headers={"If-None-Match": etag}
            )
            import urllib.error

            try:
                with urllib.request.urlopen(
                    request, timeout=10
                ) as replay:
                    status = replay.status
                    payload = replay.read()
            except urllib.error.HTTPError as error:
                status = error.code
                payload = error.read()
            assert status == 304
            assert payload == b""
