"""Shared fixtures for the serving-layer tests."""

import datetime as dt

import pytest

from repro.core import Severity
from repro.store import SurveyArchive
from tests.store.conftest import make_ranking, make_survey


@pytest.fixture()
def archive(tmp_path):
    archive = SurveyArchive(tmp_path / "arc")
    ranking = make_ranking()
    archive.ingest(
        make_survey("2019-06", dt.datetime(2019, 6, 1), {
            100: Severity.SEVERE, 200: Severity.LOW,
            300: Severity.NONE,
        }),
        ranking=ranking,
    )
    archive.ingest(
        make_survey("2019-09", dt.datetime(2019, 9, 1), {
            100: Severity.MILD, 300: Severity.NONE,
            400: Severity.SEVERE,
        }),
        ranking=ranking,
    )
    return archive
