"""Tests for repro.timebase."""

import datetime as dt

import numpy as np
import pytest

from repro.timebase import (
    ALL_SURVEY_PERIODS,
    COVID_PERIOD,
    DELAY_BIN_SECONDS,
    LONGITUDINAL_PERIODS,
    SECONDS_PER_DAY,
    TOKYO_PERIOD,
    MeasurementPeriod,
    TimeGrid,
    weekly_overlay,
)


class TestMeasurementPeriod:
    def test_paper_windows(self):
        assert len(LONGITUDINAL_PERIODS) == 6
        assert len(ALL_SURVEY_PERIODS) == 7
        assert all(p.days == 15 for p in ALL_SURVEY_PERIODS)
        assert COVID_PERIOD.start == dt.datetime(2020, 4, 1)
        assert TOKYO_PERIOD.start == dt.datetime(2019, 9, 19)
        assert TOKYO_PERIOD.days == 8

    def test_duration_and_end(self):
        period = MeasurementPeriod("x", dt.datetime(2019, 9, 1), 15)
        assert period.duration_seconds == 15 * SECONDS_PER_DAY
        assert period.end == dt.datetime(2019, 9, 16)

    def test_start_weekday(self):
        # 2019-09-19 was a Thursday (weekday 3).
        assert TOKYO_PERIOD.start_weekday == 3

    def test_to_datetime(self):
        assert TOKYO_PERIOD.to_datetime(3600) == dt.datetime(
            2019, 9, 19, 1, 0
        )

    def test_rejects_aware_datetime(self):
        with pytest.raises(ValueError):
            MeasurementPeriod(
                "x", dt.datetime(2019, 9, 1, tzinfo=dt.timezone.utc), 15
            )

    def test_rejects_nonpositive_days(self):
        with pytest.raises(ValueError):
            MeasurementPeriod("x", dt.datetime(2019, 9, 1), 0)


class TestTimeGrid:
    def grid(self, days=2, bin_seconds=DELAY_BIN_SECONDS):
        period = MeasurementPeriod("t", dt.datetime(2019, 9, 2), days)
        return TimeGrid(period, bin_seconds)

    def test_bin_counts(self):
        grid = self.grid(days=15)
        assert grid.num_bins == 15 * 48
        assert grid.bins_per_day == 48

    def test_uneven_bin_rejected(self):
        period = MeasurementPeriod("t", dt.datetime(2019, 9, 2), 1)
        with pytest.raises(ValueError):
            TimeGrid(period, 7 * 60)

    def test_bin_starts_and_centers(self):
        grid = self.grid(days=1)
        starts = grid.bin_starts()
        assert starts[0] == 0.0
        assert starts[1] == 1800.0
        assert grid.bin_centers()[0] == 900.0

    def test_bin_index_clips_at_end(self):
        grid = self.grid(days=1)
        assert grid.bin_index(0.0) == 0
        assert grid.bin_index(1799.9) == 0
        assert grid.bin_index(1800.0) == 1
        assert grid.bin_index(SECONDS_PER_DAY) == grid.num_bins - 1

    def test_bin_index_vectorized(self):
        grid = self.grid(days=1)
        idx = grid.bin_index(np.array([0.0, 1800.0, 3600.0]))
        assert list(idx) == [0, 1, 2]

    def test_local_hour_with_offset(self):
        grid = self.grid(days=1)
        utc_hours = grid.local_hour_of_day(0.0)
        jst_hours = grid.local_hour_of_day(9.0)
        assert utc_hours[0] == pytest.approx(0.25)
        assert jst_hours[0] == pytest.approx(9.25)
        assert np.all((jst_hours >= 0) & (jst_hours < 24))

    def test_day_of_week_progression(self):
        # 2019-09-02 was a Monday.
        grid = self.grid(days=2)
        dow = grid.local_day_of_week(0.0)
        assert dow[0] == 0          # Monday
        assert dow[-1] == 1         # Tuesday
        assert set(dow) == {0, 1}

    def test_day_of_week_offset_shifts_boundary(self):
        grid = self.grid(days=1)
        # At UTC+9, Monday 00:00 UTC is Monday 09:00 local; the local
        # Tuesday starts at 15:00 UTC (bin 30).
        dow = grid.local_day_of_week(9.0)
        assert dow[0] == 0
        assert dow[29] == 0
        assert dow[30] == 1

    def test_hour_of_week_monotone_within_week(self):
        grid = self.grid(days=7)
        how = grid.hour_of_week(0.0)
        assert how[0] == pytest.approx(0.25)
        assert np.all(np.diff(how) > 0)
        assert how[-1] < 168.0


class TestWeeklyOverlay:
    def test_folds_two_weeks_with_median(self):
        period = MeasurementPeriod("t", dt.datetime(2019, 9, 2), 14)
        grid = TimeGrid(period)
        # Week 1 all zeros, week 2 all twos -> median 1.0 everywhere.
        values = np.concatenate([
            np.zeros(7 * 48), np.full(7 * 48, 2.0),
        ])
        hours, medians = weekly_overlay(grid, values)
        assert len(hours) == 7 * 48
        assert np.allclose(medians, 1.0)

    def test_nan_slots_dropped(self):
        period = MeasurementPeriod("t", dt.datetime(2019, 9, 2), 7)
        grid = TimeGrid(period)
        values = np.ones(grid.num_bins)
        values[:48] = np.nan  # whole Monday missing
        hours, medians = weekly_overlay(grid, values)
        assert len(hours) == 6 * 48
        assert hours[0] >= 24.0

    def test_length_mismatch_rejected(self):
        period = MeasurementPeriod("t", dt.datetime(2019, 9, 2), 7)
        grid = TimeGrid(period)
        with pytest.raises(ValueError):
            weekly_overlay(grid, np.ones(3))

    def test_partial_weeks_fold_onto_start_weekday(self):
        # Tokyo period starts Thursday; first slot must be Thursday's.
        grid = TimeGrid(TOKYO_PERIOD)
        values = np.arange(grid.num_bins, dtype=float)
        hours, _ = weekly_overlay(grid, values)
        # Thursday 00:15 local = hour-of-week 72.25 rounded to slot.
        assert hours.min() == pytest.approx(0.0)
        assert hours.max() < 168.0
