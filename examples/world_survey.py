#!/usr/bin/env python3
"""The paper's §3 world survey at configurable scale.

Classifies every AS hosting >= 3 probes across several measurement
periods, then prints the headline statistics: None fraction, reported
counts, recurrence, the COVID-19 increase, the eyeball-rank breakdown
and the geographic distribution of severe congestion.

Run:  python examples/world_survey.py [--ases 150] [--full]
(--full runs the paper-scale 646-AS / 98-country survey; expect a few
minutes.)
"""

import argparse

import numpy as np

from repro.apnic import EyeballRanking
from repro.core import (
    Severity,
    SurveySuite,
    breakdown_by_rank,
    breakdown_percentages,
    daily_fraction,
    amplitude_distribution,
    geographic_distribution,
    render_severity_breakdown,
    render_survey_headline,
)
from repro.scenarios import generate_specs, run_survey_period
from repro.timebase import COVID_PERIOD, LONGITUDINAL_PERIODS


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ases", type=int, default=150)
    parser.add_argument("--countries", type=int, default=40)
    parser.add_argument(
        "--periods", type=int, default=3,
        help="number of longitudinal periods (max 6)",
    )
    parser.add_argument(
        "--full", action="store_true",
        help="paper scale: 646 ASes, 98 countries, all 6 periods",
    )
    args = parser.parse_args()
    if args.full:
        args.ases, args.countries, args.periods = 646, 98, 6

    specs = generate_specs(
        num_ases=args.ases, num_countries=args.countries, seed=101
    )
    print(f"Survey population: {args.ases} ASes in "
          f"{len({s.country for s in specs})} countries, "
          f"{sum(s.probe_count for s in specs)} probes\n")

    suite = SurveySuite()
    last_world = None
    periods = list(LONGITUDINAL_PERIODS[-args.periods:]) + [COVID_PERIOD]
    for period in periods:
        print(f"running {period.name}...", flush=True)
        result, last_world = run_survey_period(specs, period)
        suite.add(result)
        print("  " + render_survey_headline(result))

    ranking = EyeballRanking.from_registry(
        last_world.registry, rng=np.random.default_rng(4)
    )
    longitudinal = [
        suite.results[p.name] for p in periods if p.name != "2020-04"
    ]

    print("\n== headline statistics (paper §3) ==")
    sep = longitudinal[-1]
    before, after, increase = suite.reported_increase(
        sep.period.name, "2020-04"
    )
    print(f"average reported per period : {suite.average_reported():.1f}")
    print(f"recurrent (>= half periods) : "
          f"{len(suite.recurrent_asns())}")
    print(f"COVID increase              : {before} -> {after} "
          f"(+{increase:.0%}; paper +55%)")

    last = longitudinal[-1]
    print(f"daily-prominent fraction    : "
          f"{daily_fraction(last.prominent_frequencies()):.0%} "
          f"(paper: majority)")
    dist = amplitude_distribution(last.daily_amplitudes())
    print("amplitude split             : "
          + " / ".join(f"{v:.0%}" for v in dist.values())
          + "   (paper 83/7/6/4%)")

    print("\n== Fig. 4: breakdown by APNIC rank (2020-04) ==")
    pct = breakdown_percentages(
        breakdown_by_rank(suite.results["2020-04"], ranking)
    )
    print(render_severity_breakdown(pct))

    print("\n== geographic distribution of Severe reports ==")
    geo = geographic_distribution(
        longitudinal, ranking, severity=Severity.SEVERE
    )
    for country, count in list(geo.items())[:10]:
        print(f"  {country}: {count}")


if __name__ == "__main__":
    main()
