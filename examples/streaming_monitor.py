#!/usr/bin/env python3
"""Live-style monitoring with the raclette streaming pipeline.

Simulates four days of Atlas traceroutes from two ISPs — one clean,
one whose legacy PPPoE gateway saturates every evening — and feeds
them, in timestamp order, through the bounded-memory streaming monitor.
Alerts fire as sustained congestion develops; the final state is
rendered as per-day sparklines.

Run:  python examples/streaming_monitor.py
"""

import datetime as dt

import numpy as np

from repro.atlas import AtlasPlatform, ProbeVersion
from repro.core import daily_panel
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.raclette import LastMileMonitor, MonitorConfig, PrintSink
from repro.timebase import MeasurementPeriod
from repro.topology import ProvisioningPolicy, World

PERIOD = MeasurementPeriod("stream-demo", dt.datetime(2019, 9, 2), 4)
HOT_ASN, COOL_ASN = 64501, 64502


def build_stream():
    """Two-ISP world; returns (sorted results, probe->ASN map)."""
    world = World(seed=77)
    hot = world.add_isp(
        ASInfo(
            HOT_ASN, "HotNet", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_PPPOE_LEGACY: 0.96},
            device_spread=0.005, load_jitter_std=0.005,
        ),
    )
    cool = world.add_isp(
        ASInfo(
            COOL_ASN, "CoolNet", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_OWN],
        ),
    )
    world.add_default_targets()
    world.finalize()
    platform = AtlasPlatform(world)
    platform.config.outage_rate_per_day = 0.0

    probe_asn = {}
    probes = []
    for isp, asn in ((hot, HOT_ASN), (cool, COOL_ASN)):
        for probe in platform.deploy_probes_on_isp(
            isp, 4, version=ProbeVersion.V3
        ):
            probes.append(probe)
            probe_asn[probe.probe_id] = asn

    print("generating the measurement stream "
          f"({len(probes)} probes x {PERIOD.days} days)...")
    raw = platform.run_period(PERIOD, probes)
    stream = sorted(
        (r for results in raw.results.values() for r in results),
        key=lambda r: r.timestamp,
    )
    return stream, probe_asn


def main():
    stream, probe_asn = build_stream()
    monitor = LastMileMonitor(
        asn_of=probe_asn.get,
        config=MonitorConfig(
            alert_threshold_ms=1.0,
            alert_min_bins=4,
            baseline_window_bins=336,
        ),
        sink=PrintSink(),
    )
    print(f"streaming {len(stream)} traceroute results...\n")
    monitor.ingest_many(stream)
    monitor.flush()

    print()
    print(monitor.summary())
    print()
    names = {HOT_ASN: "HotNet", COOL_ASN: "CoolNet"}
    for asn in monitor.monitored_asns():
        series = monitor.delay_series(asn)
        bins = max(b for b, _d in series) + 1
        values = np.full(bins, np.nan)
        for b, delay in series:
            values[b] = delay
        print(daily_panel(
            values, bins_per_day=48,
            label=f"{names.get(asn, asn)} aggregated queueing delay",
        ))
        print()


if __name__ == "__main__":
    main()
