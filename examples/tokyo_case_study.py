#!/usr/bin/env python3
"""The paper's §4 Tokyo case study, end to end.

Reproduces the full chain of Fig. 5–9 analyses: aggregated last-mile
delays for the three major ISPs, CDN throughput for broadband / mobile
/ IPv6 populations, the anchor-vs-probes control, and the
delay–throughput Spearman correlation.

Run:  python examples/tokyo_case_study.py [--client-scale 0.5]
"""

import argparse

import numpy as np

from repro.core import (
    aggregate_population,
    delay_throughput_scatter_bins,
    filter_requests,
    format_table,
    per_asn_throughput,
    probe_queuing_delay,
    render_throughput_summary,
    spearman_delay_throughput,
)
from repro.scenarios import (
    ISP_A_ASN,
    ISP_A_MOBILE_ASN,
    ISP_B_ASN,
    ISP_C_ASN,
    build_tokyo_case_study,
)
from repro.timebase import TimeGrid


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--client-scale", type=float, default=0.5,
        help="CDN client pool scale (1.0 = full case-study size)",
    )
    args = parser.parse_args()

    print("Building the Tokyo world (4 ISPs + mobile, CDN PoP)...")
    study = build_tokyo_case_study(client_scale=args.client_scale)
    logs = study.edge.generate(study.period)
    print(f"  {study.edge.total_clients} CDN clients, "
          f"{len(logs)} access-log rows over {study.period.days} days\n")

    # ---- Fig. 5: aggregated last-mile delays --------------------------
    print("== Fig. 5: aggregated last-mile queueing delay ==")
    signals = {}
    rows = []
    for name in ("ISP_A", "ISP_B", "ISP_C"):
        signal = aggregate_population(study.dataset_for(name))
        signals[name] = signal
        rows.append([
            name, signal.probe_count,
            float(signal.max_delay_ms),
            float(np.nanmedian(signal.daily_max_ms())),
        ])
    print(format_table(
        ["ISP", "probes", "max delay (ms)", "median daily max (ms)"],
        rows, float_format="{:.2f}",
    ))

    # ---- Fig. 6 / 9: throughput ---------------------------------------
    grid = TimeGrid(study.period, 900)
    table = study.world.table
    broadband = filter_requests(logs, mobile_prefixes=study.mobile_prefixes)
    broadband_v4 = broadband.select(broadband.afs == 4)
    mobile = filter_requests(
        logs, mobile_prefixes=study.mobile_prefixes, mobile_mode="only"
    )

    bb = per_asn_throughput(
        broadband_v4, grid, table, asns=[ISP_A_ASN, ISP_B_ASN, ISP_C_ASN]
    )
    mob = per_asn_throughput(
        mobile, grid, table,
        asns=[ISP_A_MOBILE_ASN, ISP_B_ASN, ISP_C_ASN],
    )
    v6 = per_asn_throughput(
        broadband, grid, table, asns=[ISP_A_ASN, ISP_B_ASN], af=6
    )

    print("\n== Fig. 6: median CDN throughput (broadband vs mobile) ==")
    print(render_throughput_summary({
        "ISP_A (broadband v4)": bb[ISP_A_ASN],
        "ISP_B (broadband v4)": bb[ISP_B_ASN],
        "ISP_C (broadband v4)": bb[ISP_C_ASN],
        "ISP_A (mobile)": mob[ISP_A_MOBILE_ASN],
        "ISP_B (mobile)": mob[ISP_B_ASN],
        "ISP_C (mobile)": mob[ISP_C_ASN],
    }))

    print("\n== Fig. 9: IPv6 (IPoE) avoids the PPPoE bottleneck ==")
    print(render_throughput_summary({
        "ISP_A (v6)": v6[ISP_A_ASN],
        "ISP_B (v6)": v6[ISP_B_ASN],
    }))

    # ---- Fig. 7: correlation ------------------------------------------
    print("\n== Fig. 7: delay vs throughput (Spearman) ==")
    for name, asn in (("ISP_A", ISP_A_ASN), ("ISP_C", ISP_C_ASN)):
        corr = spearman_delay_throughput(signals[name], bb[asn])
        print(f"{name}: rho = {corr.rho:+.2f}  (n = {corr.n_bins} bins)")
        for center, tput, n in delay_throughput_scatter_bins(
            corr.delay_ms, corr.throughput_mbps
        ):
            print(f"    delay ~{center:5.2f} ms -> median "
                  f"{tput:5.1f} Mbps  ({n} bins)")

    # ---- Fig. 8: anchor control ---------------------------------------
    print("\n== Fig. 8: ISP_D probes vs datacenter anchor ==")
    d_signal = aggregate_population(study.dataset_for("ISP_D"))
    anchor_dataset = study.anchor_dataset()
    anchor = probe_queuing_delay(
        anchor_dataset.series[study.anchor.probe_id]
    )
    print(f"ISP_D probes : max {d_signal.max_delay_ms:.1f} ms "
          f"({d_signal.probe_count} probes)")
    print(f"ISP_D anchor : max {np.nanmax(anchor):.2f} ms "
          f"(no last mile, legacy network bypassed)")


if __name__ == "__main__":
    main()
