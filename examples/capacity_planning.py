#!/usr/bin/env python3
"""What-if capacity planning with the congestion detector.

A downstream use of the library beyond reproducing the paper: an ISP
operator asks *"how hot can my aggregation devices run at the evening
peak before RIPE Atlas users would flag my network as congested?"*.

We sweep peak utilization for two device profiles — a legacy PPPoE
BRAS and a modern IPoE gateway — and report the detected severity
class at each provisioning level, locating the paper's 0.5 ms
detectability threshold in provisioning terms.

Run:  python examples/capacity_planning.py
"""

import numpy as np

from repro.atlas import AtlasPlatform, ProbeVersion
from repro.core import (
    aggregate_population,
    classify_signal,
    format_table,
)
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.timebase import LONGITUDINAL_PERIODS
from repro.topology import ProvisioningPolicy, World

PERIOD = LONGITUDINAL_PERIODS[-1]
PEAKS = [0.70, 0.80, 0.88, 0.92, 0.95, 0.97, 0.99]
PROFILES = {
    "legacy PPPoE BRAS": AccessTechnology.FTTH_PPPOE_LEGACY,
    "modern IPoE gateway": AccessTechnology.FTTH_IPOE_LEGACY,
}


def classify_at(technology: AccessTechnology, peak: float):
    """Severity + amplitude for one (device profile, provisioning)."""
    world = World(seed=17)
    isp = world.add_isp(
        ASInfo(
            64500, "PlanNet", "JP", ASRole.EYEBALL,
            access_technologies=[technology],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={technology: peak}, device_spread=0.01
        ),
    )
    world.add_default_targets()
    world.finalize()
    platform = AtlasPlatform(world)
    isp.ensure_devices(technology, 3)
    probes = platform.deploy_probes_on_isp(
        isp, 6, version=ProbeVersion.V3
    )
    dataset = platform.run_period_binned(PERIOD, probes)
    signal = aggregate_population(dataset)
    result = classify_signal(signal.delay_ms, dataset.grid.bin_seconds)
    return result, float(signal.max_delay_ms)


def main():
    for label, technology in PROFILES.items():
        print(f"\n== {label} ==")
        rows = []
        flagged_at = None
        for peak in PEAKS:
            result, max_delay = classify_at(technology, peak)
            if flagged_at is None and result.severity.is_reported:
                flagged_at = peak
            rows.append([
                f"{peak:.0%}",
                result.daily_amplitude_ms,
                max_delay,
                result.severity.value,
            ])
        print(format_table(
            ["peak utilization", "daily amplitude (ms)",
             "max agg delay (ms)", "class"],
            rows,
            float_format="{:.2f}",
        ))
        if flagged_at is not None:
            print(f"-> flagged as congested from "
                  f"{flagged_at:.0%} peak utilization")
        else:
            print("-> never flagged: this device profile absorbs the "
                  "evening peak at any sustainable load")


if __name__ == "__main__":
    main()
