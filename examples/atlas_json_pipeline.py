#!/usr/bin/env python3
"""Running the pipeline on Atlas-schema JSON files.

The analysis pipeline consumes RIPE-Atlas-shaped traceroute results —
the same JSON the Atlas API serves.  This example shows the interchange
path a user with *real* downloaded measurements would take:

  1. simulate a measurement campaign and export it as JSON lines
     (stand-in for `curl https://atlas.ripe.net/api/v2/measurements/
     5051/results/...`),
  2. read the JSON back, with no reference to the simulator,
  3. run §2.1 last-mile estimation + §2.3 classification on it.

Run:  python examples/atlas_json_pipeline.py
"""

import json
import tempfile
from pathlib import Path

from repro.atlas import AtlasPlatform, ProbeVersion, TracerouteResult
from repro.core import (
    aggregate_population,
    classify_signal,
    estimate_dataset,
)
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.timebase import MeasurementPeriod, TimeGrid
import datetime as dt

PERIOD = MeasurementPeriod("export", dt.datetime(2019, 9, 2), 4)


def export_campaign(path: Path) -> None:
    """Phase 1: produce a result file in the Atlas API schema."""
    world = World_with_congested_isp()
    platform = AtlasPlatform(world)
    platform.config.outage_rate_per_day = 0.0
    isp = next(iter(world.isps.values()))
    probes = platform.deploy_probes_on_isp(
        isp, 4, version=ProbeVersion.V3
    )
    dataset = platform.run_period(PERIOD, probes)
    with path.open("w") as handle:
        for prb_id in dataset.probe_ids():
            for result in dataset.for_probe(prb_id):
                handle.write(json.dumps(result.to_json()) + "\n")
    print(f"exported {len(dataset)} traceroutes "
          f"({path.stat().st_size / 1e6:.1f} MB) to {path.name}")


def World_with_congested_isp():
    from repro.topology import ProvisioningPolicy, World

    world = World(seed=23)
    world.add_isp(
        ASInfo(
            64500, "ExportNet", "DE", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_PPPOE_LEGACY: 0.96}
        ),
    )
    world.add_default_targets()
    world.finalize()
    return world


def analyze(path: Path) -> None:
    """Phases 2+3: parse JSON lines and run the paper's pipeline.

    Nothing here touches the simulator — this function would work
    unchanged on a file of real Atlas results.
    """
    results_by_probe = {}
    with path.open() as handle:
        for line in handle:
            result = TracerouteResult.from_json(json.loads(line))
            results_by_probe.setdefault(result.prb_id, []).append(result)
    print(f"parsed results for {len(results_by_probe)} probes")

    grid = TimeGrid(PERIOD)
    dataset = estimate_dataset(results_by_probe, grid)
    signal = aggregate_population(dataset)
    classification = classify_signal(signal.delay_ms, grid.bin_seconds)

    print(f"aggregated delay peak : {signal.max_delay_ms:.2f} ms")
    print(f"daily amplitude       : "
          f"{classification.daily_amplitude_ms:.2f} ms")
    print(f"classification        : "
          f"{classification.severity.value.upper()}")


def main():
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "atlas_results.jsonl"
        export_campaign(path)
        analyze(path)


if __name__ == "__main__":
    main()
