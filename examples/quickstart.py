#!/usr/bin/env python3
"""Quickstart: detect persistent last-mile congestion in one AS.

Builds a minimal world with one under-provisioned eyeball network,
deploys a handful of Atlas probes on it, runs two weeks of simulated
built-in measurements, and applies the paper's full methodology:

    last-mile RTT estimation -> per-probe queueing delay ->
    population median -> Welch periodogram -> severity class

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.atlas import AtlasPlatform
from repro.core import (
    aggregate_population,
    classify_signal,
    welch_periodogram,
)
from repro.netbase import AccessTechnology, ASInfo, ASRole
from repro.timebase import LONGITUDINAL_PERIODS
from repro.topology import ProvisioningPolicy, World


def main():
    # 1. A world with one congested eyeball AS.  peak_utilization is
    #    the provisioning knob: ~0.97 models an ossified PPPoE BRAS
    #    running near saturation at the evening peak.
    world = World(seed=1)
    isp = world.add_isp(
        ASInfo(
            asn=64500,
            name="ExampleNet",
            country="JP",
            role=ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={AccessTechnology.FTTH_PPPOE_LEGACY: 0.95},
            device_spread=0.01,
            load_jitter_std=0.008,
        ),
    )
    world.add_default_targets()   # root DNS / controller stand-ins
    world.finalize()              # announce prefixes in the RIB

    # 2. Deploy probes and run one of the paper's measurement windows.
    platform = AtlasPlatform(world)
    probes = platform.deploy_probes_on_isp(isp, count=6)
    period = LONGITUDINAL_PERIODS[-1]      # 2019-09, 15 days
    dataset = platform.run_period_binned(period, probes)

    # 3. The paper's §2 pipeline.
    signal = aggregate_population(dataset)
    result = classify_signal(signal.delay_ms, dataset.grid.bin_seconds)
    periodogram = welch_periodogram(
        signal.delay_ms, dataset.grid.bin_seconds
    )
    freq, amp = periodogram.prominent()

    print(f"period                : {period}")
    print(f"probes                : {signal.probe_count}")
    print(f"max aggregated delay  : {signal.max_delay_ms:.2f} ms")
    print(f"daily maxima (ms)     : "
          f"{np.round(signal.daily_max_ms(), 2)}")
    print(f"prominent frequency   : {freq:.4f} cycles/hour "
          f"(daily = {1/24:.4f})")
    print(f"peak-to-peak amplitude: {amp:.2f} ms")
    print(f"classification        : {result.severity.value.upper()}")

    if result.severity.is_reported:
        print("\n-> ExampleNet shows persistent last-mile congestion: "
              "a clear daily pattern driven by its saturated "
              "aggregation devices.")
    else:
        print("\n-> No persistent congestion detected.")


if __name__ == "__main__":
    main()
