"""Legacy setup shim: the environment lacks the `wheel` package, so
PEP 660 editable installs fail; `python setup.py develop` still works."""
from setuptools import setup

setup()
