"""Selectable analysis kernels: reference loops vs vectorized numpy.

The hot path of the pipeline — per-bin sample medians (§2.1), probe
queueing-delay stacking, population aggregation and Welch
classification (§2.3) — exists in two interchangeable backends:

* ``reference`` — the original per-traceroute / per-probe Python
  loops.  Simple, obviously faithful to the paper's prose, and the
  ground truth the differential-equivalence suite (``tests/kernels``)
  compares against.
* ``vector``    — batched numpy/scipy implementations: flat
  ``(probe, bin, sample)`` arrays with one grouped-median sort
  instead of per-bin :func:`numpy.median` calls, 2-D queueing-delay
  stacking, and one :func:`scipy.signal.welch` call over an
  (AS x bins) matrix instead of per-AS FFTs.

**Contract:** both backends produce *numerically identical* output —
bit-for-bit under :func:`repro.io.survey_to_dict` — on every input,
including fault-injected and degenerate datasets.  The contract is
enforced by ``tests/kernels`` (differential harness + hypothesis
properties) and the golden fixtures under ``tests/golden``; because
outputs are identical, the parallel result cache deliberately does
*not* key on the backend (a hit computed by one backend may serve a
run using the other).

Resolution order: an explicit ``kernels=`` argument (a name or a
backend object) wins, then the ``REPRO_KERNELS`` environment variable,
then the default ``reference``.  Shard workers always receive the
parent's *resolved* backend name in their task, so a survey's backend
choice is shard-invariant regardless of worker environments.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple, Union

from ...obs import get_observer

#: Environment knob consulted when ``kernels`` is not given explicitly
#: (the CI matrix leg exports ``REPRO_KERNELS=vector``).
KERNELS_ENV = "REPRO_KERNELS"

#: Default backend: the loop implementation the paper's prose maps to.
DEFAULT_KERNELS = "reference"


def available_kernels() -> Tuple[str, ...]:
    """Names accepted by :func:`resolve_kernels` (and ``--kernels``)."""
    return ("reference", "vector")


def resolve_kernels(kernels: Union[None, str, object] = None):
    """Resolve a backend: explicit arg > ``REPRO_KERNELS`` > reference.

    ``kernels`` may be a backend name, an already-resolved backend
    object (returned unchanged), or None.  Unknown names raise
    ``ValueError`` listing the valid choices.
    """
    if kernels is not None and not isinstance(kernels, str):
        return kernels
    name = kernels
    if name is None:
        name = os.environ.get(KERNELS_ENV, "").strip().lower() or None
    if name is None:
        name = DEFAULT_KERNELS
    if name == "reference":
        from .reference import REFERENCE

        return REFERENCE
    if name == "vector":
        from .vector import VECTOR

        return VECTOR
    raise ValueError(
        f"unknown kernel backend {name!r}; "
        f"choose one of {', '.join(available_kernels())}"
    )


def record_kernel_op(kernel_name: str, op: str, n: int = 1) -> None:
    """Count one kernel invocation on the active observer.

    ``kernel_ops_total{kernel, op}`` is the per-backend counter the
    dashboards use to confirm which backend actually ran — a constant
    time no-op under the default NOOP observer.
    """
    obs = get_observer()
    if not obs.enabled:
        return
    obs.counter(
        "kernel_ops_total",
        "analysis kernel invocations per backend and operation",
        ("kernel", "op"),
    ).inc(n, kernel=kernel_name, op=op)


__all__ = [
    "KERNELS_ENV",
    "DEFAULT_KERNELS",
    "available_kernels",
    "resolve_kernels",
    "record_kernel_op",
]
