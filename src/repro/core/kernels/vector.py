"""The vectorized kernel backend: batched numpy/scipy fast paths.

Same work as :mod:`.reference`, restructured around flat arrays:

* per-bin medians via one grouped-median pass (segment extents by
  ``searchsorted``, per-segment ordering by one padded row-wise sort)
  over ``(group, sample)`` arrays instead of one :func:`numpy.median`
  call per bin — and, for whole datasets, one such pass over flat
  ``(probe, bin, sample)`` arrays for *all* probes at once;
* queueing-delay stacking as 2-D masked arithmetic with one
  ``nanmin`` over the probe axis;
* spectral markers via a single :func:`scipy.signal.welch` call over
  an (AS x bins) matrix, with the degenerate-signal gates applied
  per row beforehand.

Bit-for-bit equivalence with the reference backend is a hard
contract (see the package docstring); the trickiest corner is NaN
propagation in :func:`grouped_median`, handled explicitly below.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from scipy import signal as sp_signal

from ...timebase import SECONDS_PER_DAY, SECONDS_PER_HOUR


#: Largest group size the padded-matrix median path handles; groups
#: bigger than this (pathological inputs) fall back to a full lexsort.
_PAD_MAX_GROUP = 512
#: Cap on padded-matrix elements (memory guard for the fast path).
_PAD_MAX_ELEMENTS = 8_000_000


def grouped_median(
    group_ids: np.ndarray,
    values: np.ndarray,
    num_groups: int,
) -> np.ndarray:
    """Median of ``values`` per group, bit-equal to ``numpy.median``.

    Groups are made contiguous with one stable integer sort (a no-op
    when ``group_ids`` is already non-decreasing, as the pipeline's
    flat arrays are in the common chronological case), then the small
    per-group segments are scattered into a ``+inf``-padded
    (groups x max_size) matrix and sorted along the rows — far cheaper
    than one global ``lexsort`` of the flat values.  The median is the
    middle element (odd groups) or the exact ``0.5 * (lo + hi)``
    midpoint average ``numpy.median`` computes (even groups); the pads
    never enter it because every pad sorts at or after each group's
    real values.  ``numpy.median`` propagates NaN — any NaN member
    makes the group's median NaN — which is applied from a per-group
    NaN count.  Empty groups yield NaN.  Pathologically large groups
    take a ``lexsort`` fallback with identical semantics.
    """
    medians = np.full(num_groups, np.nan)
    if len(values) == 0:
        return medians
    group_ids = np.asarray(group_ids, dtype=np.int64)
    values = np.asarray(values, dtype=np.float64)
    if np.all(group_ids[1:] >= group_ids[:-1]):
        sorted_groups, sorted_values = group_ids, values
    else:
        order = np.argsort(group_ids, kind="stable")
        sorted_groups = group_ids[order]
        sorted_values = values[order]
    labels = np.arange(num_groups, dtype=np.int64)
    starts = np.searchsorted(sorted_groups, labels, side="left")
    ends = np.searchsorted(sorted_groups, labels, side="right")
    sizes = ends - starts
    present_idx = np.flatnonzero(sizes > 0)
    if not len(present_idx):
        return medians
    max_size = int(sizes.max())
    if (
        max_size <= _PAD_MAX_GROUP
        and max_size * len(present_idx) <= _PAD_MAX_ELEMENTS
    ):
        pair = _padded_segment_medians(
            sorted_groups, sorted_values, starts, sizes, present_idx,
            max_size, num_groups,
        )
    else:
        pair = _lexsorted_segment_medians(
            sorted_groups, sorted_values, num_groups, present_idx
        )
    has_nan = np.bincount(
        sorted_groups, weights=np.isnan(sorted_values),
        minlength=num_groups,
    )[present_idx] > 0
    medians[present_idx] = np.where(has_nan, np.nan, pair)
    return medians


def _padded_segment_medians(
    sorted_groups, sorted_values, starts, sizes, present_idx,
    max_size, num_groups,
):
    """Per-group median pairs via one row-wise sort of padded rows."""
    row_of_group = np.full(num_groups, -1, dtype=np.int64)
    row_of_group[present_idx] = np.arange(len(present_idx))
    rows = row_of_group[sorted_groups]
    cols = np.arange(len(sorted_values)) - starts[sorted_groups]
    matrix = np.full((len(present_idx), max_size), np.inf)
    matrix[rows, cols] = sorted_values
    matrix.sort(axis=1)
    present_sizes = sizes[present_idx]
    row = np.arange(len(present_idx))
    lo = matrix[row, (present_sizes - 1) // 2]
    hi = matrix[row, present_sizes // 2]
    return 0.5 * (lo + hi)


def _lexsorted_segment_medians(
    sorted_groups, sorted_values, num_groups, present_idx
):
    """Fallback: order values within groups with a full lexsort."""
    order = np.lexsort((sorted_values, sorted_groups))
    resorted = sorted_values[order]
    labels = np.arange(num_groups, dtype=np.int64)
    starts = np.searchsorted(sorted_groups, labels, side="left")
    ends = np.searchsorted(sorted_groups, labels, side="right")
    sizes = ends - starts
    last = len(resorted) - 1
    lo = np.clip(starts + (sizes - 1) // 2, 0, last)
    hi = np.clip(starts + sizes // 2, 0, last)
    pair = 0.5 * (resorted[lo] + resorted[hi])
    return pair[present_idx]


def _flatten_samples(
    sample_bins: Sequence[int],
    sample_lists: Sequence[List[float]],
    keys: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Expand per-traceroute sample lists into flat (key, value) arrays.

    ``keys`` defaults to the bin indices; callers batching a whole
    dataset pass combined ``probe * num_bins + bin`` keys instead.
    """
    if keys is None:
        keys = np.asarray(sample_bins, dtype=np.int64)
    lengths = np.fromiter(
        (len(samples) for samples in sample_lists),
        dtype=np.int64, count=len(sample_lists),
    )
    flat_keys = np.repeat(keys, lengths)
    flat_values = np.fromiter(
        itertools.chain.from_iterable(sample_lists),
        dtype=np.float64, count=int(lengths.sum()),
    )
    return flat_keys, flat_values


class VectorKernels:
    """Batched implementations of the four pipeline hot spots."""

    name = "vector"
    #: Callers with whole-dataset / whole-survey scope should use the
    #: batched entry points (``dataset_bin_medians``, batched
    #: classification) instead of iterating.
    batched = True
    #: The backend supports the flat survey pass (:mod:`.flat`):
    #: flat-array traceroute scans and one grouped-median aggregation
    #: pass over every AS.  Orchestrators check this capability before
    #: routing; backends without it keep the per-AS path.
    flat = True

    def bin_medians(
        self,
        sample_bins: Sequence[int],
        sample_lists: Sequence[List[float]],
        counts: np.ndarray,
        num_bins: int,
        min_traceroutes: int,
    ) -> Tuple[np.ndarray, int]:
        """Per-bin medians for one probe via one grouped-median pass."""
        medians = np.full(num_bins, np.nan)
        if not len(sample_bins):
            return medians, 0
        counts = np.asarray(counts)
        flat_bins, flat_values = _flatten_samples(
            sample_bins, sample_lists
        )
        grouped = grouped_median(flat_bins, flat_values, num_bins)
        sampled = np.zeros(num_bins, dtype=bool)
        sampled[np.unique(flat_bins)] = True
        estimated = sampled & (counts >= min_traceroutes)
        medians[estimated] = grouped[estimated]
        return medians, int(estimated.sum())

    def dataset_bin_medians(
        self,
        probe_rows: Sequence[int],
        sample_bins: Sequence[int],
        sample_lists: Sequence[List[float]],
        num_probes: int,
        num_bins: int,
        counts_matrix: np.ndarray,
        min_traceroutes: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Whole-dataset medians over flat (probe, bin, sample) arrays.

        One grouped-median pass over ``probe * num_bins + bin`` keys
        covers every probe of the dataset.  Returns the
        (probe x bin) median matrix and the per-probe count of
        estimated bins.
        """
        medians = np.full((num_probes, num_bins), np.nan)
        if not len(probe_rows):
            return medians, np.zeros(num_probes, dtype=np.int64)
        counts_matrix = np.asarray(counts_matrix)
        keys = (
            np.asarray(probe_rows, dtype=np.int64) * num_bins
            + np.asarray(sample_bins, dtype=np.int64)
        )
        flat_keys, flat_values = _flatten_samples(
            sample_bins, sample_lists, keys=keys
        )
        grouped = grouped_median(
            flat_keys, flat_values, num_probes * num_bins
        ).reshape(num_probes, num_bins)
        sampled = np.zeros(num_probes * num_bins, dtype=bool)
        sampled[np.unique(flat_keys)] = True
        sampled = sampled.reshape(num_probes, num_bins)
        estimated = sampled & (counts_matrix >= min_traceroutes)
        medians[estimated] = grouped[estimated]
        return medians, estimated.sum(axis=1).astype(np.int64)

    def flat_bin_medians(
        self,
        sample_bins: np.ndarray,
        sample_values: np.ndarray,
        counts: np.ndarray,
        num_bins: int,
        min_traceroutes: int,
    ) -> Tuple[np.ndarray, int]:
        """Per-bin medians from one probe's flat per-sample arrays."""
        from .flat import flat_bin_medians

        return flat_bin_medians(
            sample_bins, sample_values, counts, num_bins,
            min_traceroutes,
        )

    def flat_dataset_bin_medians(
        self,
        sample_keys: np.ndarray,
        sample_values: np.ndarray,
        num_probes: int,
        num_bins: int,
        counts_matrix: np.ndarray,
        min_traceroutes: int,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Whole-dataset medians from flat per-sample key arrays."""
        from .flat import flat_dataset_bin_medians

        return flat_dataset_bin_medians(
            sample_keys, sample_values, num_probes, num_bins,
            counts_matrix, min_traceroutes,
        )

    def population_medians(
        self,
        delays: np.ndarray,
        group_rows: Sequence[np.ndarray],
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Aggregated medians for every AS in one grouped pass."""
        from .flat import population_median_pass

        return population_median_pass(delays, group_rows)

    def stack_probe_delays(
        self,
        dataset,
        probe_ids: Sequence[int],
        min_traceroutes: int,
    ) -> np.ndarray:
        """Queueing-delay rows via 2-D masking and one axis-1 nanmin.

        Rows without any valid bin stay all-NaN *unsubtracted*, as
        :func:`~repro.core.aggregate.probe_queuing_delay` leaves them
        (and so ``nanmin`` never sees an all-NaN row to warn about).
        """
        medians = np.stack([
            dataset.series[p].median_rtt_ms for p in probe_ids
        ])
        counts = np.stack([
            dataset.series[p].traceroute_counts for p in probe_ids
        ])
        valid = (counts >= min_traceroutes) & ~np.isnan(medians)
        delays = np.where(valid, medians, np.nan)
        rows = valid.any(axis=1)
        if rows.any():
            baselines = np.nanmin(delays[rows], axis=1)
            delays[rows] -= baselines[:, None]
        return delays

    def markers_batch(
        self,
        signals: Sequence[np.ndarray],
        bin_seconds: int,
        segment_days: Optional[int] = None,
        max_gap_fraction: Optional[float] = None,
    ) -> List:
        """Spectral markers for many signals with one Welch call.

        The degenerate gates of
        :func:`~repro.core.spectral.extract_markers` run per row, in
        the same order (shape, gap fraction, constant-after-fill,
        too-short-for-Welch); surviving rows of equal length share a
        single :func:`scipy.signal.welch` call (``axis=-1``), which is
        bit-identical to per-row calls.  Degenerate rows yield None.
        """
        from ..spectral import (
            DAILY_FREQUENCY_CPH,
            MAX_GAP_FRACTION,
            SEGMENT_DAYS,
            SpectralMarkers,
            fill_gaps,
        )

        if segment_days is None:
            segment_days = SEGMENT_DAYS
        if max_gap_fraction is None:
            max_gap_fraction = MAX_GAP_FRACTION
        markers: List[Optional[SpectralMarkers]] = [None] * len(signals)
        by_length: Dict[int, List[Tuple[int, np.ndarray]]] = {}
        for i, values in enumerate(signals):
            values = np.asarray(values, dtype=np.float64)
            if values.ndim != 1 or values.size < 2:
                continue
            nan_fraction = float(np.mean(np.isnan(values)))
            if nan_fraction > max_gap_fraction:
                continue
            filled = fill_gaps(values)
            if np.allclose(filled, filled[0]):
                continue
            by_length.setdefault(len(filled), []).append((i, filled))
        bins_per_day = SECONDS_PER_DAY // bin_seconds
        sample_rate_per_hour = SECONDS_PER_HOUR / bin_seconds
        for length, entries in by_length.items():
            nperseg = min(segment_days * bins_per_day, length)
            if nperseg < 2:
                continue    # welch_periodogram raises -> None markers
            matrix = np.vstack([filled for _, filled in entries])
            freqs, power = sp_signal.welch(
                matrix,
                fs=sample_rate_per_hour,
                nperseg=nperseg,
                scaling="spectrum",
                detrend="constant",
                axis=-1,
            )
            amplitude = 2.0 * np.sqrt(2.0 * power)
            start = 2           # DC bin + 1 skipped multi-day-trend bin
            if start >= len(freqs):
                continue        # prominent() raises -> None markers
            prominent = start + np.argmax(
                amplitude[:, start:], axis=1
            )
            daily_index = int(
                np.argmin(np.abs(freqs - DAILY_FREQUENCY_CPH))
            )
            for row, (i, _filled) in enumerate(entries):
                index = int(prominent[row])
                markers[i] = SpectralMarkers(
                    prominent_frequency_cph=float(freqs[index]),
                    prominent_amplitude_ms=float(amplitude[row, index]),
                    daily_amplitude_ms=float(
                        amplitude[row, daily_index]
                    ),
                )
        return markers


#: The process-wide shared instance (backends are stateless).
VECTOR = VectorKernels()
