"""The flat survey pass: whole-dataset arrays built once, used by
every stage.

The vector backend's batched entry points still walked Python
structures per probe (the traceroute scan) and per AS (one
``nanmedian`` call each).  This module removes those loops:

* :func:`scan_lastmile_flat` — one pass over a probe's traceroutes
  producing flat ``(bin, sample)`` arrays directly: hop addresses are
  classified once per distinct address (they repeat for the whole
  period), timestamp gating and binning follow
  :meth:`~repro.timebase.TimeGrid.bin_index` exactly, and the paper's
  pairwise private/public subtraction is computed for *all*
  traceroutes in a handful of ``repeat``/``take`` operations instead
  of a 3 x 3 Python product per traceroute.
* :func:`dataset_matrices` / :func:`delay_matrix` — the
  (probe x bin) median/count matrices built once per dataset, and the
  queueing-delay rows derived from them in one 2-D pass mirroring
  :func:`~repro.core.aggregate.probe_queuing_delay` row for row.
* :func:`population_median_pass` — per-AS aggregated medians and
  contributing counts for *every* AS in one
  :func:`~repro.core.kernels.vector.grouped_median` call over
  ``group * num_bins + bin`` keys of the NaN-filtered delay values.
  ``numpy.nanmedian`` over a matrix column is by definition the
  median of that column's non-NaN members, so feeding only non-NaN
  values keyed by (group, bin) is bit-identical — all-NaN columns
  become empty groups and yield NaN, as ``nanmedian`` (warning
  suppressed) does.

Equivalence with the reference path is a hard contract, enforced by
``tests/kernels/test_flat_pass.py`` and the differential suite: same
series, same signals, same quality-ledger events in the same order.
Quality accounting therefore stays *per record, in record order* —
only the numeric work is batched.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ...quality import DataQualityReport, DropReason
from .vector import grouped_median

#: Stage key for quality accounting — must match
#: :data:`repro.core.lastmile.STAGE` (not imported to avoid a cycle).
_LASTMILE_STAGE = "core-lastmile"

#: Hop-address classification memo.  Addresses repeat massively (one
#: probe traverses the same gateway and edge router all period), so
#: the parse + special-prefix matching runs once per distinct string.
_HOP_KIND_CACHE: Dict[str, str] = {}
_HOP_KIND_CACHE_MAX = 1 << 20


def _hop_kind(address: str) -> str:
    """Cached :func:`~repro.core.lastmile.classify_hop_address`."""
    kind = _HOP_KIND_CACHE.get(address)
    if kind is None:
        from ..lastmile import classify_hop_address

        if len(_HOP_KIND_CACHE) >= _HOP_KIND_CACHE_MAX:
            _HOP_KIND_CACHE.clear()
        kind = classify_hop_address(address)
        _HOP_KIND_CACHE[address] = kind
    return kind


@dataclass
class FlatScan:
    """Flat per-sample output of one probe's traceroute scan."""

    prb_id: Optional[int]
    processed: int
    #: Bin index of every individual last-mile sample.
    sample_bins: np.ndarray
    #: The sample values, in (traceroute, public-major pair) order.
    sample_values: np.ndarray


def scan_lastmile_flat(
    results,
    grid,
    prb_id: Optional[int] = None,
    quality: Optional[DataQualityReport] = None,
    counts: Optional[np.ndarray] = None,
) -> FlatScan:
    """Stages 1-3 of the estimation for one probe, flat-array output.

    Semantically identical to the reference scan
    (:func:`repro.core.lastmile._scan_results` +
    :func:`~repro.core.lastmile.lastmile_samples`): same timestamp
    gating, same bin sanity counting, same sanity filter on replies,
    and the same quality events with the same details *in the same
    record order*.  The difference is mechanical: the boundary walk
    uses the address-kind memo, and the pairwise subtraction for all
    traceroutes happens in one vectorized pass at the end.
    """
    if not isinstance(results, list):
        results = list(results)
    if counts is None:
        counts = np.zeros(grid.num_bins, dtype=np.int64)
    bin_seconds = grid.bin_seconds
    num_bins = grid.num_bins
    duration = num_bins * bin_seconds
    last_bin = num_bins - 1
    isfinite = math.isfinite
    kind_cache = _HOP_KIND_CACHE

    # Two-hop (private->public) traceroutes: flat reply pools plus
    # per-traceroute pool sizes, pairwise-expanded after the loop.
    pair_bins: List[int] = []
    pub_pool: List[float] = []
    priv_pool: List[float] = []
    pub_sizes: List[int] = []
    priv_sizes: List[int] = []
    # Anchor traceroutes (no private hop): replies are the samples.
    anchor_bins: List[int] = []
    anchor_pool: List[float] = []
    anchor_sizes: List[int] = []

    processed = 0
    for result in results:
        processed += 1
        if prb_id is None:
            prb_id = result.prb_id
        if quality is not None:
            quality.ingest(_LASTMILE_STAGE)
        timestamp = result.timestamp
        if not isfinite(timestamp):
            if quality is not None:
                quality.drop(
                    _LASTMILE_STAGE, DropReason.MALFORMED_RECORD,
                    detail=f"probe {result.prb_id}: timestamp "
                    f"{timestamp!r}",
                )
            continue
        if timestamp < 0 or timestamp > duration:
            if quality is not None:
                quality.drop(
                    _LASTMILE_STAGE, DropReason.OUT_OF_PERIOD,
                    detail=f"probe {result.prb_id}: timestamp "
                    f"{timestamp:.0f}s outside 0..{duration}s",
                )
            continue
        bin_index = int(timestamp // bin_seconds)
        if bin_index > last_bin:
            bin_index = last_bin
        counts[bin_index] += 1

        last_private = None
        public = None
        for hop in result.hops:
            address = hop.responding_address
            if address is None:
                continue
            kind = kind_cache.get(address)
            if kind is None:
                kind = _hop_kind(address)
            if kind == "private":
                last_private = hop
            elif kind == "public":
                public = hop
                break
        samples_found = False
        if public is not None:
            pub = [
                r.rtt_ms for r in public.replies
                if r.rtt_ms is not None
                and isfinite(r.rtt_ms) and r.rtt_ms >= 0.0
            ]
            if last_private is None:
                if pub:
                    anchor_bins.append(bin_index)
                    anchor_pool.extend(pub)
                    anchor_sizes.append(len(pub))
                    samples_found = True
            elif pub:
                priv = [
                    r.rtt_ms for r in last_private.replies
                    if r.rtt_ms is not None
                    and isfinite(r.rtt_ms) and r.rtt_ms >= 0.0
                ]
                if priv:
                    pair_bins.append(bin_index)
                    pub_pool.extend(pub)
                    priv_pool.extend(priv)
                    pub_sizes.append(len(pub))
                    priv_sizes.append(len(priv))
                    samples_found = True
        if not samples_found and quality is not None:
            quality.degrade(
                _LASTMILE_STAGE, DropReason.NO_BOUNDARY,
                detail=f"probe {result.prb_id}: no usable "
                "private→public hop pair",
            )

    chunks_bins: List[np.ndarray] = []
    chunks_values: List[np.ndarray] = []
    if pair_bins:
        pub_arr = np.asarray(pub_pool, dtype=np.float64)
        priv_arr = np.asarray(priv_pool, dtype=np.float64)
        p = np.asarray(pub_sizes, dtype=np.int64)
        q = np.asarray(priv_sizes, dtype=np.int64)
        # Public-major pair order, as the reference list product:
        # each public reply subtracts its traceroute's q private
        # replies in sequence.
        minuend = np.repeat(pub_arr, np.repeat(q, p))
        n_per = p * q
        total = int(n_per.sum())
        rec = np.repeat(np.arange(len(p), dtype=np.int64), n_per)
        local = np.arange(total, dtype=np.int64) - np.repeat(
            np.cumsum(n_per) - n_per, n_per
        )
        priv_starts = np.cumsum(q) - q
        subtrahend = priv_arr[priv_starts[rec] + local % q[rec]]
        chunks_values.append(minuend - subtrahend)
        chunks_bins.append(np.repeat(
            np.asarray(pair_bins, dtype=np.int64), n_per
        ))
    if anchor_bins:
        chunks_values.append(np.asarray(anchor_pool, dtype=np.float64))
        chunks_bins.append(np.repeat(
            np.asarray(anchor_bins, dtype=np.int64),
            np.asarray(anchor_sizes, dtype=np.int64),
        ))
    if chunks_bins:
        sample_bins = np.concatenate(chunks_bins)
        sample_values = np.concatenate(chunks_values)
    else:
        sample_bins = np.zeros(0, dtype=np.int64)
        sample_values = np.zeros(0, dtype=np.float64)
    return FlatScan(
        prb_id=prb_id,
        processed=processed,
        sample_bins=sample_bins,
        sample_values=sample_values,
    )


def flat_bin_medians(
    sample_bins: np.ndarray,
    sample_values: np.ndarray,
    counts: np.ndarray,
    num_bins: int,
    min_traceroutes: int,
) -> Tuple[np.ndarray, int]:
    """Per-bin medians from flat per-sample arrays (one probe).

    The flat-array twin of :meth:`VectorKernels.bin_medians`: bins
    with at least one sample *and* ``counts >= min_traceroutes`` get
    the grouped median of their samples; everything else stays NaN.
    """
    medians = np.full(num_bins, np.nan)
    if not len(sample_bins):
        return medians, 0
    counts = np.asarray(counts)
    grouped = grouped_median(sample_bins, sample_values, num_bins)
    sampled = np.zeros(num_bins, dtype=bool)
    sampled[np.unique(sample_bins)] = True
    estimated = sampled & (counts >= min_traceroutes)
    medians[estimated] = grouped[estimated]
    return medians, int(estimated.sum())


def flat_dataset_bin_medians(
    sample_keys: np.ndarray,
    sample_values: np.ndarray,
    num_probes: int,
    num_bins: int,
    counts_matrix: np.ndarray,
    min_traceroutes: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Whole-dataset medians from flat ``probe * num_bins + bin`` keys."""
    medians = np.full((num_probes, num_bins), np.nan)
    if not len(sample_keys):
        return medians, np.zeros(num_probes, dtype=np.int64)
    counts_matrix = np.asarray(counts_matrix)
    grouped = grouped_median(
        sample_keys, sample_values, num_probes * num_bins
    ).reshape(num_probes, num_bins)
    sampled = np.zeros(num_probes * num_bins, dtype=bool)
    sampled[np.unique(sample_keys)] = True
    sampled = sampled.reshape(num_probes, num_bins)
    estimated = sampled & (counts_matrix >= min_traceroutes)
    medians[estimated] = grouped[estimated]
    return medians, estimated.sum(axis=1).astype(np.int64)


def dataset_matrices(
    dataset,
) -> Tuple[Dict[int, int], np.ndarray, np.ndarray]:
    """(probe -> row index, median matrix, count matrix) for a dataset.

    Rows follow :meth:`LastMileDataset.probe_ids` (sorted) order.
    Built once per survey; every AS's aggregation gathers row indices
    from here instead of re-stacking its probes' series.
    """
    ids = dataset.probe_ids()
    num_bins = dataset.grid.num_bins
    medians = np.empty((len(ids), num_bins), dtype=np.float64)
    counts = np.empty((len(ids), num_bins), dtype=np.int64)
    for row, prb_id in enumerate(ids):
        series = dataset.series[prb_id]
        medians[row] = series.median_rtt_ms
        counts[row] = series.traceroute_counts
    return {prb_id: row for row, prb_id in enumerate(ids)}, medians, counts


def delay_matrix(
    medians: np.ndarray,
    counts: np.ndarray,
    min_traceroutes: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Queueing-delay rows for *all* probes in one 2-D pass.

    Row ``i`` equals
    ``probe_queuing_delay(series_i, min_traceroutes)`` exactly: bins
    failing the sanity mask are NaN, rows with at least one valid bin
    subtract their own ``nanmin`` baseline, all-NaN rows stay
    unsubtracted.  Returns ``(delays, dead)`` where ``dead`` flags
    rows that contributed no valid bin at all.
    """
    valid = (counts >= min_traceroutes) & ~np.isnan(medians)
    delays = np.where(valid, medians, np.nan)
    alive = valid.any(axis=1)
    if alive.any():
        delays[alive] -= np.nanmin(delays[alive], axis=1)[:, None]
    return delays, ~alive


def population_median_pass(
    delays: np.ndarray,
    group_rows: Sequence[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    """Aggregated medians + contributing counts for many populations.

    One grouped-median call over ``group * num_bins + bin`` keys of
    the non-NaN delay values replaces one ``nanmedian`` call per AS.
    Returns ``(medians, contributing)`` of shape (groups x bins);
    groups may share rows (a probe requested twice is counted twice,
    as ``aggregate_population`` stacks it twice).
    """
    num_groups = len(group_rows)
    num_bins = delays.shape[1]
    if num_groups == 0:
        return (
            np.zeros((0, num_bins)),
            np.zeros((0, num_bins), dtype=np.int64),
        )
    lengths = np.fromiter(
        (len(rows) for rows in group_rows),
        dtype=np.int64, count=num_groups,
    )
    max_rows = int(lengths.max()) if num_groups else 0
    if max_rows == 0:
        return (
            np.full((num_groups, num_bins), np.nan),
            np.zeros((num_groups, num_bins), dtype=np.int64),
        )
    if num_groups * num_bins * max_rows <= _CUBE_MAX_ELEMENTS:
        return _cube_median_pass(
            delays, group_rows, lengths, max_rows
        )
    # Skewed/huge populations: grouped-median keyed fallback (same
    # exact midpoint arithmetic, bounded memory).
    rows_concat = np.concatenate(
        [np.asarray(r, dtype=np.int64) for r in group_rows]
    )
    group_of_row = np.repeat(
        np.arange(num_groups, dtype=np.int64), lengths
    )
    values = delays[rows_concat].ravel()
    keys = (
        group_of_row[:, None] * num_bins
        + np.arange(num_bins, dtype=np.int64)[None, :]
    ).ravel()
    ok = ~np.isnan(values)
    medians = grouped_median(
        keys[ok], values[ok], num_groups * num_bins
    ).reshape(num_groups, num_bins)
    contributing = np.bincount(
        keys[ok], minlength=num_groups * num_bins
    ).astype(np.int64).reshape(num_groups, num_bins)
    return medians, contributing


#: Cap on the padded (group x bin x probe) cube; beyond this the
#: keyed grouped-median fallback bounds memory instead.
_CUBE_MAX_ELEMENTS = 8_000_000


def _cube_median_pass(
    delays: np.ndarray,
    group_rows: Sequence[np.ndarray],
    lengths: np.ndarray,
    max_rows: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Population medians via a NaN-padded (group x bin x probe) cube.

    Group memberships are known up front, so instead of sorting
    ``group * num_bins + bin`` keys we gather each group's delay rows
    into a padded cube (missing slots point at an all-NaN pad row)
    and take the exact ``0.5 * (lo + hi)`` midpoint along the last
    axis — the same arithmetic as :func:`numpy.nanmedian` and
    :func:`~repro.core.kernels.vector.grouped_median`, with one sort
    of a contiguous axis instead of an argsort over all keys.
    """
    num_groups = len(group_rows)
    num_bins = delays.shape[1]
    pad_row = delays.shape[0]
    delays_ext = np.vstack(
        [delays, np.full((1, num_bins), np.nan)]
    )
    row_index = np.full(
        (num_groups, max_rows), pad_row, dtype=np.int64
    )
    for group, rows in enumerate(group_rows):
        row_index[group, : lengths[group]] = rows
    # (group, bin, probe-slot), contiguous so the sort stays cheap.
    cube = np.ascontiguousarray(
        delays_ext[row_index].transpose(0, 2, 1)
    )
    present = ~np.isnan(cube)
    contributing = present.sum(axis=2).astype(np.int64)
    cube[~present] = np.inf
    cube.sort(axis=2)
    lo_idx = np.where(contributing > 0, (contributing - 1) // 2, 0)
    hi_idx = contributing // 2
    lo = np.take_along_axis(cube, lo_idx[:, :, None], axis=2)[:, :, 0]
    hi = np.take_along_axis(cube, hi_idx[:, :, None], axis=2)[:, :, 0]
    medians = 0.5 * (lo + hi)
    medians[contributing == 0] = np.nan
    return medians, contributing
