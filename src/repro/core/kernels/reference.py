"""The reference kernel backend: the original per-item Python loops.

Every method is a verbatim transplant of the loop the pipeline ran
before the backend seam existed, so this backend *is* the paper's
prose: per-bin :func:`numpy.median` calls, one
:func:`~repro.core.aggregate.probe_queuing_delay` per probe, one
:func:`~repro.core.spectral.extract_markers` per signal.  The
differential-equivalence suite treats it as ground truth for the
``vector`` backend.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


class ReferenceKernels:
    """Loop implementations of the four pipeline hot spots."""

    name = "reference"
    #: No whole-dataset / whole-survey batching: callers iterate.
    batched = False

    def bin_medians(
        self,
        sample_bins: Sequence[int],
        sample_lists: Sequence[List[float]],
        counts: np.ndarray,
        num_bins: int,
        min_traceroutes: int,
    ) -> Tuple[np.ndarray, int]:
        """Per-bin medians of one probe's samples (§2.1 stage 4).

        ``sample_bins[i]`` is the bin of the i-th sampled traceroute,
        ``sample_lists[i]`` its (non-empty) sample list.  Bins with
        fewer than ``min_traceroutes`` traceroutes — by ``counts``,
        which includes sample-less traceroutes — stay NaN.  Returns
        the medians and the number of estimated bins.
        """
        samples_per_bin: Dict[int, List[float]] = {}
        for bin_index, samples in zip(sample_bins, sample_lists):
            samples_per_bin.setdefault(bin_index, []).extend(samples)
        medians = np.full(num_bins, np.nan)
        valid_bins = 0
        for bin_index, samples in samples_per_bin.items():
            if counts[bin_index] >= min_traceroutes:
                medians[bin_index] = float(np.median(samples))
                valid_bins += 1
        return medians, valid_bins

    def stack_probe_delays(
        self,
        dataset,
        probe_ids: Sequence[int],
        min_traceroutes: int,
    ) -> np.ndarray:
        """Queueing-delay rows for a probe population (one per probe)."""
        from ..aggregate import probe_queuing_delay

        return np.vstack([
            probe_queuing_delay(dataset.series[p], min_traceroutes)
            for p in probe_ids
        ])

    def markers_batch(
        self,
        signals: Sequence[np.ndarray],
        bin_seconds: int,
        segment_days: Optional[int] = None,
        max_gap_fraction: Optional[float] = None,
    ) -> List:
        """Spectral markers per signal, one Welch run each."""
        from ..spectral import MAX_GAP_FRACTION, SEGMENT_DAYS, extract_markers

        if segment_days is None:
            segment_days = SEGMENT_DAYS
        if max_gap_fraction is None:
            max_gap_fraction = MAX_GAP_FRACTION
        return [
            extract_markers(
                values, bin_seconds, segment_days, max_gap_fraction
            )
            for values in signals
        ]


#: The process-wide shared instance (backends are stateless).
REFERENCE = ReferenceKernels()
