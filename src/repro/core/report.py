"""Report generation: the series behind each figure, as text.

The benchmark harness regenerates every figure of the paper as data
series plus a plain-text rendering (the environment has no plotting
stack).  Each ``figN_*`` helper returns the numbers a plotting script
would consume; ``render_*`` helpers format them for the bench logs and
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..quality import DataQualityReport
from ..timebase import TimeGrid, weekly_overlay
from .aggregate import AggregatedSignal
from .classify import ClassificationThresholds, DEFAULT_THRESHOLDS, Severity
from .spectral import Periodogram
from .survey import SurveyResult
from .throughput import ThroughputSeries


def weekly_delay_overlay(
    signal: AggregatedSignal, utc_offset_hours: float = 0.0
) -> Tuple[np.ndarray, np.ndarray]:
    """Fig. 1 series: aggregated delay folded onto one week."""
    return weekly_overlay(
        signal.grid, signal.delay_ms, utc_offset_hours
    )


def cdf(values: Iterable[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted values and cumulative fractions.

    NaNs are dropped.  The y value at index i is the fraction of
    samples <= x[i] — the paper's 'CDF (Nb. of ASes)' axes (Fig. 3).
    """
    array = np.asarray(list(values), dtype=np.float64)
    array = array[~np.isnan(array)]
    array.sort()
    if array.size == 0:
        return array, array
    fractions = np.arange(1, array.size + 1) / array.size
    return array, fractions


def amplitude_distribution(
    amplitudes: Iterable[float],
    thresholds: ClassificationThresholds = DEFAULT_THRESHOLDS,
) -> Dict[str, float]:
    """The §3.1 amplitude split (≈ 83/7/6/4 % in the paper)."""
    array = np.asarray(list(amplitudes), dtype=np.float64)
    array = array[~np.isnan(array)]
    if array.size == 0:
        return {bucket: float("nan") for bucket in (
            "below_low", "low_to_mild", "mild_to_severe", "above_severe",
        )}
    n = array.size
    return {
        "below_low": float((array <= thresholds.low_ms).sum()) / n,
        "low_to_mild": float(
            ((array > thresholds.low_ms)
             & (array <= thresholds.mild_ms)).sum()
        ) / n,
        "mild_to_severe": float(
            ((array > thresholds.mild_ms)
             & (array <= thresholds.severe_ms)).sum()
        ) / n,
        "above_severe": float((array > thresholds.severe_ms).sum()) / n,
    }


def daily_fraction(
    frequencies_cph: Iterable[float], tolerance: float = 0.26
) -> float:
    """Share of signals whose prominent component is daily (Fig. 3 top)."""
    array = np.asarray(list(frequencies_cph), dtype=np.float64)
    array = array[~np.isnan(array)]
    if array.size == 0:
        return float("nan")
    daily = 1.0 / 24.0
    return float((np.abs(array - daily) <= daily * tolerance).mean())


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Fixed-width text table used across the bench reports."""
    def fmt(cell):
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    text_rows = [[fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in text_rows))
        if text_rows else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row)))
        )
    return "\n".join(lines)


def render_weekly_overlay(
    series: Dict[str, Tuple[np.ndarray, np.ndarray]],
    slots_per_row: int = 8,
) -> str:
    """Summarize Fig. 1-style overlays: per-series peak hour and range."""
    rows = []
    for label, (hours, medians) in series.items():
        if len(medians) == 0:
            rows.append([label, "-", float("nan"), float("nan")])
            continue
        peak_index = int(np.nanargmax(medians))
        day = int(hours[peak_index] // 24)
        hour = hours[peak_index] % 24
        day_names = ("Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun")
        rows.append([
            label,
            f"{day_names[day]} {hour:04.1f}h",
            float(np.nanmax(medians)),
            float(np.nanmin(medians)),
        ])
    return format_table(
        ["series", "peak at", "max delay (ms)", "min delay (ms)"], rows
    )


def render_periodogram_summary(
    periodograms: Dict[str, Periodogram]
) -> str:
    """Fig. 2 summary: prominent frequency and daily amplitude."""
    rows = []
    for label, periodogram in periodograms.items():
        freq, amp = periodogram.prominent()
        rows.append([
            label, float(freq), float(amp),
            float(periodogram.amplitude_at(1.0 / 24.0)),
        ])
    return format_table(
        ["series", "prominent freq (cph)", "amplitude (ms)",
         "daily amplitude (ms)"],
        rows,
        float_format="{:.4f}",
    )


def render_severity_breakdown(
    breakdown_pct: Dict[str, Dict[Severity, float]],
    title: str = "",
) -> str:
    """Fig. 4 text: percentage of ASes per rank bucket and class."""
    severities = [
        Severity.SEVERE, Severity.MILD, Severity.LOW, Severity.NONE,
    ]
    rows = [
        [bucket] + [float(classes[s]) for s in severities]
        for bucket, classes in breakdown_pct.items()
    ]
    table = format_table(
        ["APNIC rank"] + [s.value for s in severities], rows,
        float_format="{:.1f}",
    )
    return f"{title}\n{table}" if title else table


def render_survey_headline(result: SurveyResult) -> str:
    """§3.1 headline numbers for one period."""
    counts = result.severity_counts()
    line = (
        f"period {result.period.name}: monitored={result.monitored_count} "
        f"none={counts[Severity.NONE]} low={counts[Severity.LOW]} "
        f"mild={counts[Severity.MILD]} severe={counts[Severity.SEVERE]} "
        f"(none fraction {result.none_fraction():.1%})"
    )
    if result.failures:
        line += f" failures={len(result.failures)}"
    return line


def render_quality_report(quality: DataQualityReport) -> str:
    """Data-quality accounting as a fixed-width table.

    One row per (stage, dropped/degraded, reason); the header line
    carries the totals.  A clean run renders as a single line.
    """
    header = (
        f"data quality: {quality.total_ingested} ingested, "
        f"{quality.total_dropped} dropped, "
        f"{quality.total_degraded} degraded"
    )
    rows = [
        [stage, kind, reason, count]
        for stage, kind, reason, count in quality.rows()
    ]
    if not rows:
        return header + " (clean)"
    table = format_table(
        ["stage", "kind", "reason", "count"], rows,
        float_format="{:.0f}",
    )
    return header + "\n" + table


def render_failure_log(result: SurveyResult) -> str:
    """The survey's isolated per-AS failures, one line each."""
    if not result.failures:
        return "failures: none"
    lines = [f"failures: {len(result.failures)} AS(es) isolated"]
    for asn in result.failed_asns():
        lines.append(f"  {result.failures[asn]}")
    return "\n".join(lines)


def render_throughput_summary(
    series: Dict[str, ThroughputSeries]
) -> str:
    """Fig. 6/9 summary: overall median, worst daily minimum."""
    rows = []
    for label, ts in series.items():
        with np.errstate(all="ignore"):
            rows.append([
                label,
                float(np.nanmedian(ts.median_mbps)),
                float(np.nanmin(ts.daily_min_mbps())),
                float(np.nanmax(ts.median_mbps)),
            ])
    return format_table(
        ["series", "median (Mbps)", "worst daily min", "max"],
        rows,
        float_format="{:.1f}",
    )


def delay_throughput_scatter_bins(
    delay_ms: np.ndarray,
    throughput_mbps: np.ndarray,
    delay_edges: Optional[Sequence[float]] = None,
) -> List[Tuple[float, float, int]]:
    """Fig. 7 digest: median throughput per delay bin.

    Returns (delay_bin_center, median_throughput, samples) triples —
    the numeric backbone of the scatter plot.
    """
    if delay_edges is None:
        delay_edges = [0.0, 0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 5.0, 10.0]
    delay_ms = np.asarray(delay_ms, dtype=np.float64)
    throughput_mbps = np.asarray(throughput_mbps, dtype=np.float64)
    out = []
    for low, high in zip(delay_edges, delay_edges[1:]):
        mask = (delay_ms >= low) & (delay_ms < high)
        mask &= ~np.isnan(throughput_mbps)
        if mask.sum() == 0:
            continue
        out.append((
            (low + high) / 2.0,
            float(np.median(throughput_mbps[mask])),
            int(mask.sum()),
        ))
    return out
