"""CDN throughput pipeline (paper §4.2).

From raw access logs to per-AS median throughput series:

1. keep only requests for objects larger than 3 MB marked cache-hit
   (controls for TCP slow-start and CDN artifacts);
2. drop clients in published mobile prefixes (Appendix A) — or keep
   *only* them, for the mobile comparison series;
3. resolve each client to an AS by longest-prefix match;
4. per AS, compute the median throughput in 15-minute bins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..bgp import RoutingTable
from ..cdn.logs import AccessLogDataset
from ..cdn.prefixes import MobilePrefixList
from ..timebase import TimeGrid

#: The paper's object-size filter: only objects > 3 MB.
MIN_OBJECT_BYTES = 3_000_000


@dataclass
class ThroughputSeries:
    """Per-bin median throughput for one AS (or one traffic class)."""

    grid: TimeGrid
    median_mbps: np.ndarray        # NaN where no samples
    sample_counts: np.ndarray

    def __post_init__(self):
        self.median_mbps = np.asarray(self.median_mbps, dtype=np.float64)
        self.sample_counts = np.asarray(self.sample_counts, dtype=np.int64)
        if self.median_mbps.shape[0] != self.grid.num_bins:
            raise ValueError("series length does not match grid")

    def daily_min_mbps(self) -> np.ndarray:
        """Per-day minimum median throughput (Fig. 6 markers)."""
        per_day = self.grid.bins_per_day
        days = self.grid.num_bins // per_day
        blocks = self.median_mbps[: days * per_day].reshape(days, per_day)
        out = np.full(days, np.nan)
        for day in range(days):
            block = blocks[day]
            if np.any(~np.isnan(block)):
                out[day] = np.nanmin(block)
        return out


def filter_requests(
    dataset: AccessLogDataset,
    min_bytes: int = MIN_OBJECT_BYTES,
    cache_hit_only: bool = True,
    mobile_prefixes: Optional[MobilePrefixList] = None,
    mobile_mode: str = "exclude",
) -> AccessLogDataset:
    """Apply the paper's request filters.

    ``mobile_mode`` is 'exclude' (broadband analysis), 'only' (mobile
    analysis) or 'keep' (no mobile filtering).
    """
    if mobile_mode not in ("exclude", "only", "keep"):
        raise ValueError(f"unknown mobile_mode {mobile_mode!r}")
    mask = dataset.bytes_sent > min_bytes
    if cache_hit_only:
        mask &= dataset.cache_hits
    if mobile_prefixes is not None and mobile_mode != "keep":
        is_mobile = _mobile_mask(dataset, mobile_prefixes)
        mask &= is_mobile if mobile_mode == "only" else ~is_mobile
    return dataset.select(mask)


def _mobile_mask(
    dataset: AccessLogDataset, prefixes: MobilePrefixList
) -> np.ndarray:
    """Vectorized-ish mobile membership via a per-client cache."""
    cache: Dict[tuple, bool] = {}
    out = np.zeros(len(dataset), dtype=bool)
    for i, (value, af) in enumerate(
        zip(dataset.client_values, dataset.afs)
    ):
        key = (value, int(af))
        hit = cache.get(key)
        if hit is None:
            hit = prefixes.is_mobile(value, int(af))
            cache[key] = hit
        out[i] = hit
    return out


def resolve_client_asns(
    dataset: AccessLogDataset, table: RoutingTable
) -> np.ndarray:
    """Per-row origin ASN (-1 when unannounced), cached per client."""
    cache: Dict[tuple, int] = {}
    out = np.empty(len(dataset), dtype=np.int64)
    for i, (value, af) in enumerate(
        zip(dataset.client_values, dataset.afs)
    ):
        key = (value, int(af))
        asn = cache.get(key)
        if asn is None:
            resolved = table.resolve_asn(value, int(af))
            asn = resolved if resolved is not None else -1
            cache[key] = asn
        out[i] = asn
    return out


def median_throughput_series(
    dataset: AccessLogDataset,
    grid: TimeGrid,
    row_mask: Optional[np.ndarray] = None,
    min_samples_per_bin: int = 3,
    per_ip: bool = False,
) -> ThroughputSeries:
    """Median throughput per bin over (a subset of) the dataset.

    With ``per_ip`` (the paper's exact §4.2 wording: "we measure
    throughput per IP and compute ASN aggregates by computing the
    median value in 15-minute time-bins"), each client IP first
    contributes its own mean throughput for the bin, and the bin
    median is taken across IPs — so heavy users cannot dominate the
    statistic.  The default (median across requests) is statistically
    close and faster; bench A-level results match under both.
    """
    if row_mask is not None:
        dataset = dataset.select(row_mask)
    throughput = dataset.throughput_mbps()
    bins = grid.bin_index(dataset.timestamps)

    medians = np.full(grid.num_bins, np.nan)
    counts = np.zeros(grid.num_bins, dtype=np.int64)
    order = np.argsort(bins, kind="stable")
    bins_sorted = bins[order]
    tput_sorted = throughput[order]
    clients_sorted = dataset.client_values[order]
    boundaries = np.searchsorted(
        bins_sorted, np.arange(grid.num_bins + 1)
    )
    for b in range(grid.num_bins):
        lo, hi = boundaries[b], boundaries[b + 1]
        if per_ip and hi > lo:
            by_client: Dict[object, list] = {}
            for index in range(lo, hi):
                by_client.setdefault(
                    clients_sorted[index], []
                ).append(tput_sorted[index])
            samples = np.array([
                np.mean(values) for values in by_client.values()
            ])
        else:
            samples = tput_sorted[lo:hi]
        counts[b] = samples.shape[0]
        if counts[b] >= min_samples_per_bin:
            medians[b] = float(np.median(samples))
    return ThroughputSeries(
        grid=grid, median_mbps=medians, sample_counts=counts
    )


def per_asn_throughput(
    dataset: AccessLogDataset,
    grid: TimeGrid,
    table: RoutingTable,
    asns: Optional[Sequence[int]] = None,
    af: Optional[int] = None,
    min_samples_per_bin: int = 3,
    per_ip: bool = False,
) -> Dict[int, ThroughputSeries]:
    """Per-AS median throughput series (§4.2, Fig. 6/9).

    ``af`` restricts to one address family (4 or 6) for the Appendix C
    IPv4-vs-IPv6 comparison; ``per_ip`` switches to the paper's exact
    per-IP-first aggregation.
    """
    client_asn = resolve_client_asns(dataset, table)
    if asns is None:
        asns = sorted(set(int(a) for a in client_asn if a >= 0))
    result = {}
    for asn in asns:
        mask = client_asn == asn
        if af is not None:
            mask &= dataset.afs == af
        result[asn] = median_throughput_series(
            dataset, grid, row_mask=mask,
            min_samples_per_bin=min_samples_per_bin,
            per_ip=per_ip,
        )
    return result
