"""Frequency-domain detection of persistent congestion (paper §2.3).

The aggregated queueing-delay signal is converted to the frequency
domain with the Welch method (overlapping segments, per-segment
periodograms, averaged).  The periodogram is scaled so that the y-axis
reads directly as *average peak-to-peak amplitude* in milliseconds —
matching the paper's Fig. 2/3 axes — and two markers are extracted:

* the prominent (highest-power) frequency component, and
* the peak-to-peak amplitude of the daily (1/24 cycles-per-hour)
  component.

A pure sinusoid ``A·sin(2πft)`` has Welch 'spectrum'-scaled power
``A²/2`` at ``f``, so peak-to-peak amplitude is ``2·√(2·P)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np
from scipy import signal as sp_signal

from ..obs import get_observer, maybe_profiled
from ..timebase import SECONDS_PER_DAY, SECONDS_PER_HOUR

STAGE = "core-spectral"

#: The daily frequency in cycles per hour (the paper's x = 1/24).
DAILY_FREQUENCY_CPH = 1.0 / 24.0
#: Welch segment length: 4 days of bins.  Gives exact alignment of the
#: daily frequency on a periodogram bin for any bin width dividing a
#: day, and ~6 averaged segments over a 15-day period.
SEGMENT_DAYS = 4


@dataclass(frozen=True)
class Periodogram:
    """Welch periodogram in peak-to-peak-amplitude units."""

    frequencies_cph: np.ndarray     # cycles per hour
    amplitude_ms: np.ndarray        # average peak-to-peak amplitude

    def amplitude_at(self, frequency_cph: float) -> float:
        """Amplitude of the bin nearest to a frequency."""
        index = int(
            np.argmin(np.abs(self.frequencies_cph - frequency_cph))
        )
        return float(self.amplitude_ms[index])

    def prominent(
        self, skip_bins: int = 1
    ) -> Tuple[float, float]:
        """(frequency, amplitude) of the strongest component.

        The DC bin and ``skip_bins`` lowest bins are excluded: they
        carry the signal mean and multi-day trend, not periodicity.
        """
        start = 1 + skip_bins
        if start >= len(self.frequencies_cph):
            raise ValueError("periodogram too short")
        index = start + int(np.argmax(self.amplitude_ms[start:]))
        return (
            float(self.frequencies_cph[index]),
            float(self.amplitude_ms[index]),
        )


def fill_gaps(values: np.ndarray) -> np.ndarray:
    """Linearly interpolate NaN gaps (probe outages) in a signal.

    Leading/trailing NaNs take the nearest valid value.  An all-NaN
    signal is returned as zeros so downstream spectral analysis yields
    an empty (flat) spectrum instead of propagating NaN.
    """
    values = np.asarray(values, dtype=np.float64)
    mask = np.isnan(values)
    if not mask.any():
        return values
    if mask.all():
        return np.zeros_like(values)
    filled = values.copy()
    indices = np.arange(len(values))
    filled[mask] = np.interp(
        indices[mask], indices[~mask], values[~mask]
    )
    return filled


@maybe_profiled("core-spectral.welch_periodogram")
def welch_periodogram(
    values: np.ndarray,
    bin_seconds: int,
    segment_days: int = SEGMENT_DAYS,
) -> Periodogram:
    """Welch periodogram of a binned delay signal.

    ``values`` may contain NaN gaps (interpolated first).  The segment
    length adapts downward for signals shorter than ``segment_days``.
    """
    values = fill_gaps(values)
    bins_per_day = SECONDS_PER_DAY // bin_seconds
    nperseg = min(segment_days * bins_per_day, len(values))
    if nperseg < 2:
        raise ValueError(f"signal too short for Welch: {len(values)} bins")
    sample_rate_per_hour = SECONDS_PER_HOUR / bin_seconds
    freqs, power = sp_signal.welch(
        values,
        fs=sample_rate_per_hour,
        nperseg=nperseg,
        scaling="spectrum",
        detrend="constant",
    )
    amplitude = 2.0 * np.sqrt(2.0 * power)
    return Periodogram(frequencies_cph=freqs, amplitude_ms=amplitude)


@dataclass(frozen=True)
class SpectralMarkers:
    """The two markers the classifier consumes (§2.3)."""

    prominent_frequency_cph: float
    prominent_amplitude_ms: float
    daily_amplitude_ms: float

    @property
    def daily_is_prominent(self) -> bool:
        """True when the strongest component is the daily one.

        The tolerance is half a periodogram bin at the standard
        4-day segment length (bin width 1/96 cph around 1/24 cph).
        """
        tolerance = DAILY_FREQUENCY_CPH * 0.26
        return abs(
            self.prominent_frequency_cph - DAILY_FREQUENCY_CPH
        ) <= tolerance


#: Signals with more than this fraction of NaN bins are too gappy to
#: classify: interpolation over dominant gaps manufactures structure
#: the probes never measured, so the honest answer is "no pattern".
MAX_GAP_FRACTION = 0.5


def extract_markers(
    values: np.ndarray,
    bin_seconds: int,
    segment_days: int = SEGMENT_DAYS,
    max_gap_fraction: float = MAX_GAP_FRACTION,
) -> Optional[SpectralMarkers]:
    """Compute the paper's two spectral markers for one signal.

    Returns None — "no daily pattern", classified None downstream —
    for every degenerate input rather than raising or hallucinating
    peaks: empty and single-bin series, all-NaN and constant signals,
    series whose NaN gap fraction exceeds ``max_gap_fraction``, and
    series too short for even one Welch segment.
    """
    obs = get_observer()
    with obs.stage_span("spectral", bins=int(np.size(values))):
        obs.items_in(STAGE)
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1 or values.size < 2:
            return None
        nan_fraction = float(np.mean(np.isnan(values)))
        if nan_fraction > max_gap_fraction:
            return None
        filled = fill_gaps(values)
        if np.allclose(filled, filled[0]):
            return None
        try:
            periodogram = welch_periodogram(
                filled, bin_seconds, segment_days
            )
            frequency, amplitude = periodogram.prominent()
        except ValueError:
            return None  # too short for Welch / for the prominence scan
        daily = periodogram.amplitude_at(DAILY_FREQUENCY_CPH)
        obs.items_out(STAGE)
        return SpectralMarkers(
            prominent_frequency_cph=frequency,
            prominent_amplitude_ms=amplitude,
            daily_amplitude_ms=daily,
        )
