"""Probe selection and filtering (paper §2, §3, §4).

The paper applies three selection rules before estimating last-mile
delay:

* drop Atlas anchors (datacenter vantage points, no last mile);
* resolve each probe to an AS by longest-prefix match of its *public*
  address against BGP data (first-hop addresses may be unannounced);
* optionally restrict to a geographic area (Greater Tokyo in §4).

Population selectors return probe-id lists the aggregation stage
consumes.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..atlas.traceroute import ProbeMeta
from ..bgp import RoutingTable
from ..netbase import parse_address
from ..obs import get_observer
from ..quality import DataQualityReport, DropReason
from ..topology.geo import GREATER_TOKYO_NAMES

STAGE = "core-filtering"


def resolve_probe_asn(
    meta: ProbeMeta,
    table: RoutingTable,
    quality: Optional[DataQualityReport] = None,
) -> Optional[int]:
    """AS of a probe by longest-prefix match of its public address.

    Mirrors §2.1: the probe's public address — never a traceroute hop
    address — is what gets matched against the RIB.  A probe whose
    public address does not parse, or has no RIB match, yields None;
    with ``quality`` given the drop is counted with a reason code
    instead of vanishing.
    """
    try:
        value, version = parse_address(meta.public_address)
    except ValueError:
        if quality is not None:
            quality.drop(
                STAGE, DropReason.UNPARSEABLE_ADDRESS,
                detail=f"probe {meta.prb_id}: "
                f"{meta.public_address!r}",
            )
        return None
    asn = table.resolve_asn(value, version)
    if asn is None and quality is not None:
        quality.drop(
            STAGE, DropReason.UNRESOLVED_ASN,
            detail=f"probe {meta.prb_id}: no RIB match for "
            f"{meta.public_address}",
        )
    return asn


def non_anchor_probes(
    probe_meta: Dict[int, ProbeMeta]
) -> List[int]:
    """Probe ids with anchors removed, sorted."""
    return sorted(
        prb_id for prb_id, meta in probe_meta.items() if not meta.is_anchor
    )


def probes_in_asn(
    probe_meta: Dict[int, ProbeMeta],
    asn: int,
    table: Optional[RoutingTable] = None,
    include_anchors: bool = False,
) -> List[int]:
    """Probe ids homed in one AS.

    With a routing table the AS is resolved by longest-prefix match of
    the probe public address (the paper's method); without one the
    metadata ASN is trusted (useful for unit fixtures).
    """
    selected = []
    for prb_id, meta in probe_meta.items():
        if meta.is_anchor and not include_anchors:
            continue
        resolved = (
            resolve_probe_asn(meta, table) if table is not None else meta.asn
        )
        if resolved == asn:
            selected.append(prb_id)
    return sorted(selected)


def probes_in_cities(
    probe_meta: Dict[int, ProbeMeta],
    cities: Iterable[str],
    include_anchors: bool = False,
) -> List[int]:
    """Probe ids located in any of the given cities."""
    wanted = set(cities)
    return sorted(
        prb_id for prb_id, meta in probe_meta.items()
        if meta.city in wanted and (include_anchors or not meta.is_anchor)
    )


def probes_in_greater_tokyo(
    probe_meta: Dict[int, ProbeMeta],
    include_anchors: bool = False,
) -> List[int]:
    """The paper's §4 filter: Tokyo, Yokohama, Chiba, Saitama."""
    return probes_in_cities(
        probe_meta, GREATER_TOKYO_NAMES, include_anchors=include_anchors
    )


def asns_with_min_probes(
    probe_meta: Dict[int, ProbeMeta],
    min_probes: int = 3,
    table: Optional[RoutingTable] = None,
    quality: Optional[DataQualityReport] = None,
) -> Dict[int, List[int]]:
    """ASes hosting at least ``min_probes`` non-anchor probes (§3).

    Returns ``{asn: [probe ids]}`` for qualifying ASes.  With
    ``quality`` given, every probe considered is counted as ingested
    and unresolvable probes are dropped with a reason code.
    """
    obs = get_observer()
    with obs.stage_span("filter", probes=len(probe_meta)) as span:
        by_asn: Dict[int, List[int]] = {}
        considered = 0
        for prb_id, meta in probe_meta.items():
            if meta.is_anchor:
                continue
            considered += 1
            if quality is not None:
                quality.ingest(STAGE)
            asn = (
                resolve_probe_asn(meta, table, quality=quality)
                if table is not None else meta.asn
            )
            if asn is None:
                if table is None and quality is not None:
                    quality.drop(
                        STAGE, DropReason.UNRESOLVED_ASN,
                        detail=f"probe {prb_id}: no metadata ASN",
                    )
                continue
            by_asn.setdefault(asn, []).append(prb_id)
        groups = {
            asn: sorted(ids)
            for asn, ids in sorted(by_asn.items())
            if len(ids) >= min_probes
        }
        obs.items_in(STAGE, considered)
        obs.items_out(
            STAGE, sum(len(ids) for ids in groups.values())
        )
        span.set_attr("asns", len(groups))
        return groups
