"""Statistical utilities: bootstrap and rank-based confidence intervals.

The paper reports point estimates (amplitudes, Spearman ρ); a
production deployment of this pipeline should attach uncertainty.
These helpers bootstrap over probes (for population-level delay
statistics) and over bins (for correlation), respecting the data's
structure: resampling probes keeps within-probe temporal correlation
intact, which naive per-bin resampling would destroy.

:func:`wilson_score_interval` is the non-resampling counterpart: a
closed-form rank-based confidence band on the median (Fontugne et
al., "Pinpointing Delay and Forwarding Anomalies"), cheap enough to
run per link per time bin where a bootstrap would not be.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

import numpy as np
from scipy import stats as sp_stats

from .aggregate import aggregate_population
from .series import LastMileDataset
from .spectral import extract_markers


@dataclass(frozen=True)
class BootstrapEstimate:
    """Point estimate with a percentile-bootstrap interval."""

    value: float
    low: float
    high: float
    confidence: float
    replicates: int

    def __str__(self) -> str:
        pct = int(round(self.confidence * 100))
        return (
            f"{self.value:.3f} [{self.low:.3f}, {self.high:.3f}] "
            f"({pct}% CI, {self.replicates} replicates)"
        )

    @property
    def width(self) -> float:
        """Interval width."""
        return self.high - self.low


def bootstrap_statistic(
    sample: np.ndarray,
    statistic: Callable[[np.ndarray], float],
    replicates: int = 1000,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapEstimate:
    """Generic percentile bootstrap of a 1-D statistic."""
    sample = np.asarray(sample)
    if sample.shape[0] < 2:
        raise ValueError("need at least 2 observations to bootstrap")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence {confidence} outside (0,1)")
    rng = rng if rng is not None else np.random.default_rng()

    point = float(statistic(sample))
    values = np.empty(replicates)
    n = sample.shape[0]
    for i in range(replicates):
        indices = rng.integers(0, n, size=n)
        values[i] = statistic(sample[indices])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapEstimate(
        value=point,
        low=float(np.quantile(values, alpha)),
        high=float(np.quantile(values, 1.0 - alpha)),
        confidence=confidence,
        replicates=replicates,
    )


def bootstrap_daily_amplitude(
    dataset: LastMileDataset,
    probe_ids: Optional[Sequence[int]] = None,
    replicates: int = 200,
    confidence: float = 0.95,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapEstimate:
    """CI on an AS's daily amplitude by resampling *probes*.

    Each replicate re-aggregates a bootstrap probe sample and re-runs
    the Welch extraction — the uncertainty a different Atlas probe
    deployment would have produced.
    """
    if probe_ids is None:
        probe_ids = dataset.probe_ids()
    probe_ids = list(probe_ids)
    if len(probe_ids) < 2:
        raise ValueError("need at least 2 probes to bootstrap")
    rng = rng if rng is not None else np.random.default_rng()

    def amplitude(ids) -> float:
        signal = aggregate_population(dataset, list(ids))
        markers = extract_markers(
            signal.delay_ms, dataset.grid.bin_seconds
        )
        return markers.daily_amplitude_ms if markers else 0.0

    point = amplitude(probe_ids)
    values = np.empty(replicates)
    n = len(probe_ids)
    for i in range(replicates):
        indices = rng.integers(0, n, size=n)
        values[i] = amplitude([probe_ids[j] for j in indices])
    alpha = (1.0 - confidence) / 2.0
    return BootstrapEstimate(
        value=point,
        low=float(np.quantile(values, alpha)),
        high=float(np.quantile(values, 1.0 - alpha)),
        confidence=confidence,
        replicates=replicates,
    )


def bootstrap_spearman(
    x: np.ndarray,
    y: np.ndarray,
    replicates: int = 1000,
    confidence: float = 0.95,
    block: int = 8,
    rng: Optional[np.random.Generator] = None,
) -> BootstrapEstimate:
    """Block-bootstrap CI on Spearman ρ for time-binned series.

    Delay/throughput bins are autocorrelated (diurnal structure), so a
    naive bootstrap understates uncertainty; resampling contiguous
    blocks of ``block`` bins (4 hours at 30-minute bins) preserves the
    short-range correlation.
    """
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ValueError("series length mismatch")
    mask = ~np.isnan(x) & ~np.isnan(y)
    x, y = x[mask], y[mask]
    if x.shape[0] < 2 * block:
        raise ValueError("too few joint bins for block bootstrap")
    rng = rng if rng is not None else np.random.default_rng()

    point, _p = sp_stats.spearmanr(x, y)
    n = x.shape[0]
    n_blocks = int(np.ceil(n / block))
    starts_max = n - block
    values = np.empty(replicates)
    for i in range(replicates):
        starts = rng.integers(0, starts_max + 1, size=n_blocks)
        indices = (
            starts[:, None] + np.arange(block)[None, :]
        ).ravel()[:n]
        rho, _p = sp_stats.spearmanr(x[indices], y[indices])
        values[i] = rho if np.isfinite(rho) else 0.0
    alpha = (1.0 - confidence) / 2.0
    return BootstrapEstimate(
        value=float(point),
        low=float(np.quantile(values, alpha)),
        high=float(np.quantile(values, 1.0 - alpha)),
        confidence=confidence,
        replicates=replicates,
    )


def wilson_rank_bounds(n: int, confidence: float = 0.95) -> Tuple[float, float]:
    """Wilson score bounds on the median's *rank proportion*.

    For ``n`` samples the median is the p=0.5 order statistic; the
    Wilson score interval around p=0.5 gives the proportion range the
    true median's rank falls in with the requested confidence.  The
    bounds depend only on ``n`` and ``confidence``, so they can be
    precomputed once per (link, bin) population size.  Width shrinks
    monotonically as ``n`` grows.  ``n < 2`` has no interior ranks to
    bound: returns ``(nan, nan)``.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence {confidence} outside (0,1)")
    if n < 2:
        return (float("nan"), float("nan"))
    z = float(sp_stats.norm.ppf(1.0 - (1.0 - confidence) / 2.0))
    p = 0.5
    z2 = z * z
    denom = 1.0 + z2 / n
    center = (p + z2 / (2.0 * n)) / denom
    margin = (
        z * np.sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n)) / denom
    )
    return (center - margin, center + margin)


def wilson_score_interval(
    samples: Sequence[float], confidence: float = 0.95
) -> Tuple[float, float]:
    """Rank-based Wilson confidence band on the sample median.

    Maps the Wilson proportion bounds from :func:`wilson_rank_bounds`
    to order statistics of the sorted sample (floor below, ceil above,
    clipped to the sample), so the band is a pair of actually-observed
    values bracketing the median — the closed-form alternative to a
    bootstrap, cheap enough for every link × time bin.  Fewer than 2
    samples → ``(nan, nan)``.
    """
    values = np.sort(np.asarray(samples, dtype=np.float64))
    n = int(values.shape[0])
    lo_p, hi_p = wilson_rank_bounds(n, confidence)
    if not np.isfinite(lo_p):
        return (float("nan"), float("nan"))
    lo_rank = int(np.clip(np.floor(lo_p * (n - 1)), 0, n - 1))
    hi_rank = int(np.clip(np.ceil(hi_p * (n - 1)), 0, n - 1))
    return (float(values[lo_rank]), float(values[hi_rank]))


def churn_jaccard(before: Sequence[int], after: Sequence[int]) -> float:
    """Jaccard similarity of two reported-AS sets (§3.1 'little churn').

    1.0 = identical sets; 0.0 = disjoint.  Both empty counts as 1.0.
    """
    a, b = set(before), set(after)
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)
