"""Last-mile RTT estimation from traceroutes (paper §2.1).

Stages, exactly as the paper describes:

1. Identify the boundary: the last RFC 1918 (private) hop and the
   first public hop of each traceroute.
2. Pairwise-subtract the private hop's replies from the public hop's
   replies: 3 × 3 = 9 last-mile RTT samples per traceroute.
3. Group each probe's traceroutes into 30-minute bins; discard bins
   with fewer than 3 traceroutes (disconnected-probe sanity check).
4. Per bin, the probe's last-mile RTT estimate is the median of all
   samples in the bin (24 traceroutes × 9 samples = 216).

Anchors have no private hop; for them (used only by the Appendix B
control analysis) the first public hop RTT itself is the sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..netbase import is_private, is_public, parse_address
from ..atlas.traceroute import Hop, TracerouteResult
from ..obs import get_observer, maybe_profiled
from ..quality import DataQualityReport, DropReason
from ..timebase import TimeGrid
from .series import LastMileDataset, ProbeBinSeries

#: The paper's disconnected-probe sanity threshold.
MIN_TRACEROUTES_PER_BIN = 3

STAGE = "core-lastmile"


@dataclass(frozen=True)
class BoundaryHops:
    """The last private and first public hops of one traceroute.

    ``last_private`` is None for vantage points with no private hop
    (datacenter hosts / anchors).
    """

    last_private: Optional[Hop]
    first_public: Hop


def classify_hop_address(address: str) -> str:
    """Classify a hop address as 'private', 'public' or 'other'.

    'other' covers loopback, link-local, documentation and multicast
    space — anomalies that must be skipped rather than treated as the
    ISP edge.
    """
    try:
        value, version = parse_address(address)
    except ValueError:
        return "other"
    if is_private(value, version):
        return "private"
    if is_public(value, version):
        return "public"
    return "other"


def find_boundary(result: TracerouteResult) -> Optional[BoundaryHops]:
    """Locate the private→public boundary of one traceroute.

    Scans hops in order: remembers the most recent private hop, stops
    at the first public hop.  Hops whose replies all timed out (or are
    anomalous) are skipped.  Returns None when no public hop ever
    responds (fully broken traceroute).
    """
    last_private: Optional[Hop] = None
    for hop in result.hops:
        address = hop.responding_address
        if address is None:
            continue
        kind = classify_hop_address(address)
        if kind == "private":
            last_private = hop
        elif kind == "public":
            return BoundaryHops(last_private=last_private, first_public=hop)
    return None


@maybe_profiled("core-lastmile.lastmile_samples")
def lastmile_samples(result: TracerouteResult) -> List[float]:
    """Per-traceroute last-mile RTT samples (up to 9).

    Pairwise subtraction of the last private hop's RTTs from the first
    public hop's RTTs.  With no private hop the public hop's RTTs are
    used directly (anchor case).  Timeout replies simply yield fewer
    samples.
    """
    boundary = find_boundary(result)
    if boundary is None:
        return []
    public_rtts = [r for r in boundary.first_public.rtts if _sane(r)]
    if boundary.last_private is None:
        return list(public_rtts)
    private_rtts = [
        r for r in boundary.last_private.rtts if _sane(r)
    ]
    return [
        public_rtt - private_rtt
        for public_rtt in public_rtts
        for private_rtt in private_rtts
    ]


def _sane(rtt: float) -> bool:
    """Defense in depth against garbage RTTs that bypassed parsing."""
    return np.isfinite(rtt) and rtt >= 0.0


def e2e_samples(result: TracerouteResult) -> List[float]:
    """End-to-end RTT samples: the last responding hop's replies.

    Not part of the paper's methodology — used by the specificity
    experiments to contrast naive end-to-end delay analysis with the
    last-mile subtraction.
    """
    for hop in reversed(result.hops):
        rtts = hop.rtts
        if rtts:
            return list(rtts)
    return []


def estimate_probe_series(
    results: Iterable[TracerouteResult],
    grid: TimeGrid,
    prb_id: Optional[int] = None,
    min_traceroutes: int = MIN_TRACEROUTES_PER_BIN,
    sample_fn=None,
    quality: Optional[DataQualityReport] = None,
) -> ProbeBinSeries:
    """Binned last-mile medians for one probe's traceroutes.

    Implements stages 1–4 above.  ``prb_id`` is inferred from the
    first result when not given; an empty input needs it explicitly.
    ``sample_fn`` swaps the per-traceroute sample extractor (default
    :func:`lastmile_samples`; pass :func:`e2e_samples` for a naive
    end-to-end analysis).

    Dirty-input behavior: results whose timestamp falls outside the
    grid's period (skewed probe clocks) are dropped, and results that
    yield no samples (no responding public hop — truncated or fully
    ``*`` traceroutes) still count toward the bin's sanity count but
    are flagged; both are recorded on ``quality`` when given.
    """
    if sample_fn is None:
        sample_fn = lastmile_samples
    obs = get_observer()
    processed = 0
    duration = grid.num_bins * grid.bin_seconds
    samples_per_bin: Dict[int, List[float]] = {}
    counts = np.zeros(grid.num_bins, dtype=np.int64)
    for result in results:
        processed += 1
        if prb_id is None:
            prb_id = result.prb_id
        if quality is not None:
            quality.ingest(STAGE)
        timestamp = result.timestamp
        if not np.isfinite(timestamp):
            if quality is not None:
                quality.drop(
                    STAGE, DropReason.MALFORMED_RECORD,
                    detail=f"probe {result.prb_id}: timestamp "
                    f"{timestamp!r}",
                )
            continue
        if timestamp < 0 or timestamp > duration:
            if quality is not None:
                quality.drop(
                    STAGE, DropReason.OUT_OF_PERIOD,
                    detail=f"probe {result.prb_id}: timestamp "
                    f"{timestamp:.0f}s outside 0..{duration}s",
                )
            continue
        bin_index = int(grid.bin_index(timestamp))
        counts[bin_index] += 1
        samples = sample_fn(result)
        if samples:
            samples_per_bin.setdefault(bin_index, []).extend(samples)
        elif quality is not None:
            quality.degrade(
                STAGE, DropReason.NO_BOUNDARY,
                detail=f"probe {result.prb_id}: no usable "
                "private→public hop pair",
            )

    if prb_id is None:
        raise ValueError("empty result set and no prb_id given")

    medians = np.full(grid.num_bins, np.nan)
    valid_bins = 0
    for bin_index, samples in samples_per_bin.items():
        if counts[bin_index] >= min_traceroutes:
            medians[bin_index] = float(np.median(samples))
            valid_bins += 1
    obs.items_in(STAGE, processed)
    obs.items_out(STAGE, valid_bins)
    return ProbeBinSeries(
        prb_id=prb_id,
        median_rtt_ms=medians,
        traceroute_counts=counts,
    )


def estimate_dataset(
    results_by_probe: Dict[int, List[TracerouteResult]],
    grid: TimeGrid,
    probe_meta: Optional[Dict[int, object]] = None,
    min_traceroutes: int = MIN_TRACEROUTES_PER_BIN,
    sample_fn=None,
    quality: Optional[DataQualityReport] = None,
) -> LastMileDataset:
    """Run the estimation for every probe of a measurement dataset."""
    obs = get_observer()
    with obs.stage_span(
        "lastmile", probes=len(results_by_probe)
    ):
        dataset = LastMileDataset(grid=grid)
        for prb_id, results in results_by_probe.items():
            series = estimate_probe_series(
                results, grid, prb_id=prb_id,
                min_traceroutes=min_traceroutes, sample_fn=sample_fn,
                quality=quality,
            )
            meta = probe_meta.get(prb_id) if probe_meta else None
            dataset.add(series, meta=meta)
        return dataset
