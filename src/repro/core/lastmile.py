"""Last-mile RTT estimation from traceroutes (paper §2.1).

Stages, exactly as the paper describes:

1. Identify the boundary: the last RFC 1918 (private) hop and the
   first public hop of each traceroute.
2. Pairwise-subtract the private hop's replies from the public hop's
   replies: 3 × 3 = 9 last-mile RTT samples per traceroute.
3. Group each probe's traceroutes into 30-minute bins; discard bins
   with fewer than 3 traceroutes (disconnected-probe sanity check).
4. Per bin, the probe's last-mile RTT estimate is the median of all
   samples in the bin (24 traceroutes × 9 samples = 216).

Anchors have no private hop; for them (used only by the Appendix B
control analysis) the first public hop RTT itself is the sample.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from ..netbase import is_private, is_public, parse_address
from ..atlas.traceroute import Hop, TracerouteResult
from ..obs import get_observer, maybe_profiled
from ..quality import DataQualityReport, DropReason
from ..timebase import TimeGrid
from .kernels import record_kernel_op, resolve_kernels
from .series import LastMileDataset, ProbeBinSeries

#: The paper's disconnected-probe sanity threshold.
MIN_TRACEROUTES_PER_BIN = 3

STAGE = "core-lastmile"


@dataclass(frozen=True)
class BoundaryHops:
    """The last private and first public hops of one traceroute.

    ``last_private`` is None for vantage points with no private hop
    (datacenter hosts / anchors).
    """

    last_private: Optional[Hop]
    first_public: Hop


def classify_hop_address(address: str) -> str:
    """Classify a hop address as 'private', 'public' or 'other'.

    'other' covers loopback, link-local, documentation and multicast
    space — anomalies that must be skipped rather than treated as the
    ISP edge.
    """
    try:
        value, version = parse_address(address)
    except ValueError:
        return "other"
    if is_private(value, version):
        return "private"
    if is_public(value, version):
        return "public"
    return "other"


def find_boundary(result: TracerouteResult) -> Optional[BoundaryHops]:
    """Locate the private→public boundary of one traceroute.

    Scans hops in order: remembers the most recent private hop, stops
    at the first public hop.  Hops whose replies all timed out (or are
    anomalous) are skipped.  Returns None when no public hop ever
    responds (fully broken traceroute).
    """
    last_private: Optional[Hop] = None
    for hop in result.hops:
        address = hop.responding_address
        if address is None:
            continue
        kind = classify_hop_address(address)
        if kind == "private":
            last_private = hop
        elif kind == "public":
            return BoundaryHops(last_private=last_private, first_public=hop)
    return None


@maybe_profiled("core-lastmile.lastmile_samples")
def lastmile_samples(result: TracerouteResult) -> List[float]:
    """Per-traceroute last-mile RTT samples (up to 9).

    Pairwise subtraction of the last private hop's RTTs from the first
    public hop's RTTs.  With no private hop the public hop's RTTs are
    used directly (anchor case).  Timeout replies simply yield fewer
    samples.

    Replies whose RTT is non-finite (NaN/inf from a corrupt record)
    or negative are discarded by the same sanity filter.  When *every*
    reply of the public hop — or, for non-anchors, of the private
    hop — is insane, the pairwise product is empty and the traceroute
    yields no samples at all, exactly like a traceroute whose boundary
    never responded; :func:`estimate_probe_series` then counts it
    toward bin sanity but flags it as degraded.
    """
    boundary = find_boundary(result)
    if boundary is None:
        return []
    public_rtts = [r for r in boundary.first_public.rtts if _sane(r)]
    if boundary.last_private is None:
        return list(public_rtts)
    private_rtts = [
        r for r in boundary.last_private.rtts if _sane(r)
    ]
    return [
        public_rtt - private_rtt
        for public_rtt in public_rtts
        for private_rtt in private_rtts
    ]


def _sane(rtt: float) -> bool:
    """Defense in depth against garbage RTTs that bypassed parsing."""
    return np.isfinite(rtt) and rtt >= 0.0


def e2e_samples(result: TracerouteResult) -> List[float]:
    """End-to-end RTT samples: the last responding hop's replies.

    Not part of the paper's methodology — used by the specificity
    experiments to contrast naive end-to-end delay analysis with the
    last-mile subtraction.
    """
    for hop in reversed(result.hops):
        rtts = hop.rtts
        if rtts:
            return list(rtts)
    return []


def _scan_results(
    results: Iterable[TracerouteResult],
    grid: TimeGrid,
    prb_id: Optional[int],
    sample_fn,
    quality: Optional[DataQualityReport],
    counts: np.ndarray,
) -> Tuple[Optional[int], int, List[int], List[List[float]]]:
    """Stages 1–3 for one probe: timestamp gating, binning, sampling.

    The reference scan — edge semantics (NaN timestamps,
    out-of-period clocks, sample-less traceroutes) are decided here.
    Flat backends use :func:`repro.core.kernels.flat.scan_lastmile_flat`,
    which replicates these semantics exactly (the differential suite
    proves the outputs and quality events byte-identical); any change
    here must be mirrored there.  Increments ``counts`` in place; returns
    ``(prb_id, processed, sample_bins, sample_lists)`` where
    ``sample_lists[i]`` is the non-empty sample list of the i-th
    sampled traceroute and ``sample_bins[i]`` its bin.
    """
    processed = 0
    duration = grid.num_bins * grid.bin_seconds
    sample_bins: List[int] = []
    sample_lists: List[List[float]] = []
    for result in results:
        processed += 1
        if prb_id is None:
            prb_id = result.prb_id
        if quality is not None:
            quality.ingest(STAGE)
        timestamp = result.timestamp
        if not np.isfinite(timestamp):
            # A NaN/inf timestamp cannot be binned at all: the record
            # is dropped as malformed *before* the bin sanity counts —
            # it neither helps a bin reach min_traceroutes nor is it
            # sampled.
            if quality is not None:
                quality.drop(
                    STAGE, DropReason.MALFORMED_RECORD,
                    detail=f"probe {result.prb_id}: timestamp "
                    f"{timestamp!r}",
                )
            continue
        if timestamp < 0 or timestamp > duration:
            if quality is not None:
                quality.drop(
                    STAGE, DropReason.OUT_OF_PERIOD,
                    detail=f"probe {result.prb_id}: timestamp "
                    f"{timestamp:.0f}s outside 0..{duration}s",
                )
            continue
        bin_index = int(grid.bin_index(timestamp))
        counts[bin_index] += 1
        samples = sample_fn(result)
        if samples:
            sample_bins.append(bin_index)
            sample_lists.append(samples)
        elif quality is not None:
            # Boundary missing — or present with only insane replies
            # (see lastmile_samples): the traceroute counts toward bin
            # sanity (the probe *was* measuring) but contributes no
            # samples and is flagged.
            quality.degrade(
                STAGE, DropReason.NO_BOUNDARY,
                detail=f"probe {result.prb_id}: no usable "
                "private→public hop pair",
            )
    return prb_id, processed, sample_bins, sample_lists


def estimate_probe_series(
    results: Iterable[TracerouteResult],
    grid: TimeGrid,
    prb_id: Optional[int] = None,
    min_traceroutes: int = MIN_TRACEROUTES_PER_BIN,
    sample_fn=None,
    quality: Optional[DataQualityReport] = None,
    kernels=None,
) -> ProbeBinSeries:
    """Binned last-mile medians for one probe's traceroutes.

    Implements stages 1–4 above.  ``prb_id`` is inferred from the
    first result when not given; an empty input needs it explicitly.
    ``sample_fn`` swaps the per-traceroute sample extractor (default
    :func:`lastmile_samples`; pass :func:`e2e_samples` for a naive
    end-to-end analysis).  ``kernels`` selects the median backend
    (:func:`repro.core.kernels.resolve_kernels`); both backends are
    numerically identical by contract.

    Dirty-input behavior: results whose timestamp is non-finite are
    dropped as malformed before binning (they do not count toward bin
    sanity), results whose timestamp falls outside the grid's period
    (skewed probe clocks) are dropped, and results that yield no
    samples — no responding public hop, or a boundary whose replies
    are all non-finite — still count toward the bin's sanity count
    but are flagged; all three are recorded on ``quality`` when given.
    """
    kern = resolve_kernels(kernels)
    obs = get_observer()
    counts = np.zeros(grid.num_bins, dtype=np.int64)
    if sample_fn is None and getattr(kern, "flat", False):
        # Flat scan: same edge semantics and quality events, proven
        # byte-identical by the differential suite; the pairwise
        # sampling runs vectorized instead of per traceroute.
        from .kernels.flat import scan_lastmile_flat

        scan = scan_lastmile_flat(
            results, grid, prb_id, quality, counts
        )
        prb_id, processed = scan.prb_id, scan.processed
        if prb_id is None:
            raise ValueError("empty result set and no prb_id given")
        record_kernel_op(kern.name, "bin-medians")
        medians, valid_bins = kern.flat_bin_medians(
            scan.sample_bins, scan.sample_values, counts,
            grid.num_bins, min_traceroutes,
        )
        obs.items_in(STAGE, processed)
        obs.items_out(STAGE, valid_bins)
        return ProbeBinSeries(
            prb_id=prb_id,
            median_rtt_ms=medians,
            traceroute_counts=counts,
        )
    if sample_fn is None:
        sample_fn = lastmile_samples
    prb_id, processed, sample_bins, sample_lists = _scan_results(
        results, grid, prb_id, sample_fn, quality, counts
    )
    if prb_id is None:
        raise ValueError("empty result set and no prb_id given")
    record_kernel_op(kern.name, "bin-medians")
    medians, valid_bins = kern.bin_medians(
        sample_bins, sample_lists, counts, grid.num_bins,
        min_traceroutes,
    )
    obs.items_in(STAGE, processed)
    obs.items_out(STAGE, valid_bins)
    return ProbeBinSeries(
        prb_id=prb_id,
        median_rtt_ms=medians,
        traceroute_counts=counts,
    )


def estimate_dataset(
    results_by_probe: Dict[int, List[TracerouteResult]],
    grid: TimeGrid,
    probe_meta: Optional[Dict[int, object]] = None,
    min_traceroutes: int = MIN_TRACEROUTES_PER_BIN,
    sample_fn=None,
    quality: Optional[DataQualityReport] = None,
    kernels=None,
) -> LastMileDataset:
    """Run the estimation for every probe of a measurement dataset.

    A batched backend (``vector``) estimates every probe in one
    grouped-median pass over flat ``(probe, bin, sample)`` arrays;
    the reference backend iterates :func:`estimate_probe_series`.
    Output is identical either way.
    """
    kern = resolve_kernels(kernels)
    obs = get_observer()
    with obs.stage_span(
        "lastmile", probes=len(results_by_probe), kernel=kern.name
    ):
        if getattr(kern, "batched", False):
            return _estimate_dataset_batched(
                results_by_probe, grid, probe_meta, min_traceroutes,
                sample_fn, quality, kern,
            )
        dataset = LastMileDataset(grid=grid)
        for prb_id, results in results_by_probe.items():
            series = estimate_probe_series(
                results, grid, prb_id=prb_id,
                min_traceroutes=min_traceroutes, sample_fn=sample_fn,
                quality=quality, kernels=kern,
            )
            meta = probe_meta.get(prb_id) if probe_meta else None
            dataset.add(series, meta=meta)
        return dataset


def _estimate_dataset_batched(
    results_by_probe: Dict[int, List[TracerouteResult]],
    grid: TimeGrid,
    probe_meta: Optional[Dict[int, object]],
    min_traceroutes: int,
    sample_fn,
    quality: Optional[DataQualityReport],
    kern,
) -> LastMileDataset:
    """Whole-dataset flat-array path for batched kernel backends.

    Scans every probe with the same per-result scan the serial path
    uses (so quality accounting is identical), then hands the kernel
    one flat ``(probe_row, bin, samples)`` batch covering the whole
    dataset.
    """
    obs = get_observer()
    dataset = LastMileDataset(grid=grid)
    order = list(results_by_probe.items())
    counts_matrix = np.zeros(
        (len(order), grid.num_bins), dtype=np.int64
    )
    processed_total = 0
    if sample_fn is None and getattr(kern, "flat", False):
        from .kernels.flat import scan_lastmile_flat

        key_chunks: List[np.ndarray] = []
        value_chunks: List[np.ndarray] = []
        for row, (prb_id, results) in enumerate(order):
            scan = scan_lastmile_flat(
                results, grid, prb_id, quality, counts_matrix[row]
            )
            processed_total += scan.processed
            if len(scan.sample_bins):
                key_chunks.append(
                    row * grid.num_bins + scan.sample_bins
                )
                value_chunks.append(scan.sample_values)
        sample_keys = (
            np.concatenate(key_chunks) if key_chunks
            else np.zeros(0, dtype=np.int64)
        )
        sample_values = (
            np.concatenate(value_chunks) if value_chunks
            else np.zeros(0, dtype=np.float64)
        )
        record_kernel_op(kern.name, "dataset-bin-medians")
        medians, valid_per_probe = kern.flat_dataset_bin_medians(
            sample_keys, sample_values,
            len(order), grid.num_bins, counts_matrix,
            min_traceroutes,
        )
        obs.items_in(STAGE, processed_total)
        obs.items_out(STAGE, int(valid_per_probe.sum()))
        for row, (prb_id, _results) in enumerate(order):
            series = ProbeBinSeries(
                prb_id=prb_id,
                median_rtt_ms=medians[row],
                traceroute_counts=counts_matrix[row],
            )
            meta = probe_meta.get(prb_id) if probe_meta else None
            dataset.add(series, meta=meta)
        return dataset
    if sample_fn is None:
        sample_fn = lastmile_samples
    probe_rows: List[int] = []
    sample_bins: List[int] = []
    sample_lists: List[List[float]] = []
    for row, (prb_id, results) in enumerate(order):
        _, processed, bins_, lists_ = _scan_results(
            results, grid, prb_id, sample_fn, quality,
            counts_matrix[row],
        )
        processed_total += processed
        probe_rows.extend([row] * len(bins_))
        sample_bins.extend(bins_)
        sample_lists.extend(lists_)
    record_kernel_op(kern.name, "dataset-bin-medians")
    medians, valid_per_probe = kern.dataset_bin_medians(
        probe_rows, sample_bins, sample_lists,
        len(order), grid.num_bins, counts_matrix, min_traceroutes,
    )
    obs.items_in(STAGE, processed_total)
    obs.items_out(STAGE, int(valid_per_probe.sum()))
    for row, (prb_id, _results) in enumerate(order):
        series = ProbeBinSeries(
            prb_id=prb_id,
            median_rtt_ms=medians[row],
            traceroute_counts=counts_matrix[row],
        )
        meta = probe_meta.get(prb_id) if probe_meta else None
        dataset.add(series, meta=meta)
    return dataset
