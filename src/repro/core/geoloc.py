"""Latency-based geolocation under last-mile congestion (§6).

The paper recommends that "geolocation studies and services based on
latency should avoid making inferences during peak hours and with
probes affected by persistent last-mile congestion".

RTT-based geolocation bounds the distance to a host as
``distance <= RTT/2 × (2/3)c`` (light in fiber).  A *real-time*
inference — one made from the RTT measured at inference time, as
active geolocation services do — inherits whatever queueing delay the
probe's last mile carries at that moment.  This module quantifies the
resulting bias per measurement policy:

* ``any_time``  — infer whenever the request arrives;
* ``peak_hours`` — infer during the local 19–23 h window (worst case);
* ``off_peak``  — avoid the peak window (the paper's first advice);
* ``filtered``  — additionally discard probes classified as
  persistently congested (the paper's second advice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..timebase import TimeGrid
from .classify import classify_signal
from .series import LastMileDataset

#: Speed of light in fiber, km per ms of one-way delay (~2/3 c).
FIBER_KM_PER_MS = 100.0

POLICIES = ("any_time", "peak_hours", "off_peak", "filtered")


def rtt_to_distance_km(rtt_ms) -> np.ndarray:
    """Upper-bound great-circle distance implied by an RTT."""
    rtt_ms = np.asarray(rtt_ms, dtype=np.float64)
    if np.any(rtt_ms < 0):
        raise ValueError("negative RTT")
    return rtt_ms / 2.0 * FIBER_KM_PER_MS


def peak_hour_mask(
    grid: TimeGrid,
    utc_offset_hours: float,
    peak_start: float = 19.0,
    peak_end: float = 23.0,
) -> np.ndarray:
    """True for bins inside local peak hours."""
    hour = grid.local_hour_of_day(utc_offset_hours)
    return (hour >= peak_start) & (hour <= peak_end)


def per_bin_distance_errors(
    rtt_series_ms: np.ndarray,
    true_distance_km: float,
) -> np.ndarray:
    """Per-bin absolute error of an instantaneous inference (km).

    NaN bins stay NaN.  Errors are signed-positive: queueing delay can
    only inflate the estimate, but measurement noise may also dip it
    below truth, hence the absolute value.
    """
    estimates = rtt_to_distance_km(
        np.where(np.isnan(rtt_series_ms), np.nan, rtt_series_ms)
    )
    return np.abs(estimates - true_distance_km)


@dataclass
class GeolocationStudy:
    """Aggregate error statistics across a probe population."""

    true_distance_km: float
    #: policy -> pooled per-bin absolute errors (km).
    errors_km: Dict[str, List[float]]
    #: probes excluded by the ``filtered`` policy.
    excluded_probes: List[int]

    def median_error(self, policy: str) -> float:
        """Median absolute error of one policy (NaN when unused)."""
        values = self.errors_km.get(policy, [])
        return float(np.median(values)) if values else float("nan")

    def p90_error(self, policy: str) -> float:
        """90th-percentile absolute error (tail bias)."""
        values = self.errors_km.get(policy, [])
        return float(np.percentile(values, 90)) if values else float("nan")

    def samples(self, policy: str) -> int:
        """Number of pooled (probe, bin) samples of a policy."""
        return len(self.errors_km.get(policy, []))


def run_geolocation_study(
    dataset: LastMileDataset,
    path_rtt_ms: float,
    utc_offset_hours: float,
    true_distance_km: Optional[float] = None,
    probe_ids: Optional[Sequence[int]] = None,
) -> GeolocationStudy:
    """Evaluate the four inference policies over a probe population.

    ``dataset`` holds each probe's last-mile delay medians per bin;
    the instantaneous end-to-end RTT toward the target is modeled as
    ``path_rtt_ms + last-mile queueing delay`` (the uncongested
    last-mile base is part of ``path_rtt_ms``).  True distance
    defaults to the fiber bound of the uncongested path.
    """
    from .aggregate import probe_queuing_delay

    if true_distance_km is None:
        true_distance_km = float(rtt_to_distance_km(path_rtt_ms))
    if probe_ids is None:
        probe_ids = dataset.probe_ids()

    grid = dataset.grid
    peak = peak_hour_mask(grid, utc_offset_hours)
    errors: Dict[str, List[float]] = {p: [] for p in POLICIES}
    excluded: List[int] = []

    for prb_id in probe_ids:
        series = dataset.series[prb_id]
        queueing = probe_queuing_delay(series)
        rtt = path_rtt_ms + queueing
        bin_errors = per_bin_distance_errors(rtt, true_distance_km)
        valid = ~np.isnan(bin_errors)

        errors["any_time"].extend(bin_errors[valid])
        errors["peak_hours"].extend(bin_errors[valid & peak])
        errors["off_peak"].extend(bin_errors[valid & ~peak])

        congested = classify_signal(
            queueing, grid.bin_seconds
        ).severity.is_reported
        if congested:
            excluded.append(prb_id)
        else:
            errors["filtered"].extend(bin_errors[valid & ~peak])

    return GeolocationStudy(
        true_distance_km=true_distance_km,
        errors_km=errors,
        excluded_probes=excluded,
    )
