"""Survey orchestration (paper §3).

Runs the full detection pipeline over every AS hosting at least three
probes, per measurement period, and derives the paper's headline
statistics: the share of ASes with no daily pattern, the number of
reported (congested) ASes, recurrence across periods, the COVID
increase, the eyeball-rank breakdown (Fig. 4) and the geographic
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apnic import EyeballRanking, RANK_BUCKETS, bucket_for_rank
from ..netbase.errors import EmptyPopulationError, TransientFaultError
from ..obs import get_observer
from ..quality import DataQualityReport, DropReason
from ..timebase import MeasurementPeriod
from .aggregate import (
    STAGE as AGGREGATE_STAGE,
    AggregatedSignal,
    aggregate_population,
)
from .classify import (
    Classification,
    ClassificationThresholds,
    DEFAULT_THRESHOLDS,
    Severity,
    classify_markers,
)
from .filtering import asns_with_min_probes
from .kernels import record_kernel_op, resolve_kernels
from .lastmile import MIN_TRACEROUTES_PER_BIN
from .series import LastMileDataset
from .spectral import STAGE as SPECTRAL_STAGE, extract_markers

STAGE = "core-survey"


@dataclass(frozen=True)
class ASFailure:
    """One AS the survey could not classify, with why and how hard
    it tried."""

    asn: int
    error: str          # exception class name
    message: str
    attempts: int = 1

    def __str__(self) -> str:
        return (
            f"AS{self.asn}: {self.error} after {self.attempts} "
            f"attempt(s) — {self.message}"
        )


@dataclass
class ASReport:
    """Classification of one AS in one period."""

    asn: int
    probe_count: int
    classification: Classification

    @property
    def severity(self) -> Severity:
        """Shortcut to the classification's severity."""
        return self.classification.severity

    @property
    def is_reported(self) -> bool:
        """True when the AS counts as congested (§3.1)."""
        return self.severity.is_reported


@dataclass
class SurveyResult:
    """All AS classifications for one measurement period."""

    period: MeasurementPeriod
    reports: Dict[int, ASReport] = field(default_factory=dict)
    #: Per-AS aggregated signals, retained only when
    #: ``classify_dataset(..., keep_signals=True)`` (used by the
    #: drill-down page export).
    signals: Dict[int, object] = field(default_factory=dict)
    #: ASes whose classification failed and was isolated — the survey
    #: is partial, not crashed.  Empty on a clean run.
    failures: Dict[int, ASFailure] = field(default_factory=dict)
    #: What the pipeline ingested/dropped/degraded producing this
    #: result, per stage.
    quality: DataQualityReport = field(default_factory=DataQualityReport)

    @property
    def monitored_count(self) -> int:
        """ASes with enough probes to be classified."""
        return len(self.reports)

    def failed_asns(self) -> List[int]:
        """ASes the survey had to give up on, sorted."""
        return sorted(self.failures)

    def reported_asns(self) -> List[int]:
        """Congested (non-None) ASes, sorted."""
        return sorted(
            asn for asn, report in self.reports.items()
            if report.is_reported
        )

    def asns_with_severity(self, severity: Severity) -> List[int]:
        """ASes with exactly the given severity, sorted."""
        return sorted(
            asn for asn, report in self.reports.items()
            if report.severity == severity
        )

    def severity_counts(self) -> Dict[Severity, int]:
        """Count of ASes in each class."""
        counts = {severity: 0 for severity in Severity}
        for report in self.reports.values():
            counts[report.severity] += 1
        return counts

    def none_fraction(self) -> float:
        """Share of monitored ASes classified None (§3.1: ~90 %)."""
        if not self.reports:
            return float("nan")
        return 1.0 - len(self.reported_asns()) / self.monitored_count

    def prominent_frequencies(self) -> np.ndarray:
        """Prominent frequency (cph) per AS (Fig. 3 top).

        ASes with degenerate signals are skipped.
        """
        return np.array([
            report.classification.markers.prominent_frequency_cph
            for report in self.reports.values()
            if report.classification.markers is not None
        ])

    def daily_amplitudes(self) -> np.ndarray:
        """Daily-component amplitude (ms) per AS (Fig. 3 bottom)."""
        return np.array([
            report.classification.daily_amplitude_ms
            for report in self.reports.values()
        ])


def classify_single_asn(
    dataset: LastMileDataset,
    asn: int,
    probe_ids: Sequence[int],
    thresholds: ClassificationThresholds = DEFAULT_THRESHOLDS,
    quality: Optional[DataQualityReport] = None,
    max_attempts: int = 2,
    keep_signal: bool = False,
    log=None,
    kernels=None,
) -> Tuple[Optional[ASReport], Optional[ASFailure], Optional[object]]:
    """Run the aggregate → spectral → classify chain for one AS.

    The unit of work both the serial survey loop and the sharded
    executor (:mod:`repro.parallel`) share, so the two paths cannot
    drift.  Returns ``(report, failure, signal)`` where exactly one of
    ``report``/``failure`` is set; ``signal`` is the aggregated signal
    when ``keep_signal`` and classification succeeded.

    Failures are isolated exactly as :func:`classify_dataset`
    documents: :class:`TransientFaultError` is retried up to
    ``max_attempts`` times, any terminal error becomes an
    :class:`ASFailure` recorded on ``quality`` (never a raised
    exception).
    """
    obs = get_observer()
    kern = resolve_kernels(kernels)
    if log is None:
        log = obs.logger.bind(stage=STAGE)
    with obs.span("classify", asn=asn):
        attempts = 0
        while True:
            attempts += 1
            try:
                signal = aggregate_population(
                    dataset, probe_ids, quality=quality, kernels=kern
                )
                markers = extract_markers(
                    signal.delay_ms, dataset.grid.bin_seconds
                )
                break
            except TransientFaultError as exc:
                if attempts < max_attempts:
                    continue
                log.warning(
                    "as-failed", asn=asn,
                    error=type(exc).__name__, attempts=attempts,
                )
                return None, _build_failure(
                    asn, exc, attempts, quality
                ), None
            except Exception as exc:  # noqa: BLE001 — per-AS isolation
                log.warning(
                    "as-failed", asn=asn,
                    error=type(exc).__name__, attempts=attempts,
                )
                return None, _build_failure(
                    asn, exc, attempts, quality
                ), None
        if markers is None and quality is not None:
            quality.degrade(
                STAGE, DropReason.DEGENERATE_SIGNAL,
                detail=f"AS{asn}: signal too flat/short/gappy; "
                "classified None",
            )
        classification = classify_markers(markers, thresholds)
        report = ASReport(
            asn=asn,
            probe_count=len(probe_ids),
            classification=classification,
        )
        return report, None, (signal if keep_signal else None)


def classify_asn_batch(
    dataset: LastMileDataset,
    ordered_groups: Sequence[Tuple[int, Sequence[int]]],
    thresholds: ClassificationThresholds = DEFAULT_THRESHOLDS,
    max_attempts: int = 2,
    keep_signals: bool = False,
    kernels=None,
    quality_for=None,
    log=None,
) -> List[Tuple[int, Optional[ASReport], Optional[ASFailure],
                Optional[object]]]:
    """Classify many ASes, batching marker extraction in one call.

    The batched twin of looping :func:`classify_single_asn`: each
    AS's aggregation keeps its own retry/isolation envelope (that is
    where faults strike), then marker extraction for every surviving
    signal runs as one ``markers_batch`` kernel call — for the
    ``vector`` backend a single :func:`scipy.signal.welch` over the
    (AS x bins) matrix.  Hoisting extraction out of the retry loop is
    safe because it is total: it maps degenerate signals to None
    instead of raising.

    ``quality_for(asn)`` supplies the ledger each AS's accounting
    lands on (the serial survey shares one, shard workers keep one
    per AS); None means no accounting.  Returns
    ``(asn, report, failure, signal)`` tuples in input order, with
    ``signal`` retained only when ``keep_signals``.
    """
    kern = resolve_kernels(kernels)
    obs = get_observer()
    if log is None:
        log = obs.logger.bind(stage=STAGE)
    if quality_for is None:
        quality_for = lambda asn: None  # noqa: E731
    staged: List[Tuple[int, Sequence[int], Optional[object],
                       Optional[ASFailure]]] = []
    if getattr(kern, "flat", False):
        staged = _stage_populations_flat(
            dataset, ordered_groups, quality_for, kern,
            max_attempts, obs, log,
        )
    else:
        for asn, probe_ids in ordered_groups:
            quality = quality_for(asn)
            signal = None
            failure = None
            with obs.span("classify", asn=asn):
                attempts = 0
                while True:
                    attempts += 1
                    try:
                        signal = aggregate_population(
                            dataset, probe_ids, quality=quality,
                            kernels=kern,
                        )
                        break
                    except TransientFaultError as exc:
                        if attempts < max_attempts:
                            continue
                        log.warning(
                            "as-failed", asn=asn,
                            error=type(exc).__name__,
                            attempts=attempts,
                        )
                        failure = _build_failure(
                            asn, exc, attempts, quality
                        )
                        break
                    except Exception as exc:  # noqa: BLE001
                        log.warning(
                            "as-failed", asn=asn,
                            error=type(exc).__name__,
                            attempts=attempts,
                        )
                        failure = _build_failure(
                            asn, exc, attempts, quality
                        )
                        break
            staged.append((asn, probe_ids, signal, failure))

    survivors = [
        entry for entry in staged if entry[3] is None
    ]
    signals = [signal.delay_ms for _, _, signal, _ in survivors]
    with obs.stage_span(
        "spectral", kernel=kern.name, signals=len(signals)
    ):
        obs.items_in(SPECTRAL_STAGE, len(signals))
        record_kernel_op(kern.name, "markers-batch", len(signals))
        markers_list = kern.markers_batch(
            signals, dataset.grid.bin_seconds
        )
        obs.items_out(
            SPECTRAL_STAGE,
            sum(markers is not None for markers in markers_list),
        )
    markers_by_asn = {
        asn: markers
        for (asn, _, _, _), markers in zip(survivors, markers_list)
    }
    outcomes = []
    for asn, probe_ids, signal, failure in staged:
        if failure is not None:
            outcomes.append((asn, None, failure, None))
            continue
        markers = markers_by_asn[asn]
        quality = quality_for(asn)
        if markers is None and quality is not None:
            quality.degrade(
                STAGE, DropReason.DEGENERATE_SIGNAL,
                detail=f"AS{asn}: signal too flat/short/gappy; "
                "classified None",
            )
        classification = classify_markers(markers, thresholds)
        report = ASReport(
            asn=asn,
            probe_count=len(probe_ids),
            classification=classification,
        )
        outcomes.append(
            (asn, report, None, signal if keep_signals else None)
        )
    return outcomes


def _stage_populations_flat(
    dataset: LastMileDataset,
    ordered_groups: Sequence[Tuple[int, Sequence[int]]],
    quality_for,
    kern,
    max_attempts: int,
    obs,
    log,
) -> List[Tuple[int, Sequence[int], Optional[object],
                Optional[ASFailure]]]:
    """Aggregate every AS through the flat survey pass.

    The array-driven twin of the per-AS ``aggregate_population``
    loop: the (probe x bin) delay matrix is built once for the whole
    dataset, each AS's envelope (span, retry, quality accounting,
    :class:`EmptyPopulationError` isolation) only *gathers* its row
    indices, and a single ``population_medians`` kernel call computes
    every AS's aggregated signal at the end.  Quality events land on
    each AS's ledger in the same order ``aggregate_population`` emits
    them (ingest → missing-series drop → dead-probe degrade), so the
    ledgers are byte-identical to the per-AS path.
    """
    from .kernels.flat import dataset_matrices, delay_matrix

    index, medians_matrix, counts_matrix = dataset_matrices(dataset)
    delays, dead = delay_matrix(
        medians_matrix, counts_matrix, MIN_TRACEROUTES_PER_BIN
    )

    def gather(probe_ids, quality):
        requested = list(probe_ids)
        with obs.stage_span(
            "aggregate", probes=len(requested), kernel=kern.name
        ):
            present = [p for p in requested if p in dataset.series]
            obs.items_in(AGGREGATE_STAGE, len(requested))
            if quality is not None:
                quality.ingest(AGGREGATE_STAGE, n=len(requested))
                missing = len(requested) - len(present)
                if missing:
                    quality.drop(
                        AGGREGATE_STAGE, DropReason.NO_VALID_BINS,
                        n=missing,
                        detail=(
                            f"{missing} probes have metadata but "
                            "no series"
                        ),
                    )
            if not present:
                raise EmptyPopulationError(
                    f"no probes to aggregate "
                    f"(requested {len(requested)})"
                )
            rows = np.fromiter(
                (index[p] for p in present),
                dtype=np.int64, count=len(present),
            )
            if quality is not None:
                dead_count = int(dead[rows].sum())
                if dead_count:
                    quality.degrade(
                        AGGREGATE_STAGE, DropReason.NO_VALID_BINS,
                        n=dead_count,
                        detail=f"{dead_count} probes contributed "
                        "no valid bin",
                    )
            obs.items_out(AGGREGATE_STAGE, len(present))
            return rows

    gathered: List[Tuple[int, Sequence[int], Optional[np.ndarray],
                         Optional[ASFailure]]] = []
    for asn, probe_ids in ordered_groups:
        quality = quality_for(asn)
        rows = None
        failure = None
        with obs.span("classify", asn=asn):
            attempts = 0
            while True:
                attempts += 1
                try:
                    rows = gather(probe_ids, quality)
                    break
                except TransientFaultError as exc:
                    if attempts < max_attempts:
                        continue
                    log.warning(
                        "as-failed", asn=asn,
                        error=type(exc).__name__, attempts=attempts,
                    )
                    failure = _build_failure(
                        asn, exc, attempts, quality
                    )
                    break
                except Exception as exc:  # noqa: BLE001 — isolation
                    log.warning(
                        "as-failed", asn=asn,
                        error=type(exc).__name__, attempts=attempts,
                    )
                    failure = _build_failure(
                        asn, exc, attempts, quality
                    )
                    break
        gathered.append((asn, probe_ids, rows, failure))

    survivors = [entry for entry in gathered if entry[3] is None]
    record_kernel_op(
        kern.name, "population-medians", len(survivors)
    )
    medians, contributing = kern.population_medians(
        delays, [rows for _, _, rows, _ in survivors]
    )
    signals = {}
    for group, (asn, _probe_ids, rows, _failure) in enumerate(
        survivors
    ):
        delay_ms = np.where(
            contributing[group] >= 1, medians[group], np.nan
        )
        signals[asn] = AggregatedSignal(
            grid=dataset.grid,
            delay_ms=delay_ms,
            probe_count=len(rows),
            contributing=contributing[group],
        )
    return [
        (asn, probe_ids, signals.get(asn), failure)
        for asn, probe_ids, _rows, failure in gathered
    ]


def classify_dataset(
    dataset: LastMileDataset,
    period: MeasurementPeriod,
    min_probes: int = 3,
    thresholds: ClassificationThresholds = DEFAULT_THRESHOLDS,
    table=None,
    keep_signals: bool = False,
    quality: Optional[DataQualityReport] = None,
    max_attempts: int = 2,
    workers: Optional[int] = None,
    cache=None,
    kernels=None,
) -> SurveyResult:
    """Classify every qualifying AS of one period's dataset.

    ``keep_signals`` retains each AS's aggregated signal on the
    result (needed by the per-AS drill-down export; costs one float64
    array per AS).

    Per-AS failures are *isolated*: an AS whose aggregation or
    classification raises is retried up to ``max_attempts`` times when
    the error is a :class:`TransientFaultError`, then recorded in
    ``result.failures`` (and on the quality ledger) while the survey
    continues — one poisoned AS yields a partial result with a failure
    log, never a crashed survey.

    An explicit ``workers`` (or a ``cache``) routes through the
    sharded executor (:func:`repro.parallel.classify_dataset_sharded`),
    which produces identical results for any worker count.  Unlike the
    scenario entry points, ``workers=None`` here always means the
    serial loop below — the environment knob is not consulted, so
    instrumentation-sensitive callers keep their span structure.

    ``kernels`` selects the analysis backend
    (:func:`repro.core.kernels.resolve_kernels`).  A batched backend
    (``vector``) routes through :func:`classify_asn_batch`; results
    are numerically identical either way by contract.
    """
    if workers is not None or cache is not None:
        from ..parallel import classify_dataset_sharded

        return classify_dataset_sharded(
            dataset, period, workers=workers or 1,
            min_probes=min_probes, thresholds=thresholds, table=table,
            keep_signals=keep_signals, quality=quality,
            max_attempts=max_attempts, cache=cache, kernels=kernels,
        )
    kern = resolve_kernels(kernels)
    obs = get_observer()
    log = obs.logger.bind(stage=STAGE, period=period.name)
    result = SurveyResult(
        period=period,
        quality=quality if quality is not None else DataQualityReport(),
    )
    quality = result.quality
    with obs.stage_span(
        "classify-dataset", period=period.name, kernel=kern.name
    ) as outer:
        groups = asns_with_min_probes(
            dataset.probe_meta, min_probes=min_probes, table=table,
            quality=quality,
        )
        obs.items_in(STAGE, len(groups))
        log.info("classify-start", ases=len(groups))
        if getattr(kern, "batched", False):
            outcomes = classify_asn_batch(
                dataset, list(groups.items()),
                thresholds=thresholds, max_attempts=max_attempts,
                keep_signals=keep_signals, kernels=kern,
                quality_for=lambda asn: quality, log=log,
            )
            for asn, report, failure, signal in outcomes:
                if failure is not None:
                    result.failures[asn] = failure
                    continue
                result.reports[asn] = report
                if keep_signals and signal is not None:
                    result.signals[asn] = signal
        else:
            for asn, probe_ids in groups.items():
                # One span per AS (aggregate/spectral nest under it)
                # so the renderer can collapse the fan-out into one
                # line.
                report, failure, signal = classify_single_asn(
                    dataset, asn, probe_ids,
                    thresholds=thresholds, quality=quality,
                    max_attempts=max_attempts,
                    keep_signal=keep_signals, log=log, kernels=kern,
                )
                if failure is not None:
                    result.failures[asn] = failure
                    continue
                result.reports[asn] = report
                if keep_signals and signal is not None:
                    result.signals[asn] = signal
        obs.items_out(STAGE, len(result.reports))
        outer.set_attr("reported", len(result.reported_asns()))
        outer.set_attr("failures", len(result.failures))
        _record_survey_metrics(obs, result)
        log.info(
            "classify-done",
            monitored=result.monitored_count,
            reported=len(result.reported_asns()),
            failures=len(result.failures),
        )
    return result


def _record_survey_metrics(obs, result: SurveyResult) -> None:
    """Mirror one period's outcome + quality ledger into the registry."""
    if not obs.enabled:
        return
    severity_counter = obs.counter(
        "survey_as_classified_total",
        "AS classifications per period and severity",
        ("period", "severity"),
    )
    for severity, count in result.severity_counts().items():
        if count:
            severity_counter.inc(
                count, period=result.period.name,
                severity=severity.value,
            )
    if result.failures:
        obs.counter(
            "survey_as_failures_total",
            "ASes the survey gave up on", ("period",),
        ).inc(len(result.failures), period=result.period.name)
    obs.record_quality(result.quality)


def _build_failure(
    asn: int,
    exc: Exception,
    attempts: int,
    quality: Optional[DataQualityReport],
) -> ASFailure:
    """An :class:`ASFailure` for one error, recorded on the ledger."""
    if quality is not None:
        quality.drop(
            STAGE, DropReason.AS_FAILURE,
            detail=f"AS{asn}: {type(exc).__name__}: {exc}",
        )
    return ASFailure(
        asn=asn,
        error=type(exc).__name__,
        message=str(exc),
        attempts=attempts,
    )


@dataclass
class SurveySuite:
    """Results across several measurement periods (§3 longitudinal)."""

    results: Dict[str, SurveyResult] = field(default_factory=dict)

    def add(self, result: SurveyResult) -> None:
        """Insert one period's result, keyed by period name."""
        self.results[result.period.name] = result

    def period_names(self) -> List[str]:
        """Period names in insertion order."""
        return list(self.results)

    def average_reported(self) -> float:
        """Mean number of reported ASes per period (§3.1: ~47)."""
        counts = [
            len(r.reported_asns()) for r in self.results.values()
        ]
        return float(np.mean(counts)) if counts else float("nan")

    def recurrent_asns(self, min_fraction: float = 0.5) -> List[int]:
        """ASes reported in at least ``min_fraction`` of the periods.

        The paper: 36 ASes reported for at least half the periods.
        """
        if not self.results:
            return []
        tally: Dict[int, int] = {}
        for result in self.results.values():
            for asn in result.reported_asns():
                tally[asn] = tally.get(asn, 0) + 1
        need = min_fraction * len(self.results)
        return sorted(a for a, n in tally.items() if n >= need)

    def churn_between(self, before: str, after: str) -> float:
        """Jaccard similarity of the reported-AS sets of two periods.

        §3.1: "We observe little churn over the two years" — high
        similarity between consecutive periods' reported sets.
        Periods missing from the suite (empty or single-period suites
        probing arbitrary names) yield NaN rather than raising, so
        longitudinal summaries degrade gracefully.
        """
        from .stats import churn_jaccard

        if before not in self.results or after not in self.results:
            return float("nan")
        return churn_jaccard(
            self.results[before].reported_asns(),
            self.results[after].reported_asns(),
        )

    def mean_consecutive_similarity(self) -> float:
        """Average Jaccard similarity between consecutive periods."""
        names = self.period_names()
        if len(names) < 2:
            return float("nan")
        values = [
            self.churn_between(a, b)
            for a, b in zip(names, names[1:])
        ]
        return float(np.mean(values))

    def ingest_into(self, archive, ranking=None) -> List[str]:
        """Commit every period into a :class:`repro.store.SurveyArchive`.

        The bridge from a fresh survey run to the durable longitudinal
        archive the serving layer (:mod:`repro.serve`) reads.
        ``ranking`` (an :class:`~repro.apnic.EyeballRanking`) populates
        the archive's country index.  Returns the committed period
        names.
        """
        return archive.ingest_suite(self, ranking=ranking)

    def reported_increase(
        self, before: str, after: str
    ) -> Tuple[int, int, float]:
        """(count_before, count_after, relative increase).

        The paper's COVID comparison: 45 → 70 ASes, +55 %.
        """
        count_before = len(self.results[before].reported_asns())
        count_after = len(self.results[after].reported_asns())
        if count_before == 0:
            return count_before, count_after, float("inf")
        increase = (count_after - count_before) / count_before
        return count_before, count_after, increase


def breakdown_by_rank(
    result: SurveyResult,
    ranking: EyeballRanking,
) -> Dict[str, Dict[Severity, int]]:
    """AS counts per (Fig. 4 rank bucket, severity)."""
    breakdown: Dict[str, Dict[Severity, int]] = {
        label: {severity: 0 for severity in Severity}
        for label, _range in RANK_BUCKETS
    }
    for asn, report in result.reports.items():
        rank = ranking.rank_of(asn)
        if rank is None:
            continue
        breakdown[bucket_for_rank(rank)][report.severity] += 1
    return breakdown


def breakdown_percentages(
    breakdown: Dict[str, Dict[Severity, int]]
) -> Dict[str, Dict[Severity, float]]:
    """Convert bucket counts to the percentages plotted in Fig. 4.

    Percentages are of *all classified ASes*, as the figure's y-axis.
    """
    total = sum(
        count for bucket in breakdown.values() for count in bucket.values()
    )
    if total == 0:
        return {
            label: {severity: 0.0 for severity in bucket}
            for label, bucket in breakdown.items()
        }
    return {
        label: {
            severity: 100.0 * count / total
            for severity, count in bucket.items()
        }
        for label, bucket in breakdown.items()
    }


def geographic_distribution(
    results: Sequence[SurveyResult],
    ranking: EyeballRanking,
    severity: Optional[Severity] = None,
) -> Dict[str, int]:
    """Reported-AS counts per country across periods (§3.2).

    With ``severity`` given, only that class is counted (the paper's
    Severe-report tally where Japan leads at 18 %).  Each (period, AS)
    report counts once, as in the paper's per-report accounting.
    """
    counts: Dict[str, int] = {}
    for result in results:
        for asn, report in result.reports.items():
            if severity is None:
                if not report.is_reported:
                    continue
            elif report.severity != severity:
                continue
            estimate = ranking.get(asn)
            if estimate is None:
                continue
            counts[estimate.country] = counts.get(estimate.country, 0) + 1
    return dict(sorted(counts.items(), key=lambda kv: -kv[1]))
