"""Delay–throughput correlation (paper §4.3).

The paper cross-references the 30-minute aggregated queueing-delay
signal with the 15-minute median throughput series and reports
Spearman's rank correlation (the relationship is clearly non-linear).
We align the two series by averaging throughput bins into delay bins,
drop bins where either side is missing, and compute ρ.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np
from scipy import stats

from .aggregate import AggregatedSignal
from .throughput import ThroughputSeries


@dataclass(frozen=True)
class CorrelationResult:
    """Spearman correlation between delay and throughput."""

    rho: float
    p_value: float
    n_bins: int
    #: Aligned samples, for scatter plots (Fig. 7).
    delay_ms: np.ndarray
    throughput_mbps: np.ndarray


def align_series(
    delay: AggregatedSignal, throughput: ThroughputSeries
) -> Tuple[np.ndarray, np.ndarray]:
    """Resample throughput onto the delay grid and mask joint gaps.

    The throughput grid must be an integer refinement of the delay
    grid (15-minute bins inside 30-minute bins in the paper).
    """
    delay_bin = delay.grid.bin_seconds
    tput_bin = throughput.grid.bin_seconds
    if delay_bin % tput_bin:
        raise ValueError(
            f"throughput bin {tput_bin}s does not divide delay bin "
            f"{delay_bin}s"
        )
    factor = delay_bin // tput_bin
    expected = delay.grid.num_bins * factor
    if throughput.grid.num_bins != expected:
        raise ValueError(
            f"grids cover different spans: {throughput.grid.num_bins} "
            f"throughput bins vs {expected} expected"
        )
    blocks = throughput.median_mbps.reshape(delay.grid.num_bins, factor)
    counts = np.sum(~np.isnan(blocks), axis=1)
    with np.errstate(invalid="ignore"):
        resampled = np.where(
            counts > 0, np.nansum(blocks, axis=1) / np.maximum(counts, 1),
            np.nan,
        )
    return delay.delay_ms, resampled


def spearman_delay_throughput(
    delay: AggregatedSignal,
    throughput: ThroughputSeries,
    min_bins: int = 10,
) -> CorrelationResult:
    """Spearman ρ between aggregated delay and median throughput."""
    delay_values, tput_values = align_series(delay, throughput)
    mask = ~np.isnan(delay_values) & ~np.isnan(tput_values)
    if mask.sum() < min_bins:
        raise ValueError(
            f"only {int(mask.sum())} joint bins, need {min_bins}"
        )
    d = delay_values[mask]
    t = tput_values[mask]
    if np.all(d == d[0]) or np.all(t == t[0]):
        # A constant series has undefined rank correlation; the paper's
        # "no correlation" case reports rho = 0.
        return CorrelationResult(0.0, 1.0, int(mask.sum()), d, t)
    rho, p_value = stats.spearmanr(d, t)
    return CorrelationResult(
        rho=float(rho),
        p_value=float(p_value),
        n_bins=int(mask.sum()),
        delay_ms=d,
        throughput_mbps=t,
    )
