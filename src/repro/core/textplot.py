"""Text rendering of time series — the 'human-friendly' output layer.

The environment (and many operator terminals) has no plotting stack;
these helpers render delay/throughput series as unicode sparklines and
block charts for the CLI, the examples and the bench reports.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

#: Eight-level block characters for sparklines.
SPARK_LEVELS = "▁▂▃▄▅▆▇█"
GAP_CHAR = "·"


def sparkline(
    values,
    maximum: Optional[float] = None,
    minimum: float = 0.0,
) -> str:
    """One-line sparkline of a series; NaNs render as '·'.

    Scale defaults to [0, max(values)] so congestion peaks stand out
    against the zero baseline the queueing-delay series are built on.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return ""
    finite = values[~np.isnan(values)]
    if maximum is None:
        maximum = float(finite.max()) if finite.size else 1.0
    if maximum <= minimum:
        maximum = minimum + 1.0
    span = maximum - minimum
    chars = []
    for value in values:
        if np.isnan(value):
            chars.append(GAP_CHAR)
            continue
        level = int(
            np.clip(
                (value - minimum) / span * len(SPARK_LEVELS),
                0, len(SPARK_LEVELS) - 1,
            )
        )
        chars.append(SPARK_LEVELS[level])
    return "".join(chars)


def downsample(values, width: int) -> np.ndarray:
    """Reduce a series to ``width`` points by block-median.

    NaN-only blocks stay NaN, so probe outages remain visible as gaps.
    """
    values = np.asarray(values, dtype=np.float64)
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    if values.size <= width:
        return values
    edges = np.linspace(0, values.size, width + 1).astype(int)
    out = np.full(width, np.nan)
    for i in range(width):
        block = values[edges[i]:edges[i + 1]]
        if np.any(~np.isnan(block)):
            out[i] = np.nanmedian(block)
    return out


def timeseries_panel(
    values,
    label: str = "",
    width: int = 72,
    unit: str = "ms",
) -> str:
    """Sparkline with a label and a min/max scale annotation."""
    values = np.asarray(values, dtype=np.float64)
    reduced = downsample(values, width)
    finite = values[~np.isnan(values)]
    low = float(finite.min()) if finite.size else float("nan")
    high = float(finite.max()) if finite.size else float("nan")
    spark = sparkline(reduced)
    prefix = f"{label:12s} " if label else ""
    return f"{prefix}{spark}  [{low:.2f}–{high:.2f} {unit}]"


def daily_panel(
    values,
    bins_per_day: int,
    label: str = "",
    unit: str = "ms",
) -> str:
    """One sparkline row per day (visualizing the diurnal pattern)."""
    values = np.asarray(values, dtype=np.float64)
    days = values.shape[0] // bins_per_day
    finite = values[~np.isnan(values)]
    maximum = float(finite.max()) if finite.size else 1.0
    lines = []
    if label:
        lines.append(f"{label} (rows = days, scale 0–{maximum:.2f} {unit})")
    for day in range(days):
        chunk = values[day * bins_per_day:(day + 1) * bins_per_day]
        lines.append(f"  day {day + 1:2d} {sparkline(chunk, maximum)}")
    return "\n".join(lines)


def horizontal_bars(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """Simple horizontal bar chart for category comparisons."""
    values = np.asarray(values, dtype=np.float64)
    if len(labels) != values.shape[0]:
        raise ValueError("labels and values length mismatch")
    maximum = float(np.nanmax(values)) if values.size else 1.0
    if maximum <= 0:
        maximum = 1.0
    label_width = max((len(l) for l in labels), default=0)
    lines = []
    for label, value in zip(labels, values):
        filled = int(np.clip(value / maximum * width, 0, width))
        bar = "█" * filled + "░" * (width - filled)
        suffix = f" {value:.2f}{(' ' + unit) if unit else ''}"
        lines.append(f"{label.ljust(label_width)} {bar}{suffix}")
    return "\n".join(lines)
