"""Shared series containers used across the pipeline.

These are the hand-off structures between stages: the Atlas substrate
(or the traceroute-parsing stage) produces per-probe binned medians;
the aggregation stage turns them into per-population queueing-delay
signals; the spectral stage classifies those signals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..timebase import TimeGrid


@dataclass
class ProbeBinSeries:
    """Per-bin last-mile RTT medians for one probe.

    ``median_rtt_ms`` holds NaN where no estimate exists;
    ``traceroute_counts`` holds how many traceroutes contributed to
    each bin, feeding the paper's >= 3-traceroutes sanity check.
    """

    prb_id: int
    median_rtt_ms: np.ndarray
    traceroute_counts: np.ndarray

    def __post_init__(self):
        self.median_rtt_ms = np.asarray(self.median_rtt_ms, dtype=np.float64)
        self.traceroute_counts = np.asarray(
            self.traceroute_counts, dtype=np.int64
        )
        if self.median_rtt_ms.shape != self.traceroute_counts.shape:
            raise ValueError(
                "median and count arrays must have the same shape"
            )

    @property
    def num_bins(self) -> int:
        """Number of bins in the series."""
        return self.median_rtt_ms.shape[0]

    def valid_mask(self, min_traceroutes: int = 3) -> np.ndarray:
        """Bins passing the paper's disconnected-probe sanity check."""
        return (self.traceroute_counts >= min_traceroutes) & ~np.isnan(
            self.median_rtt_ms
        )


@dataclass
class LastMileDataset:
    """Per-probe binned last-mile series over one measurement period."""

    grid: TimeGrid
    series: Dict[int, ProbeBinSeries] = field(default_factory=dict)
    probe_meta: Dict[int, object] = field(default_factory=dict)

    def add(self, series: ProbeBinSeries, meta: Optional[object] = None):
        """Insert one probe's series (and optionally its metadata)."""
        if series.num_bins != self.grid.num_bins:
            raise ValueError(
                f"series has {series.num_bins} bins, grid expects "
                f"{self.grid.num_bins}"
            )
        self.series[series.prb_id] = series
        if meta is not None:
            self.probe_meta[series.prb_id] = meta

    def probe_ids(self) -> List[int]:
        """Sorted probe ids present."""
        return sorted(self.series)

    def __len__(self) -> int:
        return len(self.series)
