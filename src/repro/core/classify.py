"""Severity classification of aggregated delay signals (paper §2.3).

Categories, from the paper:

* **Severe** — prominent daily pattern, amplitude > 3 ms.
* **Mild** — prominent daily pattern, amplitude > 1 ms.
* **Low** — prominent daily pattern, amplitude > 0.5 ms.
* **None** — no prominent daily pattern, or amplitude ≤ 0.5 ms.

The 0.5 ms floor focuses the survey on the distribution tail; 1 ms and
3 ms balance the class sizes (Fig. 4).  All thresholds are parameters
so the ablation benchmark can sweep them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

import numpy as np

from .spectral import SpectralMarkers, extract_markers


class Severity(enum.Enum):
    """Congestion class of one (AS, period) signal."""

    NONE = "none"
    LOW = "low"
    MILD = "mild"
    SEVERE = "severe"

    @property
    def is_reported(self) -> bool:
        """True for the classes the paper counts as congested."""
        return self is not Severity.NONE

    def __lt__(self, other: "Severity") -> bool:
        order = [Severity.NONE, Severity.LOW, Severity.MILD,
                 Severity.SEVERE]
        return order.index(self) < order.index(other)


@dataclass(frozen=True)
class ClassificationThresholds:
    """The three amplitude cut-offs (ms)."""

    low_ms: float = 0.5
    mild_ms: float = 1.0
    severe_ms: float = 3.0

    def __post_init__(self):
        if not 0 < self.low_ms <= self.mild_ms <= self.severe_ms:
            raise ValueError(
                f"thresholds must be ordered: {self.low_ms}, "
                f"{self.mild_ms}, {self.severe_ms}"
            )


DEFAULT_THRESHOLDS = ClassificationThresholds()


@dataclass(frozen=True)
class Classification:
    """Classification outcome plus the markers that produced it."""

    severity: Severity
    markers: Optional[SpectralMarkers]

    @property
    def daily_amplitude_ms(self) -> float:
        """Daily-component amplitude, 0 for degenerate signals."""
        return self.markers.daily_amplitude_ms if self.markers else 0.0


def classify_markers(
    markers: Optional[SpectralMarkers],
    thresholds: ClassificationThresholds = DEFAULT_THRESHOLDS,
) -> Classification:
    """Apply the §2.3 decision rule to extracted spectral markers."""
    if markers is None or not markers.daily_is_prominent:
        return Classification(Severity.NONE, markers)
    amplitude = markers.daily_amplitude_ms
    if amplitude > thresholds.severe_ms:
        severity = Severity.SEVERE
    elif amplitude > thresholds.mild_ms:
        severity = Severity.MILD
    elif amplitude > thresholds.low_ms:
        severity = Severity.LOW
    else:
        severity = Severity.NONE
    return Classification(severity, markers)


def classify_signal(
    values: np.ndarray,
    bin_seconds: int,
    thresholds: ClassificationThresholds = DEFAULT_THRESHOLDS,
) -> Classification:
    """End-to-end: delay signal → markers → severity."""
    markers = extract_markers(values, bin_seconds)
    return classify_markers(markers, thresholds)
