"""High-level facade: one call from dataset to verdict.

Downstream users who just want the paper's answer for one AS —
"is this network persistently congested, how badly, how sure are we" —
shouldn't have to wire five stages together.  :func:`analyze_asn`
does aggregation, spectral extraction, classification and (optionally)
a probe-bootstrap confidence interval in one call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from .aggregate import AggregatedSignal, aggregate_population
from .classify import (
    Classification,
    ClassificationThresholds,
    DEFAULT_THRESHOLDS,
    Severity,
    classify_markers,
)
from .filtering import probes_in_asn
from .series import LastMileDataset
from .spectral import extract_markers
from .stats import BootstrapEstimate, bootstrap_daily_amplitude
from .textplot import daily_panel


@dataclass
class ASAnalysis:
    """Everything the pipeline concludes about one AS."""

    asn: int
    signal: AggregatedSignal
    classification: Classification
    amplitude_ci: Optional[BootstrapEstimate] = None

    @property
    def severity(self) -> Severity:
        """The §2.3 class."""
        return self.classification.severity

    @property
    def is_congested(self) -> bool:
        """True when the AS counts as reported (non-None class)."""
        return self.severity.is_reported

    def summary(self) -> str:
        """Multi-line human-readable verdict."""
        lines = [
            f"AS{self.asn}: {self.severity.value.upper()} "
            f"({self.signal.probe_count} probes, "
            f"max aggregated delay {self.signal.max_delay_ms:.2f} ms)",
        ]
        markers = self.classification.markers
        if markers is not None:
            lines.append(
                f"  daily amplitude {markers.daily_amplitude_ms:.2f} ms"
                + (f"  CI {self.amplitude_ci}" if self.amplitude_ci
                   else "")
            )
        lines.append(daily_panel(
            self.signal.delay_ms,
            bins_per_day=self.signal.grid.bins_per_day,
        ))
        return "\n".join(lines)


def analyze_asn(
    dataset: LastMileDataset,
    asn: Optional[int] = None,
    probe_ids: Optional[Sequence[int]] = None,
    table=None,
    thresholds: ClassificationThresholds = DEFAULT_THRESHOLDS,
    with_confidence: bool = False,
    bootstrap_replicates: int = 100,
    rng: Optional[np.random.Generator] = None,
) -> ASAnalysis:
    """Run the full §2 pipeline for one AS (or an explicit probe set).

    Select probes either by ``asn`` (resolved from probe metadata,
    by longest-prefix match when a RIB ``table`` is given) or by an
    explicit ``probe_ids`` list.  ``with_confidence`` adds a
    probe-bootstrap CI on the daily amplitude.
    """
    if probe_ids is None:
        if asn is None:
            raise ValueError("need either asn or probe_ids")
        probe_ids = probes_in_asn(dataset.probe_meta, asn, table=table)
        if not probe_ids:
            raise ValueError(f"no probes resolve to AS{asn}")
    if asn is None:
        asn = -1

    signal = aggregate_population(dataset, probe_ids)
    markers = extract_markers(signal.delay_ms, dataset.grid.bin_seconds)
    classification = classify_markers(markers, thresholds)

    amplitude_ci = None
    if with_confidence and len(probe_ids) >= 2:
        amplitude_ci = bootstrap_daily_amplitude(
            dataset, probe_ids,
            replicates=bootstrap_replicates,
            rng=rng if rng is not None else np.random.default_rng(0),
        )
    return ASAnalysis(
        asn=asn,
        signal=signal,
        classification=classification,
        amplitude_ci=amplitude_ci,
    )
