"""Alternative persistent-congestion detectors and their evaluation.

The paper chose Welch-periodogram prominence plus amplitude thresholds
(§2.3).  Because the simulator knows ground truth (which ASes were
built congested), we can score that choice against alternatives:

* :class:`WelchDetector` — the paper's method.
* :class:`AutocorrelationDetector` — flag when the autocorrelation at
  the daily lag is strong and the daily swing is material.
* :class:`RangeDetector` — naive peak-to-peak range threshold, no
  periodicity requirement (what a simple alerting rule would do).
* :class:`HourOfDayVarianceDetector` — ANOVA-style: variance of the
  hour-of-day means against the residual variance.

Each detector returns a score (higher = more congested-looking) and a
boolean decision; :func:`evaluate_detectors` computes
precision/recall/F1 on a labeled set of signals.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..timebase import SECONDS_PER_DAY
from .classify import ClassificationThresholds, DEFAULT_THRESHOLDS
from .spectral import extract_markers, fill_gaps


@dataclass(frozen=True)
class Detection:
    """One detector's verdict on one signal."""

    reported: bool
    score: float


class WelchDetector:
    """The paper's §2.3 rule: daily prominence + amplitude threshold."""

    name = "welch (paper)"

    def __init__(
        self,
        thresholds: ClassificationThresholds = DEFAULT_THRESHOLDS,
    ):
        self.thresholds = thresholds

    def detect(self, values: np.ndarray, bin_seconds: int) -> Detection:
        markers = extract_markers(values, bin_seconds)
        if markers is None:
            return Detection(False, 0.0)
        score = markers.daily_amplitude_ms
        reported = (
            markers.daily_is_prominent
            and score > self.thresholds.low_ms
        )
        return Detection(reported, float(score))


class AutocorrelationDetector:
    """Daily-lag autocorrelation plus a swing requirement.

    ACF at lag = 1 day detects daily periodicity like the Welch
    prominence does; the amplitude gate reuses the paper's 0.5 ms
    floor on the median daily swing.
    """

    name = "autocorrelation"

    def __init__(self, acf_threshold: float = 0.3,
                 swing_threshold_ms: float = 0.5):
        self.acf_threshold = acf_threshold
        self.swing_threshold_ms = swing_threshold_ms

    def detect(self, values: np.ndarray, bin_seconds: int) -> Detection:
        filled = fill_gaps(np.asarray(values, dtype=np.float64))
        lag = SECONDS_PER_DAY // bin_seconds
        if filled.shape[0] < 2 * lag or np.allclose(filled, filled[0]):
            return Detection(False, 0.0)
        centered = filled - filled.mean()
        denominator = float(np.dot(centered, centered))
        if denominator <= 0:
            return Detection(False, 0.0)
        acf = float(
            np.dot(centered[:-lag], centered[lag:]) / denominator
        )
        swing = _median_daily_swing(filled, lag)
        reported = (
            acf > self.acf_threshold
            and swing > self.swing_threshold_ms
        )
        return Detection(reported, acf * swing)


class RangeDetector:
    """Naive: report when the signal's p95-p5 range exceeds a bound.

    No periodicity requirement — transient events and trends produce
    false positives, which is exactly why the paper requires the daily
    signature.
    """

    name = "range"

    def __init__(self, range_threshold_ms: float = 1.0):
        self.range_threshold_ms = range_threshold_ms

    def detect(self, values: np.ndarray, bin_seconds: int) -> Detection:
        finite = np.asarray(values, dtype=np.float64)
        finite = finite[~np.isnan(finite)]
        if finite.size < 10:
            return Detection(False, 0.0)
        spread = float(
            np.percentile(finite, 95) - np.percentile(finite, 5)
        )
        return Detection(spread > self.range_threshold_ms, spread)


class HourOfDayVarianceDetector:
    """ANOVA-style: do hour-of-day means explain the variance?

    Computes the ratio of between-hour variance to total variance
    (eta-squared) and gates on it plus the daily swing of the
    hour-of-day profile.
    """

    name = "hour-of-day variance"

    def __init__(self, eta_threshold: float = 0.3,
                 swing_threshold_ms: float = 0.5):
        self.eta_threshold = eta_threshold
        self.swing_threshold_ms = swing_threshold_ms

    def detect(self, values: np.ndarray, bin_seconds: int) -> Detection:
        filled = fill_gaps(np.asarray(values, dtype=np.float64))
        per_day = SECONDS_PER_DAY // bin_seconds
        days = filled.shape[0] // per_day
        if days < 2 or np.allclose(filled, filled[0]):
            return Detection(False, 0.0)
        matrix = filled[: days * per_day].reshape(days, per_day)
        slot_means = matrix.mean(axis=0)
        total_var = float(matrix.var())
        if total_var <= 0:
            return Detection(False, 0.0)
        between_var = float(slot_means.var())
        eta = between_var / total_var
        swing = float(slot_means.max() - slot_means.min())
        reported = (
            eta > self.eta_threshold
            and swing > self.swing_threshold_ms
        )
        return Detection(reported, eta * swing)


def _median_daily_swing(values: np.ndarray, per_day: int) -> float:
    days = values.shape[0] // per_day
    if days == 0:
        return 0.0
    matrix = values[: days * per_day].reshape(days, per_day)
    return float(np.median(matrix.max(axis=1) - matrix.min(axis=1)))


DEFAULT_DETECTORS: Tuple = (
    WelchDetector,
    AutocorrelationDetector,
    RangeDetector,
    HourOfDayVarianceDetector,
)


@dataclass
class DetectorScore:
    """Precision/recall of one detector over a labeled signal set."""

    name: str
    true_positives: int
    false_positives: int
    false_negatives: int
    true_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        return (
            self.true_positives / denominator if denominator
            else float("nan")
        )

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        return (
            self.true_positives / denominator if denominator
            else float("nan")
        )

    @property
    def f1(self) -> float:
        p, r = self.precision, self.recall
        if not np.isfinite(p) or not np.isfinite(r) or (p + r) == 0:
            return float("nan")
        return 2 * p * r / (p + r)


def evaluate_detectors(
    signals: Sequence[np.ndarray],
    labels: Sequence[bool],
    bin_seconds: int,
    detectors: Optional[Sequence] = None,
) -> Dict[str, DetectorScore]:
    """Score each detector against ground-truth labels.

    ``detectors`` holds detector *instances*; defaults to one of each
    built-in with standard parameters.
    """
    if len(signals) != len(labels):
        raise ValueError("signals and labels length mismatch")
    if detectors is None:
        detectors = [cls() for cls in DEFAULT_DETECTORS]

    scores: Dict[str, DetectorScore] = {}
    for detector in detectors:
        tp = fp = fn = tn = 0
        for signal, label in zip(signals, labels):
            reported = detector.detect(signal, bin_seconds).reported
            if reported and label:
                tp += 1
            elif reported and not label:
                fp += 1
            elif not reported and label:
                fn += 1
            else:
                tn += 1
        scores[detector.name] = DetectorScore(
            name=detector.name,
            true_positives=tp,
            false_positives=fp,
            false_negatives=fn,
            true_negatives=tn,
        )
    return scores
