"""Queueing-delay derivation and population aggregation (paper §2.1).

From per-probe binned last-mile medians:

* per-probe queueing delay = median RTT series minus the *minimum*
  median over the period (the propagation-delay baseline, recomputed
  per period to absorb deployment changes);
* population (AS or AS+geo) aggregated queueing delay = the median
  across probes at each bin.

Median aggregation is what makes the signal robust: a minority of
congested (or broken) probes cannot move it — only majority-wide,
long-lasting congestion shows up, which is the paper's stated design.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

import numpy as np

from ..netbase.errors import EmptyPopulationError
from ..obs import get_observer
from ..quality import DataQualityReport, DropReason
from ..timebase import TimeGrid
from .kernels import record_kernel_op, resolve_kernels
from .lastmile import MIN_TRACEROUTES_PER_BIN
from .series import LastMileDataset, ProbeBinSeries

STAGE = "core-aggregate"


@dataclass
class AggregatedSignal:
    """Population-level queueing delay over one measurement period."""

    grid: TimeGrid
    delay_ms: np.ndarray            # per-bin aggregated queueing delay
    probe_count: int                # probes contributing to the signal
    contributing: np.ndarray        # per-bin number of valid probes

    def __post_init__(self):
        self.delay_ms = np.asarray(self.delay_ms, dtype=np.float64)
        self.contributing = np.asarray(self.contributing, dtype=np.int64)
        if self.delay_ms.shape[0] != self.grid.num_bins:
            raise ValueError("signal length does not match grid")

    @property
    def max_delay_ms(self) -> float:
        """Maximum aggregated queueing delay over the period.

        NaN (not an exception) when every bin is invalid — an AS can
        survey successfully yet yield no valid aggregate bin at all,
        and reporting must still render such a page.
        """
        if np.all(np.isnan(self.delay_ms)):
            return float("nan")
        return float(np.nanmax(self.delay_ms))

    def daily_max_ms(self) -> np.ndarray:
        """Per-day maximum delay (the markers of the paper's Fig. 5).

        Days where every bin is invalid yield NaN.
        """
        per_day = self.grid.bins_per_day
        days = self.grid.num_bins // per_day
        daily = self.delay_ms[: days * per_day].reshape(days, per_day)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            return np.nanmax(daily, axis=1)


def probe_queuing_delay(
    series: ProbeBinSeries,
    min_traceroutes: int = MIN_TRACEROUTES_PER_BIN,
) -> np.ndarray:
    """Per-probe queueing delay: medians minus the period minimum.

    Invalid bins (too few traceroutes / no estimate) are NaN.  If no
    valid bin exists the whole series is NaN.
    """
    valid = series.valid_mask(min_traceroutes)
    delays = np.where(valid, series.median_rtt_ms, np.nan)
    if not valid.any():
        return delays
    return delays - np.nanmin(delays)


def aggregate_population(
    dataset: LastMileDataset,
    probe_ids: Optional[Sequence[int]] = None,
    min_traceroutes: int = MIN_TRACEROUTES_PER_BIN,
    min_probes_per_bin: int = 1,
    quality: Optional[DataQualityReport] = None,
    kernels=None,
) -> AggregatedSignal:
    """Median queueing delay across a probe population, per bin.

    ``probe_ids`` defaults to every probe in the dataset.  Bins where
    fewer than ``min_probes_per_bin`` probes have a valid estimate are
    NaN.  Raises :class:`EmptyPopulationError` (a ``ValueError``) when
    no requested probe has a series — callers with failure isolation
    (the survey) catch it and quarantine the population.  Probes that
    contribute no valid bin at all are noted on ``quality``.
    ``kernels`` selects how the queueing-delay rows are stacked
    (:func:`repro.core.kernels.resolve_kernels`); backends are
    numerically identical by contract.
    """
    if probe_ids is None:
        probe_ids = dataset.probe_ids()
    requested = list(probe_ids)
    kern = resolve_kernels(kernels)
    obs = get_observer()
    with obs.stage_span(
        "aggregate", probes=len(requested), kernel=kern.name
    ):
        probe_ids = [p for p in requested if p in dataset.series]
        obs.items_in(STAGE, len(requested))
        if quality is not None:
            quality.ingest(STAGE, n=len(requested))
            missing = len(requested) - len(probe_ids)
            if missing:
                quality.drop(
                    STAGE, DropReason.NO_VALID_BINS, n=missing,
                    detail=(
                        f"{missing} probes have metadata but no series"
                    ),
                )
        if not probe_ids:
            raise EmptyPopulationError(
                f"no probes to aggregate (requested {len(requested)})"
            )

        record_kernel_op(kern.name, "stack-delays")
        stacked = kern.stack_probe_delays(
            dataset, probe_ids, min_traceroutes
        )
        if quality is not None:
            dead = int(np.sum(np.all(np.isnan(stacked), axis=1)))
            if dead:
                quality.degrade(
                    STAGE, DropReason.NO_VALID_BINS, n=dead,
                    detail=f"{dead} probes contributed no valid bin",
                )
        contributing = np.sum(~np.isnan(stacked), axis=0)
        with warnings.catch_warnings():
            # All-NaN bins (every probe invalid) legitimately yield NaN.
            warnings.simplefilter("ignore", RuntimeWarning)
            medians = np.nanmedian(stacked, axis=0)
        medians = np.where(
            contributing >= min_probes_per_bin, medians, np.nan
        )
        obs.items_out(STAGE, len(probe_ids))
        return AggregatedSignal(
            grid=dataset.grid,
            delay_ms=medians,
            probe_count=len(probe_ids),
            contributing=contributing,
        )


def probes_with_daily_delay_over(
    dataset: LastMileDataset,
    probe_ids: Sequence[int],
    threshold_ms: float,
    min_days_fraction: float = 0.5,
) -> List[int]:
    """Probes whose own queueing delay exceeds a threshold daily.

    Used for the paper's §2.2 observation that the share of ISP_US
    probes with daily delay over 5 ms tripled in April 2020.  A probe
    qualifies when, on at least ``min_days_fraction`` of its observed
    days, its daily maximum queueing delay exceeds ``threshold_ms``.
    """
    grid = dataset.grid
    per_day = grid.bins_per_day
    days = grid.num_bins // per_day
    qualifying = []
    for prb_id in probe_ids:
        series = dataset.series.get(prb_id)
        if series is None:
            continue
        delays = probe_queuing_delay(series)[: days * per_day]
        daily = delays.reshape(days, per_day)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            daily_max = np.nanmax(daily, axis=1)
        observed = ~np.isnan(daily_max)
        if not observed.any():
            continue
        exceeded = np.sum(daily_max[observed] > threshold_ms)
        if exceeded / observed.sum() >= min_days_fraction:
            qualifying.append(prb_id)
    return qualifying
