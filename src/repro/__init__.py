"""repro — reproduction of *Persistent Last-mile Congestion: Not so
Uncommon* (Fontugne, Shah, Cho; ACM IMC 2020).

The package is layered (see DESIGN.md):

* substrates — :mod:`repro.netbase`, :mod:`repro.bgp`,
  :mod:`repro.topology`, :mod:`repro.traffic`, :mod:`repro.queueing`,
  :mod:`repro.atlas`, :mod:`repro.cdn`, :mod:`repro.apnic`;
* the paper's methodology — :mod:`repro.core`;
* configured experiment worlds — :mod:`repro.scenarios`.

Typical use::

    from repro.scenarios import build_tokyo_case_study
    from repro.core import aggregate_population, classify_signal

    study = build_tokyo_case_study()
    dataset = study.dataset_for("ISP_A")
    signal = aggregate_population(dataset)
    result = classify_signal(signal.delay_ms, dataset.grid.bin_seconds)
"""

__version__ = "1.0.0"

from . import (  # noqa: F401
    apnic,
    atlas,
    bgp,
    cdn,
    core,
    faults,
    io,
    loadgen,
    netbase,
    obs,
    parallel,
    quality,
    queueing,
    raclette,
    scenarios,
    serve,
    store,
    timebase,
    topology,
    traffic,
)

__all__ = [
    "__version__",
    "netbase",
    "bgp",
    "topology",
    "traffic",
    "queueing",
    "atlas",
    "cdn",
    "apnic",
    "core",
    "scenarios",
    "timebase",
    "io",
    "raclette",
    "quality",
    "obs",
    "faults",
    "parallel",
    "store",
    "serve",
    "loadgen",
]
