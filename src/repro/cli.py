"""Top-level command-line interface.

``python -m repro <command>``:

* ``survey``   — run the §3 world survey and export the site bundle;
* ``tokyo``    — run the §4 Tokyo case study and print Fig. 5–9 digests;
* ``simulate`` — generate an Atlas-schema traceroute campaign to JSONL;
* ``classify`` — classify a saved last-mile dataset per AS;
* ``stream``   — run a survey period incrementally: records append
  one at a time (from a saved dataset or the simulator), bins
  finalize as they close, and ``--checkpoint-every`` commits partial
  periods into a live archive period that ``serve`` exposes;
* ``inject``   — corrupt a traceroute JSONL with seeded fault injectors;
* ``quality``  — leniently load a traceroute JSONL and print its
  data-quality report;
* ``obs``      — render a saved observability report (trace tree,
  metrics, profile);
* ``store``    — manage the longitudinal survey archive
  (``ingest`` / ``compact`` / ``query`` / ``fsck``);
* ``serve``    — serve an archive over HTTP (the paper's public
  lookup site) with bounded concurrency, per-request deadlines and
  per-period circuit breakers; SIGTERM/SIGINT drain in-flight
  requests before exit; ``--access-log`` appends a structured JSONL
  access log flushed on graceful shutdown, and ``/v1/metrics``
  exposes the live RED metrics (Prometheus text or JSON);
* ``loadtest`` — closed-loop load generator against an archive
  (ephemeral server) or a running ``--url``; reports sustained
  req/s and p50/p95/p99 latency, optionally updating the committed
  ``BENCH_serving.json`` baseline;
* ``anomaly``  — pinpoint per-link delay and forwarding anomalies
  from differential RTTs with Wilson confidence bands
  (:mod:`repro.anomaly`); ``--archive`` commits the report into a
  committed period, ``--reference-periods`` judges against history;
* ``info``     — version and layout.

``survey`` and ``classify`` accept ``--kernels reference|vector`` to
select the analysis backend (both produce identical output; see
``repro.core.kernels``).

``survey`` and ``inject`` accept ``--trace`` (print the span tree) and
``--metrics-out PATH`` (write the full observability report as JSON,
rendered later with ``repro obs report PATH``).

The streaming monitor has its own entry point
(``python -m repro.raclette``).
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path
from typing import List, Optional

import numpy as np


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Persistent last-mile congestion reproduction.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    survey = sub.add_parser(
        "survey", help="run the world survey (§3) and export results"
    )
    survey.add_argument("--ases", type=int, default=150)
    survey.add_argument("--countries", type=int, default=40)
    survey.add_argument("--periods", type=int, default=2,
                        help="longitudinal periods to run (max 6)")
    survey.add_argument("--covid", action="store_true",
                        help="also run the 2020-04 lockdown period")
    survey.add_argument("--seed", type=int, default=101)
    survey.add_argument(
        "--full", action="store_true",
        help="paper scale: 646 ASes, 98 countries, all 6 periods + "
        "the 2020-04 lockdown window",
    )
    survey.add_argument("--out", default="survey-out",
                        help="directory for the exported site bundle")
    survey.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="shard the survey across N worker processes (0 = one "
        "per CPU; default: serial, or $REPRO_WORKERS if set)",
    )
    survey.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed per-AS result cache directory; "
        "re-runs recompute only invalidated ASes",
    )
    survey.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir (neither read nor write entries)",
    )
    _add_kernels_flag(survey)
    survey.add_argument(
        "--archive", default=None, metavar="DIR",
        help="also commit every period into the longitudinal survey "
        "archive at DIR (servable with `repro serve DIR`)",
    )
    _add_obs_flags(survey)

    tokyo = sub.add_parser(
        "tokyo", help="run the Tokyo case study (§4) and print digests"
    )
    tokyo.add_argument("--client-scale", type=float, default=0.3)
    tokyo.add_argument("--seed", type=int, default=42)
    tokyo.add_argument("--save-lastmile", default=None,
                       help="base path to save the per-ISP datasets")

    simulate = sub.add_parser(
        "simulate",
        help="generate an Atlas-schema traceroute campaign (JSONL)",
    )
    simulate.add_argument("out", help="output JSONL path")
    simulate.add_argument("--probes", type=int, default=4)
    simulate.add_argument("--days", type=int, default=2)
    simulate.add_argument("--peak-utilization", type=float, default=0.95)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--rib-out", default=None,
                          help="also write the world's RIB dump here")

    classify = sub.add_parser(
        "classify",
        help="classify a saved last-mile dataset per AS",
    )
    classify.add_argument(
        "dataset", help="base path of a dataset written by "
        "repro.io.save_lastmile",
    )
    classify.add_argument("--min-probes", type=int, default=3)
    _add_kernels_flag(classify)

    stream = sub.add_parser(
        "stream",
        help="run a survey period incrementally: records append one "
        "at a time, bins finalize as they close, partial results "
        "checkpoint into a live archive period",
    )
    stream.add_argument(
        "--dataset", default=None, metavar="BASE",
        help="replay a dataset written by repro.io.save_lastmile; "
        "without it, the simulator generates the feed",
    )
    stream.add_argument(
        "--period", default=None, metavar="NAME",
        help="simulator period name (default: the latest "
        "longitudinal period; ignored with --dataset)",
    )
    stream.add_argument("--ases", type=int, default=10,
                        help="simulator AS count")
    stream.add_argument("--countries", type=int, default=6,
                        help="simulator country count")
    stream.add_argument("--seed", type=int, default=101,
                        help="simulator seed")
    stream.add_argument("--min-probes", type=int, default=3)
    stream.add_argument(
        "--batch-size", type=int, default=1000, metavar="N",
        help="micro-batch size for ingestion",
    )
    stream.add_argument(
        "--checkpoint-every", type=int, default=0, metavar="RECORDS",
        help="re-classify (and with --archive, durably commit a "
        "partial period) every RECORDS records; 0 = only at the end",
    )
    stream.add_argument(
        "--emit-partial", action="store_true",
        help="print the partial survey headline at each checkpoint",
    )
    stream.add_argument(
        "--archive", default=None, metavar="DIR",
        help="commit checkpoints into a live archive period at DIR "
        "and finalize it when the stream ends",
    )
    stream.add_argument(
        "--approximate", action="store_true",
        help="use the constant-memory P² median for open bins "
        "instead of exact buffered medians (results approximate)",
    )
    _add_kernels_flag(stream)
    _add_obs_flags(stream)

    inject = sub.add_parser(
        "inject",
        help="corrupt an Atlas-schema traceroute JSONL with seeded "
        "fault injectors",
    )
    inject.add_argument("src", help="input JSONL path")
    inject.add_argument("out", help="output (corrupted) JSONL path")
    inject.add_argument("--seed", type=int, default=0)
    inject.add_argument("--missing-replies", type=float, default=0.02,
                        help="per-reply rate of '*' timeouts")
    inject.add_argument("--truncate", type=float, default=0.02,
                        help="per-record rate of hop-list truncation")
    inject.add_argument("--rate-limit", type=float, default=0.02,
                        help="per-record rate of silenced private hops")
    inject.add_argument("--garbage-rtt", type=float, default=0.01,
                        help="per-reply rate of garbage RTT values")
    inject.add_argument("--duplicates", type=float, default=0.01,
                        help="per-record duplication rate")
    inject.add_argument("--reorder", type=float, default=0.02,
                        help="per-record out-of-order displacement rate")
    inject.add_argument("--clock-skew", type=float, default=0.0,
                        help="per-probe clock-skew rate")
    inject.add_argument("--churn", type=float, default=0.0,
                        help="per-probe churn-burst rate")
    inject.add_argument("--drop", type=float, default=0.02,
                        help="uniform record-loss rate")
    inject.add_argument("--corrupt-lines", type=float, default=0.01,
                        help="per-line JSONL corruption rate")
    _add_obs_flags(inject)

    obs = sub.add_parser(
        "obs",
        help="observability utilities (trace/metrics report rendering)",
    )
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="render a report written by --metrics-out",
    )
    obs_report.add_argument(
        "path", nargs="?", default="metrics.json",
        help="report JSON path (default: metrics.json)",
    )
    obs_report.add_argument(
        "--prometheus", action="store_true",
        help="emit the metrics in Prometheus text format instead",
    )
    obs_report.add_argument(
        "--diff", nargs=2, default=None,
        metavar=("BEFORE", "AFTER"),
        help="print counter deltas between two reports instead of "
        "rendering one",
    )

    store = sub.add_parser(
        "store",
        help="manage the longitudinal survey archive",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_ingest = store_sub.add_parser(
        "ingest",
        help="commit exported survey JSON (suite or single period) "
        "into an archive",
    )
    store_ingest.add_argument("archive", help="archive directory")
    store_ingest.add_argument(
        "sources", nargs="+",
        help="survey JSON files: a suite (surveys.json from the site "
        "export) or a single survey_to_dict document",
    )
    store_compact = store_sub.add_parser(
        "compact",
        help="fold committed period JSON into packed segments",
    )
    store_compact.add_argument("archive", help="archive directory")
    store_compact.add_argument(
        "--keep-json", action="store_true",
        help="keep the period JSON documents next to the segments",
    )
    store_query = store_sub.add_parser(
        "query",
        help="query an archive (point lookups, indexes, longitudinal)",
    )
    store_query.add_argument("archive", help="archive directory")
    store_query.add_argument(
        "--asn", type=int, default=None,
        help="point lookup: one AS's report (latest period unless "
        "--period)",
    )
    store_query.add_argument(
        "--period", default=None,
        help="period name for --asn/--severity/--country lookups",
    )
    store_query.add_argument(
        "--history", action="store_true",
        help="with --asn: the AS's per-period history",
    )
    store_query.add_argument(
        "--severity", default=None, metavar="CLASS",
        help="list ASNs of one severity class (requires --period)",
    )
    store_query.add_argument(
        "--country", default=None, metavar="CC",
        help="list ASNs hosted in a country (requires --period)",
    )
    store_query.add_argument(
        "--deltas", action="store_true",
        help="churn between consecutive periods (new/gone/persisting)",
    )
    store_query.add_argument(
        "--verify", action="store_true",
        help="re-checksum every committed period and report",
    )
    store_fsck = store_sub.add_parser(
        "fsck",
        help="audit archive integrity (checksums, cross-references, "
        "leftovers); exit 0 clean, 1 errors, 2 repaired, 3 unusable",
    )
    store_fsck.add_argument("archive", help="archive directory")
    store_fsck.add_argument(
        "--repair", action="store_true",
        help="quarantine corrupt periods, rebuild indexes, sweep "
        "stale temp files (read-only without this flag)",
    )
    store_fsck.add_argument(
        "--json", action="store_true",
        help="emit the full report as JSON instead of a summary",
    )

    serve = sub.add_parser(
        "serve",
        help="serve a survey archive over HTTP",
    )
    serve.add_argument("archive", help="archive directory")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="TCP port (0 = ephemeral)")
    serve.add_argument(
        "--cache-size", type=int, default=512,
        help="hot-object cache capacity (rendered responses)",
    )
    serve.add_argument(
        "--max-concurrency", type=int, default=64, metavar="N",
        help="in-flight request ceiling; excess requests are shed "
        "with 503 + Retry-After",
    )
    serve.add_argument(
        "--deadline", type=float, default=10.0, metavar="SECONDS",
        help="per-request time budget (503 on expiry)",
    )
    serve.add_argument(
        "--breaker-threshold", type=int, default=3, metavar="N",
        help="consecutive read failures that trip a period's "
        "circuit breaker",
    )
    serve.add_argument(
        "--breaker-cooldown", type=float, default=30.0,
        metavar="SECONDS",
        help="how long a tripped breaker stays open before a probe",
    )
    serve.add_argument(
        "--retry-after", type=float, default=1.0, metavar="SECONDS",
        help="Retry-After hint attached to every 503",
    )
    serve.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="append one JSON object per finished request to PATH "
        "(request id, route, status, duration, outcome); flushed on "
        "graceful shutdown",
    )
    serve.add_argument(
        "--no-mmap", action="store_true",
        help="read packed segments via seek+read file handles "
        "instead of memory-mapping them (REPRO_STORE_MMAP=0)",
    )
    _add_obs_flags(serve)

    loadtest = sub.add_parser(
        "loadtest",
        help="drive a closed-loop load test against an archive "
        "(ephemeral in-process server) or a running base URL",
    )
    loadtest.add_argument(
        "archive", nargs="?", default=None,
        help="archive directory to serve and load (omit with --url)",
    )
    loadtest.add_argument(
        "--url", default=None, metavar="BASE_URL",
        help="target an already-running server instead of spinning "
        "up an ephemeral one",
    )
    loadtest.add_argument(
        "--concurrency", type=int, default=8, metavar="N",
        help="closed-loop worker threads",
    )
    loadtest.add_argument(
        "--duration", type=float, default=5.0, metavar="SECONDS",
        help="measured wall-clock duration (after warmup)",
    )
    loadtest.add_argument(
        "--warmup", type=float, default=1.0, metavar="SECONDS",
        help="warmup window whose samples are discarded",
    )
    loadtest.add_argument(
        "--mix", action="append", default=None, metavar="CLASS=WEIGHT",
        help="route-mix entry (repeatable); classes: healthz, "
        "metrics, periods, period, severe, as, history, anomalies, "
        "link-history",
    )
    loadtest.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for the weighted route choice",
    )
    loadtest.add_argument(
        "--in-process", action="store_true",
        help="drive SurveyAPI directly (no sockets) — API-layer "
        "throughput, not end-to-end HTTP",
    )
    loadtest.add_argument(
        "--report", default=None, metavar="PATH",
        help="write the machine-readable report JSON to PATH",
    )
    loadtest.add_argument(
        "--update-bench", default=None, metavar="BENCH_JSON",
        help="upsert the report into BENCH_JSON's 'loadtest' section "
        "(the committed serving baseline)",
    )
    loadtest.add_argument(
        "--max-concurrency", type=int, default=64, metavar="N",
        help="server-side in-flight ceiling for the ephemeral server",
    )
    loadtest.add_argument(
        "--no-mmap", action="store_true",
        help="read packed segments via seek+read file handles "
        "instead of memory-mapping them (REPRO_STORE_MMAP=0)",
    )

    quality = sub.add_parser(
        "quality",
        help="leniently load a traceroute JSONL and print the "
        "data-quality report",
    )
    quality.add_argument("src", help="input JSONL path")

    anomaly = sub.add_parser(
        "anomaly",
        help="pinpoint per-link delay/forwarding anomalies from "
        "differential RTTs (Wilson bands); optionally commit the "
        "report into an archive period",
    )
    anomaly.add_argument(
        "--dataset", default=None, metavar="PATH",
        help="traceroute JSONL (repro simulate / Atlas schema); "
        "without it, the simulator generates the campaign",
    )
    anomaly.add_argument(
        "--period", default="simulated", metavar="NAME",
        help="period name stamped on the report (with --archive: the "
        "committed period the report attaches to)",
    )
    anomaly.add_argument(
        "--bin-seconds", type=int, default=1800,
        help="time-bin width for per-link aggregation",
    )
    anomaly.add_argument(
        "--days", type=int, default=None,
        help="period length in days (default: simulator 3; dataset "
        "mode derives it from the last timestamp)",
    )
    anomaly.add_argument("--probes", type=int, default=4,
                         help="simulator probe count")
    anomaly.add_argument("--seed", type=int, default=11,
                         help="simulator seed")
    anomaly.add_argument(
        "--peak-utilization", type=float, default=0.7,
        help="simulator last-mile peak utilization",
    )
    anomaly.add_argument(
        "--confidence", type=float, default=None,
        help="Wilson band confidence (default 0.95)",
    )
    anomaly.add_argument(
        "--min-samples", type=int, default=None,
        help="minimum traceroutes observing a link per bin "
        "(default 3)",
    )
    anomaly.add_argument(
        "--forwarding-threshold", type=float, default=None,
        help="total-variation shift that flags a forwarding anomaly "
        "(default 0.5)",
    )
    anomaly.add_argument(
        "--min-gap", type=float, default=None, metavar="MS",
        help="band separation below this is noise (default 2.0)",
    )
    anomaly.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="scan probes in N shards (same report byte-for-byte)",
    )
    anomaly.add_argument(
        "--archive", default=None, metavar="DIR",
        help="commit the report into the archive at DIR under "
        "--period (the period must already be committed)",
    )
    anomaly.add_argument(
        "--reference-periods", nargs="+", default=None,
        metavar="NAME",
        help="judge against the merged normal model learned from "
        "these periods' committed reports in --archive (default: "
        "the period self-references per time-of-day slot)",
    )
    anomaly.add_argument(
        "--out", default=None, metavar="PATH",
        help="write the report payload JSON to PATH",
    )
    _add_kernels_flag(anomaly)
    _add_obs_flags(anomaly)

    sub.add_parser("info", help="print version and package layout")
    return parser


def _add_kernels_flag(parser: argparse.ArgumentParser) -> None:
    from .core.kernels import available_kernels

    parser.add_argument(
        "--kernels", default=None, choices=available_kernels(),
        help="analysis kernel backend (default: $REPRO_KERNELS if "
        "set, else reference); both produce identical output",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--trace", action="store_true",
        help="collect spans and print the trace tree at the end",
    )
    parser.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="write the observability report (metrics + trace + "
        "profile) as JSON",
    )
    parser.add_argument(
        "--log-jsonl", default=None, metavar="PATH",
        help="append structured JSONL event logs to PATH",
    )


# -- observability plumbing ----------------------------------------------


def _make_observer(args):
    """Build the run's observer from the obs flags (or None)."""
    from .obs import Observability, StructuredLogger, open_jsonl_sink

    if not (args.trace or args.metrics_out or args.log_jsonl):
        return None, None
    sink = open_jsonl_sink(args.log_jsonl) if args.log_jsonl else None
    observer = Observability(
        logger=StructuredLogger(sink=sink) if sink else None
    )
    return observer, sink


def _finish_observer(args, observer) -> None:
    """Print/persist what the run's observer collected."""
    from .obs import render_trace, write_report

    if args.trace:
        print()
        print("trace:")
        print(render_trace(observer.tracer))
    if args.metrics_out:
        path = write_report(observer, args.metrics_out)
        print(f"wrote observability report to {path}")


# -- commands ------------------------------------------------------------


def cmd_survey(args) -> int:
    from .obs import observed

    observer, sink = _make_observer(args)
    if observer is None:
        return _run_survey(args)
    try:
        with observed(observer):
            code = _run_survey(args)
        _finish_observer(args, observer)
        return code
    finally:
        if sink is not None:
            sink.close()


def _run_survey(args) -> int:
    from .apnic import EyeballRanking
    from .core import SurveySuite, render_survey_headline
    from .io import export_site
    from .scenarios import generate_specs, run_survey_period
    from .timebase import COVID_PERIOD, LONGITUDINAL_PERIODS

    if args.full:
        args.ases, args.countries = 646, 98
        args.periods, args.covid = 6, True
    specs = generate_specs(
        num_ases=args.ases, num_countries=args.countries, seed=args.seed
    )
    periods = list(LONGITUDINAL_PERIODS[-args.periods:])
    if args.covid:
        periods.append(COVID_PERIOD)

    cache = None
    if args.cache_dir and not args.no_cache:
        from .parallel import ResultCache

        cache = ResultCache(args.cache_dir)

    suite = SurveySuite()
    world = None
    for period in periods:
        print(f"running {period.name}...", flush=True)
        result, world = run_survey_period(
            specs, period, seed=args.seed, workers=args.workers,
            cache=cache, kernels=args.kernels,
        )
        suite.add(result)
        print("  " + render_survey_headline(result))
        if result.failures:
            from .core import render_failure_log

            print("  " + render_failure_log(result).replace("\n", "\n  "))
        if not result.quality.clean:
            from .core import render_quality_report

            print(
                "  "
                + render_quality_report(result.quality).replace(
                    "\n", "\n  "
                )
            )

    if cache is not None:
        stats = cache.stats
        print(
            f"cache: {stats.hits} hits, {stats.misses} misses, "
            f"{stats.corrupt} corrupt, {stats.writes} writes "
            f"({cache.directory})"
        )

    ranking = EyeballRanking.from_registry(
        world.registry, rng=np.random.default_rng(args.seed)
    )
    written = export_site(suite, args.out, ranking)
    print(f"\nexported {len(written)} artifacts to {args.out}/")

    if args.archive:
        from .store import SurveyArchive

        archive = SurveyArchive(args.archive)
        committed = suite.ingest_into(archive, ranking)
        print(
            f"archived {len(committed)} period(s) to {args.archive}/ "
            f"({', '.join(committed)})"
        )
    return 0


def cmd_tokyo(args) -> int:
    from .core import (
        aggregate_population,
        filter_requests,
        per_asn_throughput,
        render_throughput_summary,
        spearman_delay_throughput,
    )
    from .scenarios import (
        ISP_A_ASN,
        ISP_B_ASN,
        ISP_C_ASN,
        build_tokyo_case_study,
    )
    from .timebase import TimeGrid

    study = build_tokyo_case_study(
        seed=args.seed, client_scale=args.client_scale
    )
    logs = study.edge.generate(study.period)
    print(f"{study.edge.total_clients} clients, {len(logs)} log rows")

    signals = {}
    for name in ("ISP_A", "ISP_B", "ISP_C"):
        dataset = study.dataset_for(name)
        if args.save_lastmile:
            from .io import save_lastmile

            save_lastmile(
                dataset, Path(args.save_lastmile + f".{name}")
            )
        signal = aggregate_population(dataset)
        signals[name] = signal
        print(f"{name}: max aggregated delay "
              f"{signal.max_delay_ms:.2f} ms "
              f"({signal.probe_count} probes)")

    grid = TimeGrid(study.period, 900)
    broadband = filter_requests(
        logs, mobile_prefixes=study.mobile_prefixes
    )
    broadband_v4 = broadband.select(broadband.afs == 4)
    throughput = per_asn_throughput(
        broadband_v4, grid, study.world.table,
        asns=[ISP_A_ASN, ISP_B_ASN, ISP_C_ASN],
    )
    print()
    print(render_throughput_summary({
        "ISP_A": throughput[ISP_A_ASN],
        "ISP_B": throughput[ISP_B_ASN],
        "ISP_C": throughput[ISP_C_ASN],
    }))
    for name, asn in (("ISP_A", ISP_A_ASN), ("ISP_C", ISP_C_ASN)):
        corr = spearman_delay_throughput(signals[name], throughput[asn])
        print(f"{name} delay/throughput Spearman rho = {corr.rho:+.2f}")
    return 0


def cmd_simulate(args) -> int:
    import datetime as dt

    from .atlas import AtlasPlatform
    from .io import save_traceroutes
    from .netbase import AccessTechnology, ASInfo, ASRole
    from .timebase import MeasurementPeriod
    from .topology import ProvisioningPolicy, World

    world = World(seed=args.seed)
    isp = world.add_isp(
        ASInfo(
            64500, "SimNet", "JP", ASRole.EYEBALL,
            access_technologies=[AccessTechnology.FTTH_PPPOE_LEGACY],
        ),
        provisioning=ProvisioningPolicy(
            peak_utilization={
                AccessTechnology.FTTH_PPPOE_LEGACY: args.peak_utilization
            },
            device_spread=0.01,
            load_jitter_std=0.008,
        ),
    )
    world.add_default_targets()
    world.finalize()
    platform = AtlasPlatform(world)
    probes = platform.deploy_probes_on_isp(isp, args.probes)
    period = MeasurementPeriod(
        "simulated", dt.datetime(2019, 9, 2), args.days
    )
    dataset = platform.run_period(period, probes)
    rows = save_traceroutes(dataset, args.out)
    print(f"wrote {rows} traceroutes to {args.out}")
    if args.rib_out:
        Path(args.rib_out).write_text(world.table.to_text() + "\n")
        print(f"wrote RIB dump to {args.rib_out}")
    return 0


def cmd_classify(args) -> int:
    from .core import classify_dataset
    from .io import load_lastmile

    dataset = load_lastmile(args.dataset)
    result = classify_dataset(
        dataset, dataset.grid.period, min_probes=args.min_probes,
        kernels=args.kernels,
    )
    if not result.reports:
        print("no AS qualifies (need >= "
              f"{args.min_probes} probes with metadata)")
        return 1
    for asn, report in sorted(result.reports.items()):
        amplitude = report.classification.daily_amplitude_ms
        print(f"AS{asn}: {report.severity.value.upper():6s} "
              f"daily amplitude {amplitude:.2f} ms "
              f"({report.probe_count} probes)")
    return 0


def cmd_stream(args) -> int:
    from .obs import observed

    observer, sink = _make_observer(args)
    if observer is None:
        return _run_stream(args)
    try:
        with observed(observer):
            code = _run_stream(args)
        _finish_observer(args, observer)
        return code
    finally:
        if sink is not None:
            sink.close()


def _run_stream(args) -> int:
    from .core import render_survey_headline
    from .stream import StreamingSurvey, dataset_to_records, micro_batches

    table = None
    if args.dataset:
        from .io import load_lastmile

        dataset = load_lastmile(args.dataset)
        period = dataset.grid.period
    else:
        from .scenarios import build_survey_world, generate_specs
        from .timebase import ALL_SURVEY_PERIODS, LONGITUDINAL_PERIODS

        wanted = args.period or LONGITUDINAL_PERIODS[-1].name
        by_name = {p.name: p for p in ALL_SURVEY_PERIODS}
        period = by_name.get(wanted)
        if period is None:
            print(
                f"error: unknown period {wanted!r} "
                f"(known: {', '.join(sorted(by_name))})",
                file=sys.stderr,
            )
            return 1
        specs = generate_specs(
            num_ases=args.ases, num_countries=args.countries,
            seed=args.seed,
        )
        world, platform = build_survey_world(
            specs, lockdown=period.name == "2020-04", seed=args.seed,
            period_name=period.name,
        )
        dataset = platform.run_period_binned(period)
        table = world.table

    records = dataset_to_records(dataset)
    engine = StreamingSurvey(
        period, min_probes=args.min_probes, table=table,
        kernels=args.kernels, approximate=args.approximate,
    )
    writer = None
    if args.archive:
        from .store import SurveyArchive

        writer = SurveyArchive(args.archive).begin_live_period(
            period.name
        )

    print(
        f"streaming {len(records)} records into period {period.name} "
        f"({engine.kernels.name} kernels, "
        f"{'P²' if args.approximate else 'exact'} medians)",
        flush=True,
    )
    since_checkpoint = 0
    for batch in micro_batches(records, args.batch_size):
        ingested = engine.ingest_many(batch)
        since_checkpoint += ingested
        if writer is not None:
            writer.append(ingested)
        if (
            args.checkpoint_every
            and since_checkpoint >= args.checkpoint_every
        ):
            since_checkpoint = 0
            partial = engine.emit_partial()
            line = (
                f"  [{engine.records_ingested}/{len(records)}] "
                + render_survey_headline(partial)
            )
            if writer is not None:
                revision = writer.commit_partial(partial)
                line += f" (committed r{revision})"
            if args.emit_partial:
                print(line, flush=True)

    result = engine.finalize()
    print(render_survey_headline(result))
    if result.failures:
        from .core import render_failure_log

        print(render_failure_log(result))
    if not result.quality.clean:
        from .core import render_quality_report

        print(render_quality_report(result.quality))
    status = engine.status()
    print(
        f"stream: {status['records_ingested']} records, "
        f"{status['probes']} probes, "
        f"{status['stale_records']} stale, "
        f"{status['sparse_bins']} sparse bins"
    )
    if writer is not None:
        writer.finalize(result)
        print(f"finalized period {period.name} in {args.archive}/")
    return 0


def cmd_inject(args) -> int:
    from .obs import observed

    observer, sink = _make_observer(args)
    if observer is None:
        return _run_inject(args)
    try:
        with observed(observer):
            code = _run_inject(args)
        _finish_observer(args, observer)
        return code
    finally:
        if sink is not None:
            sink.close()


def _run_inject(args) -> int:
    import json

    from .obs import get_observer
    from .faults import (
        ClockSkew,
        CorruptLines,
        DropRecords,
        DuplicateRecords,
        FaultLog,
        GarbageRTT,
        MissingReplies,
        ProbeChurn,
        RateLimitPrivateHops,
        ReorderRecords,
        TruncateTraceroutes,
        inject_lines,
        inject_records,
    )

    obs = get_observer()
    STAGE = "cli-inject"
    with obs.stage_span("inject", src=args.src) as span:
        with obs.span("inject-read"):
            records = [
                json.loads(line)
                for line in Path(args.src).read_text().splitlines()
                if line.strip()
            ]
        obs.items_in(STAGE, len(records))
        injectors = []
        for rate, cls in (
            (args.missing_replies, MissingReplies),
            (args.truncate, TruncateTraceroutes),
            (args.rate_limit, RateLimitPrivateHops),
            (args.garbage_rtt, GarbageRTT),
            (args.duplicates, DuplicateRecords),
            (args.reorder, ReorderRecords),
            (args.drop, DropRecords),
        ):
            if rate > 0:
                injectors.append(cls(rate))
        if args.clock_skew > 0:
            injectors.append(ClockSkew(probe_rate=args.clock_skew))
        if args.churn > 0:
            injectors.append(ProbeChurn(probe_rate=args.churn))

        log = FaultLog()
        with obs.span("inject-records", injectors=len(injectors)):
            corrupted, _ = inject_records(
                records, injectors, seed=args.seed, log=log
            )
        lines = [json.dumps(record) for record in corrupted]
        if args.corrupt_lines > 0:
            with obs.span("inject-lines"):
                lines, _ = inject_lines(
                    lines, [CorruptLines(args.corrupt_lines)],
                    seed=args.seed + 1, log=log,
                )
        Path(args.out).write_text("\n".join(lines) + "\n")
        obs.items_out(STAGE, len(lines))
        span.set_attr("faults", log.count())
        injected = obs.counter(
            "faults_injected_total", "faults introduced per injector",
            ("injector",),
        )
        for injector, count in sorted(log.counts.items()):
            injected.inc(count, injector=injector)
        obs.logger.bind(stage=STAGE).info(
            "inject-done", src=args.src, out=args.out,
            records=len(records), lines=len(lines),
            faults=log.count(),
        )
    print(f"wrote {len(lines)} lines to {args.out}")
    print(log.summary())
    return 0


def cmd_quality(args) -> int:
    from .core import render_quality_report
    from .io import load_traceroutes

    try:
        dataset = load_traceroutes(args.src, strict=False)
    except (OSError, ValueError) as exc:
        print(f"error: cannot read {args.src}: {exc}", file=sys.stderr)
        return 1
    kept = sum(len(results) for results in dataset.results.values())
    print(f"{kept} traceroutes kept from "
          f"{len(dataset.results)} probe(s)")
    print(render_quality_report(dataset.quality))
    return 0


def cmd_obs(args) -> int:
    from .obs import MetricsRegistry, load_report, render_report

    if args.obs_command == "report":
        if args.diff is not None:
            from .obs.metrics import diff_counters

            sections = []
            for path in args.diff:
                try:
                    report = load_report(path)
                except (OSError, ValueError) as exc:
                    print(f"error: cannot read {path}: {exc}",
                          file=sys.stderr)
                    return 1
                metrics = report.get("metrics") or {}
                if not isinstance(metrics, dict):
                    print(f"error: cannot read {path}: metrics "
                          "section is not an object",
                          file=sys.stderr)
                    return 1
                sections.append(metrics)
            try:
                lines = diff_counters(*sections)
            except (AttributeError, KeyError, TypeError) as exc:
                print("error: malformed metrics in "
                      f"{' or '.join(args.diff)}: {exc}",
                      file=sys.stderr)
                return 1
            if lines:
                print("\n".join(lines))
            else:
                print("(no counter changes)")
            return 0
        try:
            data = load_report(args.path)
        except FileNotFoundError:
            print(f"error: no observability report at {args.path} "
                  "(run with --metrics-out first)", file=sys.stderr)
            return 1
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {args.path}: {exc}",
                  file=sys.stderr)
            return 1
        if args.prometheus:
            registry = MetricsRegistry.from_dict(
                data.get("metrics") or {}
            )
            print(registry.to_prometheus(), end="")
        else:
            print(render_report(data))
        return 0
    raise AssertionError(f"unknown obs command {args.obs_command!r}")


def cmd_store(args) -> int:
    from .netbase.errors import NetbaseError
    from .store import SurveyArchive

    if args.store_command == "fsck":
        # fsck never goes through SurveyArchive: it must audit
        # archives too broken to open (garbage manifest → exit 3).
        return _store_fsck(args)
    try:
        archive = SurveyArchive(args.archive)
        if args.store_command == "ingest":
            return _store_ingest(archive, args)
        if args.store_command == "compact":
            compacted = archive.compact(keep_json=args.keep_json)
            if compacted:
                print(f"compacted {len(compacted)} period(s): "
                      + ", ".join(compacted))
            else:
                print("nothing to compact")
            return 0
        if args.store_command == "query":
            return _store_query(archive, args)
    except (NetbaseError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    raise AssertionError(
        f"unknown store command {args.store_command!r}"
    )


def _store_ingest(archive, args) -> int:
    import json

    committed = []
    for source in args.sources:
        try:
            data = json.loads(Path(source).read_text())
        except (OSError, ValueError) as exc:
            print(f"error: cannot read {source}: {exc}",
                  file=sys.stderr)
            return 1
        # A single survey payload has a "period" header; a suite file
        # (save_suite / the site export's surveys.json) maps period
        # name -> payload.
        payloads = (
            [data] if "period" in data else list(data.values())
        )
        for payload in payloads:
            committed.append(archive.ingest(payload))
    print(
        f"committed {len(committed)} period(s) to {archive.root}/: "
        + ", ".join(committed)
    )
    return 0


def _store_fsck(args) -> int:
    import json

    from .store import run_fsck

    if not Path(args.archive).is_dir():
        print(f"error: {args.archive} is not a directory",
              file=sys.stderr)
        return 3
    report = run_fsck(Path(args.archive), repair=args.repair)
    if args.json:
        print(json.dumps(report.to_dict(), indent=1, sort_keys=True))
    else:
        for line in report.summary_lines():
            print(line)
    return report.exit_code


def _store_query(archive, args) -> int:
    import json

    def emit(payload) -> int:
        print(json.dumps(payload, indent=1, sort_keys=True))
        return 0

    if args.verify:
        outcome = archive.verify()
        code = 0 if all(v == "ok" for v in outcome.values()) else 1
        emit(outcome)
        return code
    if args.deltas:
        return emit(archive.churn_deltas())
    if args.asn is not None and args.history:
        return emit({
            "asn": args.asn, "history": archive.history(args.asn),
        })
    if args.asn is not None:
        period = args.period or archive.latest()
        return emit({
            "asn": args.asn, "period": period,
            "report": archive.get(args.asn, period),
        })
    if args.severity is not None:
        period = args.period or archive.latest()
        return emit({
            "period": period, "severity": args.severity,
            "asns": archive.asns_with_severity(period, args.severity),
        })
    if args.country is not None:
        period = args.period or archive.latest()
        return emit({
            "period": period, "country": args.country.upper(),
            "asns": archive.asns_in_country(period, args.country),
        })
    if args.period is not None:
        return emit(archive.get_period(args.period))
    return emit({
        "periods": [
            dict(archive.period_meta(name), name=name)
            for name in archive.periods()
        ],
    })


def cmd_serve(args) -> int:
    from .netbase.errors import NetbaseError
    from .obs import observed
    from .serve import ResilienceConfig, SurveyServer
    from .store import STORE_MMAP_ENV, SurveyArchive

    if args.no_mmap:
        os.environ[STORE_MMAP_ENV] = "0"
    try:
        resilience = ResilienceConfig(
            max_concurrency=args.max_concurrency,
            deadline_seconds=args.deadline,
            retry_after_seconds=args.retry_after,
            breaker_threshold=args.breaker_threshold,
            breaker_cooldown_seconds=args.breaker_cooldown,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    access_log = None
    try:
        archive = SurveyArchive(args.archive)
        if not len(archive):
            print(f"error: no committed periods in {args.archive} "
                  "(run `repro store ingest` first)", file=sys.stderr)
            return 1
        if args.access_log:
            from .serve import AccessLog

            access_log = AccessLog(args.access_log)
        server = SurveyServer(
            archive, host=args.host, port=args.port,
            cache_size=args.cache_size, resilience=resilience,
            access_log=access_log,
        )
    except (NetbaseError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    server.install_signal_handlers()
    print(
        f"serving {len(archive)} period(s) from {args.archive} "
        f"on {server.url} (SIGTERM/SIGINT/Ctrl-C drain and stop)",
        flush=True,
    )
    observer, sink = _make_observer(args)
    # The server always runs observed — /v1/metrics needs a live
    # registry even when no obs flag asked for a report at the end.
    report_requested = observer is not None
    if observer is None:
        from .obs import Observability

        observer = Observability()

    def _on_shutdown() -> None:
        # Runs after the last in-flight request drained, so the
        # report and access log see every finished request — a
        # SIGTERM'd server still writes its --metrics-out file.
        if report_requested:
            _finish_observer(args, observer)
        if access_log is not None:
            access_log.close()
            print(f"wrote access log to {access_log.path} "
                  f"({access_log.written} requests)")

    try:
        with observed(observer):
            server.serve_forever(on_shutdown=_on_shutdown)
    finally:
        if sink is not None:
            sink.close()
        if access_log is not None:
            access_log.close()
    print("shut down cleanly")
    return 0


def cmd_loadtest(args) -> int:
    import json

    from .loadgen import (
        DEFAULT_MIX_SPEC,
        LoadConfig,
        api_transport,
        build_mix,
        http_transport,
        parse_mix_spec,
        run_load,
        upsert_bench_section,
    )
    from .netbase.errors import NetbaseError
    from .obs import Observability, observed

    if args.archive is None and args.url is None:
        print("error: need an archive directory or --url",
              file=sys.stderr)
        return 2
    if args.no_mmap:
        from .store import STORE_MMAP_ENV

        os.environ[STORE_MMAP_ENV] = "0"
    try:
        spec = (
            parse_mix_spec(args.mix) if args.mix
            else dict(DEFAULT_MIX_SPEC)
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    archive = None
    if args.archive is not None:
        from .store import SurveyArchive

        try:
            archive = SurveyArchive(args.archive)
        except (NetbaseError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        if not len(archive):
            print(f"error: no committed periods in {args.archive}",
                  file=sys.stderr)
            return 1
        mix = build_mix(archive, spec)
    else:
        # No archive to enumerate: static routes only.
        mix = tuple(
            (target, weight)
            for target, weight in (
                ("/v1/healthz", spec.get("healthz", 0.0)),
                ("/v1/metrics", spec.get("metrics", 0.0)),
                ("/v1/periods", spec.get("periods", 1.0)),
            )
            if weight > 0
        )

    try:
        config = LoadConfig(
            concurrency=args.concurrency,
            duration_seconds=args.duration,
            warmup_seconds=args.warmup,
            mix=mix,
            seed=args.seed,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.url is not None:
        print(f"loading {args.url} for {args.duration:g}s "
              f"(+{args.warmup:g}s warmup) at concurrency "
              f"{args.concurrency}...", flush=True)
        report = run_load(http_transport(args.url), config)
    else:
        from .serve import ResilienceConfig, SurveyAPI, SurveyServer

        # The ephemeral server runs observed so its /v1/metrics and
        # RED series are live during the run.
        with observed(Observability()):
            api = SurveyAPI(
                archive,
                resilience=ResilienceConfig(
                    max_concurrency=args.max_concurrency,
                ),
            )
            if args.in_process:
                print(f"loading SurveyAPI in-process for "
                      f"{args.duration:g}s (+{args.warmup:g}s warmup) "
                      f"at concurrency {args.concurrency}...",
                      flush=True)
                report = run_load(api_transport(api), config)
            else:
                with SurveyServer(api) as server:
                    print(f"loading {server.url} for "
                          f"{args.duration:g}s (+{args.warmup:g}s "
                          f"warmup) at concurrency "
                          f"{args.concurrency}...", flush=True)
                    report = run_load(
                        http_transport(server.url), config
                    )

    for line in report.summary_lines():
        print(line)
    payload = report.to_dict()
    if args.report:
        Path(args.report).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n"
        )
        print(f"wrote report to {args.report}")
    if args.update_bench:
        upsert_bench_section(args.update_bench, "loadtest", payload)
        print(f"updated loadtest section of {args.update_bench}")
    return 0


def cmd_anomaly(args) -> int:
    from .obs import observed

    observer, sink = _make_observer(args)
    if observer is None:
        return _run_anomaly(args)
    try:
        with observed(observer):
            code = _run_anomaly(args)
        _finish_observer(args, observer)
        return code
    finally:
        if sink is not None:
            sink.close()


def _run_anomaly(args) -> int:
    import datetime as dt
    import json
    import math

    from .anomaly import (
        DEFAULT_CONFIDENCE,
        DEFAULT_FORWARDING_THRESHOLD,
        DEFAULT_MIN_GAP_MS,
        DEFAULT_MIN_SAMPLES,
        detect_anomalies,
        merge_references,
        reference_from_payload,
    )
    from .netbase.errors import NetbaseError
    from .timebase import SECONDS_PER_DAY, MeasurementPeriod, TimeGrid

    if args.reference_periods and not args.archive:
        print("error: --reference-periods requires --archive",
              file=sys.stderr)
        return 2

    archive = None
    if args.archive:
        from .store import SurveyArchive

        try:
            archive = SurveyArchive(args.archive)
        except (NetbaseError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    if args.dataset:
        from .io import load_traceroutes

        dataset = load_traceroutes(args.dataset, strict=False)
        if not len(dataset):
            print(f"error: no traceroutes in {args.dataset}",
                  file=sys.stderr)
            return 1
        last = max(
            r.timestamp
            for results in dataset.results.values()
            for r in results
            if np.isfinite(r.timestamp)
        )
        days = args.days or max(
            1, int(math.ceil((last + 1.0) / SECONDS_PER_DAY))
        )
        period = MeasurementPeriod(
            args.period, dt.datetime(2019, 9, 2), days
        )
    else:
        from .atlas import AtlasPlatform
        from .netbase import AccessTechnology, ASInfo, ASRole
        from .topology import ProvisioningPolicy, World

        world = World(seed=args.seed)
        isp = world.add_isp(
            ASInfo(
                64500, "SimNet", "JP", ASRole.EYEBALL,
                access_technologies=[
                    AccessTechnology.FTTH_PPPOE_LEGACY
                ],
            ),
            provisioning=ProvisioningPolicy(
                peak_utilization={
                    AccessTechnology.FTTH_PPPOE_LEGACY:
                        args.peak_utilization
                },
                device_spread=0.01,
                load_jitter_std=0.008,
            ),
        )
        world.add_default_targets()
        world.finalize()
        platform = AtlasPlatform(world)
        probes = platform.deploy_probes_on_isp(isp, args.probes)
        period = MeasurementPeriod(
            args.period, dt.datetime(2019, 9, 2), args.days or 3
        )
        dataset = platform.run_period(period, probes)
        print(f"simulated {len(dataset)} traceroutes "
              f"({args.probes} probes, {period.days} days)")

    try:
        grid = TimeGrid(period, args.bin_seconds)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    reference = None
    try:
        if args.reference_periods:
            reference = merge_references([
                reference_from_payload(archive.get_anomalies(name))
                for name in args.reference_periods
            ])
        report = detect_anomalies(
            dataset.results, grid, period_name=args.period,
            kernels=args.kernels,
            confidence=(
                args.confidence if args.confidence is not None
                else DEFAULT_CONFIDENCE
            ),
            min_samples=(
                args.min_samples if args.min_samples is not None
                else DEFAULT_MIN_SAMPLES
            ),
            forwarding_threshold=(
                args.forwarding_threshold
                if args.forwarding_threshold is not None
                else DEFAULT_FORWARDING_THRESHOLD
            ),
            min_gap_ms=(
                args.min_gap if args.min_gap is not None
                else DEFAULT_MIN_GAP_MS
            ),
            reference=reference,
            quality=dataset.quality,
            shards=args.shards,
        )
    except (NetbaseError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    payload = report.payload
    delay = report.events_of_kind("delay")
    forwarding = report.events_of_kind("forwarding")
    print(f"{payload['links_total']} links, "
          f"{payload['processed']} traceroutes scanned "
          f"(reference: {payload['reference_source']})")
    print(f"{len(delay)} delay + {len(forwarding)} forwarding "
          "anomaly event(s)")
    for event in report.events[:10]:
        if event["kind"] == "delay":
            print(f"  delay      bin {event['bin']:4d} "
                  f"{event['link']}: median "
                  f"{event['median_ms']} ms, gap "
                  f"{event['gap_ms']} ms {event['direction']}")
        else:
            print(f"  forwarding bin {event['bin']:4d} "
                  f"{event['near']} -> {event['dst']}: shift "
                  f"{event['shift']} "
                  f"({event['expected']} -> {event['observed']})")
    if len(report.events) > 10:
        print(f"  ... {len(report.events) - 10} more")

    if args.out:
        Path(args.out).write_text(
            json.dumps(payload, indent=1, sort_keys=True) + "\n"
        )
        print(f"wrote report to {args.out}")
    if archive is not None:
        try:
            archive.ingest_anomalies(args.period, report)
        except (NetbaseError, OSError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
        print(f"committed anomaly report for period "
              f"{args.period!r} to {archive.root}/")
    return 0


def cmd_info(_args) -> int:
    import repro

    print(f"repro {repro.__version__}")
    print("reproduction of 'Persistent Last-mile Congestion: "
          "Not so Uncommon' (IMC 2020)")
    print("subpackages: " + ", ".join(
        name for name in repro.__all__ if name != "__version__"
    ))
    return 0


COMMANDS = {
    "survey": cmd_survey,
    "tokyo": cmd_tokyo,
    "simulate": cmd_simulate,
    "classify": cmd_classify,
    "stream": cmd_stream,
    "inject": cmd_inject,
    "quality": cmd_quality,
    "obs": cmd_obs,
    "store": cmd_store,
    "serve": cmd_serve,
    "loadtest": cmd_loadtest,
    "anomaly": cmd_anomaly,
    "info": cmd_info,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
